"""Graph neural network substrate: SGC propagation, GCN, GAT."""

from repro.gnn.propagation import (
    sgc_propagate,
    propagation_stack,
    normalized_adjacency_power,
)
from repro.gnn.gcn import GCN, GCNLayer, dense_normalized_adjacency
from repro.gnn.gat import GAT, GATLayer

__all__ = [
    "sgc_propagate",
    "propagation_stack",
    "normalized_adjacency_power",
    "GCN",
    "GCNLayer",
    "dense_normalized_adjacency",
    "GAT",
    "GATLayer",
]
