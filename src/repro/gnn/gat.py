"""Graph Attention Network layer (Veličković et al. 2018).

Dense single-head implementation on the autodiff substrate; attention
coefficients use the standard LeakyReLU additive mechanism, masked to
the graph's edges (plus self-loops).  Used by the GATAlign baseline.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.functional import softmax
from repro.autodiff.module import Linear, Module, Parameter
from repro.autodiff.tensor import Tensor
from repro.utils.random import check_random_state, spawn_seeds


class GATLayer(Module):
    """Single-head graph attention: ``σ(softmax_j(e_ij) X W)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: str = "relu",
        leaky_slope: float = 0.2,
        seed=None,
    ):
        seeds = spawn_seeds(seed, 2)
        self.linear = Linear(in_features, out_features, bias=False, seed=seeds[0])
        rng = check_random_state(seeds[1])
        scale = np.sqrt(6.0 / (2 * out_features))
        self.attn_src = Parameter(rng.uniform(-scale, scale, size=(out_features, 1)))
        self.attn_dst = Parameter(rng.uniform(-scale, scale, size=(out_features, 1)))
        self.leaky_slope = leaky_slope
        if activation not in ("relu", "none"):
            raise ValueError(f"unknown activation {activation!r}")
        self.activation = activation

    def forward(self, adjacency_mask: np.ndarray, x: Tensor) -> Tensor:
        h = self.linear(x)
        # additive attention factorises: e_ij = leaky(a_s·h_i + a_d·h_j)
        src_scores = h @ self.attn_src  # (n, 1)
        dst_scores = h @ self.attn_dst  # (n, 1)
        logits = src_scores + dst_scores.T
        logits = _leaky_relu(logits, self.leaky_slope)
        neg_inf = np.where(adjacency_mask > 0, 0.0, -1e9)
        attention = softmax(logits + Tensor(neg_inf), axis=1)
        out = attention @ h
        return out.relu() if self.activation == "relu" else out


def _leaky_relu(x: Tensor, slope: float) -> Tensor:
    positive = x.relu()
    negative = (-x).relu() * (-slope)
    return positive + negative


class GAT(Module):
    """A stack of single-head GAT layers."""

    def __init__(self, layer_dims: list[int], seed=None):
        if len(layer_dims) < 2:
            raise ValueError("layer_dims needs at least [in, out]")
        seeds = spawn_seeds(seed, len(layer_dims) - 1)
        self.layers = [
            GATLayer(
                layer_dims[i],
                layer_dims[i + 1],
                activation="relu" if i + 2 < len(layer_dims) else "none",
                seed=seeds[i],
            )
            for i in range(len(layer_dims) - 1)
        ]

    def forward(self, adjacency_mask: np.ndarray, x: Tensor) -> Tensor:
        # attention masks include self-loops so every row is normalisable
        mask = np.asarray(adjacency_mask, dtype=np.float64)
        mask = mask + np.eye(mask.shape[0])
        for layer in self.layers:
            x = layer(mask, x)
        return x
