"""Parameter-free feature propagation (paper Eq. 5).

``Z(k) = Âᵏ X`` where ``Â = M^{-1/2}(A+I)M^{-1/2}`` — the simplified
graph convolution of Wu et al. (2019) with the linear layer and
activation removed, exactly as SLOTAlign's subgraph-view requires.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.graphs.graph import AttributedGraph
from repro.graphs.normalization import symmetric_normalize


def sgc_propagate(
    adjacency, features: np.ndarray, n_hops: int
) -> np.ndarray:
    """Propagate ``features`` for ``n_hops`` steps: ``Âᵏ X``."""
    if n_hops < 0:
        raise GraphError(f"n_hops must be non-negative, got {n_hops}")
    feats = np.asarray(features, dtype=np.float64)
    if feats.ndim != 2:
        raise GraphError(f"features must be 2-D, got shape {feats.shape}")
    norm_adj = symmetric_normalize(adjacency)
    if norm_adj.shape[0] != feats.shape[0]:
        raise GraphError(
            f"adjacency has {norm_adj.shape[0]} nodes, features {feats.shape[0]}"
        )
    out = feats
    for _ in range(n_hops):
        out = norm_adj @ out
    return np.asarray(out)


def propagation_stack(
    graph: AttributedGraph, max_hops: int
) -> list[np.ndarray]:
    """``[Z(0), Z(1), ..., Z(max_hops)]`` computed incrementally.

    Used by the multi-view constructor so each additional hop costs a
    single sparse matmul instead of recomputing from scratch.
    """
    if graph.features is None:
        raise GraphError("propagation requires node features")
    if max_hops < 0:
        raise GraphError(f"max_hops must be non-negative, got {max_hops}")
    norm_adj = symmetric_normalize(graph.adjacency)
    stack = [graph.features]
    current = graph.features
    for _ in range(max_hops):
        current = np.asarray(norm_adj @ current)
        stack.append(current)
    return stack


def normalized_adjacency_power(adjacency, k: int) -> sp.csr_array:
    """``Âᵏ`` as a sparse matrix (used in tests to cross-check Eq. 5)."""
    if k < 0:
        raise GraphError(f"k must be non-negative, got {k}")
    norm_adj = symmetric_normalize(adjacency)
    result = sp.eye_array(norm_adj.shape[0], format="csr")
    for _ in range(k):
        result = sp.csr_array(result @ norm_adj)
    return result
