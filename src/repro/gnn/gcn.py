"""Graph Convolutional Network layers (Kipf & Welling 2017).

Dense implementation on the autodiff substrate: a ``GCNLayer`` computes
``σ(Â X W + b)``; :class:`GCN` stacks layers.  Used by the GCNAlign,
WAlign and "parameterized GNN" ablation baselines.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.module import Linear, Module
from repro.autodiff.tensor import Tensor
from repro.graphs.normalization import symmetric_normalize
from repro.utils.random import spawn_seeds


class GCNLayer(Module):
    """One graph convolution: ``activation(Â X W + b)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: str = "relu",
        seed=None,
    ):
        self.linear = Linear(in_features, out_features, seed=seed)
        if activation not in ("relu", "tanh", "none"):
            raise ValueError(f"unknown activation {activation!r}")
        self.activation = activation

    def forward(self, norm_adj: np.ndarray, x: Tensor) -> Tensor:
        propagated = Tensor(norm_adj) @ x if isinstance(norm_adj, np.ndarray) else (
            Tensor(np.asarray(norm_adj.todense())) @ x
        )
        out = self.linear(propagated)
        if self.activation == "relu":
            return out.relu()
        if self.activation == "tanh":
            return out.tanh()
        return out


class GCN(Module):
    """A stack of GCN layers producing node embeddings.

    The final layer has no activation, matching the usual alignment
    setup where embeddings feed a similarity computation.
    """

    def __init__(self, layer_dims: list[int], seed=None):
        if len(layer_dims) < 2:
            raise ValueError("layer_dims needs at least [in, out]")
        seeds = spawn_seeds(seed, len(layer_dims) - 1)
        self.layers = [
            GCNLayer(
                layer_dims[i],
                layer_dims[i + 1],
                activation="relu" if i + 2 < len(layer_dims) else "none",
                seed=seeds[i],
            )
            for i in range(len(layer_dims) - 1)
        ]

    def forward(self, norm_adj, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(norm_adj, x)
        return x


def dense_normalized_adjacency(graph) -> np.ndarray:
    """Dense ``Â`` for a graph (baselines operate on dense matrices)."""
    return symmetric_normalize(graph.adjacency).toarray()
