"""SLOTAlign reproduction — robust attributed graph alignment.

Reproduction of Tang et al., "Robust Attributed Graph Alignment via
Joint Structure Learning and Optimal Transport" (ICDE 2023), built
entirely on NumPy/SciPy.

Quickstart
----------
>>> from repro import SLOTAlign, make_semi_synthetic_pair, load_cora
>>> pair = make_semi_synthetic_pair(load_cora(scale=0.05), edge_noise=0.1)
>>> result = SLOTAlign().fit(pair.source, pair.target)
>>> matches = result.matching()
"""

from repro.core import (
    SLOTAlign,
    SLOTAlignConfig,
    AlignmentResult,
    slotalign,
)
from repro.engine import AlignmentEngine, available_backends
from repro.graphs import AttributedGraph
from repro.datasets import (
    AlignmentPair,
    make_semi_synthetic_pair,
    load_cora,
    load_citeseer,
    load_ppi,
    load_facebook,
    load_douban,
    load_acm_dblp,
    load_dbp15k,
)
from repro.eval import hits_at_k, evaluate_plan

__version__ = "1.0.0"

__all__ = [
    "SLOTAlign",
    "SLOTAlignConfig",
    "AlignmentResult",
    "slotalign",
    "AlignmentEngine",
    "available_backends",
    "AttributedGraph",
    "AlignmentPair",
    "make_semi_synthetic_pair",
    "load_cora",
    "load_citeseer",
    "load_ppi",
    "load_facebook",
    "load_douban",
    "load_acm_dblp",
    "load_dbp15k",
    "hits_at_k",
    "evaluate_plan",
    "__version__",
]
