"""Name → loader registry for the dataset stand-ins."""

from __future__ import annotations

from repro.datasets.acmdblp import load_acm_dblp
from repro.datasets.citation import load_citeseer, load_cora
from repro.datasets.douban import load_douban
from repro.datasets.dbp15k import load_dbp15k
from repro.datasets.ppi import load_ppi
from repro.datasets.social import load_facebook
from repro.exceptions import DatasetError

GRAPH_LOADERS = {
    "cora": load_cora,
    "citeseer": load_citeseer,
    "ppi": load_ppi,
    "facebook": load_facebook,
}

PAIR_LOADERS = {
    "douban": load_douban,
    "acm-dblp": load_acm_dblp,
    "dbp15k_zh_en": lambda **kw: load_dbp15k("zh_en", **kw),
    "dbp15k_ja_en": lambda **kw: load_dbp15k("ja_en", **kw),
    "dbp15k_fr_en": lambda **kw: load_dbp15k("fr_en", **kw),
}


def load_graph_dataset(name: str, **kwargs):
    """Load one of the single-graph stand-ins by name."""
    try:
        loader = GRAPH_LOADERS[name]
    except KeyError:
        raise DatasetError(
            f"unknown graph dataset {name!r}; available: {sorted(GRAPH_LOADERS)}"
        ) from None
    return loader(**kwargs)


def load_pair_dataset(name: str, **kwargs):
    """Load one of the graph-pair stand-ins by name."""
    try:
        loader = PAIR_LOADERS[name]
    except KeyError:
        raise DatasetError(
            f"unknown pair dataset {name!r}; available: {sorted(PAIR_LOADERS)}"
        ) from None
    return loader(**kwargs)


def available_datasets() -> dict[str, list[str]]:
    """Catalogue of everything loadable."""
    return {
        "graphs": sorted(GRAPH_LOADERS),
        "pairs": sorted(PAIR_LOADERS),
    }
