"""Douban Online-Offline pair simulator.

The real dataset aligns a 3,906-node *online* interaction graph with a
1,118-node *offline* co-occurrence graph; every offline user appears in
the online graph (1,118 anchors), node features are 538-d location
indicators shared by both sides.  The defining difficulties we
reproduce:

* **containment** — the offline graph is a strict subset of the online
  user base;
* **different edge semantics** — online replies vs offline
  co-occurrence produce substantially different structures over the
  same people (we model this by independently rewiring/sparsifying the
  shared core);
* **weak features** — location one-hots are coarse (many users share a
  location), so feature KNN performs terribly, as in Table II.

Calibration notes (PR 4, paper-fidelity recovery): the baseline shape
matches the paper — KNN and GWD land at ~1 %, the GNN cross-compare
methods in the twenties.  The exactly-shared one-hot features make the
first-order feature anchor stronger than in the real data, so
fixed-fusion FusedGW (not a paper baseline) is the method to beat
here; harder feature variants were audited (per-view location
re-draws, multi-hot visit profiles, rewiring sweeps 0.05-0.35) and
every one degrades the second-order protocol at least as fast as the
linear anchor or breaks the "KNN terrible" shape, so the pair is kept
as-is.  What recovers the cell is the scale-aware K of the Table II
protocol (edge + node views only at stand-in scale — two propagated
hops over-smooth a ~100-node pair); the margin is tracked per run in
``BENCH_fidelity.json``.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.pairs import AlignmentPair
from repro.exceptions import DatasetError
from repro.graphs.generators import (
    powerlaw_cluster_graph,
    random_bipartite_expansion,
)
from repro.graphs.permutation import permute_graph
from repro.graphs.perturbation import drop_edges, perturb_edges
from repro.utils.random import check_random_state, spawn_seeds


def load_douban(scale: float = 0.3, seed: int = 23) -> AlignmentPair:
    """Build the Douban-like online/offline pair.

    Parameters
    ----------
    scale:
        1.0 reproduces the paper's sizes (3,906 / 1,118 nodes); the
        default 0.3 keeps dense-GW experiments fast.
    """
    if not 0.0 < scale <= 1.0:
        raise DatasetError(f"scale must be in (0, 1], got {scale}")
    n_offline = max(50, int(round(1118 * scale)))
    n_online = max(n_offline + 20, int(round(3906 * scale)))
    n_locations = max(30, int(round(538 * scale)))
    seeds = spawn_seeds(seed, 6)
    rng = check_random_state(seeds[0])

    # shared social core over the offline user base
    avg_degree = 2 * 3022 / 1118
    attach = max(2, int(round(avg_degree / 2)))
    core = powerlaw_cluster_graph(n_offline, attach, 0.4, seed=seeds[1])

    # offline view: co-occurrence = noisy, sparsified version of the core
    offline = perturb_edges(core, 0.15, seed=seeds[2])
    offline.name = "douban-offline"

    # online view: core + peripheral users + extra interaction edges
    online_core = perturb_edges(core, 0.15, seed=seeds[3])
    online = random_bipartite_expansion(
        online_core, n_online - n_offline, attach_p=2.0 / n_offline, seed=seeds[4]
    )
    online = drop_edges(online, 0.05, seed=seeds[5])
    online.name = "douban-online"

    # location one-hots: each user has one location; both views share it
    locations = rng.integers(0, n_locations, size=n_online)
    feats_online = np.zeros((n_online, n_locations))
    feats_online[np.arange(n_online), locations] = 1.0
    feats_offline = feats_online[:n_offline].copy()

    online = online.with_features(feats_online)
    offline = offline.with_features(feats_offline)

    # permute the online side so identity is not the trivial answer
    online, perm = permute_graph(online, seed=seeds[0])
    online.name = "douban-online"
    ground_truth = np.column_stack([np.arange(n_offline), perm[:n_offline]])
    return AlignmentPair(
        source=offline,
        target=online,
        ground_truth=ground_truth,
        name="douban",
        metadata={"n_online": n_online, "n_offline": n_offline, "scale": scale},
    )
