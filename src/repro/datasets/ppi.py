"""PPI stand-in (Zitnik & Leskovec 2017).

The paper's PPI graph has 1,767 nodes, 16,159 edges and 171 features
(motif gene sets / immunological signatures).  The defining character
is a *dense* biological interaction network (mean degree ~18) with
moderately informative dense features.  We synthesise an SBM with many
small functional modules plus dense features mixing module identity and
degree information.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DatasetError
from repro.graphs.features import degree_correlated_features
from repro.graphs.generators import stochastic_block_model
from repro.graphs.graph import AttributedGraph
from repro.utils.random import check_random_state, spawn_seeds


def load_ppi(scale: float = 1.0, seed: int = 13) -> AttributedGraph:
    """PPI stand-in: 1,767 nodes, ~16,159 edges, 171 dense attrs."""
    if not 0.0 < scale <= 1.0:
        raise DatasetError(f"scale must be in (0, 1], got {scale}")
    n = max(60, int(round(1767 * scale)))
    d = max(32, int(round(171 * max(scale, 0.4))))
    n_modules = max(4, int(round(20 * np.sqrt(scale))))
    sizes = [n // n_modules] * n_modules
    sizes[0] += n - sum(sizes)
    avg_degree = 2 * 16159 / 1767
    block = n / n_modules
    p_within = min(0.7 * avg_degree / max(block - 1, 1), 1.0)
    p_between = 0.3 * avg_degree / max(n - block, 1)
    seeds = spawn_seeds(seed, 3)
    graph = stochastic_block_model(
        sizes, p_within, p_between, seed=seeds[0], name="ppi"
    )
    rng = check_random_state(seeds[1])
    # features: module one-hot-ish signatures plus degree-correlated noise
    module_signatures = rng.standard_normal((n_modules, d))
    feats = module_signatures[graph.node_labels]
    feats = feats + 0.5 * degree_correlated_features(
        graph.degrees, d, noise=1.0, seed=seeds[2]
    )
    graph = graph.with_features(feats)
    graph.node_labels = np.repeat(np.arange(n_modules), sizes)
    graph.name = "ppi"
    return graph
