"""Dataset stand-ins mirroring the paper's seven benchmarks."""

from repro.datasets.pairs import (
    AlignmentPair,
    PartialAlignmentPair,
    PartialPairSpec,
    make_partial_pair,
    make_semi_synthetic_pair,
    truncate_feature_columns,
    FEATURE_TRANSFORMS,
)
from repro.datasets.citation import load_cora, load_citeseer
from repro.datasets.ppi import load_ppi
from repro.datasets.social import load_facebook
from repro.datasets.douban import load_douban
from repro.datasets.acmdblp import load_acm_dblp
from repro.datasets.kg import KnowledgeGraph, random_knowledge_graph
from repro.datasets.dbp15k import load_dbp15k, SUBSETS
from repro.datasets.registry import (
    load_graph_dataset,
    load_pair_dataset,
    available_datasets,
    GRAPH_LOADERS,
    PAIR_LOADERS,
)

__all__ = [
    "AlignmentPair",
    "PartialAlignmentPair",
    "PartialPairSpec",
    "make_partial_pair",
    "make_semi_synthetic_pair",
    "truncate_feature_columns",
    "FEATURE_TRANSFORMS",
    "load_cora",
    "load_citeseer",
    "load_ppi",
    "load_facebook",
    "load_douban",
    "load_acm_dblp",
    "KnowledgeGraph",
    "random_knowledge_graph",
    "load_dbp15k",
    "SUBSETS",
    "load_graph_dataset",
    "load_pair_dataset",
    "available_datasets",
    "GRAPH_LOADERS",
    "PAIR_LOADERS",
]
