"""Citation-network stand-ins for Cora and Citeseer.

The paper uses the Planetoid Cora (2,708 nodes / 5,278 edges / 1,433
bag-of-words attrs, 7 classes) and Citeseer (3,327 / 4,732 / 3,703,
6 classes) graphs.  Offline, we synthesise deterministic stand-ins with
the same statistical character: power-law-cluster topology rewired
toward a community structure, plus community-correlated bag-of-words
features.  A ``scale`` argument shrinks the graph proportionally for
fast tests while keeping densities fixed.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DatasetError
from repro.graphs.features import community_bag_of_words
from repro.graphs.generators import stochastic_block_model
from repro.graphs.graph import AttributedGraph
from repro.utils.random import check_random_state, spawn_seeds


def _community_citation_graph(
    n_nodes: int,
    n_communities: int,
    avg_degree: float,
    n_features: int,
    words_per_node: int,
    name: str,
    seed,
) -> AttributedGraph:
    """SBM-backed citation-like graph with bag-of-words features.

    Citation networks are sparse (mean degree 2-4) with strong
    community structure; an SBM with within/between densities tuned to
    the requested average degree reproduces both properties.
    """
    if n_nodes < n_communities:
        raise DatasetError("need at least one node per community")
    sizes = [n_nodes // n_communities] * n_communities
    sizes[0] += n_nodes - sum(sizes)
    block = n_nodes / n_communities
    # expected degree = p_in*(block-1) + p_out*(n-block); put ~80 % of
    # the mass within communities
    p_within = 0.8 * avg_degree / max(block - 1, 1)
    p_between = 0.2 * avg_degree / max(n_nodes - block, 1)
    p_within = min(p_within, 1.0)
    seeds = spawn_seeds(seed, 3)
    graph = stochastic_block_model(sizes, p_within, p_between, seed=seeds[0], name=name)
    feats = community_bag_of_words(
        graph.node_labels,
        n_features,
        words_per_node=words_per_node,
        seed=seeds[1],
    )
    # shuffle vocabulary columns so the "first 100 columns" protocol of
    # the robustness experiments keeps a random 7 % vocabulary slice
    # (as with the real Planetoid word order) rather than one
    # community's topic block
    rng = check_random_state(seeds[2])
    feats = feats[:, rng.permutation(feats.shape[1])]
    graph = graph.with_features(feats)
    graph.node_labels = np.repeat(np.arange(n_communities), sizes)
    graph.name = name
    return graph


def load_cora(scale: float = 1.0, seed: int = 7) -> AttributedGraph:
    """Cora stand-in: 2,708 nodes, ~5,278 edges, 1,433 attrs, 7 classes."""
    _check_scale(scale)
    n = max(56, int(round(2708 * scale)))
    # the vocabulary does not shrink with the graph: the robustness
    # protocol truncates to the first 100 columns, and the realistic
    # regime is "100 of 1433" (sparse, tie-heavy), not "100 of 100"
    return _community_citation_graph(
        n_nodes=n,
        n_communities=7,
        avg_degree=2 * 5278 / 2708,
        n_features=1433,
        words_per_node=18,
        name="cora",
        seed=seed,
    )


def load_citeseer(scale: float = 1.0, seed: int = 11) -> AttributedGraph:
    """Citeseer stand-in: 3,327 nodes, ~4,732 edges, 3,703 attrs, 6 classes."""
    _check_scale(scale)
    n = max(48, int(round(3327 * scale)))
    return _community_citation_graph(
        n_nodes=n,
        n_communities=6,
        avg_degree=2 * 4732 / 3327,
        n_features=3703,
        words_per_node=20,
        name="citeseer",
        seed=seed,
    )


def _check_scale(scale: float) -> None:
    if not 0.0 < scale <= 1.0:
        raise DatasetError(f"scale must be in (0, 1], got {scale}")
