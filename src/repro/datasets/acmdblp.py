"""ACM-DBLP co-author pair simulator.

The real dataset aligns two co-authorship views (ACM: 9,872 nodes /
39,561 edges; DBLP: 9,916 / 44,808) with 17-dimensional features
counting papers per venue; 6,325 authors overlap.  Reproduced
difficulties:

* **partial overlap with extra nodes on both sides** — each venue
  indexes some authors the other misses;
* **correlated-but-different structures** — the same collaboration
  community yields different observed co-author edges per venue;
* **informative low-dimensional count features** — venue-count vectors
  are shared up to Poisson-style observation noise, which is why KNN is
  already strong (Hit@1 ≈ 49 in Table II) and why feature-using methods
  dominate GWD less than on Douban.

Protocol note (PR 4): this pair is the recovered half of Table II —
with the Sec. IV base overhaul (tied weights, centred kernels, cosine
hops) and the similarity init, SLOTAlign tops the panel; the margin is
tracked per run in ``BENCH_fidelity.json``.  The hub-dominated
propagated kernels of this power-law graph are exactly the degenerate
views the per-hop cosine renormalisation exists for: without it the
hop Grams are near rank one and capture all the structure weight.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.pairs import AlignmentPair
from repro.exceptions import DatasetError
from repro.graphs.generators import powerlaw_cluster_graph
from repro.graphs.graph import AttributedGraph
from repro.graphs.permutation import permute_graph
from repro.graphs.perturbation import perturb_edges
from repro.utils.random import check_random_state, spawn_seeds


def load_acm_dblp(scale: float = 0.1, seed: int = 29) -> AlignmentPair:
    """Build the ACM/DBLP-like co-author pair.

    ``scale=1.0`` reproduces the paper's ~9.9k-node graphs; the default
    keeps dense-GW pipelines fast.
    """
    if not 0.0 < scale <= 1.0:
        raise DatasetError(f"scale must be in (0, 1], got {scale}")
    n_common = max(60, int(round(6325 * scale)))
    extra_acm = max(10, int(round((9872 - 6325) * scale)))
    extra_dblp = max(10, int(round((9916 - 6325) * scale)))
    n_venues = 17
    seeds = spawn_seeds(seed, 8)
    rng = check_random_state(seeds[0])

    avg_degree = 2 * 39561 / 9872
    attach = max(2, int(round(avg_degree / 2)))
    core = powerlaw_cluster_graph(n_common, attach, 0.6, seed=seeds[1])

    acm = _venue_view(core, extra_acm, 0.2, seeds[2], "acm")
    dblp = _venue_view(core, extra_dblp, 0.2, seeds[3], "dblp")

    # venue-count features: shared publication profile + per-venue noise
    profile = rng.poisson(lam=1.5, size=(n_common, n_venues)).astype(np.float64)
    acm_feats = np.vstack(
        [
            profile + rng.poisson(0.3, size=profile.shape),
            rng.poisson(1.5, size=(extra_acm, n_venues)),
        ]
    ).astype(np.float64)
    dblp_feats = np.vstack(
        [
            profile + rng.poisson(0.3, size=profile.shape),
            rng.poisson(1.5, size=(extra_dblp, n_venues)),
        ]
    ).astype(np.float64)
    acm = acm.with_features(acm_feats)
    dblp = dblp.with_features(dblp_feats)

    acm, perm_a = permute_graph(acm, seed=seeds[4])
    dblp, perm_d = permute_graph(dblp, seed=seeds[5])
    acm.name, dblp.name = "acm", "dblp"
    ground_truth = np.column_stack([perm_a[:n_common], perm_d[:n_common]])
    return AlignmentPair(
        source=acm,
        target=dblp,
        ground_truth=ground_truth,
        name="acm-dblp",
        metadata={"n_common": n_common, "scale": scale},
    )


def _venue_view(
    core: AttributedGraph, n_extra: int, noise: float, seed, name: str
) -> AttributedGraph:
    """One venue's observation of the collaboration core + extra authors."""
    seeds = spawn_seeds(seed, 3)
    rng = check_random_state(seeds[0])
    view = perturb_edges(core, noise, seed=seeds[1])
    n_old = view.n_nodes
    n_new = n_old + n_extra
    edges = [tuple(e) for e in view.edge_list()]
    for new in range(n_old, n_new):
        n_links = 1 + int(rng.integers(0, 3))
        for _ in range(n_links):
            edges.append((int(rng.integers(0, new)), new))
    return AttributedGraph.from_edges(n_new, edges, name=name)
