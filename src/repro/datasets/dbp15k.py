"""DBP15K bilingual KG-alignment simulator.

The real DBP15K subsets (ZH-EN, JA-EN, FR-EN) each contain ~19-20k
entities per language, 70-116k relational triples and 15,000 aligned
entity pairs; features are 768-d LaBSE embeddings of entity names.
Cross-lingual character we reproduce (per subset):

* a shared latent entity space observed twice through *different*
  language encoders — features are informative across graphs but do not
  live in the same coordinate system exactly; the cross-lingual cosine
  similarity of true pairs is controlled by ``feature_agreement``
  (FR-EN names are near-cognate → high agreement; ZH-EN lowest — this
  drives the Table III ordering FR > JA > ZH);
* per-language relational structure: both KGs sample triples from a
  shared latent relatedness kernel with language-specific dropout, so
  structures correlate without matching exactly; relation *types* are
  assigned from shared latent prototypes (DBpedia's ontology is
  language-independent: ``birthPlace`` is the same relation in every
  language), so per-relation adjacencies carry cross-lingual signal
  and relation-aware structure bases are meaningful;
* only a subset of entities is shared (alignable), the rest are
  language-specific.

``scale=1.0`` would reproduce the paper's sizes; dense GW at 20k nodes
needs >3 GB per matrix, so experiments default to ~8 % scale — the same
code path at laptop-friendly n.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.kg import KnowledgeGraph
from repro.datasets.pairs import AlignmentPair
from repro.exceptions import DatasetError
from repro.graphs.features import random_orthogonal_matrix
from repro.utils.random import check_random_state, spawn_seeds

SUBSETS = {
    # subset: (n_entities_src, n_entities_tgt, n_triples_src, n_triples_tgt,
    #          feature_agreement)
    "zh_en": (19388, 19572, 70414, 95142, 0.55),
    "ja_en": (19814, 19780, 77214, 93484, 0.65),
    "fr_en": (19661, 19993, 105998, 115722, 0.85),
}

FEATURE_DIM = 768
N_ALIGNED = 15000


def load_dbp15k(
    subset: str = "zh_en", scale: float = 0.08, seed: int = 31
) -> AlignmentPair:
    """Build a bilingual KG pair mimicking one DBP15K subset.

    Parameters
    ----------
    subset:
        ``zh_en``, ``ja_en`` or ``fr_en``; controls sizes and the
        cross-lingual feature agreement.
    scale:
        Fraction of the paper's entity counts.
    """
    if subset not in SUBSETS:
        raise DatasetError(f"subset must be one of {sorted(SUBSETS)}, got {subset!r}")
    if not 0.0 < scale <= 1.0:
        raise DatasetError(f"scale must be in (0, 1], got {scale}")
    n_src_full, n_tgt_full, t_src_full, t_tgt_full, agreement = SUBSETS[subset]
    n_src = max(80, int(round(n_src_full * scale)))
    n_tgt = max(80, int(round(n_tgt_full * scale)))
    n_shared = min(max(40, int(round(N_ALIGNED * scale))), n_src, n_tgt)
    feat_dim = max(48, int(round(FEATURE_DIM * max(scale, 0.15))))
    n_latent = max(16, feat_dim // 4)
    seeds = spawn_seeds(seed, 8)
    rng = check_random_state(seeds[0])

    # ------------------------------------------------------------------
    # latent entity space: shared entities + language-specific tails
    # ------------------------------------------------------------------
    latent_shared = rng.standard_normal((n_shared, n_latent))
    latent_src = np.vstack(
        [latent_shared, rng.standard_normal((n_src - n_shared, n_latent))]
    )
    latent_tgt = np.vstack(
        [latent_shared, rng.standard_normal((n_tgt - n_shared, n_latent))]
    )

    # ------------------------------------------------------------------
    # relational structure from a shared relatedness kernel; relation
    # types come from prototypes shared by both languages (the ontology
    # is language-independent)
    # ------------------------------------------------------------------
    n_relations = 8
    relation_prototypes = rng.standard_normal((n_relations, n_latent))
    kg_src = _language_kg(
        latent_src, int(round(t_src_full * scale)), relation_prototypes,
        seed=seeds[1], name=f"dbp15k-{subset}-src",
    )
    kg_tgt = _language_kg(
        latent_tgt, int(round(t_tgt_full * scale)), relation_prototypes,
        seed=seeds[2], name=f"dbp15k-{subset}-en",
    )

    # ------------------------------------------------------------------
    # language encoders: same latent -> different feature spaces.
    # agreement a in [0,1]: target readout = a * (shared map) +
    # (1-a) * (independent map), so true-pair cosine similarity grows
    # with a (FR-EN cognates high, ZH-EN low).
    # ------------------------------------------------------------------
    readout_shared = rng.standard_normal((n_latent, feat_dim)) / np.sqrt(n_latent)
    readout_indep = rng.standard_normal((n_latent, feat_dim)) / np.sqrt(n_latent)
    rotation = random_orthogonal_matrix(feat_dim, seed=seeds[3])
    feats_src = latent_src @ readout_shared
    readout_tgt = agreement * readout_shared + (1 - agreement) * readout_indep
    feats_tgt = (latent_tgt @ readout_tgt) @ (
        agreement * np.eye(feat_dim) + (1 - agreement) * rotation
    )
    noise = 0.1
    feats_src = feats_src + noise * rng.standard_normal(feats_src.shape)
    feats_tgt = feats_tgt + noise * rng.standard_normal(feats_tgt.shape)

    kg_src.features = feats_src
    kg_tgt.features = feats_tgt

    source = kg_src.to_graph()
    target = kg_tgt.to_graph()
    ground_truth = np.column_stack([np.arange(n_shared), np.arange(n_shared)])
    return AlignmentPair(
        source=source,
        target=target,
        ground_truth=ground_truth,
        name=f"dbp15k-{subset}",
        metadata={
            "subset": subset,
            "scale": scale,
            "feature_agreement": agreement,
            "kg_source": kg_src,
            "kg_target": kg_tgt,
            "n_shared": n_shared,
        },
    )


def _language_kg(
    latent: np.ndarray,
    n_triples: int,
    relation_prototypes: np.ndarray,
    seed,
    name: str,
) -> KnowledgeGraph:
    """Sample triples preferring latently-related entity pairs.

    Candidate pairs are drawn degree-skewed; a pair is kept with
    probability given by a logistic link on the latent inner product,
    so both languages' structures reflect the same underlying
    relatedness while remaining distinct samples.  The relation type
    of a kept pair is the prototype best matching the pair's latent
    interaction ``h ⊙ t`` — a deterministic function of the (shared)
    latent space, so the same entity pair receives the same relation
    in both languages and relation-restricted adjacencies align.
    """
    rng = check_random_state(seed)
    n = latent.shape[0]
    weights = (np.arange(1, n + 1, dtype=np.float64)) ** -0.8
    weights /= weights.sum()
    triples: list[tuple[int, int, int]] = []
    batch = max(4 * n_triples, 1000)
    guard = 0
    while len(triples) < n_triples and guard < 50:
        guard += 1
        heads = rng.choice(n, size=batch, p=weights)
        tails = rng.choice(n, size=batch, p=weights)
        mask = heads != tails
        heads, tails = heads[mask], tails[mask]
        score = np.sum(latent[heads] * latent[tails], axis=1)
        accept_p = 1.0 / (1.0 + np.exp(-score))
        accept = rng.random(heads.shape[0]) < accept_p
        interaction = latent[heads[accept]] * latent[tails[accept]]
        rels = np.argmax(interaction @ relation_prototypes.T, axis=1)
        for h, r, t in zip(heads[accept], rels, tails[accept]):
            triples.append((int(h), int(r), int(t)))
            if len(triples) >= n_triples:
                break
    return KnowledgeGraph(
        n_entities=n, triples=np.asarray(triples, dtype=np.int64), name=name
    )
