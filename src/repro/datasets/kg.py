"""Multi-relational knowledge-graph substrate.

DBP15K graphs are relational: entities connected by typed relations.
SLOTAlign itself only consumes the untyped adjacency, but the KG
baselines (MultiKE-style) exploit relation types, so the substrate
keeps them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.exceptions import DatasetError
from repro.graphs.graph import AttributedGraph
from repro.utils.random import check_random_state


@dataclass
class KnowledgeGraph:
    """Entities + typed triples + entity features.

    Attributes
    ----------
    n_entities:
        Number of entities.
    triples:
        ``t × 3`` array of (head, relation, tail).
    features:
        ``n × d`` entity feature matrix (LaBSE-like name embeddings in
        the paper's setup).
    """

    n_entities: int
    triples: np.ndarray
    features: np.ndarray | None = None
    name: str = "kg"
    n_relations: int = field(init=False)

    def __post_init__(self) -> None:
        triples = np.asarray(self.triples, dtype=np.int64)
        if triples.ndim != 2 or triples.shape[1] != 3:
            raise DatasetError(f"triples must be t x 3, got shape {triples.shape}")
        if triples.size:
            if triples[:, [0, 2]].min() < 0 or triples[:, [0, 2]].max() >= self.n_entities:
                raise DatasetError("triple entity ids out of range")
            if triples[:, 1].min() < 0:
                raise DatasetError("relation ids must be non-negative")
        self.triples = triples
        self.n_relations = int(triples[:, 1].max()) + 1 if triples.size else 0
        if self.features is not None:
            feats = np.asarray(self.features, dtype=np.float64)
            if feats.shape[0] != self.n_entities:
                raise DatasetError("features row count must equal n_entities")
            self.features = feats

    def to_graph(self) -> AttributedGraph:
        """Collapse typed triples into an undirected attributed graph."""
        if self.triples.size:
            heads, tails = self.triples[:, 0], self.triples[:, 2]
            mask = heads != tails
            lo = np.minimum(heads[mask], tails[mask])
            hi = np.maximum(heads[mask], tails[mask])
            edges = np.unique(np.column_stack([lo, hi]), axis=0)
        else:
            edges = np.empty((0, 2), dtype=np.int64)
        graph = AttributedGraph.from_edges(self.n_entities, edges, name=self.name)
        return graph.with_features(self.features)

    def top_relations(self, n: int) -> list[int]:
        """Relation ids ranked by triple count (ties broken by id).

        Deterministic, so the relation-aware structure bases of
        :func:`repro.core.views.build_relation_bases` pick the same
        views on every run.  Returns at most ``n`` ids; relations with
        zero triples are never included.  Pair callers should rank
        once across both graphs with :func:`rank_relations` instead —
        per-side rankings can pick different relation types.
        """
        return rank_relations((self,), n)

    def relation_adjacency(self, relation: int) -> sp.csr_array:
        """Undirected adjacency restricted to one relation type."""
        if not 0 <= relation < max(self.n_relations, 1):
            raise DatasetError(f"relation {relation} out of range")
        mask = self.triples[:, 1] == relation
        heads = self.triples[mask, 0]
        tails = self.triples[mask, 2]
        row = np.concatenate([heads, tails])
        col = np.concatenate([tails, heads])
        data = np.ones(row.shape[0])
        mat = sp.coo_array((data, (row, col)), shape=(self.n_entities,) * 2)
        out = sp.csr_array(mat)
        out.data = np.minimum(out.data, 1.0)
        return out


def rank_relations(kgs, n: int) -> list[int]:
    """Relation ids ranked by combined triple count over ``kgs``.

    The single source of the rank-by-count-tie-by-id ordering used by
    both per-KG ranking (:meth:`KnowledgeGraph.top_relations`) and
    pair-shared ranking (a pair's two graphs share the relation
    vocabulary — the ontology is language-independent — so the views
    must be built from one ranking, not one per side).  Deterministic;
    returns at most ``n`` ids, never ids with zero combined triples.
    """
    if n < 0:
        raise DatasetError(f"n must be non-negative, got {n}")
    kgs = tuple(kgs)
    if not kgs:
        raise DatasetError("rank_relations needs at least one knowledge graph")
    width = max(max(kg.n_relations for kg in kgs), 1)
    counts = np.zeros(width, dtype=np.int64)
    for kg in kgs:
        if kg.triples.size:
            observed, freq = np.unique(kg.triples[:, 1], return_counts=True)
            counts[observed] += freq
    order = np.lexsort((np.arange(width), -counts))
    return [int(r) for r in order[:n] if counts[r] > 0]


def random_knowledge_graph(
    n_entities: int,
    n_relations: int,
    n_triples: int,
    skew: float = 1.0,
    seed=None,
    name: str = "kg",
) -> KnowledgeGraph:
    """Degree-skewed random KG.

    Entities are sampled with a Zipf-like weight (real KGs have hub
    entities); relations uniformly.
    """
    if min(n_entities, n_relations, n_triples) < 1:
        raise DatasetError("n_entities, n_relations, n_triples must be positive")
    rng = check_random_state(seed)
    weights = (np.arange(1, n_entities + 1, dtype=np.float64)) ** (-skew)
    weights /= weights.sum()
    heads = rng.choice(n_entities, size=n_triples, p=weights)
    tails = rng.choice(n_entities, size=n_triples, p=weights)
    relations = rng.integers(0, n_relations, size=n_triples)
    keep = heads != tails
    triples = np.column_stack([heads[keep], relations[keep], tails[keep]])
    return KnowledgeGraph(n_entities=n_entities, triples=triples, name=name)
