"""Alignment-pair protocol (paper Sec. V-A).

``AlignmentPair`` bundles a source graph, a target graph and the
ground-truth correspondences.  ``make_semi_synthetic_pair`` implements
the paper's generation protocol for the four semi-synthetic datasets:

1. treat the original graph as ``Gs``;
2. build ``Gt`` by node permutation (``At = Pᵀ As P``, ``Xt = Pᵀ Xs``);
3. inject structure noise (edge perturbation) and/or one of the three
   feature-inconsistency transformations into ``Gt``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DatasetError
from repro.graphs.graph import AttributedGraph
from repro.graphs.permutation import ground_truth_from_permutation, permute_graph
from repro.graphs.perturbation import (
    compress_features,
    inject_nodes,
    permute_features,
    perturb_edges,
    truncate_features,
)
from repro.utils.random import check_random_state, spawn_seeds

FEATURE_TRANSFORMS = ("permutation", "truncation", "compression")


@dataclass
class AlignmentPair:
    """A source/target graph pair with ground-truth correspondences.

    Attributes
    ----------
    source, target:
        The two attributed graphs.
    ground_truth:
        ``k × 2`` array of (source node, target node) anchor links.
        For partially-overlapping pairs only overlapping nodes appear.
    name:
        Dataset label used in reports.
    """

    source: AttributedGraph
    target: AttributedGraph
    ground_truth: np.ndarray
    name: str = "pair"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        gt = np.asarray(self.ground_truth, dtype=np.int64)
        if gt.ndim != 2 or gt.shape[1] != 2:
            raise DatasetError(f"ground_truth must be k x 2, got shape {gt.shape}")
        if gt.size:
            if gt[:, 0].min() < 0 or gt[:, 0].max() >= self.source.n_nodes:
                raise DatasetError("ground_truth source indices out of range")
            if gt[:, 1].min() < 0 or gt[:, 1].max() >= self.target.n_nodes:
                raise DatasetError("ground_truth target indices out of range")
            if np.unique(gt[:, 0]).size != gt.shape[0]:
                raise DatasetError("duplicate source nodes in ground truth")
        self.ground_truth = gt

    @property
    def n_anchors(self) -> int:
        """Number of ground-truth correspondences."""
        return self.ground_truth.shape[0]


def make_semi_synthetic_pair(
    graph: AttributedGraph,
    edge_noise: float = 0.0,
    feature_transform: str | None = None,
    feature_noise: float = 0.0,
    seed=None,
) -> AlignmentPair:
    """Build a semi-synthetic pair following the paper's protocol.

    Parameters
    ----------
    graph:
        Original graph, used directly as the source.
    edge_noise:
        Fraction of target edges moved to unconnected positions.
    feature_transform:
        One of ``permutation`` / ``truncation`` / ``compression`` or
        ``None``.
    feature_noise:
        Intensity ``p`` of the chosen feature transformation.
    """
    if feature_transform is not None and feature_transform not in FEATURE_TRANSFORMS:
        raise DatasetError(
            f"feature_transform must be one of {FEATURE_TRANSFORMS}, "
            f"got {feature_transform!r}"
        )
    seeds = spawn_seeds(seed, 3)
    target, perm = permute_graph(graph, seed=seeds[0])
    if edge_noise > 0:
        target = perturb_edges(target, edge_noise, seed=seeds[1])
    if feature_transform == "permutation":
        target = permute_features(target, feature_noise, seed=seeds[2])
    elif feature_transform == "truncation":
        target = truncate_features(target, feature_noise, seed=seeds[2])
    elif feature_transform == "compression":
        target = compress_features(target, feature_noise, seed=seeds[2])
    return AlignmentPair(
        source=graph,
        target=target,
        ground_truth=ground_truth_from_permutation(perm),
        name=graph.name,
        metadata={
            "edge_noise": edge_noise,
            "feature_transform": feature_transform,
            "feature_noise": feature_noise,
        },
    )


@dataclass
class PartialPairSpec:
    """How much of a pair overlaps, and how much supervision is given.

    Attributes
    ----------
    overlap:
        Fraction of the base graph's nodes present (and matchable) on
        **both** sides.  ``1.0`` is the classical full-bijective
        setting; anything lower drops the remaining nodes from one
        side each, making their counterparts unmatchable.
    anchor_fraction:
        Fraction of the surviving ground-truth correspondences revealed
        to the solver as semi-supervised anchor seeds.
    drop_balance:
        How the non-overlapping nodes split between the two sides:
        this fraction survives only in the *source* (its target copy is
        dropped); the rest survives only in the target.
    inject_target:
        Extra impostor nodes appended to the target, as a fraction of
        the base node count — unmatchable by construction (they have no
        source counterpart at all), modelling e.g. fake accounts.
    """

    overlap: float = 1.0
    anchor_fraction: float = 0.0
    drop_balance: float = 0.5
    inject_target: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.overlap <= 1.0:
            raise DatasetError(f"overlap must be in (0, 1], got {self.overlap}")
        if not 0.0 <= self.anchor_fraction <= 1.0:
            raise DatasetError(
                f"anchor_fraction must be in [0, 1], got {self.anchor_fraction}"
            )
        if not 0.0 <= self.drop_balance <= 1.0:
            raise DatasetError(
                f"drop_balance must be in [0, 1], got {self.drop_balance}"
            )
        if self.inject_target < 0.0:
            raise DatasetError(
                f"inject_target must be non-negative, got {self.inject_target}"
            )


@dataclass
class PartialAlignmentPair(AlignmentPair):
    """An :class:`AlignmentPair` whose overlap is only partial.

    ``ground_truth`` covers exactly the matchable (overlapping) nodes;
    the boolean masks flag which nodes on each side have a counterpart
    at all, and ``anchors`` is the (possibly empty) subset of the
    ground truth revealed to the solver as semi-supervised seeds.
    """

    anchors: np.ndarray = field(default_factory=lambda: np.empty((0, 2), np.int64))
    source_matchable: np.ndarray | None = None
    target_matchable: np.ndarray | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        anchors = np.asarray(self.anchors, dtype=np.int64).reshape(-1, 2)
        if anchors.size:
            gt_pairs = {tuple(row) for row in self.ground_truth}
            for row in anchors:
                if tuple(row) not in gt_pairs:
                    raise DatasetError(
                        f"anchor {tuple(row)} is not a ground-truth pair"
                    )
        self.anchors = anchors
        if self.source_matchable is None:
            self.source_matchable = np.zeros(self.source.n_nodes, dtype=bool)
            self.source_matchable[self.ground_truth[:, 0]] = True
        if self.target_matchable is None:
            self.target_matchable = np.zeros(self.target.n_nodes, dtype=bool)
            self.target_matchable[self.ground_truth[:, 1]] = True
        self.source_matchable = np.asarray(self.source_matchable, dtype=bool)
        self.target_matchable = np.asarray(self.target_matchable, dtype=bool)
        if self.source_matchable.shape[0] != self.source.n_nodes:
            raise DatasetError("source_matchable length must equal source nodes")
        if self.target_matchable.shape[0] != self.target.n_nodes:
            raise DatasetError("target_matchable length must equal target nodes")

    @property
    def overlap_fraction(self) -> float:
        """Matchable fraction of the source side (the solver's mass)."""
        return float(self.source_matchable.mean())


def make_partial_pair(
    graph: AttributedGraph,
    spec: PartialPairSpec | None = None,
    edge_noise: float = 0.0,
    feature_transform: str | None = None,
    feature_noise: float = 0.0,
    seed=None,
) -> PartialAlignmentPair:
    """Build a partially-overlapping pair from one base graph.

    Protocol: a full bijective pair is generated first (the paper's
    Sec. V-A permutation protocol, via :func:`make_semi_synthetic_pair`);
    then ``1 − overlap`` of the nodes are made unmatchable by dropping
    each from exactly one side (split by ``drop_balance``), impostor
    nodes are optionally injected into the target, and a fraction of
    the surviving ground truth is sampled as anchor seeds.

    At ``overlap == 1.0`` with ``inject_target == 0`` the graphs are
    the *same objects* as the bijective pair's — nothing is re-indexed
    — so a partial solve on such a pair can be pinned bitwise against
    the classical path (see ``tests/test_partial_overlap.py``).
    """
    spec = spec or PartialPairSpec()
    seeds = spawn_seeds(seed, 4)
    base = make_semi_synthetic_pair(
        graph,
        edge_noise=edge_noise,
        feature_transform=feature_transform,
        feature_noise=feature_noise,
        seed=seeds[0],
    )
    n = graph.n_nodes
    perm = base.ground_truth[:, 1]  # source i ↔ target perm[i]
    if spec.overlap == 1.0:
        source, target = base.source, base.target
        ground_truth = base.ground_truth
        source_matchable = np.ones(n, dtype=bool)
        target_matchable = np.ones(n, dtype=bool)
    else:
        n_overlap = max(1, int(round(spec.overlap * n)))
        rng = check_random_state(seeds[1])
        shuffled = rng.permutation(n)
        overlap_nodes = shuffled[:n_overlap]
        rest = shuffled[n_overlap:]
        n_source_only = int(round(spec.drop_balance * rest.shape[0]))
        source_only = rest[:n_source_only]  # their target copies vanish
        target_only = rest[n_source_only:]  # their source copies vanish
        keep_source = np.sort(np.concatenate([overlap_nodes, source_only]))
        keep_target = np.sort(
            np.concatenate([perm[overlap_nodes], perm[target_only]])
        )
        source = base.source.subgraph(keep_source)
        target = base.target.subgraph(keep_target)
        new_source_index = np.searchsorted(keep_source, overlap_nodes)
        new_target_index = np.searchsorted(keep_target, perm[overlap_nodes])
        ground_truth = np.column_stack([new_source_index, new_target_index])
        order = np.argsort(ground_truth[:, 0])
        ground_truth = ground_truth[order]
        source_matchable = np.zeros(keep_source.shape[0], dtype=bool)
        source_matchable[ground_truth[:, 0]] = True
        target_matchable = np.zeros(keep_target.shape[0], dtype=bool)
        target_matchable[ground_truth[:, 1]] = True
    if spec.inject_target > 0.0:
        n_inject = int(round(spec.inject_target * n))
        if n_inject:
            target = inject_nodes(target, n_inject, seed=seeds[3])
            target_matchable = np.concatenate(
                [target_matchable, np.zeros(n_inject, dtype=bool)]
            )
    n_anchor = int(round(spec.anchor_fraction * ground_truth.shape[0]))
    if n_anchor:
        rng = check_random_state(seeds[2])
        picked = rng.choice(ground_truth.shape[0], size=n_anchor, replace=False)
        anchors = ground_truth[np.sort(picked)]
    else:
        anchors = np.empty((0, 2), dtype=np.int64)
    return PartialAlignmentPair(
        source=source,
        target=target,
        ground_truth=ground_truth,
        name=f"{graph.name}-partial",
        metadata={
            **base.metadata,
            "overlap": spec.overlap,
            "anchor_fraction": spec.anchor_fraction,
            "drop_balance": spec.drop_balance,
            "inject_target": spec.inject_target,
        },
        anchors=anchors,
        source_matchable=source_matchable,
        target_matchable=target_matchable,
    )


def truncate_feature_columns(
    graph: AttributedGraph, n_columns: int
) -> AttributedGraph:
    """Keep only the first ``n_columns`` feature columns.

    The paper uses "the first 100 feature columns" of Cora/Citeseer/
    Facebook in the robustness studies so methods cannot align on
    features alone.
    """
    if graph.features is None:
        raise DatasetError("graph has no features")
    if n_columns < 1:
        raise DatasetError(f"n_columns must be >= 1, got {n_columns}")
    n_columns = min(n_columns, graph.n_features)
    out = graph.with_features(graph.features[:, :n_columns])
    out.node_labels = None if graph.node_labels is None else graph.node_labels.copy()
    return out
