"""Alignment-pair protocol (paper Sec. V-A).

``AlignmentPair`` bundles a source graph, a target graph and the
ground-truth correspondences.  ``make_semi_synthetic_pair`` implements
the paper's generation protocol for the four semi-synthetic datasets:

1. treat the original graph as ``Gs``;
2. build ``Gt`` by node permutation (``At = Pᵀ As P``, ``Xt = Pᵀ Xs``);
3. inject structure noise (edge perturbation) and/or one of the three
   feature-inconsistency transformations into ``Gt``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DatasetError
from repro.graphs.graph import AttributedGraph
from repro.graphs.permutation import ground_truth_from_permutation, permute_graph
from repro.graphs.perturbation import (
    compress_features,
    permute_features,
    perturb_edges,
    truncate_features,
)
from repro.utils.random import spawn_seeds

FEATURE_TRANSFORMS = ("permutation", "truncation", "compression")


@dataclass
class AlignmentPair:
    """A source/target graph pair with ground-truth correspondences.

    Attributes
    ----------
    source, target:
        The two attributed graphs.
    ground_truth:
        ``k × 2`` array of (source node, target node) anchor links.
        For partially-overlapping pairs only overlapping nodes appear.
    name:
        Dataset label used in reports.
    """

    source: AttributedGraph
    target: AttributedGraph
    ground_truth: np.ndarray
    name: str = "pair"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        gt = np.asarray(self.ground_truth, dtype=np.int64)
        if gt.ndim != 2 or gt.shape[1] != 2:
            raise DatasetError(f"ground_truth must be k x 2, got shape {gt.shape}")
        if gt.size:
            if gt[:, 0].min() < 0 or gt[:, 0].max() >= self.source.n_nodes:
                raise DatasetError("ground_truth source indices out of range")
            if gt[:, 1].min() < 0 or gt[:, 1].max() >= self.target.n_nodes:
                raise DatasetError("ground_truth target indices out of range")
            if np.unique(gt[:, 0]).size != gt.shape[0]:
                raise DatasetError("duplicate source nodes in ground truth")
        self.ground_truth = gt

    @property
    def n_anchors(self) -> int:
        """Number of ground-truth correspondences."""
        return self.ground_truth.shape[0]


def make_semi_synthetic_pair(
    graph: AttributedGraph,
    edge_noise: float = 0.0,
    feature_transform: str | None = None,
    feature_noise: float = 0.0,
    seed=None,
) -> AlignmentPair:
    """Build a semi-synthetic pair following the paper's protocol.

    Parameters
    ----------
    graph:
        Original graph, used directly as the source.
    edge_noise:
        Fraction of target edges moved to unconnected positions.
    feature_transform:
        One of ``permutation`` / ``truncation`` / ``compression`` or
        ``None``.
    feature_noise:
        Intensity ``p`` of the chosen feature transformation.
    """
    if feature_transform is not None and feature_transform not in FEATURE_TRANSFORMS:
        raise DatasetError(
            f"feature_transform must be one of {FEATURE_TRANSFORMS}, "
            f"got {feature_transform!r}"
        )
    seeds = spawn_seeds(seed, 3)
    target, perm = permute_graph(graph, seed=seeds[0])
    if edge_noise > 0:
        target = perturb_edges(target, edge_noise, seed=seeds[1])
    if feature_transform == "permutation":
        target = permute_features(target, feature_noise, seed=seeds[2])
    elif feature_transform == "truncation":
        target = truncate_features(target, feature_noise, seed=seeds[2])
    elif feature_transform == "compression":
        target = compress_features(target, feature_noise, seed=seeds[2])
    return AlignmentPair(
        source=graph,
        target=target,
        ground_truth=ground_truth_from_permutation(perm),
        name=graph.name,
        metadata={
            "edge_noise": edge_noise,
            "feature_transform": feature_transform,
            "feature_noise": feature_noise,
        },
    )


def truncate_feature_columns(
    graph: AttributedGraph, n_columns: int
) -> AttributedGraph:
    """Keep only the first ``n_columns`` feature columns.

    The paper uses "the first 100 feature columns" of Cora/Citeseer/
    Facebook in the robustness studies so methods cannot align on
    features alone.
    """
    if graph.features is None:
        raise DatasetError("graph has no features")
    if n_columns < 1:
        raise DatasetError(f"n_columns must be >= 1, got {n_columns}")
    n_columns = min(n_columns, graph.n_features)
    out = graph.with_features(graph.features[:, :n_columns])
    out.node_labels = None if graph.node_labels is None else graph.node_labels.copy()
    return out
