"""Facebook ego-network stand-in (Leskovec & McAuley 2012).

The paper's Facebook graph has 4,039 nodes, 88,234 edges and 1,476
binary profile features.  Character: a dense social graph assembled
from overlapping ego-circles with heavy clustering, plus sparse 0/1
profile indicators correlated with circle membership.  The stand-in
glues power-law-cluster communities with random cross links and emits
circle-correlated bag-of-words profiles.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DatasetError
from repro.graphs.features import community_bag_of_words
from repro.graphs.generators import powerlaw_cluster_graph
from repro.graphs.graph import AttributedGraph
from repro.utils.random import check_random_state, spawn_seeds


def load_facebook(scale: float = 1.0, seed: int = 17) -> AttributedGraph:
    """Facebook stand-in: 4,039 nodes, ~44k-88k edges, 1,476 binary attrs."""
    if not 0.0 < scale <= 1.0:
        raise DatasetError(f"scale must be in (0, 1], got {scale}")
    n = max(80, int(round(4039 * scale)))
    # profile vocabulary stays at full size (the robustness protocol
    # truncates to the first 100 of 1,476 columns)
    d = 1476
    n_circles = max(4, int(round(10 * np.sqrt(scale))))
    seeds = spawn_seeds(seed, n_circles + 2)
    rng = check_random_state(seeds[-1])

    sizes = [n // n_circles] * n_circles
    sizes[0] += n - sum(sizes)
    avg_degree = 2 * 44117 / 4039
    attach = max(2, int(round(avg_degree / 2)))

    edges: list[tuple[int, int]] = []
    labels = np.empty(n, dtype=np.int64)
    offset = 0
    for circle, size in enumerate(sizes):
        m = min(attach, max(1, size - 1))
        ego = powerlaw_cluster_graph(size, m, 0.5, seed=seeds[circle])
        edges.extend(
            (int(u) + offset, int(v) + offset) for u, v in ego.edge_list()
        )
        labels[offset : offset + size] = circle
        offset += size
    # sparse random bridges between circles (social weak ties)
    n_bridges = int(0.05 * len(edges))
    for _ in range(n_bridges):
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u != v:
            edges.append((u, v))

    graph = AttributedGraph.from_edges(n, edges, name="facebook")
    feats = community_bag_of_words(
        labels, d, words_per_node=25, topic_concentration=0.7, seed=seeds[-2]
    )
    feats = feats[:, rng.permutation(feats.shape[1])]
    graph = graph.with_features(feats)
    graph.node_labels = labels
    return graph
