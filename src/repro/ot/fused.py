"""Fused Gromov-Wasserstein distance (Titouan et al., ICML 2019).

The FusedGW baseline combines a cross-graph feature cost ``M`` with the
intra-graph GW term:

    min_π  (1-α) <M, π> + α Σ |Ds(i,j) − Dt(k,l)|² π_ik π_jl

Because ``M`` compares features *across* graphs, FusedGW inherits the
feature-inconsistency fragility the paper demonstrates (Fig. 7): when
the two feature spaces are unaligned, ``M`` is meaningless noise.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.ot.gromov import (
    GWResult,
    _ensure_ot_precision,
    _proximal_project_f32,
    gw_constant_term,
    gw_objective,
)
from repro.ot.sinkhorn import sinkhorn_log_kernel_fast
from repro.utils.validation import check_probability_vector, check_square


def feature_cost_matrix(
    source_features: np.ndarray, target_features: np.ndarray, metric: str = "sqeuclidean"
) -> np.ndarray:
    """Cross-graph feature cost ``M[i, k] = d(xs_i, xt_k)``.

    Raises :class:`ShapeError` when the feature dimensionalities differ
    — precisely the situation feature truncation/compression creates,
    in which case FusedGW cannot even form its cost matrix and callers
    must fall back to a padded/rescaled comparison.
    """
    xs = np.asarray(source_features, dtype=np.float64)
    xt = np.asarray(target_features, dtype=np.float64)
    if xs.ndim != 2 or xt.ndim != 2:
        raise ShapeError("features must be 2-D matrices")
    if xs.shape[1] != xt.shape[1]:
        raise ShapeError(
            f"cross-graph feature cost needs equal dims, got {xs.shape[1]} vs {xt.shape[1]}"
        )
    if metric == "sqeuclidean":
        sq_s = np.sum(xs**2, axis=1)[:, None]
        sq_t = np.sum(xt**2, axis=1)[None, :]
        cost = sq_s + sq_t - 2.0 * xs @ xt.T
        return np.maximum(cost, 0.0)
    if metric == "cosine":
        norm_s = np.linalg.norm(xs, axis=1, keepdims=True)
        norm_t = np.linalg.norm(xt, axis=1, keepdims=True)
        norm_s = np.where(norm_s < 1e-12, 1.0, norm_s)
        norm_t = np.where(norm_t < 1e-12, 1.0, norm_t)
        return 1.0 - (xs / norm_s) @ (xt / norm_t).T
    raise ValueError(f"unknown metric {metric!r}")


def fused_gromov_wasserstein(
    feature_cost: np.ndarray,
    d_source: np.ndarray,
    d_target: np.ndarray,
    mu: np.ndarray | None = None,
    nu: np.ndarray | None = None,
    alpha: float = 0.5,
    step_size: float = 0.01,
    max_iter: int = 200,
    inner_iter: int = 50,
    tol: float = 1e-7,
    init: np.ndarray | None = None,
    precision: str = "float64",
) -> GWResult:
    """KL-proximal solver for the fused GW objective.

    Parameters
    ----------
    feature_cost:
        ``n × m`` cross-graph feature cost ``M``.
    alpha:
        Structure/feature trade-off; ``alpha=1`` recovers pure GW,
        ``alpha=0`` a pure (linear) Wasserstein problem.
    precision:
        ``"float32"`` (opt-in) runs the per-iteration gradient and
        Sinkhorn projection in float32 through a preallocated
        workspace; objective history stays float64 (see
        :func:`repro.ot.gromov.proximal_gromov_wasserstein`).
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    if step_size <= 0:
        raise ValueError(f"step_size must be positive, got {step_size}")
    use_f32 = _ensure_ot_precision(precision)
    feature_cost = np.asarray(feature_cost, dtype=np.float64)
    d_source = np.asarray(check_square(d_source, "d_source"), dtype=np.float64)
    d_target = np.asarray(check_square(d_target, "d_target"), dtype=np.float64)
    n, m = d_source.shape[0], d_target.shape[0]
    if feature_cost.shape != (n, m):
        raise ShapeError(
            f"feature_cost must have shape {(n, m)}, got {feature_cost.shape}"
        )
    mu = np.full(n, 1.0 / n) if mu is None else check_probability_vector(mu, n, "mu")
    nu = np.full(m, 1.0 / m) if nu is None else check_probability_vector(nu, m, "nu")
    plan = np.outer(mu, nu) if init is None else np.asarray(init, dtype=np.float64)
    plan = plan / plan.sum()
    constant = gw_constant_term(d_source, d_target, mu, nu)
    workspace = ds32 = dt32 = const32 = cost32 = None
    if use_f32:
        # imported lazily: repro.ot.workspace is only needed on this path
        from repro.ot.workspace import Workspace

        workspace = Workspace(1, n, m, np.float32)
        workspace.set_marginals(mu, nu)
        ds32 = np.ascontiguousarray(d_source, np.float32)
        dt32 = np.ascontiguousarray(d_target, np.float32)
        const32 = constant.astype(np.float32)
        cost32 = feature_cost.astype(np.float32)
        plan = plan.astype(np.float32)
    history: list[float] = []
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        if use_f32:
            gw_grad = 2.0 * (const32 - 2.0 * ds32 @ plan @ dt32.T)
            grad = np.float32(1.0 - alpha) * cost32 + np.float32(alpha) * gw_grad
            new_plan = _proximal_project_f32(
                workspace, plan, grad, step_size, inner_iter
            ).copy()
        else:
            gw_grad = 2.0 * (constant - 2.0 * d_source @ plan @ d_target.T)
            grad = (1.0 - alpha) * feature_cost + alpha * gw_grad
            # KL-proximal step with coefficient eta = step_size
            log_kernel = np.log(np.maximum(plan, 1e-300)) - grad / step_size
            new_plan = sinkhorn_log_kernel_fast(
                log_kernel, mu, nu, max_iter=inner_iter, tol=1e-9
            ).plan
        delta = float(np.abs(new_plan - plan).sum())
        plan = new_plan
        plan64 = plan.astype(np.float64) if use_f32 else plan
        value = (1.0 - alpha) * float(np.sum(feature_cost * plan64)) + alpha * (
            gw_objective(d_source, d_target, plan64, constant=constant)
        )
        history.append(value)
        if delta < tol:
            converged = True
            break
    plan = plan.astype(np.float64) if use_f32 else plan
    distance = history[-1] if history else 0.0
    return GWResult(plan, distance, iteration, converged, history)
