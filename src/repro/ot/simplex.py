"""Euclidean projection onto the probability simplex.

Implements the O(d log d) sort-based algorithm of Duchi, Shalev-Shwartz,
Singer and Chandra, "Efficient projections onto the l1-ball for learning
in high dimensions" (ICML 2008) — the projection the paper cites ([11])
for the α-update (Eq. 11).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError


def project_simplex(v: np.ndarray, radius: float = 1.0) -> np.ndarray:
    """Project ``v`` onto ``{x : x >= 0, sum(x) = radius}``.

    Parameters
    ----------
    v:
        1-D array to project.
    radius:
        Simplex scale (1 for a probability vector).

    Returns
    -------
    The unique Euclidean projection of ``v``.
    """
    vec = np.asarray(v, dtype=np.float64)
    if vec.ndim != 1:
        raise ShapeError(f"v must be 1-D, got shape {vec.shape}")
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    n = vec.shape[0]
    if n == 0:
        raise ShapeError("cannot project an empty vector")
    # sort descending, find the pivot rho = max{j : u_j - (cssv_j)/j > 0}
    u = np.sort(vec)[::-1]
    cssv = np.cumsum(u) - radius
    ind = np.arange(1, n + 1)
    cond = u - cssv / ind > 0
    rho = int(ind[cond][-1])
    theta = cssv[rho - 1] / rho
    return np.maximum(vec - theta, 0.0)


def project_concatenated_simplices(
    alpha: np.ndarray, block_size: int, radius: float = 1.0
) -> np.ndarray:
    """Project onto Θ = Δ_K × Δ_K (Eq. 11's constraint set).

    The α-update in SLOTAlign treats ``α = [β_s, β_t]`` as one vector
    constrained block-wise to two simplices; by separability the
    projection factorises into two independent simplex projections.
    """
    vec = np.asarray(alpha, dtype=np.float64)
    if vec.ndim != 1 or vec.shape[0] % block_size != 0:
        raise ShapeError(
            f"alpha of shape {vec.shape} does not split into blocks of {block_size}"
        )
    blocks = [
        project_simplex(vec[i : i + block_size], radius)
        for i in range(0, vec.shape[0], block_size)
    ]
    return np.concatenate(blocks)


def is_in_simplex(v: np.ndarray, radius: float = 1.0, atol: float = 1e-8) -> bool:
    """Whether ``v`` lies on the simplex up to tolerance ``atol``."""
    vec = np.asarray(v, dtype=np.float64)
    return bool(
        vec.ndim == 1
        and np.all(vec >= -atol)
        and np.isclose(vec.sum(), radius, atol=atol)
    )
