"""Exact (unregularised) optimal transport via linear programming.

``emd`` solves the Kantorovich LP with scipy's HiGHS backend.  It is
used by the Wasserstein-discriminator baseline (WAlign) for its 1-D
critic distances and by tests as a ground truth for Sinkhorn with
ε → 0.
"""

from __future__ import annotations

import numpy as np
import scipy.optimize
import scipy.sparse as sp

from repro.exceptions import ConvergenceError, ShapeError
from repro.utils.validation import check_probability_vector


def emd(cost: np.ndarray, mu: np.ndarray, nu: np.ndarray) -> np.ndarray:
    """Solve ``min <C, π>`` over ``Π(μ, ν)`` exactly.

    Returns the optimal plan.  Suitable for small problems (the LP has
    ``n·m`` variables); larger problems should use Sinkhorn.
    """
    cost = np.asarray(cost, dtype=np.float64)
    if cost.ndim != 2:
        raise ShapeError(f"cost must be 2-D, got shape {cost.shape}")
    n, m = cost.shape
    mu = check_probability_vector(mu, n, "mu")
    nu = check_probability_vector(nu, m, "nu")

    # equality constraints: row sums = mu, column sums = nu.  One row
    # constraint is redundant; dropping it improves conditioning.
    row_blocks = []
    for i in range(n):
        row = sp.coo_array(
            (np.ones(m), (np.zeros(m, dtype=int), np.arange(i * m, (i + 1) * m))),
            shape=(1, n * m),
        )
        row_blocks.append(row)
    col_entries_rows = []
    col_entries_cols = []
    for j in range(m):
        col_entries_rows.extend([j] * n)
        col_entries_cols.extend(range(j, n * m, m))
    col_block = sp.coo_array(
        (np.ones(n * m), (col_entries_rows, col_entries_cols)), shape=(m, n * m)
    )
    a_eq = sp.vstack(row_blocks[:-1] + [col_block]).tocsr()
    b_eq = np.concatenate([mu[:-1], nu])

    result = scipy.optimize.linprog(
        c=cost.ravel(),
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=(0, None),
        method="highs",
    )
    if not result.success:
        raise ConvergenceError(f"EMD linear program failed: {result.message}")
    return result.x.reshape(n, m)


def emd_cost(cost: np.ndarray, mu: np.ndarray, nu: np.ndarray) -> float:
    """Optimal transport cost (Wasserstein objective value)."""
    plan = emd(cost, mu, nu)
    return float(np.sum(plan * np.asarray(cost, dtype=np.float64)))


def wasserstein_1d(x: np.ndarray, y: np.ndarray, p: int = 1) -> float:
    """p-Wasserstein distance between two 1-D empirical distributions.

    Uses the closed form: sort both samples and average the pointwise
    distance between quantiles (samples are reweighted to a common
    uniform grid when sizes differ).
    """
    xs = np.sort(np.asarray(x, dtype=np.float64).ravel())
    ys = np.sort(np.asarray(y, dtype=np.float64).ravel())
    if xs.size == 0 or ys.size == 0:
        raise ShapeError("wasserstein_1d requires non-empty samples")
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    grid = np.linspace(0.0, 1.0, max(xs.size, ys.size), endpoint=False) + 0.5 / max(
        xs.size, ys.size
    )
    xq = np.quantile(xs, grid)
    yq = np.quantile(ys, grid)
    return float(np.mean(np.abs(xq - yq) ** p) ** (1.0 / p))
