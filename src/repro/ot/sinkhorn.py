"""Entropic optimal transport via the Sinkhorn algorithm (Cuturi 2013).

Two implementations are provided:

* :func:`sinkhorn` — the classical kernel-domain iteration; fast but can
  underflow for small regularisation;
* :func:`sinkhorn_log` — log-domain (logsumexp) iteration, stable for
  any ε > 0; this is the one SLOTAlign's π-update uses.

Both project a positive kernel onto the transport polytope
``Π(μ, ν) = {π >= 0 : π 1 = μ, πᵀ 1 = ν}``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConvergenceError, ShapeError
from repro.utils.validation import check_probability_vector


@dataclass
class SinkhornResult:
    """Output of a Sinkhorn run.

    Attributes
    ----------
    plan:
        The transport plan π.
    n_iterations:
        Iterations actually performed.
    marginal_error:
        Final L1 violation of the row marginal.
    converged:
        Whether the tolerance was met before the iteration cap.
    """

    plan: np.ndarray
    n_iterations: int
    marginal_error: float
    converged: bool


def _validate_inputs(cost, mu, nu):
    cost = np.asarray(cost, dtype=np.float64)
    if cost.ndim != 2:
        raise ShapeError(f"cost must be 2-D, got shape {cost.shape}")
    mu = check_probability_vector(mu, cost.shape[0], "mu")
    nu = check_probability_vector(nu, cost.shape[1], "nu")
    return cost, mu, nu


def sinkhorn(
    cost: np.ndarray,
    mu: np.ndarray,
    nu: np.ndarray,
    epsilon: float = 0.01,
    max_iter: int = 1000,
    tol: float = 1e-9,
) -> SinkhornResult:
    """Kernel-domain Sinkhorn for ``min <C, π> + ε H(π)``.

    Raises :class:`ConvergenceError` when the kernel underflows to an
    all-zero row (use :func:`sinkhorn_log` in that regime).
    """
    cost, mu, nu = _validate_inputs(cost, mu, nu)
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    kernel = np.exp(-cost / epsilon)
    return sinkhorn_projection(kernel, mu, nu, max_iter=max_iter, tol=tol)


def sinkhorn_projection(
    kernel: np.ndarray,
    mu: np.ndarray,
    nu: np.ndarray,
    max_iter: int = 1000,
    tol: float = 1e-9,
) -> SinkhornResult:
    """Project a positive ``kernel`` onto ``Π(μ, ν)`` by scaling.

    This is the generalised (KL) projection used by the proximal-point
    π-update: the KL-prox of a linearised objective is the Sinkhorn
    projection of ``π_k ⊙ exp(-η ∇F)``.
    """
    kernel = np.asarray(kernel, dtype=np.float64)
    mu = check_probability_vector(mu, kernel.shape[0], "mu")
    nu = check_probability_vector(nu, kernel.shape[1], "nu")
    if np.any(kernel < 0):
        raise ValueError("kernel must be non-negative")
    if not np.all(np.isfinite(kernel)):
        raise ConvergenceError("Sinkhorn kernel contains non-finite entries")
    u = np.ones_like(mu)
    v = np.ones_like(nu)
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        kv = kernel @ v
        if np.any(kv <= 0):
            raise ConvergenceError(
                "Sinkhorn kernel underflowed (zero row); use sinkhorn_log"
            )
        u = mu / kv
        ktu = kernel.T @ u
        if np.any(ktu <= 0):
            raise ConvergenceError(
                "Sinkhorn kernel underflowed (zero column); use sinkhorn_log"
            )
        v = nu / ktu
        if iteration % 5 == 0 or iteration == max_iter:
            row_marginal = u * (kernel @ v)
            err = float(np.abs(row_marginal - mu).sum())
            if err < tol:
                converged = True
                break
    plan = u[:, None] * kernel * v[None, :]
    err = float(np.abs(plan.sum(axis=1) - mu).sum())
    return SinkhornResult(plan, iteration, err, converged or err < tol)


def sinkhorn_log(
    cost: np.ndarray,
    mu: np.ndarray,
    nu: np.ndarray,
    epsilon: float = 0.01,
    max_iter: int = 1000,
    tol: float = 1e-9,
    log_kernel: np.ndarray | None = None,
) -> SinkhornResult:
    """Log-domain Sinkhorn; numerically stable for small ``epsilon``.

    Parameters
    ----------
    cost, mu, nu, epsilon, max_iter, tol:
        As in :func:`sinkhorn`.
    log_kernel:
        When given, ``cost``/``epsilon`` are ignored and the projection
        is applied to ``exp(log_kernel)`` directly — the entry point
        used by the KL-proximal GW solvers.
    """
    if log_kernel is None:
        cost, mu, nu = _validate_inputs(cost, mu, nu)
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        log_k = -cost / epsilon
    else:
        log_k = np.asarray(log_kernel, dtype=np.float64)
        mu = check_probability_vector(mu, log_k.shape[0], "mu")
        nu = check_probability_vector(nu, log_k.shape[1], "nu")
    if not np.all(np.isfinite(log_k)):
        raise ConvergenceError("log kernel contains non-finite entries")
    log_mu = np.log(np.maximum(mu, 1e-300))
    log_nu = np.log(np.maximum(nu, 1e-300))
    f = np.zeros_like(log_mu)
    g = np.zeros_like(log_nu)
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        f = log_mu - _logsumexp_rows(log_k + g[None, :])
        g = log_nu - _logsumexp_rows((log_k + f[:, None]).T)
        if iteration % 5 == 0 or iteration == max_iter:
            log_plan = log_k + f[:, None] + g[None, :]
            err = float(np.abs(np.exp(_logsumexp_rows(log_plan)) - mu).sum())
            if err < tol:
                converged = True
                break
    plan = np.exp(log_k + f[:, None] + g[None, :])
    err = float(np.abs(plan.sum(axis=1) - mu).sum())
    return SinkhornResult(plan, iteration, err, converged or err < tol)


_SUBNORMAL_FLUSH = 3e-308
"""Flush-to-zero threshold just above the smallest normal float64.

Sub-normal kernel/plan entries carry no mass the projection can see
(their contribution to any marginal is far below one ulp of the
accumulated sum) but they poison every subsequent BLAS call with the
10-100x hardware penalty for denormal arithmetic — on the sharp
KL-proximal kernels SLOTAlign produces, that penalty dominated the
whole solver.  Flushing them to exact zero keeps the scaling iteration
on the fast path.
"""


def sinkhorn_log_kernel_fast(
    log_kernel: np.ndarray,
    mu: np.ndarray,
    nu: np.ndarray,
    max_iter: int = 50,
    tol: float = 0.0,
) -> SinkhornResult:  #: pinned
    """Fast projection of ``exp(log_kernel)`` onto ``Π(μ, ν)``.

    .. note:: **bitwise-pinned** — the serial/batched/coalesced solver
       equivalence and the committed benchmark baselines depend on this
       exact instruction sequence; ``repro lint`` fails on any semantic
       edit.  Register a divergent variant under a new solver backend
       instead (see ``repro.analysis.pins``).

    Row-shifts the log kernel by its row maxima (a rank-one factor that
    the scaling vector ``u`` absorbs exactly), exponentiates **once**,
    then runs kernel-domain scaling iterations — mathematically the same
    fixed point as :func:`sinkhorn_log` at a fraction of the cost, and
    immune to overflow because the shifted kernel lies in (0, 1].

    Entries more than ~700 nats below their row maximum underflow to
    exactly zero; they carry negligible mass in the projection, and a
    small clamp keeps the column scalings finite regardless.  Entries
    in the sub-normal range are flushed to zero up front (see
    ``_SUBNORMAL_FLUSH``); the iteration itself reuses its matvec
    buffers and recycles the convergence-check product into the next
    ``u``-update, so the periodic tolerance check costs nothing.
    """
    log_k = np.asarray(log_kernel, dtype=np.float64)
    mu = check_probability_vector(mu, log_k.shape[0], "mu")
    nu = check_probability_vector(nu, log_k.shape[1], "nu")
    if not np.all(np.isfinite(log_k)):
        raise ConvergenceError("log kernel contains non-finite entries")
    row_max = log_k.max(axis=1, keepdims=True)
    kernel = np.exp(log_k - row_max)
    kernel[kernel < _SUBNORMAL_FLUSH] = 0.0
    kernel_t = kernel.T
    tiny = 1e-300
    u = np.ones_like(mu)
    v = np.ones_like(nu)
    kv = np.empty_like(mu)
    ktu = np.empty_like(nu)
    have_kv = False
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        if not have_kv:
            np.matmul(kernel, v, out=kv)
        have_kv = False
        np.maximum(kv, tiny, out=kv)
        np.divide(mu, kv, out=u)
        np.matmul(kernel_t, u, out=ktu)
        np.maximum(ktu, tiny, out=ktu)
        np.divide(nu, ktu, out=v)
        if tol > 0 and iteration % 10 == 0:
            np.matmul(kernel, v, out=kv)
            have_kv = True  # reuse the check product in the next u-update
            err = float(np.abs(u * kv - mu).sum())
            if err < tol:
                converged = True
                break
    # close with a u-update so the row marginals are satisfied exactly
    if not have_kv:
        np.matmul(kernel, v, out=kv)
    u = mu / np.maximum(kv, tiny)
    plan = u[:, None] * kernel * v[None, :]
    plan[plan < _SUBNORMAL_FLUSH] = 0.0
    err = float(np.abs(plan.sum(axis=1) - mu).sum())
    return SinkhornResult(plan, iteration, err, converged or (tol > 0 and err < tol))


def sinkhorn_log_kernel_fast_batched(
    log_kernels: np.ndarray,
    mu: np.ndarray,
    nu: np.ndarray,
    max_iter: int = 50,
    tol: float = 0.0,
) -> list[SinkhornResult]:  #: pinned
    """Batched :func:`sinkhorn_log_kernel_fast` over a kernel stack.

    Projects every slice of the ``(R, n, m)`` stack onto ``Π(μ, ν)``
    simultaneously: the per-iteration matvecs become batched matmuls,
    amortising R dispatches into one.  **Every slice's result is
    bit-for-bit what the serial function returns for that kernel**: on
    this library's supported platforms batched ``matmul`` (including
    the transposed-view path) calls the same per-slice GEMM kernels as
    the 2-D code, elementwise ops are order-independent, and slices
    whose marginal error converges early are compressed out of the
    batch without perturbing the survivors (a sliced copy is exact).
    That contract is what lets the ``batched-restart`` solver backend
    replace the serial restart loop without changing a single iterate;
    ``tests/test_batched_restart.py`` pins it.
    """
    log_k = np.asarray(log_kernels, dtype=np.float64)
    if log_k.ndim != 3:
        raise ShapeError(
            f"log_kernels must be a (R, n, m) stack, got shape {log_k.shape}"
        )
    n_runs = log_k.shape[0]
    mu = check_probability_vector(mu, log_k.shape[1], "mu")
    nu = check_probability_vector(nu, log_k.shape[2], "nu")
    if n_runs == 0:
        return []
    if not np.all(np.isfinite(log_k)):
        raise ConvergenceError("log kernel contains non-finite entries")
    row_max = log_k.max(axis=2, keepdims=True)
    kernel = np.exp(log_k - row_max)
    kernel[kernel < _SUBNORMAL_FLUSH] = 0.0
    tiny = 1e-300
    u = np.ones((n_runs, mu.shape[0]))
    v = np.ones((n_runs, nu.shape[0]))
    results: dict[int, SinkhornResult] = {}
    active = np.arange(n_runs)
    kv = None
    have_kv = False
    iteration = 0

    def finalize(rows: np.ndarray, at_iteration: int, converged: bool) -> None:
        # closing u-update (exact row marginals), as in the serial code
        u_close = mu / np.maximum(kv[rows], tiny)
        plans = u_close[:, :, None] * kernel[rows] * v[rows][:, None, :]
        plans[plans < _SUBNORMAL_FLUSH] = 0.0
        errs = np.abs(plans.sum(axis=2) - mu).sum(axis=1)
        for offset, run in enumerate(active[rows]):
            err = float(errs[offset])
            results[int(run)] = SinkhornResult(
                plans[offset],
                at_iteration,
                err,
                converged or (tol > 0 and err < tol),
            )

    for iteration in range(1, max_iter + 1):
        if not have_kv:
            kv = np.matmul(kernel, v[:, :, None])[:, :, 0]
        have_kv = False
        kv = np.maximum(kv, tiny)
        u = mu / kv
        ktu = np.matmul(kernel.swapaxes(1, 2), u[:, :, None])[:, :, 0]
        ktu = np.maximum(ktu, tiny)
        v = nu / ktu
        if tol > 0 and iteration % 10 == 0:
            kv = np.matmul(kernel, v[:, :, None])[:, :, 0]
            have_kv = True  # reuse the check product in the next u-update
            errs = np.abs(u * kv - mu).sum(axis=1)
            done = errs < tol
            if np.any(done):
                finalize(np.flatnonzero(done), iteration, converged=True)
                keep = np.flatnonzero(~done)
                if keep.size == 0:
                    return [results[run] for run in range(n_runs)]
                kernel = kernel[keep]
                u, v, kv = u[keep], v[keep], kv[keep]
                active = active[keep]
    if not have_kv:
        kv = np.matmul(kernel, v[:, :, None])[:, :, 0]
    finalize(np.arange(active.size), iteration, converged=False)
    return [results[run] for run in range(n_runs)]


_SUBNORMAL_FLUSH32 = 3e-38
"""Float32 analogue of ``_SUBNORMAL_FLUSH`` (smallest normal ≈1.2e-38)."""

F32_SINKHORN_TOL = 1e-5
"""Marginal-L1 tolerance floor for float32 Sinkhorn loops.

One float32 rounding per row of a stochastic matrix leaves marginal
violations of order ``eps32 ≈ 1e-7`` per row even at the fixed point,
so float64-grade tolerances (1e-9) can never be met and would silently
burn the full inner budget; 1e-5 sits comfortably above the rounding
noise floor while staying tight against plan entries of order 1e-4.
"""


def _flush_constants(dtype: np.dtype) -> tuple[float, float]:
    """``(subnormal flush threshold, tiny clamp)`` for a working dtype."""
    if np.dtype(dtype) == np.float32:
        return _SUBNORMAL_FLUSH32, 1e-37
    return _SUBNORMAL_FLUSH, 1e-300


def sinkhorn_log_kernel_fast_workspace(
    workspace,
    n_slices: int,
    max_iter: int = 50,
    tol: float = 0.0,
) -> tuple[int, np.ndarray, bool]:  #: pinned
    """Workspace-fused stacked projection onto ``Π(μ, ν)``.

    The allocation-free sibling of the two fast kernels: it reads the
    stacked log kernels from ``workspace.log_kernel[:n_slices]`` and the
    marginals from ``workspace.mu_col`` / ``workspace.nu_col`` (loaded
    via :meth:`repro.ot.workspace.Workspace.set_marginals`), runs the
    same row-shift + kernel-domain scaling iteration as
    :func:`sinkhorn_log_kernel_fast` entirely through ``out=``-targeted
    calls into workspace buffers, and leaves the projected plans in
    ``workspace.new_plans[:n_slices]`` — callers copy out before the
    next lease.  Works at the workspace's dtype; float32 uses its own
    subnormal-flush threshold and tiny clamp (see ``_flush_constants``).

    Per-slice convergence follows the batched kernel's contract, by
    **freezing** instead of compression: a slice whose marginal error
    clears ``tol`` at a check takes its closing u-update immediately
    and its plan stops being written, while the remaining slices keep
    iterating on the full stack — so every slice's plan is bit-for-bit
    what the serial kernel produces for that kernel alone, which is
    what lets heterogeneous coalesced batches keep the single-pair
    bitwise contract.  (Frozen slices ride along in the stack matvecs;
    their scaling vectors become dead state that is never read again.
    No fancy-indexed copies, no allocation.)  Returns ``(iterations,
    per-slice L1 row errors, all-slices-converged)``.

    .. note:: **bitwise-pinned** — the ``fused-dense-f32`` /
       ``batched-f32`` / ``threaded-restart`` equivalence contract and
       the precision benchmark baselines depend on this exact
       instruction sequence; register divergent variants under a new
       backend name instead of editing it.
    """
    r = int(n_slices)
    if not 1 <= r <= workspace.capacity:
        raise ShapeError(
            f"n_slices must be in [1, {workspace.capacity}], got {n_slices}"
        )
    flush, tiny = _flush_constants(workspace.dtype)
    log_k = workspace.log_kernel[:r]
    if not np.all(np.isfinite(log_k)):
        raise ConvergenceError("log kernel contains non-finite entries")
    row_max = workspace.row_max[:r]
    np.amax(log_k, axis=2, keepdims=True, out=row_max)
    np.subtract(log_k, row_max, out=log_k)
    kernel = workspace.kernel[:r]
    np.exp(log_k, out=kernel)
    mask = workspace.mask[:r]
    np.greater_equal(kernel, flush, out=mask)
    np.multiply(kernel, mask, out=kernel)
    kernel_t = kernel.swapaxes(1, 2)
    mu_col = workspace.mu_col
    nu_col = workspace.nu_col
    u = workspace.u[:r]
    v = workspace.v[:r]
    kv = workspace.kv[:r]
    ktu = workspace.ktu[:r]
    marg = workspace.marg[:r]
    plans = workspace.new_plans[:r]
    u.fill(1.0)
    v.fill(1.0)
    frozen = np.zeros(r, dtype=bool)
    final_errors = np.zeros(r, dtype=np.float64)
    have_kv = False
    iteration = 0

    def close(index: int) -> None:
        # closing u-update (exact row marginals) for one slice, as in
        # the serial kernel; writes the slice's plan once, for good
        np.maximum(kv[index], tiny, out=kv[index])
        np.divide(mu_col, kv[index], out=u[index])
        np.multiply(kernel[index], u[index], out=plans[index])
        np.multiply(plans[index], v[index].swapaxes(0, 1), out=plans[index])
        np.greater_equal(plans[index], flush, out=mask[index])
        np.multiply(plans[index], mask[index], out=plans[index])
        np.sum(plans[index], axis=1, keepdims=True, out=marg[index])
        np.subtract(marg[index], mu_col, out=marg[index])
        np.abs(marg[index], out=marg[index])
        final_errors[index] = float(marg[index].sum())

    for iteration in range(1, max_iter + 1):
        if not have_kv:
            np.matmul(kernel, v, out=kv)
        have_kv = False
        np.maximum(kv, tiny, out=kv)
        np.divide(mu_col, kv, out=u)
        np.matmul(kernel_t, u, out=ktu)
        np.maximum(ktu, tiny, out=ktu)
        np.divide(nu_col, ktu, out=v)
        if tol > 0 and iteration % 10 == 0:
            np.matmul(kernel, v, out=kv)
            have_kv = True  # reuse the check product in the next u-update
            np.multiply(u, kv, out=marg)
            np.subtract(marg, mu_col, out=marg)
            np.abs(marg, out=marg)
            errs = marg.sum(axis=(1, 2))
            for index in range(r):
                if not frozen[index] and errs[index] < tol:
                    close(index)
                    frozen[index] = True
            if frozen.all():
                return iteration, final_errors, True
    if not have_kv:
        np.matmul(kernel, v, out=kv)
    for index in range(r):
        if not frozen[index]:
            close(index)
    converged = bool(
        frozen.all() or (tol > 0 and float(final_errors.max()) < tol)
    )
    return iteration, final_errors, converged


def _logsumexp_rows(log_matrix: np.ndarray) -> np.ndarray:
    """Row-wise logsumexp with max-shift stabilisation."""
    row_max = np.max(log_matrix, axis=1, keepdims=True)
    row_max = np.where(np.isfinite(row_max), row_max, 0.0)
    return (
        row_max.ravel()
        + np.log(np.sum(np.exp(log_matrix - row_max), axis=1))
    )


def transport_cost(plan: np.ndarray, cost: np.ndarray) -> float:
    """Linear transport cost ``<C, π>``."""
    plan = np.asarray(plan, dtype=np.float64)
    cost = np.asarray(cost, dtype=np.float64)
    if plan.shape != cost.shape:
        raise ShapeError(
            f"plan and cost must share a shape, got {plan.shape} vs {cost.shape}"
        )
    return float(np.sum(plan * cost))
