"""Unbalanced / partial optimal transport.

The paper's real-world pairs are only *partially* overlapping (Douban:
1,118 of 3,906 online users have an offline copy), and Sec. VII lists
partial alignment as future work.  This module provides the two
standard relaxations:

* :func:`sinkhorn_unbalanced` — entropic OT with KL-relaxed marginals
  (Chizat et al. 2018): mass conservation is softened by a penalty
  ``rho``, so unmatched nodes can shed mass instead of being forced
  onto bad partners;
* :func:`partial_wasserstein` — transport exactly a fraction ``mass``
  of the total (Figalli-style partial OT) via a dummy-sink reduction to
  balanced Sinkhorn.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConvergenceError, ShapeError
from repro.ot.sinkhorn import SinkhornResult
from repro.utils.validation import check_probability_vector


def sinkhorn_unbalanced(
    cost: np.ndarray,
    mu: np.ndarray,
    nu: np.ndarray,
    epsilon: float = 0.05,
    rho: float = 1.0,
    max_iter: int = 1000,
    tol: float = 1e-9,
) -> SinkhornResult:
    """Entropic unbalanced OT with KL marginal penalties.

    Solves ``min <C, π> + ε KL(π || μ⊗ν) + ρ KL(π1 || μ) + ρ KL(πᵀ1 || ν)``
    by generalised Sinkhorn scaling with exponent ``ρ/(ρ+ε)``.

    Parameters
    ----------
    rho:
        Marginal-relaxation strength; ``rho → ∞`` recovers balanced OT,
        small ``rho`` lets mass be created/destroyed cheaply.

    The returned ``err`` is the KL-relaxed fixed-point residual
    ``max |u − (μ / Kv)^{ρ/(ρ+ε)}|`` — zero exactly when the scalings
    satisfy the relaxed optimality conditions.  (The *balanced*
    row-marginal residual is large by design for small ``rho``, since
    shedding mass is the whole point of the relaxation.)
    """
    cost = np.asarray(cost, dtype=np.float64)
    if cost.ndim != 2:
        raise ShapeError(f"cost must be 2-D, got shape {cost.shape}")
    mu = _positive_vector(mu, cost.shape[0], "mu")
    nu = _positive_vector(nu, cost.shape[1], "nu")
    if epsilon <= 0 or rho <= 0:
        raise ValueError("epsilon and rho must be positive")
    kernel = np.exp(-cost / epsilon) * np.outer(mu, nu)
    exponent = rho / (rho + epsilon)
    u = np.ones_like(mu)
    v = np.ones_like(nu)
    tiny = 1e-300
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        u_prev = u
        u = (mu / np.maximum(kernel @ v, tiny)) ** exponent
        v = (nu / np.maximum(kernel.T @ u, tiny)) ** exponent
        if not (np.all(np.isfinite(u)) and np.all(np.isfinite(v))):
            raise ConvergenceError("unbalanced Sinkhorn diverged")
        if iteration % 10 == 0 or iteration == max_iter:
            if float(np.abs(u - u_prev).max()) < tol:
                converged = True
                break
    plan = u[:, None] * kernel * v[None, :]
    # the balanced row-marginal residual is large *by design* for small
    # rho (mass destruction is the point), so report the KL-relaxed
    # fixed-point residual instead: at the optimum u = (mu / Kv)^exponent
    u_fixed = (mu / np.maximum(kernel @ v, tiny)) ** exponent
    err = float(np.abs(u - u_fixed).max())
    return SinkhornResult(plan, iteration, err, converged)


def sinkhorn_unbalanced_log_kernel(
    log_kernel: np.ndarray,
    mu: np.ndarray,
    nu: np.ndarray,
    epsilon: float,
    rho: float = 1.0,
    max_iter: int = 100,
    tol: float = 0.0,
) -> SinkhornResult:
    """Unbalanced scaling of ``exp(log_kernel)``, fully in log domain.

    The KL-proximal π-update of the partial solve mode hands the solver
    a *log* kernel (``log π_k − ∇F/η``, entries routinely hundreds of
    nats apart), so the linear-domain :func:`sinkhorn_unbalanced` would
    underflow before its first scaling.  This variant runs the same
    generalised fixed point — scaling exponent ``ρ/(ρ+ε)`` — on
    log-domain potentials via ``logsumexp``:

    ``f ← (ρ/(ρ+ε)) · (log μ − LSE_j(L + g))``,
    ``g ← (ρ/(ρ+ε)) · (log ν − LSE_i(Lᵀ + f))``,
    ``π = exp(f ⊕ L ⊕ g)``.

    ``epsilon`` is the entropic coefficient the log kernel was built
    with (the proximal η); it only enters through the exponent.  The
    reported ``err`` is the same KL-relaxed fixed-point residual as
    :func:`sinkhorn_unbalanced` (in potential space):
    ``max |f − f_fixed|`` — zero exactly at the relaxed optimum.
    """
    log_k = np.asarray(log_kernel, dtype=np.float64)
    if log_k.ndim != 2:
        raise ShapeError(f"log_kernel must be 2-D, got shape {log_k.shape}")
    mu = _positive_vector(mu, log_k.shape[0], "mu")
    nu = _positive_vector(nu, log_k.shape[1], "nu")
    if epsilon <= 0 or rho <= 0:
        raise ValueError("epsilon and rho must be positive")
    exponent = rho / (rho + epsilon)
    log_mu = np.log(mu)
    log_nu = np.log(nu)
    f = np.zeros_like(mu)
    g = np.zeros_like(nu)
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        f_prev = f
        f = exponent * (log_mu - _logsumexp_rows(log_k + g[None, :]))
        g = exponent * (log_nu - _logsumexp_rows((log_k + f[:, None]).T))
        if not (np.all(np.isfinite(f)) and np.all(np.isfinite(g))):
            raise ConvergenceError("unbalanced log-kernel Sinkhorn diverged")
        if float(np.abs(f - f_prev).max()) < tol:
            converged = True
            break
    plan = np.exp(f[:, None] + log_k + g[None, :])
    f_fixed = exponent * (log_mu - _logsumexp_rows(log_k + g[None, :]))
    err = float(np.abs(f - f_fixed).max())
    return SinkhornResult(plan, iteration, err, converged)


def _logsumexp_rows(matrix: np.ndarray) -> np.ndarray:
    """Row-wise log-sum-exp, stable under ±inf-free max shifting."""
    shift = matrix.max(axis=1)
    shift = np.where(np.isfinite(shift), shift, 0.0)
    return shift + np.log(
        np.sum(np.exp(matrix - shift[:, None]), axis=1)
    )


def partial_wasserstein(
    cost: np.ndarray,
    mu: np.ndarray,
    nu: np.ndarray,
    mass: float = 0.8,
    epsilon: float = 0.05,
    max_iter: int = 2000,
) -> np.ndarray:
    """Transport exactly ``mass`` of the distributions' weight.

    Reduction: append a dummy row and column absorbing the untransported
    mass at zero cost, solve balanced entropic OT on the extended
    problem, and drop the dummies.  The returned plan has total mass
    ``mass``; rows/columns that shed their weight to the dummies are
    the nodes deemed unmatchable.
    """
    cost = np.asarray(cost, dtype=np.float64)
    if cost.ndim != 2:
        raise ShapeError(f"cost must be 2-D, got shape {cost.shape}")
    mu = check_probability_vector(mu, cost.shape[0], "mu")
    nu = check_probability_vector(nu, cost.shape[1], "nu")
    if not 0.0 < mass <= 1.0:
        raise ValueError(f"mass must be in (0, 1], got {mass}")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    n, m = cost.shape
    slack = 1.0 - mass
    # extended problem: dummy column receives mu-mass the plan does not
    # ship, dummy row feeds nu-mass that is not received
    big = float(cost.max()) if cost.size else 1.0
    extended = np.zeros((n + 1, m + 1))
    extended[:n, :m] = cost
    extended[n, :m] = big * 0.0  # dummy row: free absorption
    extended[:n, m] = big * 0.0  # dummy column: free absorption
    extended[n, m] = 2.0 * big + 1.0  # dummies must not pair together
    mu_ext = np.concatenate([mu, [slack]])
    nu_ext = np.concatenate([nu, [slack]])
    mu_ext /= mu_ext.sum()
    nu_ext /= nu_ext.sum()
    from repro.ot.sinkhorn import sinkhorn_log

    result = sinkhorn_log(
        extended, mu_ext, nu_ext, epsilon=epsilon, max_iter=max_iter
    )
    plan = result.plan[:n, :m]
    total = plan.sum()
    if total <= 0:
        raise ConvergenceError("partial OT shipped no mass")
    # the extended problem is normalised by (1 + slack), so the raw
    # retained block carries ~mass/(1 + slack); rescale it to exactly
    # the documented total mass
    return plan * (mass / total)


def _positive_vector(vec, size, name):
    arr = np.asarray(vec, dtype=np.float64)
    if arr.ndim != 1 or arr.shape[0] != size:
        raise ShapeError(f"{name} must be 1-D of length {size}")
    if np.any(arr < 0) or arr.sum() <= 0:
        raise ValueError(f"{name} must be non-negative with positive mass")
    return arr
