"""Extracting discrete node correspondences from a transport plan.

Paper Eq. (2): ``M = argmax_M Σ_{(u,v)∈M} π_uv``.  The exact maximiser
is a linear assignment problem (Hungarian); the common cheap surrogates
are row-argmax (what Hit@k evaluation implicitly uses) and greedy
one-to-one matching.
"""

from __future__ import annotations

import numpy as np
import scipy.optimize

from repro.exceptions import ShapeError


def argmax_matching(plan: np.ndarray) -> np.ndarray:
    """For each source row, the highest-scoring target column.

    Not necessarily one-to-one; this mirrors top-1 retrieval.
    """
    plan = _validate(plan)
    return np.argmax(plan, axis=1)


def hungarian_matching(plan: np.ndarray) -> np.ndarray:
    """Exact maximum-weight one-to-one assignment (Eq. 2).

    For rectangular plans with ``n <= m`` every source node is matched;
    returns the matched target index per source row.
    """
    plan = _validate(plan)
    if plan.shape[0] > plan.shape[1]:
        raise ShapeError(
            "hungarian_matching requires n_source <= n_target; transpose the plan"
        )
    rows, cols = scipy.optimize.linear_sum_assignment(-plan)
    matching = np.empty(plan.shape[0], dtype=np.int64)
    matching[rows] = cols
    return matching


def greedy_matching(plan: np.ndarray) -> np.ndarray:
    """Greedy one-to-one matching by descending score.

    A 1/2-approximation to the assignment optimum, linearithmic in the
    number of entries; unmatched sources (possible when n > m) get -1.
    """
    plan = _validate(plan)
    n, m = plan.shape
    order = np.argsort(plan, axis=None)[::-1]
    matched_rows = np.zeros(n, dtype=bool)
    matched_cols = np.zeros(m, dtype=bool)
    matching = np.full(n, -1, dtype=np.int64)
    n_matched = 0
    limit = min(n, m)
    for flat in order:
        i, j = divmod(int(flat), m)
        if matched_rows[i] or matched_cols[j]:
            continue
        matching[i] = j
        matched_rows[i] = True
        matched_cols[j] = True
        n_matched += 1
        if n_matched == limit:
            break
    return matching


def top_k_candidates(plan: np.ndarray, k: int) -> np.ndarray:
    """``n × k`` array of each row's top-k target columns (best first)."""
    plan = _validate(plan)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    k = min(k, plan.shape[1])
    part = np.argpartition(-plan, kth=k - 1, axis=1)[:, :k]
    row_scores = np.take_along_axis(plan, part, axis=1)
    order = np.argsort(-row_scores, axis=1, kind="stable")
    return np.take_along_axis(part, order, axis=1)


def _validate(plan: np.ndarray) -> np.ndarray:
    plan = np.asarray(plan, dtype=np.float64)
    if plan.ndim != 2:
        raise ShapeError(f"plan must be 2-D, got shape {plan.shape}")
    if plan.size == 0:
        raise ShapeError("plan must be non-empty")
    return plan
