"""Gromov-Wasserstein distance solvers.

Implements the discrete GW problem of paper Eq. (1):

    min_{π ∈ Π(μ,ν)}  Σ_{ijkl} |Ds(i,j) − Dt(k,l)|² π_ik π_jl

using the Peyré–Cuturi tensor-product decomposition: for the squared
loss, the GW gradient tensor contracts as

    L(Ds, Dt) ⊗ π = c_{Ds,Dt} − 2 · Ds π Dtᵀ
    c_{Ds,Dt}     = (Ds∘Ds) μ 1ᵀ + 1 νᵀ (Dt∘Dt)ᵀ

Two solvers are provided:

* :func:`entropic_gromov_wasserstein` — mirror descent with entropic
  regularisation (Solomon et al. 2016 style);
* :func:`proximal_gromov_wasserstein` — KL-proximal point iterations
  (Xu et al. 2019, the GWD baseline; also SLOTAlign's π-update when the
  structure weights are frozen).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConvergenceError, ShapeError
from repro.ot.sinkhorn import (
    F32_SINKHORN_TOL,
    _flush_constants,
    sinkhorn_log,
    sinkhorn_log_kernel_fast,
    sinkhorn_log_kernel_fast_workspace,
)
from repro.utils.validation import check_probability_vector, check_square


@dataclass
class GWResult:
    """Output of a GW solver run."""

    plan: np.ndarray
    distance: float
    n_iterations: int
    converged: bool
    history: list[float] = field(default_factory=list)


def gw_constant_term(
    d_source: np.ndarray, d_target: np.ndarray, mu: np.ndarray, nu: np.ndarray
) -> np.ndarray:
    """The π-independent tensor constant ``c_{Ds,Dt}`` (squared loss)."""
    d_source = check_square(d_source, "d_source")
    d_target = check_square(d_target, "d_target")
    mu = check_probability_vector(mu, d_source.shape[0], "mu")
    nu = check_probability_vector(nu, d_target.shape[0], "nu")
    f1 = (d_source**2) @ mu  # shape (n,)
    f2 = (d_target**2) @ nu  # shape (m,)
    return f1[:, None] + f2[None, :]


def gw_gradient(
    d_source: np.ndarray,
    d_target: np.ndarray,
    plan: np.ndarray,
    constant: np.ndarray | None = None,
    mu: np.ndarray | None = None,
    nu: np.ndarray | None = None,
) -> np.ndarray:
    """Gradient of the GW objective at ``plan``: ``2(c − 2 Ds π Dtᵀ)``.

    When ``constant`` is omitted it is recomputed from the marginals.
    For symmetric ``Ds, Dt`` the gradient of ``<L⊗π, π>`` is
    ``2·(L⊗π)``; asymmetric matrices are symmetrised first, which
    leaves the objective unchanged.
    """
    if constant is None:
        if mu is None or nu is None:
            raise ValueError("either constant or (mu, nu) must be provided")
        constant = gw_constant_term(d_source, d_target, mu, nu)
    ds = 0.5 * (d_source + d_source.T)
    dt = 0.5 * (d_target + d_target.T)
    return 2.0 * (constant - 2.0 * ds @ plan @ dt.T)


def gw_objective(
    d_source: np.ndarray,
    d_target: np.ndarray,
    plan: np.ndarray,
    constant: np.ndarray | None = None,
    mu: np.ndarray | None = None,
    nu: np.ndarray | None = None,
) -> float:
    """GW objective value ``<L(Ds,Dt) ⊗ π, π>`` at ``plan``."""
    if constant is None:
        if mu is None or nu is None:
            raise ValueError("either constant or (mu, nu) must be provided")
        constant = gw_constant_term(d_source, d_target, mu, nu)
    tensor_product = constant - 2.0 * d_source @ plan @ d_target.T
    return float(np.sum(tensor_product * plan))


def _prepare(d_source, d_target, mu, nu, init):
    d_source = np.asarray(check_square(d_source, "d_source"), dtype=np.float64)
    d_target = np.asarray(check_square(d_target, "d_target"), dtype=np.float64)
    n, m = d_source.shape[0], d_target.shape[0]
    mu = (
        np.full(n, 1.0 / n)
        if mu is None
        else check_probability_vector(mu, n, "mu")
    )
    nu = (
        np.full(m, 1.0 / m)
        if nu is None
        else check_probability_vector(nu, m, "nu")
    )
    if init is None:
        plan = np.outer(mu, nu)
    else:
        plan = np.asarray(init, dtype=np.float64)
        if plan.shape != (n, m):
            raise ShapeError(f"init plan must have shape {(n, m)}, got {plan.shape}")
        total = plan.sum()
        if total <= 0:
            raise ValueError("init plan must have positive mass")
        plan = plan / total
    return d_source, d_target, mu, nu, plan


def _ensure_ot_precision(precision: str) -> bool:
    """Validate an OT-solver ``precision`` knob; True means float32."""
    if precision not in ("float64", "float32"):
        raise ValueError(
            f"precision must be 'float64' or 'float32', got {precision!r}"
        )
    return precision == "float32"


def _proximal_project_f32(workspace, plan32, grad32, step_size, inner_iter):
    """One float32 KL-proximal Sinkhorn projection through a workspace.

    Writes ``log(max(plan, tiny)) − grad/η`` into the workspace's
    single log-kernel slice and runs the allocation-free stacked
    kernel; returns the projected plan slice (owned by the workspace —
    callers copy out).
    """
    _, tiny = _flush_constants(workspace.dtype)
    log_kernel = workspace.log_kernel[0]
    np.maximum(plan32, tiny, out=log_kernel)
    np.log(log_kernel, out=log_kernel)
    log_kernel -= grad32 / np.float32(step_size)
    sinkhorn_log_kernel_fast_workspace(
        workspace, 1, max_iter=inner_iter, tol=F32_SINKHORN_TOL
    )
    return workspace.new_plans[0]


def proximal_gromov_wasserstein(
    d_source: np.ndarray,
    d_target: np.ndarray,
    mu: np.ndarray | None = None,
    nu: np.ndarray | None = None,
    step_size: float = 0.01,
    max_iter: int = 200,
    inner_iter: int = 50,
    tol: float = 1e-7,
    init: np.ndarray | None = None,
    precision: str = "float64",
) -> GWResult:
    """KL-proximal-point GW solver (Xu et al. 2019).

    Each outer iteration linearises the objective at the current plan
    and solves ``argmin <∇F, π> + η KL(π || π_k)`` by a Sinkhorn
    projection of ``π_k ⊙ exp(-∇F / η)`` — the same update as
    SLOTAlign's Eq. (12).  ``step_size`` is the proximal coefficient η
    (smaller = more aggressive steps); the paper operates at 0.01.

    ``precision="float32"`` (opt-in) runs the per-iteration gradient
    and Sinkhorn projection in float32 through a preallocated
    workspace, with the inner tolerance floored at
    :data:`~repro.ot.sinkhorn.F32_SINKHORN_TOL`; objective history and
    the returned distance are always evaluated in float64.
    """
    if step_size <= 0:
        raise ValueError(f"step_size must be positive, got {step_size}")
    use_f32 = _ensure_ot_precision(precision)
    d_source, d_target, mu, nu, plan = _prepare(d_source, d_target, mu, nu, init)
    constant = gw_constant_term(d_source, d_target, mu, nu)
    workspace = ds32 = dt32 = const32 = None
    if use_f32:
        # imported lazily: repro.ot.workspace is only needed on this path
        from repro.ot.workspace import Workspace

        workspace = Workspace(1, plan.shape[0], plan.shape[1], np.float32)
        workspace.set_marginals(mu, nu)
        ds32 = np.ascontiguousarray(0.5 * (d_source + d_source.T), np.float32)
        dt32 = np.ascontiguousarray(0.5 * (d_target + d_target.T), np.float32)
        const32 = constant.astype(np.float32)
        plan = plan.astype(np.float32)
    history: list[float] = []
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        if use_f32:
            grad = 2.0 * (const32 - 2.0 * ds32 @ plan @ dt32.T)
            new_plan = _proximal_project_f32(
                workspace, plan, grad, step_size, inner_iter
            ).copy()
        else:
            grad = gw_gradient(d_source, d_target, plan, constant=constant)
            log_kernel = np.log(np.maximum(plan, 1e-300)) - grad / step_size
            result = sinkhorn_log_kernel_fast(
                log_kernel, mu, nu, max_iter=inner_iter, tol=1e-9
            )
            new_plan = result.plan
        if not np.all(np.isfinite(new_plan)):
            raise ConvergenceError("GW proximal iterate became non-finite")
        delta = float(np.abs(new_plan - plan).sum())
        plan = new_plan
        plan64 = plan.astype(np.float64) if use_f32 else plan
        history.append(gw_objective(d_source, d_target, plan64, constant=constant))
        if delta < tol:
            converged = True
            break
    plan = plan.astype(np.float64) if use_f32 else plan
    distance = gw_objective(d_source, d_target, plan, constant=constant)
    return GWResult(plan, distance, iteration, converged, history)


def entropic_gromov_wasserstein(
    d_source: np.ndarray,
    d_target: np.ndarray,
    mu: np.ndarray | None = None,
    nu: np.ndarray | None = None,
    epsilon: float = 0.05,
    max_iter: int = 200,
    inner_iter: int = 100,
    tol: float = 1e-7,
    init: np.ndarray | None = None,
) -> GWResult:
    """Entropic GW: mirror-descent where each step solves an entropic OT.

    At each iteration the linearised cost ``L⊗π`` feeds a fresh
    log-domain Sinkhorn with regularisation ``epsilon``.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    d_source, d_target, mu, nu, plan = _prepare(d_source, d_target, mu, nu, init)
    constant = gw_constant_term(d_source, d_target, mu, nu)
    history: list[float] = []
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        linear_cost = constant - 2.0 * d_source @ plan @ d_target.T
        result = sinkhorn_log(
            linear_cost, mu, nu, epsilon=epsilon, max_iter=inner_iter, tol=1e-10
        )
        new_plan = result.plan
        delta = float(np.abs(new_plan - plan).sum())
        plan = new_plan
        history.append(gw_objective(d_source, d_target, plan, constant=constant))
        if delta < tol:
            converged = True
            break
    distance = gw_objective(d_source, d_target, plan, constant=constant)
    return GWResult(plan, distance, iteration, converged, history)


def gromov_wasserstein_distance(
    d_source: np.ndarray,
    d_target: np.ndarray,
    mu: np.ndarray | None = None,
    nu: np.ndarray | None = None,
    **solver_kwargs,
) -> float:
    """Convenience wrapper returning only the GW objective value."""
    return proximal_gromov_wasserstein(
        d_source, d_target, mu=mu, nu=nu, **solver_kwargs
    ).distance
