"""Preallocated kernel workspaces for the mixed-precision fast path.

``pi_update`` dominates solver wall-clock, and profiling shows a large
slice of it is allocator traffic: every outer iteration of the
reference loop materialises fresh ``(n, m)`` arrays for the gradient,
the log-kernel, the Sinkhorn kernel and every scaling vector.  The
fast backends instead run against a :class:`Workspace` — one object
owning *every* scratch array needed to step a stack of up to ``R``
restarts of a given ``(n, m, dtype)`` problem — and issue exclusively
``out=``-targeted BLAS/ufunc calls into those buffers, so the steady
state of the inner loop performs no array allocation at all
(asserted by ``tests/test_workspace.py`` via ``tracemalloc``).

Ownership rules
---------------
* A workspace is **single-threaded state**: exactly one thread may
  step against it at a time.  Concurrent restart strategies lease one
  workspace per thread from a :class:`WorkspaceArena` (keyed by
  ``threading.get_ident()``), so buffers are never shared across
  threads — the no-aliasing property the racecheck tests pin down.
* Buffers are sized for a **capacity** ``R`` and sliced ``[:r]`` per
  call; a lease with a larger ``r`` or a different ``(n, m, dtype)``
  reallocates (growing is the caller's explicit signal, never implicit
  per-iteration behaviour).
* Buffer contents are undefined between calls: every kernel writes
  before it reads.  Nothing returned to callers may alias a workspace
  buffer unless documented (the stacked Sinkhorn kernel leaves plans
  in ``new_plans`` by contract; consumers copy out immediately).

The workspace also memoises two pure derivations so the hot loop can
stay allocation-free: contraction paths from :func:`numpy.einsum_path`
(keyed by subscripts and operand shapes) and reduced-precision casts
of read-only float64 arrays such as the objective's base stacks
(keyed by a caller-chosen name and the source array's identity).
"""

from __future__ import annotations

import threading

import numpy as np


class Workspace:
    """Every scratch buffer for stepping ``<= capacity`` restarts of an
    ``(n, m)`` problem in ``dtype``."""

    def __init__(self, capacity: int, n: int, m: int, dtype=np.float64):
        if capacity < 1:
            raise ValueError(f"workspace capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.n = int(n)
        self.m = int(m)
        self.dtype = np.dtype(dtype)
        shape = (self.capacity, self.n, self.m)
        # (R, n, m): plan stacks and everything plan-shaped
        self.plans = np.empty(shape, dtype=self.dtype)
        self.new_plans = np.empty(shape, dtype=self.dtype)
        self.grad = np.empty(shape, dtype=self.dtype)
        self.sp = np.empty(shape, dtype=self.dtype)
        self.pt = np.empty(shape, dtype=self.dtype)
        self.log_kernel = np.empty(shape, dtype=self.dtype)
        self.kernel = np.empty(shape, dtype=self.dtype)
        self.mask = np.empty(shape, dtype=self.dtype)
        # transposed-plan-shaped intermediate for πᵀ D_s π
        self.tp = np.empty((self.capacity, self.m, self.n), dtype=self.dtype)
        # combined structure matrices and their transported images
        self.d_s = np.empty((self.capacity, self.n, self.n), dtype=self.dtype)
        self.d_t = np.empty((self.capacity, self.m, self.m), dtype=self.dtype)
        self.transported_t = np.empty(
            (self.capacity, self.n, self.n), dtype=self.dtype
        )
        self.transported_s = np.empty(
            (self.capacity, self.m, self.m), dtype=self.dtype
        )
        # Sinkhorn scaling columns (kept (R, n|m, 1) so matmul/ufunc
        # broadcasting needs no reshapes in the loop)
        self.row_max = np.empty((self.capacity, self.n, 1), dtype=self.dtype)
        self.u = np.empty((self.capacity, self.n, 1), dtype=self.dtype)
        self.kv = np.empty((self.capacity, self.n, 1), dtype=self.dtype)
        self.marg = np.empty((self.capacity, self.n, 1), dtype=self.dtype)
        self.v = np.empty((self.capacity, self.m, 1), dtype=self.dtype)
        self.ktu = np.empty((self.capacity, self.m, 1), dtype=self.dtype)
        self.mu_col = np.empty((self.n, 1), dtype=self.dtype)
        self.nu_col = np.empty((self.m, 1), dtype=self.dtype)
        self._einsum_paths: dict[tuple, list] = {}
        self._cast_cache: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    def fits(self, n_runs: int, n: int, m: int, dtype) -> bool:
        """Whether this workspace can serve the requested shape as-is."""
        return (
            n_runs <= self.capacity
            and n == self.n
            and m == self.m
            and np.dtype(dtype) == self.dtype
        )

    def set_marginals(self, mu: np.ndarray, nu: np.ndarray) -> None:
        """Load the (shared) marginals into their broadcast columns."""
        np.copyto(self.mu_col, np.asarray(mu).reshape(self.n, 1), casting="same_kind")
        np.copyto(self.nu_col, np.asarray(nu).reshape(self.m, 1), casting="same_kind")

    @property
    def nbytes(self) -> int:
        """Total bytes owned by the arena's array buffers."""
        return sum(
            value.nbytes
            for value in self.__dict__.values()
            if isinstance(value, np.ndarray)
        )

    # ------------------------------------------------------------------
    def einsum_path(self, subscripts: str, *operands: np.ndarray):
        """Memoised :func:`numpy.einsum_path` for a contraction shape."""
        key = (subscripts,) + tuple(op.shape for op in operands)
        path = self._einsum_paths.get(key)
        if path is None:
            path = np.einsum_path(subscripts, *operands, optimize="optimal")[0]
            self._einsum_paths[key] = path
        return path

    def cast(self, name: str, array: np.ndarray) -> np.ndarray:
        """Memoised ``array.astype(self.dtype)`` of a read-only source.

        Keyed on ``(name, id(array))``; the source reference is held so
        the identity key can never alias a freed array.  Intended for
        per-objective constants (base stacks) that every step would
        otherwise re-cast.
        """
        key = (name, id(array))
        cached = self._cast_cache.get(key)
        if cached is not None:
            return cached[1]
        if len(self._cast_cache) >= 16:
            self._cast_cache.clear()
        converted = np.ascontiguousarray(array, dtype=self.dtype)
        self._cast_cache[key] = (array, converted)
        return converted


class WorkspaceArena:
    """Thread-keyed pool of workspaces.

    ``lease`` hands the calling thread its own :class:`Workspace`,
    creating or regrowing it when the requested ``(n_runs, n, m,
    dtype)`` does not fit the one it already holds.  Because the key is
    the thread identity, two threads can never observe the same buffer
    — the arena is the structural no-aliasing guarantee the threaded
    restart strategy builds on.
    """

    def __init__(self):
        self._lock = threading.Lock()
        # thread ident -> Workspace  #: guarded-by: _lock
        self._by_thread: dict[int, Workspace] = {}

    def lease(self, n_runs: int, n: int, m: int, dtype=np.float64) -> Workspace:
        ident = threading.get_ident()
        with self._lock:
            workspace = self._by_thread.get(ident)
        if workspace is None or not workspace.fits(n_runs, n, m, dtype):
            workspace = Workspace(max(1, n_runs), n, m, dtype)
            with self._lock:
                self._by_thread[ident] = workspace
        return workspace

    def workspaces(self) -> list[Workspace]:
        """Snapshot of the live workspaces (test/introspection hook)."""
        with self._lock:
            return list(self._by_thread.values())

    def clear(self) -> None:
        with self._lock:
            self._by_thread.clear()


__all__ = ["Workspace", "WorkspaceArena"]
