"""Optimal transport substrate: Sinkhorn, exact EMD, GW, fused GW."""

from repro.ot.simplex import (
    project_simplex,
    project_concatenated_simplices,
    is_in_simplex,
)
from repro.ot.sinkhorn import (
    SinkhornResult,
    sinkhorn,
    sinkhorn_log,
    sinkhorn_log_kernel_fast,
    sinkhorn_log_kernel_fast_batched,
    sinkhorn_projection,
    transport_cost,
)
from repro.ot.exact import emd, emd_cost, wasserstein_1d
from repro.ot.unbalanced import (
    partial_wasserstein,
    sinkhorn_unbalanced,
    sinkhorn_unbalanced_log_kernel,
)
from repro.ot.gromov import (
    GWResult,
    gw_constant_term,
    gw_gradient,
    gw_objective,
    proximal_gromov_wasserstein,
    entropic_gromov_wasserstein,
    gromov_wasserstein_distance,
)
from repro.ot.fused import fused_gromov_wasserstein, feature_cost_matrix
from repro.ot.matching import (
    argmax_matching,
    hungarian_matching,
    greedy_matching,
    top_k_candidates,
)

__all__ = [
    "project_simplex",
    "project_concatenated_simplices",
    "is_in_simplex",
    "SinkhornResult",
    "sinkhorn",
    "sinkhorn_log",
    "sinkhorn_log_kernel_fast",
    "sinkhorn_log_kernel_fast_batched",
    "sinkhorn_projection",
    "transport_cost",
    "emd",
    "emd_cost",
    "wasserstein_1d",
    "sinkhorn_unbalanced",
    "sinkhorn_unbalanced_log_kernel",
    "partial_wasserstein",
    "GWResult",
    "gw_constant_term",
    "gw_gradient",
    "gw_objective",
    "proximal_gromov_wasserstein",
    "entropic_gromov_wasserstein",
    "gromov_wasserstein_distance",
    "fused_gromov_wasserstein",
    "feature_cost_matrix",
    "argmax_matching",
    "hungarian_matching",
    "greedy_matching",
    "top_k_candidates",
]
