"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` on wrong argument types
and the like) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised when a graph is malformed or an operation is invalid on it."""


class DatasetError(ReproError):
    """Raised when a dataset cannot be constructed or loaded."""


class ConvergenceError(ReproError):
    """Raised when an iterative solver fails to produce usable iterates.

    Solvers in this library do not raise merely because the iteration
    budget was exhausted (a partial answer is still useful); they raise
    ``ConvergenceError`` only when the iterates become invalid, e.g. a
    transport plan collapses to NaN.
    """


class ShapeError(ReproError):
    """Raised when array arguments have incompatible shapes."""


class ConfigError(ReproError):
    """Raised for invalid configuration values (negative step sizes...)."""
