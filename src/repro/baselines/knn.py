"""KNN baseline: match nodes by raw feature similarity (paper Sec. V-A).

Structure-free — therefore fully immune to edge perturbation and fully
exposed to feature inconsistency, which is exactly the behaviour the
motivation figure (Fig. 3) exhibits.
"""

from __future__ import annotations

from repro.baselines.base import (
    Aligner,
    cosine_similarity_matrix,
    pad_features_to_common_dim,
)
from repro.exceptions import GraphError
from repro.graphs.graph import AttributedGraph


class KNNAligner(Aligner):
    """Cosine-similarity nearest-neighbour matching in feature space."""

    name = "KNN"

    def _align(self, source: AttributedGraph, target: AttributedGraph):
        if source.features is None or target.features is None:
            raise GraphError("KNN requires features on both graphs")
        feats_s, feats_t = pad_features_to_common_dim(
            source.features, target.features
        )
        plan = cosine_similarity_matrix(feats_s, feats_t)
        return plan, {}
