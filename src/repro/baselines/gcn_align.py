"""GCNAlign baseline (Wang et al., EMNLP 2018), unsupervised variant.

"Embed-then-cross-compare": a weight-shared GCN embeds both graphs into
one space; pseudo node correspondences are synthesised from cross-graph
embedding similarity (mutual nearest neighbours) and the network is
trained with a margin-based ranking loss that pulls pseudo pairs
together and pushes corrupted pairs apart.  Because the comparison is
*cross-graph*, the method inherits every feature-space misalignment —
the failure mode the paper analyses in Sec. III.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.functional import l2_normalize, margin_ranking_loss
from repro.autodiff.optim import Adam
from repro.autodiff.tensor import Tensor
from repro.baselines.base import Aligner, pad_features_to_common_dim
from repro.exceptions import GraphError
from repro.gnn.gcn import GCN, dense_normalized_adjacency
from repro.graphs.graph import AttributedGraph
from repro.utils.random import check_random_state, spawn_seeds


class GCNAlignAligner(Aligner):
    """Weight-shared GCN + margin ranking on pseudo-seeds."""

    name = "GCNAlign"

    def __init__(
        self,
        hidden_dim: int = 64,
        out_dim: int = 32,
        n_epochs: int = 50,
        n_pseudo_pairs: int = 128,
        n_negatives: int = 5,
        margin: float = 1.0,
        lr: float = 0.005,
        refresh_every: int = 10,
        seed: int = 0,
    ):
        self.hidden_dim = hidden_dim
        self.out_dim = out_dim
        self.n_epochs = n_epochs
        self.n_pseudo_pairs = n_pseudo_pairs
        self.n_negatives = n_negatives
        self.margin = margin
        self.lr = lr
        self.refresh_every = refresh_every
        self.seed = seed

    # ------------------------------------------------------------------
    def _build_encoder(self, in_dim: int, seed):
        return GCN([in_dim, self.hidden_dim, self.out_dim], seed=seed)

    def _embed(self, encoder, norm_adj, feats: np.ndarray) -> Tensor:
        return encoder(norm_adj, Tensor(feats))

    # ------------------------------------------------------------------
    def _align(self, source: AttributedGraph, target: AttributedGraph):
        if source.features is None or target.features is None:
            raise GraphError(f"{self.name} requires features on both graphs")
        feats_s, feats_t = pad_features_to_common_dim(
            source.features, target.features
        )
        seeds = spawn_seeds(self.seed, 2)
        rng = check_random_state(seeds[1])
        encoder = self._build_encoder(feats_s.shape[1], seeds[0])
        adj_s = self._adjacency_operator(source)
        adj_t = self._adjacency_operator(target)
        optimizer = Adam(encoder.parameters(), lr=self.lr)

        pseudo = None
        losses: list[float] = []
        for epoch in range(self.n_epochs):
            emb_s = self._embed(encoder, adj_s, feats_s)
            emb_t = self._embed(encoder, adj_t, feats_t)
            if pseudo is None or epoch % self.refresh_every == 0:
                pseudo = _mutual_nearest_pairs(
                    emb_s.data, emb_t.data, self.n_pseudo_pairs
                )
            if pseudo.shape[0] == 0:
                break
            loss = self._ranking_loss(emb_s, emb_t, pseudo, rng, target.n_nodes)
            encoder.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())

        emb_s = self._embed(encoder, adj_s, feats_s).data
        emb_t = self._embed(encoder, adj_t, feats_t).data
        plan = _cosine(emb_s, emb_t)
        return plan, {"losses": losses, "n_pseudo": 0 if pseudo is None else len(pseudo)}

    # ------------------------------------------------------------------
    def _adjacency_operator(self, graph: AttributedGraph):
        return dense_normalized_adjacency(graph)

    def _ranking_loss(self, emb_s, emb_t, pseudo, rng, n_target):
        emb_s_n = l2_normalize(emb_s)
        emb_t_n = l2_normalize(emb_t)
        src_idx = pseudo[:, 0]
        tgt_idx = pseudo[:, 1]
        anchors = emb_s_n[src_idx]
        positives = emb_t_n[tgt_idx]
        pos_scores = (anchors * positives).sum(axis=1)
        neg_idx = rng.integers(0, n_target, size=src_idx.shape[0] * self.n_negatives)
        anchor_rep = emb_s_n[np.repeat(src_idx, self.n_negatives)]
        negatives = emb_t_n[neg_idx]
        neg_scores = (anchor_rep * negatives).sum(axis=1)
        pos_rep = _repeat_rows(pos_scores, self.n_negatives)
        return margin_ranking_loss(pos_rep, neg_scores, margin=self.margin)


def _repeat_rows(scores: Tensor, times: int) -> Tensor:
    """Differentiable repeat of a score vector (via index gather)."""
    idx = np.repeat(np.arange(scores.shape[0]), times)
    return scores[idx]


def _mutual_nearest_pairs(
    emb_s: np.ndarray, emb_t: np.ndarray, max_pairs: int
) -> np.ndarray:
    """Mutual-nearest-neighbour pseudo correspondences, best first."""
    sim = _cosine(emb_s, emb_t)
    best_t = np.argmax(sim, axis=1)
    best_s = np.argmax(sim, axis=0)
    sources = np.arange(emb_s.shape[0])
    mutual = sources[best_s[best_t[sources]] == sources]
    pairs = np.column_stack([mutual, best_t[mutual]])
    if pairs.shape[0] > max_pairs:
        scores = sim[pairs[:, 0], pairs[:, 1]]
        keep = np.argsort(-scores)[:max_pairs]
        pairs = pairs[keep]
    return pairs


def _cosine(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    norm_a = np.linalg.norm(a, axis=1, keepdims=True)
    norm_b = np.linalg.norm(b, axis=1, keepdims=True)
    norm_a = np.where(norm_a < 1e-12, 1.0, norm_a)
    norm_b = np.where(norm_b < 1e-12, 1.0, norm_b)
    return (a / norm_a) @ (b / norm_b).T
