"""Simplified KG-alignment baselines for Table III.

The paper compares SLOTAlign against two supervised (GCNAlign, LIME)
and three unsupervised (MultiKE, EVA, SelfKG) knowledge-graph entity
alignment methods.  Full re-implementations of these systems are out of
scope; each class below preserves the method's *alignment mechanism*
(documented per class) on the shared :class:`AlignmentPair` interface
so the Table III comparison exercises the same failure/success modes:

* all five follow the embed-then-cross-compare paradigm the paper
  critiques, and therefore depend on cross-lingual feature agreement;
* LIME additionally consumes seed alignments (supervised).
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.functional import info_nce_loss
from repro.autodiff.optim import Adam
from repro.autodiff.tensor import Tensor
from repro.baselines.base import Aligner, pad_features_to_common_dim
from repro.baselines.gcn_align import _cosine, _mutual_nearest_pairs
from repro.exceptions import GraphError
from repro.gnn.gcn import GCN, dense_normalized_adjacency
from repro.gnn.propagation import sgc_propagate
from repro.graphs.graph import AttributedGraph
from repro.graphs.normalization import row_normalize
from repro.utils.random import check_random_state


class MultiKEAligner(Aligner):
    """MultiKE (Zhang et al., IJCAI 2019) — multi-view embedding fusion.

    Mechanism preserved: embeddings from several views (name/attribute
    view = raw features; relation view = 1-hop propagated features;
    structure view = 2-hop propagated features) are compared across
    graphs and the per-view similarities averaged.
    """

    name = "MultiKE"

    def __init__(self, view_hops=(0, 1, 2)):
        self.view_hops = tuple(view_hops)

    def _align(self, source: AttributedGraph, target: AttributedGraph):
        if source.features is None or target.features is None:
            raise GraphError("MultiKE requires features on both graphs")
        feats_s, feats_t = pad_features_to_common_dim(
            source.features, target.features
        )
        plan = np.zeros((source.n_nodes, target.n_nodes))
        for hops in self.view_hops:
            emb_s = sgc_propagate(source.adjacency, feats_s, hops)
            emb_t = sgc_propagate(target.adjacency, feats_t, hops)
            plan += _cosine(emb_s, emb_t)
        plan /= len(self.view_hops)
        return plan, {"views": self.view_hops}


class EVAAligner(Aligner):
    """EVA (Liu et al., AAAI 2021) — pivot-modality bootstrapping.

    Mechanism preserved: a trusted "pivot" similarity (EVA uses images;
    here the leading feature block acts as the shared modality) seeds an
    iterative bootstrap in which structure-propagated embeddings refine
    the correspondence set.
    """

    name = "EVA"

    def __init__(self, pivot_fraction: float = 0.5, n_rounds: int = 3,
                 blend: float = 0.5):
        if not 0.0 < pivot_fraction <= 1.0:
            raise ValueError(f"pivot_fraction must be in (0, 1], got {pivot_fraction}")
        self.pivot_fraction = pivot_fraction
        self.n_rounds = n_rounds
        self.blend = blend

    def _align(self, source: AttributedGraph, target: AttributedGraph):
        if source.features is None or target.features is None:
            raise GraphError("EVA requires features on both graphs")
        feats_s, feats_t = pad_features_to_common_dim(
            source.features, target.features
        )
        d_pivot = max(1, int(feats_s.shape[1] * self.pivot_fraction))
        pivot_sim = _cosine(feats_s[:, :d_pivot], feats_t[:, :d_pivot])
        emb_s = sgc_propagate(source.adjacency, feats_s, 2)
        emb_t = sgc_propagate(target.adjacency, feats_t, 2)
        struct_sim = _cosine(emb_s, emb_t)
        plan = pivot_sim
        for _ in range(self.n_rounds):
            plan = (1 - self.blend) * pivot_sim + self.blend * struct_sim * (
                _row_softmax(plan)
            )
        return plan, {"pivot_dim": d_pivot}


class SelfKGAligner(Aligner):
    """SelfKG (Liu et al., WWW 2022) — self-supervised contrastive.

    Mechanism preserved: a weight-shared GNN encoder trained with a
    *self-negative* contrastive loss (each graph contrasts an entity
    against other entities of the same graph, avoiding any cross-graph
    supervision), then cross-graph cosine retrieval.
    """

    name = "SelfKG"

    def __init__(
        self,
        hidden_dim: int = 64,
        out_dim: int = 32,
        n_epochs: int = 40,
        temperature: float = 0.1,
        lr: float = 0.005,
        seed: int = 0,
    ):
        self.hidden_dim = hidden_dim
        self.out_dim = out_dim
        self.n_epochs = n_epochs
        self.temperature = temperature
        self.lr = lr
        self.seed = seed

    def _align(self, source: AttributedGraph, target: AttributedGraph):
        if source.features is None or target.features is None:
            raise GraphError("SelfKG requires features on both graphs")
        feats_s, feats_t = pad_features_to_common_dim(
            source.features, target.features
        )
        encoder = GCN(
            [feats_s.shape[1], self.hidden_dim, self.out_dim], seed=self.seed
        )
        adj_s = dense_normalized_adjacency(source)
        adj_t = dense_normalized_adjacency(target)
        optimizer = Adam(encoder.parameters(), lr=self.lr)
        raw_s, raw_t = Tensor(feats_s), Tensor(feats_t)
        losses = []
        for _ in range(self.n_epochs):
            emb_s = encoder(adj_s, raw_s)
            emb_t = encoder(adj_t, raw_t)
            # self-negative contrastive: the encoder output should stay
            # close to the (projected) input identity within each graph
            loss = info_nce_loss(emb_s, raw_s @ _fixed_projection(
                feats_s.shape[1], self.out_dim, self.seed
            ), temperature=self.temperature) + info_nce_loss(
                emb_t,
                raw_t @ _fixed_projection(feats_t.shape[1], self.out_dim, self.seed),
                temperature=self.temperature,
            )
            encoder.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        emb_s = encoder(adj_s, raw_s).data
        emb_t = encoder(adj_t, raw_t).data
        plan = _cosine(emb_s, emb_t)
        return plan, {"losses": losses}


class LIMEAligner(Aligner):
    """LIME (Zeng et al., VLDB J. 2022) — supervised reciprocal matching.

    Mechanism preserved: seed alignments fit an orthogonal map between
    the two feature spaces (Procrustes); structure-propagated
    embeddings are compared through that map, and the reciprocal
    inference step symmetrises the similarity with its transpose
    ranking.  Seeds must be supplied via ``set_seeds`` (Table III's
    supervised setting: we grant it 30 % of the ground truth).
    """

    name = "LIME"

    def __init__(self, n_hops: int = 2, reciprocal: bool = True):
        self.n_hops = n_hops
        self.reciprocal = reciprocal
        self._seeds: np.ndarray | None = None

    def set_seeds(self, seed_pairs: np.ndarray) -> "LIMEAligner":
        """Provide supervised anchor links (k × 2 array)."""
        seeds = np.asarray(seed_pairs, dtype=np.int64)
        if seeds.ndim != 2 or seeds.shape[1] != 2:
            raise GraphError("seed pairs must be a k x 2 array")
        self._seeds = seeds
        return self

    def _align(self, source: AttributedGraph, target: AttributedGraph):
        if source.features is None or target.features is None:
            raise GraphError("LIME requires features on both graphs")
        if self._seeds is None or self._seeds.shape[0] < 2:
            raise GraphError("LIME is supervised; call set_seeds() first")
        feats_s, feats_t = pad_features_to_common_dim(
            source.features, target.features
        )
        emb_s = row_normalize(sgc_propagate(source.adjacency, feats_s, self.n_hops))
        emb_t = row_normalize(sgc_propagate(target.adjacency, feats_t, self.n_hops))
        # Procrustes on the seed pairs: min_Q ||emb_s[seeds] Q - emb_t[seeds]||
        a = emb_s[self._seeds[:, 0]]
        b = emb_t[self._seeds[:, 1]]
        u, _, vt = np.linalg.svd(a.T @ b, full_matrices=False)
        rotation = u @ vt
        plan = (emb_s @ rotation) @ emb_t.T
        if self.reciprocal:
            plan = 0.5 * (_row_softmax(plan) + _row_softmax(plan.T).T)
        return plan, {"n_seeds": self._seeds.shape[0]}


def _row_softmax(matrix: np.ndarray, temperature: float = 0.05) -> np.ndarray:
    logits = matrix / temperature
    logits -= logits.max(axis=1, keepdims=True)
    exp = np.exp(logits)
    return exp / exp.sum(axis=1, keepdims=True)


_PROJECTION_CACHE: dict[tuple[int, int, int], np.ndarray] = {}


def _fixed_projection(in_dim: int, out_dim: int, seed: int) -> Tensor:
    """Deterministic random projection (shared across epochs)."""
    key = (in_dim, out_dim, seed)
    if key not in _PROJECTION_CACHE:
        rng = check_random_state(seed)
        _PROJECTION_CACHE[key] = rng.standard_normal((in_dim, out_dim)) / np.sqrt(
            in_dim
        )
    return Tensor(_PROJECTION_CACHE[key])
