"""WAlign baseline (Gao et al., KDD 2021), mechanism-preserving version.

WAlign trains a lightweight weight-shared GCN whose embedding
distributions across the two graphs are pulled together by a
Wasserstein-distance discriminator; candidate correspondences derived
from the aligned embeddings then refine the network via a ranking loss.

Our re-implementation keeps both mechanisms with a simpler critic:

* the discriminator is replaced by a *sliced Wasserstein* penalty —
  1-D Wasserstein distances between the two embedding clouds along
  random projections (an unbiased surrogate of the W1 critic that needs
  no inner adversarial loop and is differentiable through sorting);
* pseudo correspondences are mutual nearest neighbours refreshed every
  few epochs, trained with the same margin ranking loss as GCNAlign.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.functional import l2_normalize, margin_ranking_loss
from repro.autodiff.optim import Adam
from repro.autodiff.tensor import Tensor
from repro.baselines.base import Aligner, pad_features_to_common_dim
from repro.baselines.gcn_align import _cosine, _mutual_nearest_pairs, _repeat_rows
from repro.exceptions import GraphError
from repro.gnn.gcn import GCN, dense_normalized_adjacency
from repro.graphs.graph import AttributedGraph
from repro.utils.random import check_random_state, spawn_seeds


class WAlignAligner(Aligner):
    """Shared GCN + sliced-Wasserstein critic + pseudo-pair ranking."""

    name = "WAlign"

    def __init__(
        self,
        hidden_dim: int = 64,
        out_dim: int = 32,
        n_epochs: int = 60,
        n_projections: int = 16,
        wasserstein_weight: float = 1.0,
        n_pseudo_pairs: int = 128,
        n_negatives: int = 5,
        margin: float = 1.0,
        lr: float = 0.005,
        refresh_every: int = 10,
        seed: int = 0,
    ):
        self.hidden_dim = hidden_dim
        self.out_dim = out_dim
        self.n_epochs = n_epochs
        self.n_projections = n_projections
        self.wasserstein_weight = wasserstein_weight
        self.n_pseudo_pairs = n_pseudo_pairs
        self.n_negatives = n_negatives
        self.margin = margin
        self.lr = lr
        self.refresh_every = refresh_every
        self.seed = seed

    # ------------------------------------------------------------------
    def _align(self, source: AttributedGraph, target: AttributedGraph):
        if source.features is None or target.features is None:
            raise GraphError("WAlign requires features on both graphs")
        feats_s, feats_t = pad_features_to_common_dim(
            source.features, target.features
        )
        seeds = spawn_seeds(self.seed, 2)
        rng = check_random_state(seeds[1])
        encoder = GCN([feats_s.shape[1], self.hidden_dim, self.out_dim], seeds[0])
        adj_s = dense_normalized_adjacency(source)
        adj_t = dense_normalized_adjacency(target)
        optimizer = Adam(encoder.parameters(), lr=self.lr)

        pseudo = None
        losses: list[float] = []
        for epoch in range(self.n_epochs):
            emb_s = encoder(adj_s, Tensor(feats_s))
            emb_t = encoder(adj_t, Tensor(feats_t))
            loss = self.wasserstein_weight * self._sliced_wasserstein(
                emb_s, emb_t, rng
            )
            if pseudo is None or epoch % self.refresh_every == 0:
                pseudo = _mutual_nearest_pairs(
                    emb_s.data, emb_t.data, self.n_pseudo_pairs
                )
            if pseudo.shape[0]:
                loss = loss + self._ranking_loss(
                    emb_s, emb_t, pseudo, rng, target.n_nodes
                )
            encoder.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())

        emb_s = encoder(adj_s, Tensor(feats_s)).data
        emb_t = encoder(adj_t, Tensor(feats_t)).data
        plan = _cosine(emb_s, emb_t)
        return plan, {"losses": losses}

    # ------------------------------------------------------------------
    def _sliced_wasserstein(self, emb_s: Tensor, emb_t: Tensor, rng) -> Tensor:
        """Mean 1-D W1 distance over random projection directions.

        For clouds of different sizes, both projections are resampled to
        a common quantile grid through fixed (detached) sorting indices;
        gradients flow through the gathered coordinates.
        """
        dim = emb_s.shape[1]
        directions = rng.standard_normal((dim, self.n_projections))
        directions /= np.linalg.norm(directions, axis=0, keepdims=True)
        proj_s = emb_s @ Tensor(directions)  # (n, P)
        proj_t = emb_t @ Tensor(directions)  # (m, P)
        n, m = proj_s.shape[0], proj_t.shape[0]
        grid = min(n, m)
        total = None
        for p in range(self.n_projections):
            col_s = proj_s[:, p]
            col_t = proj_t[:, p]
            order_s = np.argsort(col_s.data)
            order_t = np.argsort(col_t.data)
            idx_s = order_s[_quantile_indices(n, grid)]
            idx_t = order_t[_quantile_indices(m, grid)]
            diff = col_s[idx_s] - col_t[idx_t]
            dist = diff.abs().mean()
            total = dist if total is None else total + dist
        return total * (1.0 / self.n_projections)

    def _ranking_loss(self, emb_s, emb_t, pseudo, rng, n_target):
        emb_s_n = l2_normalize(emb_s)
        emb_t_n = l2_normalize(emb_t)
        src_idx, tgt_idx = pseudo[:, 0], pseudo[:, 1]
        pos_scores = (emb_s_n[src_idx] * emb_t_n[tgt_idx]).sum(axis=1)
        neg_idx = rng.integers(0, n_target, size=src_idx.shape[0] * self.n_negatives)
        anchor_rep = emb_s_n[np.repeat(src_idx, self.n_negatives)]
        neg_scores = (anchor_rep * emb_t_n[neg_idx]).sum(axis=1)
        pos_rep = _repeat_rows(pos_scores, self.n_negatives)
        return margin_ranking_loss(pos_rep, neg_scores, margin=self.margin)


def _quantile_indices(size: int, grid: int) -> np.ndarray:
    """Indices sampling ``grid`` evenly-spaced quantiles of a sorted array."""
    return np.minimum(
        (np.linspace(0.0, 1.0, grid, endpoint=False) * size).astype(np.int64),
        size - 1,
    )
