"""REGAL baseline (Heimann et al., CIKM 2018) — xNetMF embeddings.

Representation-learning alignment: node identities are built from
log-binned degree histograms of the k-hop neighbourhood (optionally
fused with attribute distances), embedded jointly across both graphs by
the landmark-based implicit factorisation of xNetMF, and matched by
embedding similarity.  Fast but structure-signature based, hence the
modest accuracy the paper reports.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import Aligner, pad_features_to_common_dim
from repro.graphs.graph import AttributedGraph
from repro.graphs.normalization import row_normalize
from repro.utils.random import check_random_state


class REGALAligner(Aligner):
    """xNetMF-style joint embedding + cosine matching."""

    name = "REGAL"

    def __init__(
        self,
        max_hops: int = 2,
        hop_discount: float = 0.5,
        n_landmarks: int = 64,
        gamma_struct: float = 1.0,
        gamma_attr: float = 1.0,
        use_features: bool = True,
        seed: int = 0,
    ):
        self.max_hops = max_hops
        self.hop_discount = hop_discount
        self.n_landmarks = n_landmarks
        self.gamma_struct = gamma_struct
        self.gamma_attr = gamma_attr
        self.use_features = use_features
        self.seed = seed

    # ------------------------------------------------------------------
    def _align(self, source: AttributedGraph, target: AttributedGraph):
        sig_s = self._degree_signatures(source)
        sig_t = self._degree_signatures(target)
        width = max(sig_s.shape[1], sig_t.shape[1])
        sig_s = _pad_cols(sig_s, width)
        sig_t = _pad_cols(sig_t, width)

        attrs = None
        if (
            self.use_features
            and source.features is not None
            and target.features is not None
        ):
            feats_s, feats_t = pad_features_to_common_dim(
                source.features, target.features
            )
            attrs = (row_normalize(feats_s), row_normalize(feats_t))

        signatures = np.vstack([sig_s, sig_t])
        attributes = None if attrs is None else np.vstack(attrs)
        embeddings = self._xnetmf_embed(signatures, attributes)
        n = source.n_nodes
        emb_s = row_normalize(embeddings[:n])
        emb_t = row_normalize(embeddings[n:])
        plan = emb_s @ emb_t.T
        return plan, {"embedding_dim": embeddings.shape[1]}

    # ------------------------------------------------------------------
    def _degree_signatures(self, graph: AttributedGraph) -> np.ndarray:
        """Log-binned degree histograms of each node's k-hop neighbours."""
        degrees = graph.degrees
        max_degree = max(int(degrees.max()), 1) if degrees.size else 1
        n_bins = int(np.ceil(np.log2(max_degree + 1))) + 1
        binned = np.minimum(
            np.floor(np.log2(np.maximum(degrees, 1))).astype(np.int64),
            n_bins - 1,
        )
        one_hot = sp.csr_array(
            sp.coo_array(
                (
                    np.ones(graph.n_nodes),
                    (np.arange(graph.n_nodes), binned),
                ),
                shape=(graph.n_nodes, n_bins),
            )
        )
        adj = graph.adjacency
        signature = np.zeros((graph.n_nodes, n_bins))
        reach = one_hot
        for hop in range(1, self.max_hops + 1):
            reach = sp.csr_array(adj @ reach)
            signature += (self.hop_discount ** (hop - 1)) * reach.toarray()
        return signature

    def _xnetmf_embed(
        self, signatures: np.ndarray, attributes: np.ndarray | None
    ) -> np.ndarray:
        """Landmark-based implicit matrix factorisation."""
        rng = check_random_state(self.seed)
        n_total = signatures.shape[0]
        p = min(self.n_landmarks, n_total)
        landmarks = rng.choice(n_total, size=p, replace=False)
        c = self._similarity_to(signatures, attributes, landmarks)
        w = c[landmarks]  # p x p similarity among landmarks
        # Y = C U S^{-1/2} from the SVD of the landmark block
        u, s, _ = np.linalg.svd(w, full_matrices=False)
        keep = s > 1e-10
        factors = u[:, keep] / np.sqrt(s[keep])
        return c @ factors

    def _similarity_to(
        self,
        signatures: np.ndarray,
        attributes: np.ndarray | None,
        landmarks: np.ndarray,
    ) -> np.ndarray:
        struct_dist = _sq_distances(signatures, signatures[landmarks])
        logits = -self.gamma_struct * struct_dist
        if attributes is not None:
            attr_dist = 1.0 - attributes @ attributes[landmarks].T
            logits = logits - self.gamma_attr * attr_dist
        return np.exp(logits)


def _sq_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    sq_a = np.sum(a**2, axis=1)[:, None]
    sq_b = np.sum(b**2, axis=1)[None, :]
    return np.maximum(sq_a + sq_b - 2.0 * a @ b.T, 0.0)


def _pad_cols(matrix: np.ndarray, width: int) -> np.ndarray:
    if matrix.shape[1] == width:
        return matrix
    out = np.zeros((matrix.shape[0], width))
    out[:, : matrix.shape[1]] = matrix
    return out
