"""GATAlign baseline (paper Sec. V-A): GCNAlign with a GAT encoder.

Identical training loop to :class:`GCNAlignAligner` but the shared
encoder is a graph attention network, matching the paper's description
("architecture similar to GCNAlign ... but uses Graph Attention Network
for node embedding learning").
"""

from __future__ import annotations

from repro.baselines.gcn_align import GCNAlignAligner
from repro.gnn.gat import GAT
from repro.graphs.graph import AttributedGraph


class GATAlignAligner(GCNAlignAligner):
    """Weight-shared GAT + margin ranking on pseudo-seeds."""

    name = "GATAlign"

    def _build_encoder(self, in_dim: int, seed):
        return GAT([in_dim, self.hidden_dim, self.out_dim], seed=seed)

    def _adjacency_operator(self, graph: AttributedGraph):
        # GAT layers consume the raw adjacency as an attention mask
        return graph.dense_adjacency()
