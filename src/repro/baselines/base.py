"""Common aligner interface.

Every method — SLOTAlign and the seven baselines — exposes
``fit(source, target) -> AlignmentResult`` so the experiment harness
can treat them uniformly.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.result import AlignmentResult
from repro.graphs.graph import AttributedGraph
from repro.graphs.normalization import row_normalize
from repro.utils.timer import Timer


class Aligner(abc.ABC):
    """Abstract unsupervised graph aligner."""

    name: str = "aligner"

    def fit(
        self, source: AttributedGraph, target: AttributedGraph
    ) -> AlignmentResult:
        """Align ``source`` to ``target``; returns a scored plan."""
        with Timer() as timer:
            plan, extras = self._align(source, target)
        return AlignmentResult(
            plan=np.asarray(plan, dtype=np.float64),
            runtime=timer.elapsed,
            method=self.name,
            extras=extras,
        )

    @abc.abstractmethod
    def _align(
        self, source: AttributedGraph, target: AttributedGraph
    ) -> tuple[np.ndarray, dict]:
        """Return ``(plan, extras)``; implemented by each method."""


def cosine_similarity_matrix(
    source_features: np.ndarray, target_features: np.ndarray
) -> np.ndarray:
    """Cross-graph cosine similarity; requires equal feature dims."""
    return row_normalize(source_features) @ row_normalize(target_features).T


def pad_features_to_common_dim(
    source_features: np.ndarray, target_features: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Zero-pad the narrower feature matrix to the wider one's dim.

    The cross-compare baselines need *some* way to proceed under
    feature truncation/compression; zero-padding is the neutral choice
    (and, as the paper shows, still fails — the coordinates no longer
    correspond).
    """
    ds = source_features.shape[1]
    dt = target_features.shape[1]
    if ds == dt:
        return source_features, target_features
    width = max(ds, dt)
    padded_s = np.zeros((source_features.shape[0], width))
    padded_s[:, :ds] = source_features
    padded_t = np.zeros((target_features.shape[0], width))
    padded_t[:, :dt] = target_features
    return padded_s, padded_t
