"""FusedGW baseline (Titouan et al., ICML 2019).

Fused Gromov-Wasserstein: manually-constructed cost matrices combining
a cross-graph feature cost with the adjacency GW term.  Because the
feature cost compares raw features across graphs it degrades under any
feature-space misalignment — the fragility SLOTAlign removes.
"""

from __future__ import annotations

from repro.baselines.base import Aligner, pad_features_to_common_dim
from repro.exceptions import GraphError
from repro.graphs.graph import AttributedGraph
from repro.ot.fused import feature_cost_matrix, fused_gromov_wasserstein


class FusedGWAligner(Aligner):
    """Proximal fused-GW with squared-Euclidean feature cost."""

    name = "FusedGW"

    def __init__(
        self,
        alpha: float = 0.5,
        step_size: float = 0.01,
        max_iter: int = 100,
        inner_iter: int = 50,
        metric: str = "cosine",
    ):
        self.alpha = alpha
        self.step_size = step_size
        self.max_iter = max_iter
        self.inner_iter = inner_iter
        self.metric = metric

    def _align(self, source: AttributedGraph, target: AttributedGraph):
        if source.features is None or target.features is None:
            raise GraphError("FusedGW requires features on both graphs")
        feats_s, feats_t = pad_features_to_common_dim(
            source.features, target.features
        )
        cost = feature_cost_matrix(feats_s, feats_t, metric=self.metric)
        result = fused_gromov_wasserstein(
            cost,
            source.dense_adjacency(),
            target.dense_adjacency(),
            alpha=self.alpha,
            step_size=self.step_size,
            max_iter=self.max_iter,
            inner_iter=self.inner_iter,
        )
        return result.plan, {
            "fgw_distance": result.distance,
            "converged": result.converged,
        }
