"""GWD baseline (Xu et al., ICML 2019).

Gromov-Wasserstein alignment with the raw adjacency matrices as cost
matrices — the plain-graph OT method SLOTAlign generalises.  Immune to
feature inconsistency (features are never read) but fragile to
structure noise, per Fig. 3/6.
"""

from __future__ import annotations

from repro.baselines.base import Aligner
from repro.graphs.graph import AttributedGraph
from repro.ot.gromov import proximal_gromov_wasserstein


class GWDAligner(Aligner):
    """Proximal-point GW with ``D = A`` on both sides."""

    name = "GWD"

    def __init__(
        self,
        step_size: float = 0.01,
        max_iter: int = 100,
        inner_iter: int = 50,
    ):
        self.step_size = step_size
        self.max_iter = max_iter
        self.inner_iter = inner_iter

    def _align(self, source: AttributedGraph, target: AttributedGraph):
        result = proximal_gromov_wasserstein(
            source.dense_adjacency(),
            target.dense_adjacency(),
            step_size=self.step_size,
            max_iter=self.max_iter,
            inner_iter=self.inner_iter,
        )
        return result.plan, {
            "gw_distance": result.distance,
            "converged": result.converged,
        }
