"""Baseline aligners: the paper's seven competitors plus KG methods."""

from repro.baselines.base import Aligner, cosine_similarity_matrix
from repro.baselines.knn import KNNAligner
from repro.baselines.gwd import GWDAligner
from repro.baselines.fusedgw import FusedGWAligner
from repro.baselines.regal import REGALAligner
from repro.baselines.gcn_align import GCNAlignAligner
from repro.baselines.gat_align import GATAlignAligner
from repro.baselines.walign import WAlignAligner
from repro.baselines.kg_methods import (
    MultiKEAligner,
    EVAAligner,
    SelfKGAligner,
    LIMEAligner,
)

__all__ = [
    "Aligner",
    "cosine_similarity_matrix",
    "KNNAligner",
    "GWDAligner",
    "FusedGWAligner",
    "REGALAligner",
    "GCNAlignAligner",
    "GATAlignAligner",
    "WAlignAligner",
    "MultiKEAligner",
    "EVAAligner",
    "SelfKGAligner",
    "LIMEAligner",
]
