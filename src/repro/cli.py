"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    List the available dataset stand-ins.
``stats``
    Print structural statistics of a stand-in graph.
``align``
    Build a semi-synthetic pair from a stand-in, run an aligner, print
    Hit@k.  ``--backend`` selects the engine solver backend for the
    SLOTAlign-based methods.
``engine``
    Drive the plan → solve → evaluate pipeline explicitly: pick any
    registered solver backend (``--backend``), inspect the registry
    (``--list-backends``) and see per-stage wall-clock.  ``--partial
    {dummy,unbalanced}`` builds a partially-overlapping pair instead
    (``--overlap`` / ``--anchor-fraction``) and routes the solve
    through the matching partial backend, reporting Hit@k on the
    matchable nodes plus unmatchable-detection precision/recall.
``serve``
    Run the in-process alignment service against a synthetic traffic
    burst and print the service-level report: pairs/sec, plan-cache
    hit rate, p50/p99 latency, coalescing counters and the bitwise
    fidelity check against a direct engine run.
``lint``
    Run the project static-analysis rules (:mod:`repro.analysis`) over
    the package tree: guarded-by, pinned-path, no-densify and
    unused-name.  Exits non-zero on any finding; ``--update-pins``
    deliberately regenerates the bitwise-pin fingerprints.
``experiments``
    Alias for ``python -m repro.experiments`` (see that module).

Unknown ``--method``/``--backend`` values fail with a message naming
the valid choices (never a bare ``KeyError``).
"""

from __future__ import annotations

import argparse

from repro.baselines import (
    FusedGWAligner,
    GWDAligner,
    KNNAligner,
    REGALAligner,
)
from repro.core import SLOTAlign, SLOTAlignConfig
from repro.datasets import (
    available_datasets,
    load_graph_dataset,
    make_semi_synthetic_pair,
    truncate_feature_columns,
)
from repro.engine import (
    DEFAULT_BACKEND,
    AlignmentEngine,
    available_backends,
    available_decoders,
    backend_kind,
    ensure_decoder,
    ensure_dense_backend,
)
from repro.eval import evaluate_plan
from repro.exceptions import ConfigError
from repro.graphs import structural_summary
from repro.scale import DivideAndConquerAligner


def _slot_config(args) -> SLOTAlignConfig:
    if args.hop_mix != 1.0 and not args.cosine_hops:
        raise SystemExit(
            "--hop-mix only takes effect with --cosine-hops "
            "(lazy-walk propagation is part of the renormalised hops)"
        )
    return SLOTAlignConfig(
        n_bases=args.n_bases,
        structure_lr=args.tau,
        sinkhorn_lr=args.eta,
        max_outer_iter=args.iters,
        track_history=False,
        tie_weights=args.tie_weights,
        center_kernels=args.center_kernels,
        renormalize_hops=args.cosine_hops,
        hop_mix=args.hop_mix,
        use_feature_similarity_init=args.similarity_init,
        anneal=not args.similarity_init,
    )


ALIGNER_FACTORIES = {
    "slotalign": lambda args: SLOTAlign(
        _slot_config(args),
        backend=_resolve_backend(args.backend, dense_only=True),
        precision=args.precision,
    ),
    "partitioned": lambda args: DivideAndConquerAligner(
        _slot_config(args),
        max_block_size=args.max_block_size,
        n_parts=args.n_parts,
        executor=args.executor,
        boundary_repair=not args.no_boundary_repair,
        solver_backend=_resolve_backend(args.backend, dense_only=True),
    ),
    "knn": lambda args: KNNAligner(),
    "gwd": lambda args: GWDAligner(max_iter=args.iters),
    "fusedgw": lambda args: FusedGWAligner(max_iter=args.iters),
    "regal": lambda args: REGALAligner(seed=args.seed),
}


def _resolve_method(name: str):
    """The aligner factory for ``name``, or a choice-naming exit."""
    factory = ALIGNER_FACTORIES.get(name)
    if factory is None:
        choices = ", ".join(sorted(ALIGNER_FACTORIES))
        raise SystemExit(
            f"unknown method {name!r}; valid methods: {choices}"
        )
    return factory


def _resolve_backend(name: str, dense_only: bool = False) -> str:
    """Validate a solver-backend name against the engine registry.

    ``dense_only`` additionally rejects backends that return sparse
    results (the SLOTAlign-shaped methods consume dense plans; the
    sparse pipeline is reachable via ``--method partitioned`` or
    ``engine --backend sparse``).  Validation goes through
    ``backend_kind`` so no backend instance is constructed.
    """
    try:
        if dense_only:
            ensure_dense_backend(name, "this method")
        else:
            backend_kind(name)
    except ConfigError as exc:
        raise SystemExit(str(exc)) from exc
    return name


def _resolve_decoder(name: str | None) -> str | None:
    """Validate a decoder name against the engine's decoder registry."""
    if name is None:
        return None
    try:
        return ensure_decoder(name)
    except ConfigError as exc:
        raise SystemExit(str(exc)) from exc


def _add_pair_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by ``align`` and ``engine``: pair construction."""
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--edge-noise", type=float, default=0.0)
    parser.add_argument(
        "--feature-transform",
        choices=("permutation", "truncation", "compression"),
        default=None,
    )
    parser.add_argument("--feature-noise", type=float, default=0.0)
    parser.add_argument("--truncate-columns", type=int, default=0)
    parser.add_argument("--seed", type=int, default=0)


def _add_solver_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by ``align`` and ``engine``: the solver config."""
    parser.add_argument("--n-bases", type=int, default=2)
    parser.add_argument("--tau", type=float, default=0.1)
    parser.add_argument("--eta", type=float, default=0.01)
    parser.add_argument("--iters", type=int, default=150)
    # multi-view base construction (PR 4 degenerate-view fixes)
    parser.add_argument(
        "--tie-weights", action="store_true",
        help="share one structure-weight vector across both graphs",
    )
    parser.add_argument(
        "--center-kernels", action="store_true",
        help="double-centre feature-kernel views (degenerate-view fix)",
    )
    parser.add_argument(
        "--cosine-hops", action="store_true",
        help="row-normalise propagated features per subgraph hop",
    )
    parser.add_argument(
        "--hop-mix", type=float, default=1.0,
        help="lazy-walk mixing coefficient for subgraph hops (with "
        "--cosine-hops); 1.0 is plain propagation",
    )
    parser.add_argument(
        "--similarity-init", action="store_true",
        help="initialise the plan from cross-graph feature similarity "
        "(Sec. V-C; disables annealing)",
    )
    parser.add_argument(
        "--backend", default=DEFAULT_BACKEND,
        help="engine solver backend (see `repro engine --list-backends`)",
    )
    parser.add_argument(
        "--precision", choices=("float64", "float32"), default="float64",
        help="solve-stage working precision; float32 routes to the "
        "reduced-precision fast backends (decisions stay float64)",
    )
    # partitioned-pipeline knobs (method "partitioned" / backend "sparse")
    parser.add_argument(
        "--n-parts", type=int, default=None,
        help="direct k-way partition count (default: size-driven bisection)",
    )
    parser.add_argument("--max-block-size", type=int, default=400)
    parser.add_argument(
        "--executor", choices=("serial", "thread", "process", "auto"),
        default="auto",
        help="block execution backend (results are bitwise-identical)",
    )
    parser.add_argument(
        "--no-boundary-repair", action="store_true",
        help="disable the anchor-based boundary-repair pass",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SLOTAlign reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list available dataset stand-ins")

    stats = sub.add_parser("stats", help="structural statistics of a dataset")
    stats.add_argument("dataset")
    stats.add_argument("--scale", type=float, default=0.1)

    align = sub.add_parser("align", help="align a semi-synthetic pair")
    align.add_argument("dataset")
    align.add_argument(
        "--method", default="slotalign",
        help=f"one of: {', '.join(sorted(ALIGNER_FACTORIES))}",
    )
    _add_pair_options(align)
    _add_solver_options(align)

    engine = sub.add_parser(
        "engine",
        help="run the plan→solve→evaluate pipeline with an explicit backend",
    )
    engine.add_argument(
        "dataset", nargs="?",
        help="dataset stand-in (omit with --list-backends/--list-decoders)",
    )
    engine.add_argument(
        "--list-backends", action="store_true",
        help="list the registered solver backends and exit",
    )
    engine.add_argument(
        "--decoder", default=None,
        help="decode the solved plan with a registered decoder "
        "(row-argmax / mutual-argmax / hungarian / mea); default: rank "
        "the plan posterior directly",
    )
    engine.add_argument(
        "--list-decoders", action="store_true",
        help="list the registered plan decoders and exit",
    )
    engine.add_argument(
        "--partial", choices=("dummy", "unbalanced"), default=None,
        help="build a partially-overlapping pair and solve it with the "
        "matching partial backend (partial-dummy / partial-unbalanced)",
    )
    engine.add_argument(
        "--overlap", type=float, default=0.8,
        help="fraction of nodes with a counterpart on both sides "
        "(with --partial)",
    )
    engine.add_argument(
        "--anchor-fraction", type=float, default=0.0,
        help="fraction of the ground truth revealed as anchor seeds "
        "(with --partial)",
    )
    engine.add_argument(
        "--partial-mass", type=float, default=None,
        help="transported-mass budget in (0, 1] (default: the pair's "
        "actual matchable fraction)",
    )
    engine.add_argument(
        "--partial-rho", type=float, default=1.0,
        help="KL marginal-relaxation strength for --partial unbalanced",
    )
    _add_pair_options(engine)
    _add_solver_options(engine)

    serve = sub.add_parser(
        "serve",
        help="drive the alignment service with synthetic traffic",
    )
    serve.add_argument("dataset")
    serve.add_argument(
        "--n-jobs", type=int, default=24,
        help="total alignment requests in the burst",
    )
    serve.add_argument(
        "--n-distinct", type=int, default=4,
        help="distinct pairs the requests cycle over (repeats hit the "
        "plan cache)",
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="worker-thread count"
    )
    serve.add_argument(
        "--max-batch", type=int, default=8,
        help="largest coalesced batch one worker may solve",
    )
    serve.add_argument(
        "--iters", type=int, default=25,
        help="outer-iteration budget per request",
    )
    serve.add_argument("--scale", type=float, default=0.05)
    serve.add_argument("--seed", type=int, default=0)

    lint = sub.add_parser(
        "lint",
        help="run the project static-analysis rules (CI gate)",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the repro package; "
        "stale-pin verification only runs on full-tree lints)",
    )
    lint.add_argument(
        "--update-pins", action="store_true",
        help="regenerate src/repro/analysis/pins.json from the tree's "
        "`#: pinned` markers (a deliberate re-pin), then lint",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _build_pair(args):
    graph = load_graph_dataset(args.dataset, scale=args.scale)
    if args.truncate_columns:
        graph = truncate_feature_columns(graph, args.truncate_columns)
    return make_semi_synthetic_pair(
        graph,
        edge_noise=args.edge_noise,
        feature_transform=args.feature_transform,
        feature_noise=args.feature_noise,
        seed=args.seed,
    )


_ENGINE_METHODS = ("partitioned", "slotalign")
"""``align`` methods that consume the ``--backend`` selection."""


def _run_align(args) -> int:
    if args.method not in _ENGINE_METHODS and args.backend != DEFAULT_BACKEND:
        raise SystemExit(
            f"--backend only applies to the engine-routed methods "
            f"({', '.join(_ENGINE_METHODS)}); method {args.method!r} "
            "ignores it"
        )
    if args.precision != "float64" and args.method != "slotalign":
        raise SystemExit(
            "--precision float32 only applies to the dense engine path "
            f"(method slotalign); method {args.method!r} ignores it"
        )
    pair = _build_pair(args)
    aligner = _resolve_method(args.method)(args)
    result = aligner.fit(pair.source, pair.target)
    print(f"method   {args.method}")
    print(f"runtime  {result.runtime:.2f}s")
    if args.method == "partitioned":
        repair = result.extras.get("repair", {})
        print(f"parts    {result.extras['n_parts']}")
        print(f"executor {result.extras['executor']}")
        print(f"patched  {repair.get('n_patched', 0)}")
    for key, value in evaluate_plan(
        result.plan, pair.ground_truth, ks=(1, 5, 10)
    ).items():
        print(f"{key:8s} {value:.2f}")
    return 0


def _run_engine_partial(args) -> int:
    """The ``engine --partial`` path: partial pair + partial backend."""
    from dataclasses import replace

    from repro.datasets import PartialPairSpec, make_partial_pair
    from repro.eval import unmatchable_detection

    if args.backend != DEFAULT_BACKEND:
        raise SystemExit(
            "--partial selects its own backend (partial-dummy / "
            "partial-unbalanced); drop --backend"
        )
    if args.precision != "float64":
        raise SystemExit(
            "the partial backends have no float32 variant; drop --precision"
        )
    graph = load_graph_dataset(args.dataset, scale=args.scale)
    if args.truncate_columns:
        graph = truncate_feature_columns(graph, args.truncate_columns)
    spec = PartialPairSpec(
        overlap=args.overlap, anchor_fraction=args.anchor_fraction
    )
    pair = make_partial_pair(
        graph,
        spec,
        edge_noise=args.edge_noise,
        feature_transform=args.feature_transform,
        feature_noise=args.feature_noise,
        seed=args.seed,
    )
    mass = (
        args.partial_mass
        if args.partial_mass is not None
        else float(pair.source_matchable.mean())
    )
    config = replace(
        _slot_config(args), partial_mass=mass, partial_rho=args.partial_rho
    )
    backend = f"partial-{args.partial}"
    anchors = pair.anchors if pair.anchors.size else None
    engine = AlignmentEngine(
        config, backend=backend, decoder=_resolve_decoder(args.decoder)
    )
    run = engine.run(
        pair.source, pair.target, pair.ground_truth, ks=(1, 5, 10),
        anchors=anchors,
    )
    partial = run.result.extras["partial"]
    print(f"backend  {backend}")
    if run.decoded is not None:
        print(
            f"decoder  {run.decoded.decoder}  "
            f"(matched {run.decoded.n_matched}/{run.decoded.n_source})"
        )
    print(f"overlap  {pair.overlap_fraction:.3f}  (mass budget {mass:.3f})")
    print(f"anchors  {0 if anchors is None else anchors.shape[0]}")
    for stage, seconds in run.stage_seconds.items():
        print(f"{stage:8s} {seconds:.3f}s")
    for key, value in run.metrics.items():
        print(f"{key:8s} {value:.2f}")
    print(f"matched  {partial['matched_mass']:.3f}")
    detection = unmatchable_detection(
        partial["source_unmatchable"], pair.source_matchable
    )
    print(
        f"unmatchable-detection  precision {detection['precision']:.2f}  "
        f"recall {detection['recall']:.2f}  "
        f"AP {detection['average_precision']:.2f}"
    )
    return 0


def _run_engine(args) -> int:
    if args.list_backends:
        for name, description in available_backends().items():
            print(f"{name:16s} {description}")
        return 0
    if args.list_decoders:
        for name, description in available_decoders().items():
            print(f"{name:16s} {description}")
        return 0
    if args.dataset is None:
        raise SystemExit(
            "engine: a dataset is required unless --list-backends/"
            "--list-decoders"
        )
    if args.partial:
        return _run_engine_partial(args)
    backend = _resolve_backend(args.backend)
    decoder = _resolve_decoder(args.decoder)
    pair = _build_pair(args)
    backend_options = {}
    if backend == "sparse":
        backend_options = {
            "n_parts": args.n_parts,
            "max_block_size": args.max_block_size,
            "executor": args.executor,
            "boundary_repair": not args.no_boundary_repair,
        }
    engine = AlignmentEngine(
        _slot_config(args), backend=backend, backend_options=backend_options,
        decoder=decoder, precision=args.precision,
    )
    run = engine.run(
        pair.source, pair.target, pair.ground_truth, ks=(1, 5, 10)
    )
    solved = getattr(run.result, "extras", {}).get("backend", backend)
    print(f"backend  {solved}")
    if args.precision != "float64":
        print(f"precision {args.precision}")
    if run.decoded is not None:
        print(
            f"decoder  {run.decoded.decoder}  "
            f"(matched {run.decoded.n_matched}/{run.decoded.n_source})"
        )
    for stage, seconds in run.stage_seconds.items():
        print(f"{stage:8s} {seconds:.3f}s")
    extras = getattr(run.result, "extras", {})
    if backend == "sparse":
        print(f"parts    {extras.get('n_parts', 1)}")
    elif "selected_start" in extras:
        print(f"start    {extras['selected_start']}")
    for key, value in run.metrics.items():
        print(f"{key:8s} {value:.2f}")
    return 0


def _run_serve(args) -> int:
    # lazy import: the serving stack is only needed by this subcommand
    from repro.experiments.serve_traffic import (
        format_serve_report,
        run_serve_traffic,
    )

    report = run_serve_traffic(
        dataset=args.dataset,
        scale=args.scale,
        seed=args.seed,
        n_jobs=args.n_jobs,
        n_distinct=args.n_distinct,
        workers=args.workers,
        max_batch=args.max_batch,
        iters=args.iters,
    )
    print(format_serve_report(report))
    return 0 if report["single_pair_bitwise_equal"] else 1


def _run_lint(args) -> int:
    # lazy import: the analysis stack is only needed by this subcommand
    from pathlib import Path

    from repro.analysis import default_rules, run_lint, update_pins
    from repro.analysis.pins import PinnedPathRule

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.rule_id:16s} {rule.description}")
        return 0
    if args.update_pins:
        pins = update_pins()
        print(f"pinned {len(pins)} definitions -> src/repro/analysis/pins.json")
    roots = [Path(p) for p in args.paths] or [None]
    findings = []
    for root in roots:
        rules = default_rules()
        if root is not None:
            # partial-tree runs cannot tell a stale pin from an unseen one
            rules = [
                PinnedPathRule(check_stale=False)
                if isinstance(rule, PinnedPathRule)
                else rule
                for rule in rules
            ]
        findings.extend(run_lint(root=root, rules=rules))
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"repro lint: {len(findings)} finding(s)")
        return 1
    print("repro lint: clean")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        catalogue = available_datasets()
        print("graphs:", ", ".join(catalogue["graphs"]))
        print("pairs: ", ", ".join(catalogue["pairs"]))
        return 0
    if args.command == "stats":
        graph = load_graph_dataset(args.dataset, scale=args.scale)
        for key, value in structural_summary(graph).items():
            print(f"{key:18s} {value:.4f}")
        return 0
    if args.command == "align":
        return _run_align(args)
    if args.command == "engine":
        return _run_engine(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "lint":
        return _run_lint(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
