"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    List the available dataset stand-ins.
``stats``
    Print structural statistics of a stand-in graph.
``align``
    Build a semi-synthetic pair from a stand-in, run an aligner, print
    Hit@k.
``experiments``
    Alias for ``python -m repro.experiments`` (see that module).
"""

from __future__ import annotations

import argparse
import sys

from repro.baselines import (
    FusedGWAligner,
    GWDAligner,
    KNNAligner,
    REGALAligner,
)
from repro.core import SLOTAlign, SLOTAlignConfig
from repro.datasets import (
    available_datasets,
    load_graph_dataset,
    make_semi_synthetic_pair,
    truncate_feature_columns,
)
from repro.eval import evaluate_plan
from repro.graphs import structural_summary
from repro.scale import DivideAndConquerAligner


def _slot_config(args) -> SLOTAlignConfig:
    if args.hop_mix != 1.0 and not args.cosine_hops:
        raise SystemExit(
            "--hop-mix only takes effect with --cosine-hops "
            "(lazy-walk propagation is part of the renormalised hops)"
        )
    return SLOTAlignConfig(
        n_bases=args.n_bases,
        structure_lr=args.tau,
        sinkhorn_lr=args.eta,
        max_outer_iter=args.iters,
        track_history=False,
        tie_weights=args.tie_weights,
        center_kernels=args.center_kernels,
        renormalize_hops=args.cosine_hops,
        hop_mix=args.hop_mix,
        use_feature_similarity_init=args.similarity_init,
        anneal=not args.similarity_init,
    )


ALIGNER_FACTORIES = {
    "slotalign": lambda args: SLOTAlign(_slot_config(args)),
    "partitioned": lambda args: DivideAndConquerAligner(
        _slot_config(args),
        max_block_size=args.max_block_size,
        n_parts=args.n_parts,
        executor=args.executor,
        boundary_repair=not args.no_boundary_repair,
    ),
    "knn": lambda args: KNNAligner(),
    "gwd": lambda args: GWDAligner(max_iter=args.iters),
    "fusedgw": lambda args: FusedGWAligner(max_iter=args.iters),
    "regal": lambda args: REGALAligner(seed=args.seed),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SLOTAlign reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list available dataset stand-ins")

    stats = sub.add_parser("stats", help="structural statistics of a dataset")
    stats.add_argument("dataset")
    stats.add_argument("--scale", type=float, default=0.1)

    align = sub.add_parser("align", help="align a semi-synthetic pair")
    align.add_argument("dataset")
    align.add_argument(
        "--method", choices=sorted(ALIGNER_FACTORIES), default="slotalign"
    )
    align.add_argument("--scale", type=float, default=0.05)
    align.add_argument("--edge-noise", type=float, default=0.0)
    align.add_argument(
        "--feature-transform",
        choices=("permutation", "truncation", "compression"),
        default=None,
    )
    align.add_argument("--feature-noise", type=float, default=0.0)
    align.add_argument("--truncate-columns", type=int, default=0)
    align.add_argument("--seed", type=int, default=0)
    align.add_argument("--n-bases", type=int, default=2)
    align.add_argument("--tau", type=float, default=0.1)
    align.add_argument("--eta", type=float, default=0.01)
    align.add_argument("--iters", type=int, default=150)
    # multi-view base construction (PR 4 degenerate-view fixes)
    align.add_argument(
        "--tie-weights", action="store_true",
        help="share one structure-weight vector across both graphs",
    )
    align.add_argument(
        "--center-kernels", action="store_true",
        help="double-centre feature-kernel views (degenerate-view fix)",
    )
    align.add_argument(
        "--cosine-hops", action="store_true",
        help="row-normalise propagated features per subgraph hop",
    )
    align.add_argument(
        "--hop-mix", type=float, default=1.0,
        help="lazy-walk mixing coefficient for subgraph hops (with "
        "--cosine-hops); 1.0 is plain propagation",
    )
    align.add_argument(
        "--similarity-init", action="store_true",
        help="initialise the plan from cross-graph feature similarity "
        "(Sec. V-C; disables annealing)",
    )
    # partitioned-pipeline knobs (method "partitioned")
    align.add_argument(
        "--n-parts", type=int, default=None,
        help="direct k-way partition count (default: size-driven bisection)",
    )
    align.add_argument("--max-block-size", type=int, default=400)
    align.add_argument(
        "--executor", choices=("serial", "thread", "process", "auto"),
        default="auto",
        help="block execution backend (results are bitwise-identical)",
    )
    align.add_argument(
        "--no-boundary-repair", action="store_true",
        help="disable the anchor-based boundary-repair pass",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        catalogue = available_datasets()
        print("graphs:", ", ".join(catalogue["graphs"]))
        print("pairs: ", ", ".join(catalogue["pairs"]))
        return 0
    if args.command == "stats":
        graph = load_graph_dataset(args.dataset, scale=args.scale)
        for key, value in structural_summary(graph).items():
            print(f"{key:18s} {value:.4f}")
        return 0
    if args.command == "align":
        graph = load_graph_dataset(args.dataset, scale=args.scale)
        if args.truncate_columns:
            graph = truncate_feature_columns(graph, args.truncate_columns)
        pair = make_semi_synthetic_pair(
            graph,
            edge_noise=args.edge_noise,
            feature_transform=args.feature_transform,
            feature_noise=args.feature_noise,
            seed=args.seed,
        )
        aligner = ALIGNER_FACTORIES[args.method](args)
        result = aligner.fit(pair.source, pair.target)
        print(f"method   {args.method}")
        print(f"runtime  {result.runtime:.2f}s")
        if args.method == "partitioned":
            repair = result.extras.get("repair", {})
            print(f"parts    {result.extras['n_parts']}")
            print(f"executor {result.extras['executor']}")
            print(f"patched  {repair.get('n_patched', 0)}")
        for key, value in evaluate_plan(
            result.plan, pair.ground_truth, ks=(1, 5, 10)
        ).items():
            print(f"{key:8s} {value:.2f}")
        return 0
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
