"""Job and queue primitives of the alignment service.

A :class:`Job` is one alignment request moving through the service:
``QUEUED → RUNNING → DONE`` on the happy path, ``REJECTED`` when
admission control turns it away at submit time, ``FAILED`` when the
solve raises.  Completion is a :class:`threading.Event`, so any number
of client threads can :meth:`Job.wait` on one job.

:class:`JobQueue` is the FIFO feeding the worker loop.  Beyond the
usual blocking ``get`` it supports :meth:`JobQueue.take_matching` —
remove up to ``limit`` jobs satisfying a predicate while preserving
the relative order of everything left behind — which is what lets a
worker coalesce the compatible same-shape requests behind the head of
the queue into one stacked solve without reordering the rest.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

import numpy as np

from repro.core.config import SLOTAlignConfig
from repro.graphs.graph import AttributedGraph


class JobState(str, Enum):
    """Lifecycle of one alignment request."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    REJECTED = "rejected"


_JOB_IDS = itertools.count(1)


@dataclass
class Job:
    """One alignment request and its lifecycle bookkeeping.

    ``result`` is an :class:`repro.engine.EngineRun` once the job is
    ``DONE`` (plan + metrics + stage timings); ``error`` carries the
    failure or rejection reason otherwise.  Timestamps are
    ``time.perf_counter`` readings, so latencies are exact per-process
    durations rather than wall-clock differences.
    """

    source: AttributedGraph
    target: AttributedGraph
    config: SLOTAlignConfig
    ground_truth: np.ndarray | None = None
    init_plan: np.ndarray | None = None
    tag: str | None = None
    # decoder applied to this job's solved plan, or None to score the
    # plan posterior directly; a per-job *post-solve* concern, so it is
    # deliberately absent from the coalescing compatibility key
    decoder: str | None = None
    # solve-stage working precision ("float64" / "float32"); part of
    # the coalescing compatibility key — a float32 job must never share
    # a lockstep batch with a float64 job
    precision: str = "float64"
    job_id: int = field(default_factory=lambda: next(_JOB_IDS))
    state: JobState = JobState.QUEUED
    result: object = None
    error: str | None = None
    batch_size: int = 0
    submitted_at: float = field(default_factory=time.perf_counter)
    started_at: float | None = None
    finished_at: float | None = None
    _done: threading.Event = field(default_factory=threading.Event, repr=False)

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._done.wait(timeout)

    @property
    def queue_seconds(self) -> float | None:
        """Time spent waiting in the queue (None while still queued)."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def latency_seconds(self) -> float | None:
        """Submit-to-terminal latency (None while in flight)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    # ------------------------------------------------------------------
    def mark_running(self) -> None:
        self.state = JobState.RUNNING
        self.started_at = time.perf_counter()

    def mark_done(self, result, batch_size: int) -> None:
        self.result = result
        self.batch_size = batch_size
        self.state = JobState.DONE
        self.finished_at = time.perf_counter()
        self._done.set()

    def mark_failed(self, error: str) -> None:
        self.error = error
        self.state = JobState.FAILED
        self.finished_at = time.perf_counter()
        self._done.set()

    def mark_rejected(self, reason: str) -> None:
        self.error = reason
        self.state = JobState.REJECTED
        self.finished_at = time.perf_counter()
        self._done.set()


class QueueClosed(RuntimeError):
    """Raised when putting into a queue that has been closed."""


class JobQueue:
    """Thread-safe FIFO of jobs with selective batch extraction."""

    def __init__(self):
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._items: deque[Job] = deque()  #: guarded-by: _lock, _not_empty
        self._closed = False  #: guarded-by: _lock, _not_empty

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def put(self, job: Job) -> None:
        """Append a job; wakes one blocked ``get``."""
        with self._not_empty:
            if self._closed:
                raise QueueClosed("queue is closed")
            self._items.append(job)
            self._not_empty.notify()

    def get(self, timeout: float | None = None) -> Job | None:
        """Pop the head job, blocking while the queue is empty.

        Returns ``None`` once the queue is closed *and* drained (the
        worker-shutdown signal), or on timeout.
        """
        deadline = (
            None if timeout is None else time.perf_counter() + timeout
        )
        with self._not_empty:
            while not self._items:
                if self._closed:
                    return None
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        return None
                self._not_empty.wait(remaining)
            return self._items.popleft()

    def take_matching(
        self, predicate: Callable[[Job], bool], limit: int
    ) -> list[Job]:
        """Remove up to ``limit`` queued jobs satisfying ``predicate``.

        Scans front-to-back (oldest requests coalesce first) and
        preserves the relative order of the jobs left behind, so
        non-matching requests are never starved or reordered.
        """
        if limit <= 0:
            return []
        taken: list[Job] = []
        with self._lock:
            kept: deque[Job] = deque()
            while self._items:
                job = self._items.popleft()
                if len(taken) < limit and predicate(job):
                    taken.append(job)
                else:
                    kept.append(job)
            self._items = kept
        return taken

    def close(self) -> None:
        """Refuse new work and wake every blocked ``get``."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()
