"""Alignment-as-a-service: job queue, admission control, worker pool.

The serving layer (ROADMAP item 1) wraps the unified engine in a
long-lived, in-process service: :class:`AlignmentService` accepts
alignment requests as :class:`Job` handles through a thread-safe FIFO
:class:`JobQueue`, shares one content-keyed plan cache across all
jobs, coalesces compatible same-shape requests into one stacked
lockstep solve (bit-for-bit equal to direct engine runs), and applies
:class:`AdmissionPolicy` budgets at submit time with graceful
rejection.  The ``repro serve`` CLI subcommand and the serving
benchmark (``benchmarks/test_serve_bench.py``) drive it with
synthetic traffic.
"""

from repro.serve.budget import AdmissionPolicy
from repro.serve.jobs import Job, JobQueue, JobState, QueueClosed
from repro.serve.service import AlignmentService, wait_all

__all__ = [
    "AdmissionPolicy",
    "AlignmentService",
    "Job",
    "JobQueue",
    "JobState",
    "QueueClosed",
    "wait_all",
]
