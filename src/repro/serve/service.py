"""The in-process alignment service: queue, workers, coalescing.

:class:`AlignmentService` turns the PR-5 engine into a long-lived
**alignment-as-a-service** endpoint: clients :meth:`~AlignmentService.submit`
graph pairs and get back :class:`~repro.serve.jobs.Job` handles they
can wait on, while a pool of worker threads drains a FIFO
:class:`~repro.serve.jobs.JobQueue`.  Three engine-level properties do
the heavy lifting:

* **shared plan cache** — all jobs plan through one
  :class:`~repro.engine.planning.PlanCache` (the process-wide shared
  cache by default), so repeated or content-equal pairs pay kernel
  construction once, across jobs and across workers (the cache's
  single-flight discipline absorbs concurrent misses);
* **batch coalescing** — a worker that dequeues a job also drains the
  queued jobs *compatible* with it (identical config, identical plan
  shape, dense backend) and solves them as one stacked
  ``(B·R, n, m)`` lockstep batch via
  :func:`~repro.engine.coalesce.solve_coalesced`.  Coalescing is pure
  scheduling: every pair's plan stays bit-for-bit identical to a
  direct :class:`~repro.engine.AlignmentEngine` run;
* **admission control** — every submit is reviewed by an
  :class:`~repro.serve.budget.AdmissionPolicy`; over-budget requests
  complete immediately as ``REJECTED`` with a reason instead of
  entering the queue.

The service is deliberately in-process (no sockets): the CLI's
``repro serve`` subcommand and the serving benchmark drive it with
synthetic traffic, and a network front door would be a thin shim over
exactly this API.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.core.config import SLOTAlignConfig
from repro.engine.backends import DEFAULT_BACKEND, backend_kind, get_backend
from repro.engine.coalesce import solve_coalesced
from repro.engine.precision import (
    DEFAULT_PRECISION,
    backend_for_precision,
    ensure_precision,
)
from repro.engine.decode import ensure_decoder, get_decoder
from repro.engine.evaluate import evaluate_alignment
from repro.engine.pipeline import EngineRun
from repro.engine.planning import (
    PlanCache,
    prepare_problem,
    shared_plan_cache,
)
from repro.graphs.graph import AttributedGraph
from repro.serve.budget import AdmissionPolicy
from repro.serve.jobs import Job, JobQueue, JobState, QueueClosed

_SHARED = object()
"""Sentinel: "use the process-wide shared plan cache"."""


def _percentile(values: list[float], q: float) -> float | None:
    if not values:
        return None
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


class AlignmentService:
    """Long-lived alignment job server over the unified engine.

    Parameters
    ----------
    config:
        Default :class:`SLOTAlignConfig` for jobs submitted without an
        explicit one.
    backend:
        Solver backend for solo (non-coalesced) solves.  Coalescing
        requires a dense backend; with a sparse backend the service
        degrades to solo solves.
    cache:
        :class:`PlanCache` shared by every job.  Defaults to the
        process-wide shared cache; pass ``None`` to disable caching.
    policy:
        :class:`AdmissionPolicy` reviewed at submit time.
    workers:
        Worker-thread count.  One worker keeps completion strictly
        FIFO; more trade ordering for parallel throughput.
    coalesce:
        Whether workers may batch compatible queued jobs into one
        stacked solve.
    max_batch:
        Largest number of jobs one coalesced solve may absorb.
    evaluate_ks:
        ``k`` values for Hits@k when a job carries ground truth.
    decoder:
        Default decoder applied to every solved plan (jobs may
        override per-submit).  ``None`` skips the decode stage and
        scores the plan posterior directly — the pre-decode service,
        bit for bit.  Decoding is per-job and post-solve, so it never
        enters the coalescing compatibility key: jobs wanting
        different decoders still share one stacked solve.
    precision:
        Default solve-stage working precision for jobs submitted
        without an explicit one (``"float64"`` / ``"float32"``).
        Unlike ``decoder``, precision changes the solve itself, so it
        **is** part of the coalescing compatibility key: a float32 job
        never shares a lockstep batch with a float64 job.
    """

    def __init__(
        self,
        config: SLOTAlignConfig | None = None,
        backend: str = DEFAULT_BACKEND,
        cache=_SHARED,
        policy: AdmissionPolicy | None = None,
        workers: int = 1,
        coalesce: bool = True,
        max_batch: int = 8,
        evaluate_ks=(1, 5, 10, 30),
        decoder: str | None = None,
        precision: str = DEFAULT_PRECISION,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.config = config or SLOTAlignConfig()
        self.backend = backend
        self.cache: PlanCache | None = (
            shared_plan_cache() if cache is _SHARED else cache
        )
        self.policy = policy or AdmissionPolicy()
        self.workers = workers
        self.coalesce = coalesce and backend_kind(backend) == "dense"
        self.max_batch = max_batch
        self.evaluate_ks = tuple(evaluate_ks)
        self.decoder = ensure_decoder(decoder) if decoder is not None else None
        self.precision = ensure_precision(precision).name
        # fail a bad backend/precision combination at construction, not
        # in a worker thread mid-solve
        backend_for_precision(backend, self.precision)
        self._queue = JobQueue()
        self._decoder_lock = threading.Lock()
        # decoder instances are stateless but construction goes through
        # the registry; memoised per name so the per-job decode stage
        # does one dict hit instead of a registry lookup
        self._decoders: dict = {}  #: guarded-by: _decoder_lock
        self._lifecycle_lock = threading.Lock()
        self._threads: list[threading.Thread] = []  #: guarded-by: _lifecycle_lock
        self._stats_lock = threading.Lock()
        self._counters = {  #: guarded-by: _stats_lock
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "rejected": 0,
            "coalesced_batches": 0,
            "coalesced_pairs": 0,
            "solo_pairs": 0,
        }
        self._latencies: list[float] = []  #: guarded-by: _stats_lock

    # ------------------------------------------------------------------
    # lifecycle
    def start(self) -> "AlignmentService":
        """Start the worker pool (idempotent, and safe to race: two
        threads calling ``start`` concurrently spawn one pool)."""
        with self._lifecycle_lock:
            if self._queue.closed:
                raise QueueClosed("service has been stopped")
            if self._threads:
                return self
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"align-serve-{index}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
        return self

    def stop(self) -> None:
        """Graceful shutdown: drain queued jobs, then join the workers.

        Holding the lifecycle lock across the join is safe — workers
        never touch it — and makes concurrent ``stop``/``start`` calls
        serialize instead of racing the pool bookkeeping.
        """
        with self._lifecycle_lock:
            self._queue.close()
            for thread in self._threads:
                thread.join()
            self._threads.clear()

    def __enter__(self) -> "AlignmentService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # client API
    def submit(
        self,
        source: AttributedGraph,
        target: AttributedGraph,
        config: SLOTAlignConfig | None = None,
        ground_truth: np.ndarray | None = None,
        init_plan: np.ndarray | None = None,
        tag: str | None = None,
        decoder: str | None = None,
        precision: str | None = None,
    ) -> Job:
        """Enqueue one alignment request and return its job handle.

        Admission control runs here: an over-budget request returns a
        job already in state ``REJECTED`` (with ``error`` naming the
        violated budget) and never enters the queue.  ``decoder`` and
        ``precision`` override the service defaults for this job only;
        unknown names (or a backend/precision combination with no
        route) fail *here*, synchronously, with the registry's
        choice-naming error.
        """
        if precision is not None:
            precision = ensure_precision(precision).name
            backend_for_precision(self.backend, precision)
        job = Job(
            source=source,
            target=target,
            config=config or self.config,
            ground_truth=ground_truth,
            init_plan=init_plan,
            tag=tag,
            decoder=(
                ensure_decoder(decoder) if decoder is not None else self.decoder
            ),
            precision=precision if precision is not None else self.precision,
        )
        with self._stats_lock:
            self._counters["submitted"] += 1
        reason = self.policy.review(
            source.n_nodes, target.n_nodes, job.config, len(self._queue)
        )
        if reason is not None:
            job.mark_rejected(reason)
            with self._stats_lock:
                self._counters["rejected"] += 1
            return job
        self._queue.put(job)
        return job

    def stats(self) -> dict:
        """Service counters, latency percentiles and cache diagnostics."""
        with self._stats_lock:
            counters = dict(self._counters)
            latencies = list(self._latencies)
        return {
            **counters,
            "queue_depth": len(self._queue),
            "workers": self.workers,
            "latency_seconds": {
                "count": len(latencies),
                "p50": _percentile(latencies, 50),
                "p99": _percentile(latencies, 99),
                "mean": (
                    float(np.mean(latencies)) if latencies else None
                ),
            },
            "cache": self.cache.info() if self.cache is not None else None,
        }

    # ------------------------------------------------------------------
    # worker side
    def _decoder_for(self, name: str):
        """Memoised decoder instance for ``name`` (worker threads race)."""
        with self._decoder_lock:
            instance = self._decoders.get(name)
            if instance is None:
                instance = get_decoder(name)
                self._decoders[name] = instance
        return instance

    def _compatible(self, head: Job, other: Job) -> bool:
        return (
            other.config == head.config
            and other.precision == head.precision
            and other.source.n_nodes == head.source.n_nodes
            and other.target.n_nodes == head.target.n_nodes
        )

    def _worker_loop(self) -> None:
        while True:
            head = self._queue.get()
            if head is None:
                return  # queue closed and drained
            batch = [head]
            if self.coalesce and self.max_batch > 1:
                batch += self._queue.take_matching(
                    lambda job: self._compatible(head, job),
                    self.max_batch - 1,
                )
            self._run_batch(batch)

    def _run_batch(self, batch: list[Job]) -> None:
        # plan stage: per-job, so a malformed request (bad init plan,
        # missing features) fails that job alone and the survivors
        # still solve
        planned: list[tuple[Job, object, float]] = []
        for job in batch:
            job.mark_running()
            t0 = time.perf_counter()
            try:
                problem = prepare_problem(
                    job.source,
                    job.target,
                    job.config,
                    init_plan=job.init_plan,
                    cache=self.cache,
                )
                problem.bases  # force basis construction through the cache
                # validate the initial coupling now: a malformed init
                # plan must fail this job alone, not the whole batch
                problem.initial_coupling(*problem.marginals())
            except Exception as exc:  # noqa: BLE001 - job isolation
                self._finish_failed(job, f"plan failed: {exc!r}")
                continue
            planned.append((job, problem, time.perf_counter() - t0))
        if not planned:
            return

        t0 = time.perf_counter()
        try:
            # the whole batch shares one precision (_compatible keys
            # on it), so the head job's setting drives the solve
            batch_precision = planned[0][0].precision
            if len(planned) > 1:
                results = solve_coalesced(
                    [p for _, p, _ in planned], precision=batch_precision
                )
                with self._stats_lock:
                    self._counters["coalesced_batches"] += 1
                    self._counters["coalesced_pairs"] += len(planned)
            else:
                [(job, problem, _)] = planned
                name, extra = backend_for_precision(
                    self.backend, batch_precision
                )
                backend = get_backend(name, **extra)
                results = [backend.solve(problem)]
                with self._stats_lock:
                    self._counters["solo_pairs"] += 1
        except Exception as exc:  # noqa: BLE001 - job isolation
            for job, _, _ in planned:
                self._finish_failed(job, f"solve failed: {exc!r}")
            return
        solve_seconds = time.perf_counter() - t0

        for (job, problem, plan_seconds), result in zip(planned, results):
            t0 = time.perf_counter()
            decoded = None
            try:
                # decode is per-job (jobs in one coalesced batch may
                # use different decoders) and post-solve, so a bad
                # plan shape fails this job alone
                if job.decoder is not None:
                    decoded = self._decoder_for(job.decoder).decode(
                        result.plan
                    )
            except Exception as exc:  # noqa: BLE001 - job isolation
                self._finish_failed(job, f"decode failed: {exc!r}")
                continue
            t_decode = time.perf_counter()
            try:
                metrics: dict[str, float] = {}
                if job.ground_truth is not None:
                    metrics = evaluate_alignment(
                        decoded if decoded is not None else result,
                        job.ground_truth,
                        ks=self.evaluate_ks,
                    )
            except Exception as exc:  # noqa: BLE001 - job isolation
                self._finish_failed(job, f"evaluate failed: {exc!r}")
                continue
            stage_seconds = {
                "plan": plan_seconds,
                # one lockstep solve advances the whole batch; each
                # job is billed the shared batch wall-clock
                "solve": solve_seconds,
            }
            if decoded is not None:
                stage_seconds["decode"] = t_decode - t0
            stage_seconds["evaluate"] = time.perf_counter() - t_decode
            run = EngineRun(
                result=result,
                metrics=metrics,
                stage_seconds=stage_seconds,
                decoded=decoded,
            )
            job.mark_done(run, batch_size=len(planned))
            with self._stats_lock:
                self._counters["completed"] += 1
                if job.latency_seconds is not None:
                    self._latencies.append(job.latency_seconds)

    def _finish_failed(self, job: Job, error: str) -> None:
        job.mark_failed(error)
        with self._stats_lock:
            self._counters["failed"] += 1


def wait_all(jobs: list[Job], timeout: float | None = None) -> bool:
    """Block until every job is terminal; False if the deadline passes."""
    deadline = None if timeout is None else time.perf_counter() + timeout
    for job in jobs:
        remaining = None
        if deadline is not None:
            remaining = max(0.0, deadline - time.perf_counter())
        if not job.wait(remaining) and not job.done:
            return False
    return True


__all__ = [
    "AlignmentService",
    "JobState",
    "wait_all",
]
