"""Admission control for the alignment service.

A long-lived service cannot let any single request monopolise it: a
pathological pair (huge ``n × m`` plan) or configuration (an unbounded
iteration budget) would head-of-line-block every other client, and an
unbounded queue turns overload into memory exhaustion.  The
:class:`AdmissionPolicy` therefore reviews every request *at submit
time* against three budgets — queue depth, per-job outer-iteration
budget, and per-job plan bytes (the dense ``(n, m)`` iterate dominates
a solve's footprint) — and turns violations into **graceful
rejections**: the job completes immediately in state ``REJECTED`` with
a human-readable reason, instead of raising into the worker loop or
silently queueing work that can never be good.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SLOTAlignConfig

_FLOAT_BYTES = 8  # float64 plan entries


@dataclass(frozen=True)
class AdmissionPolicy:
    """Per-job and queue budgets enforced at submit time.

    Attributes
    ----------
    max_queue_depth:
        Requests admitted but not yet started; the backpressure bound.
    max_outer_iter:
        Largest per-job ``config.max_outer_iter`` accepted — the
        iteration budget a single request may claim from the workers.
    max_plan_bytes:
        Largest dense ``(n, m)`` float64 plan a job may allocate;
        bounds both memory and (quadratically) per-iteration cost.

    Any bound can be disabled with ``None``.
    """

    max_queue_depth: int | None = 256
    max_outer_iter: int | None = 2000
    max_plan_bytes: int | None = 64 * 1024 * 1024

    def review(
        self,
        n_source: int,
        n_target: int,
        config: SLOTAlignConfig,
        queue_depth: int,
    ) -> str | None:
        """The rejection reason for a request, or ``None`` to admit."""
        if (
            self.max_queue_depth is not None
            and queue_depth >= self.max_queue_depth
        ):
            return (
                f"queue full: {queue_depth} jobs waiting "
                f"(max_queue_depth={self.max_queue_depth})"
            )
        if (
            self.max_outer_iter is not None
            and config.max_outer_iter > self.max_outer_iter
        ):
            return (
                f"iteration budget exceeded: requested "
                f"{config.max_outer_iter} outer iterations "
                f"(max_outer_iter={self.max_outer_iter})"
            )
        plan_bytes = n_source * n_target * _FLOAT_BYTES
        if (
            self.max_plan_bytes is not None
            and plan_bytes > self.max_plan_bytes
        ):
            return (
                f"plan too large: {n_source}×{n_target} needs "
                f"{plan_bytes} bytes (max_plan_bytes={self.max_plan_bytes})"
            )
        return None
