"""Multi-seed aggregation for experiment reliability.

The paper reports single-run numbers; for a reproduction on synthetic
stand-ins, seed-to-seed variance matters.  ``repeat_evaluation`` runs
an aligner factory over several seeded pairs and reports mean ± std per
metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.metrics import hits_at_k
from repro.utils.random import spawn_seeds


@dataclass
class AggregateResult:
    """Mean/std/min/max of a metric across seeds."""

    metric: str
    values: list[float]

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values))

    @property
    def low(self) -> float:
        return float(np.min(self.values))

    @property
    def high(self) -> float:
        return float(np.max(self.values))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.metric}: {self.mean:.1f} ± {self.std:.1f}"


def repeat_evaluation(
    pair_factory,
    aligner_factory,
    n_seeds: int = 5,
    seed: int = 0,
    ks=(1, 10),
) -> dict[str, AggregateResult]:
    """Run ``aligner_factory()`` on ``pair_factory(seed)`` for several seeds.

    Parameters
    ----------
    pair_factory:
        Callable ``seed -> AlignmentPair``.
    aligner_factory:
        Callable ``() -> aligner`` (fresh instance per run so no state
        leaks between seeds).
    n_seeds:
        Number of independent repetitions.

    Returns
    -------
    ``{"hits@k": AggregateResult, ...}`` plus a ``"runtime"`` entry.
    """
    if n_seeds < 1:
        raise ValueError(f"n_seeds must be >= 1, got {n_seeds}")
    run_seeds = spawn_seeds(seed, n_seeds)
    per_metric: dict[str, list[float]] = {f"hits@{k}": [] for k in ks}
    per_metric["runtime"] = []
    for run_seed in run_seeds:
        pair = pair_factory(run_seed)
        aligner = aligner_factory()
        result = aligner.fit(pair.source, pair.target)
        for k in ks:
            per_metric[f"hits@{k}"].append(
                hits_at_k(result.plan, pair.ground_truth, k)
            )
        per_metric["runtime"].append(result.runtime)
    return {
        metric: AggregateResult(metric, values)
        for metric, values in per_metric.items()
    }


def format_aggregates(table: dict[str, dict[str, AggregateResult]]) -> str:
    """Render ``{method: {metric: AggregateResult}}`` as mean±std text."""
    lines = []
    for method, metrics in table.items():
        cells = "  ".join(
            f"{name}={agg.mean:.1f}±{agg.std:.1f}" for name, agg in metrics.items()
        )
        lines.append(f"{method}: {cells}")
    return "\n".join(lines)
