"""Paper-fidelity accuracy tracking: SLOTAlign-vs-best-baseline margins.

Runtime has been tracked machine-readably since PR 1
(``BENCH_solver.json`` / ``BENCH_scale.json``); accuracy was only
asserted.  This module gives accuracy the same treatment: every
benchmark that regenerates a paper table reports the margin between
SLOTAlign's Hit@1 and the best baseline's, and the margins accumulate
in ``BENCH_fidelity.json`` at the repo root so a regression shows up as
a sign flip in version control, not only as a red test four minutes
into the suite.

The artefact maps ``table → {slotalign, best_baseline,
best_baseline_name, margin, fixed}``; ``fixed`` records whether the
table is part of the recovered set (margins there must be
non-negative — since PR 4 that is every Table II/III cell) or
tracked-red, in which case the negative margin is recorded honestly
instead of asserted away (see DESIGN.md).
"""

from __future__ import annotations

import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[3]
FIDELITY_JSON = REPO_ROOT / "BENCH_fidelity.json"

METHOD = "SLOTAlign"
METRIC = "hits@1"


def fidelity_margin(
    rows: dict[str, dict[str, float]],
    method: str = METHOD,
    metric: str = METRIC,
) -> dict:
    """Margin of ``method`` over the best other method in a table.

    Parameters
    ----------
    rows:
        ``{method: {metric: value, ...}}`` — one regenerated paper
        table (the ``evaluate_on_pair`` / ``run_table3`` shape).
    """
    if method not in rows:
        raise KeyError(f"{method!r} missing from table ({sorted(rows)})")
    ours = float(rows[method][metric])
    baselines = {
        name: float(row[metric]) for name, row in rows.items() if name != method
    }
    if not baselines:
        raise ValueError("table has no baselines to compare against")
    best_name = max(baselines, key=baselines.get)
    best = baselines[best_name]
    return {
        "slotalign": ours,
        "best_baseline": best,
        "best_baseline_name": best_name,
        "margin": ours - best,
    }


def record_fidelity(
    table_name: str,
    rows: dict[str, dict[str, float]],
    fixed: bool,
    path: Path | None = None,
    method: str = METHOD,
    metric: str = METRIC,
    dataset_scale: float | None = None,
) -> dict:
    """Compute a table's margin and merge it into ``BENCH_fidelity.json``.

    Read-modify-write so independently-run benchmarks (Table II,
    Table III, each subset) contribute to one artefact.  Returns the
    entry written.  ``dataset_scale`` stamps the stand-in scale the
    margin was measured at — the margins are scale-sensitive (the
    recovery is asserted at the benchmark protocol's 0.03, and e.g.
    0.02 flips Table II negative), so an artefact regenerated at a
    different scale must be distinguishable from a regression.
    """
    path = FIDELITY_JSON if path is None else Path(path)
    entry = fidelity_margin(rows, method=method, metric=metric)
    entry["fixed"] = bool(fixed)
    if dataset_scale is not None:
        entry["dataset_scale"] = float(dataset_scale)
    # start from the existing artefact so independently-written cohorts
    # (e.g. the "partial" sweep) survive a tables rewrite, then assert
    # this write's own keys over it
    payload = _load_artifact(path)
    payload["metric"] = metric
    payload.setdefault("tables", {})
    payload["tables"][table_name] = entry
    # the aggregate flag is computed over the current write's scale
    # cohort only: margins are scale-sensitive, so an off-protocol
    # regeneration (e.g. --scale 0.07) must not be able to flip the
    # flag against entries measured at the asserted 0.03 protocol —
    # nor vice versa
    current_scale = entry.get("dataset_scale")
    payload["all_fixed_margins_nonnegative"] = all(
        e["margin"] >= 0
        for e in payload["tables"].values()
        if e.get("fixed") and e.get("dataset_scale") == current_scale
    )
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return entry


def _load_artifact(path: Path) -> dict:
    """The existing artefact as a dict (empty on absence/corruption).

    Every writer merges into the loaded payload instead of rebuilding
    it, so cohorts owned by *other* writers — ``tables`` vs the
    ``partial`` sweep — are never silently dropped by a rewrite.
    """
    if not path.exists():
        return {}
    try:
        existing = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError):
        return {}
    return existing if isinstance(existing, dict) else {}


def record_partial(
    points: list[dict],
    dataset_scale: float | None = None,
    full_bijective_hits1: float | None = None,
    path: Path | None = None,
) -> dict:
    """Merge a partial-overlap sweep cohort into ``BENCH_fidelity.json``.

    ``points`` is the :func:`repro.eval.robustness.run_partial_sweep`
    output (overlap × anchor-fraction grid).  ``full_bijective_hits1``
    stamps the reference ``fused-dense`` Hit@1 on the unperturbed
    bijective pair — the value the overlap=1.0, zero-anchor sweep point
    must reproduce exactly (the parity gate in ``compare_bench.py``).
    """
    path = FIDELITY_JSON if path is None else Path(path)
    cohort: dict = {"points": [dict(point) for point in points]}
    if dataset_scale is not None:
        cohort["dataset_scale"] = float(dataset_scale)
    if full_bijective_hits1 is not None:
        cohort["full_bijective_hits1"] = float(full_bijective_hits1)
    payload = _load_artifact(path)
    payload.setdefault("metric", METRIC)
    payload.setdefault("tables", {})
    payload["partial"] = cohort
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return cohort


def record_decoders(
    pairs: dict[str, dict[str, dict[str, float]]],
    dataset_scale: float | None = None,
    baseline_decoder: str = "row-argmax",
    path: Path | None = None,
) -> dict:
    """Merge a decoder-comparison cohort into ``BENCH_fidelity.json``.

    ``pairs`` maps bench-pair name → decoder name → metric dict (the
    ``evaluate_decoded`` report shape).  The solver runs *once* per
    pair; every decoder consumes the same plan, so the cohort measures
    decode quality at zero solver cost.  Each pair entry is stamped
    with ``improved_over_baseline``: the decoders that beat
    ``baseline_decoder`` on Hit@1 or MRR — the ledger behind the
    PR-9 acceptance gate (``compare_bench.check_decoders`` requires at
    least two pairs where some decoder improves on row-argmax).
    """
    path = FIDELITY_JSON if path is None else Path(path)
    cohort: dict = {"baseline_decoder": baseline_decoder, "pairs": {}}
    if dataset_scale is not None:
        cohort["dataset_scale"] = float(dataset_scale)
    for pair_name, decoders in pairs.items():
        base = decoders.get(baseline_decoder)
        if base is None:
            raise KeyError(
                f"pair {pair_name!r} lacks the baseline decoder "
                f"{baseline_decoder!r} ({sorted(decoders)})"
            )
        improved = sorted(
            name
            for name, report in decoders.items()
            if name != baseline_decoder
            and (
                report.get("hits@1", 0.0) > base.get("hits@1", 0.0)
                or report.get("mrr", 0.0) > base.get("mrr", 0.0)
            )
        )
        cohort["pairs"][pair_name] = {
            "decoders": {
                name: dict(report) for name, report in decoders.items()
            },
            "improved_over_baseline": improved,
        }
    payload = _load_artifact(path)
    payload.setdefault("metric", METRIC)
    payload.setdefault("tables", {})
    payload["decoders"] = cohort
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return cohort


def format_fidelity(path: Path | None = None) -> str:
    """One-line-per-table rendering of the current artefact."""
    path = FIDELITY_JSON if path is None else Path(path)
    if not path.exists():
        return "(no fidelity artefact)"
    payload = json.loads(path.read_text())
    lines = []
    for name, entry in sorted(payload.get("tables", {}).items()):
        status = "fixed" if entry.get("fixed") else "tracked-red"
        lines.append(
            f"{name}: SLOTAlign {entry['slotalign']:.2f} vs "
            f"{entry['best_baseline_name']} {entry['best_baseline']:.2f} "
            f"(margin {entry['margin']:+.2f}, {status})"
        )
    return "\n".join(lines) if lines else "(no fidelity artefact)"
