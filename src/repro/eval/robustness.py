"""Perturbation-sweep runner behind Figures 3, 6 and 7."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.pairs import AlignmentPair, make_semi_synthetic_pair
from repro.engine.evaluate import evaluate_alignment
from repro.graphs.graph import AttributedGraph
from repro.utils.random import spawn_seeds


@dataclass
class SweepResult:
    """One method's Hit@1 curve over a perturbation sweep."""

    method: str
    levels: list[float]
    hits: list[float]
    runtimes: list[float] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "method": self.method,
            "levels": list(self.levels),
            "hits": list(self.hits),
            "runtimes": list(self.runtimes),
        }


def run_structure_sweep(
    graph: AttributedGraph,
    aligners: dict,
    levels,
    seed=0,
    k: int = 1,
) -> list[SweepResult]:
    """Hit@k of each aligner as edge perturbation grows (Fig. 6 protocol)."""
    return _run_sweep(
        graph,
        aligners,
        levels,
        seed=seed,
        k=k,
        pair_builder=lambda g, level, s: make_semi_synthetic_pair(
            g, edge_noise=level, seed=s
        ),
    )


def run_feature_sweep(
    graph: AttributedGraph,
    aligners: dict,
    levels,
    transform: str,
    edge_noise: float = 0.25,
    seed=0,
    k: int = 1,
) -> list[SweepResult]:
    """Hit@k under a feature transformation at fixed edge noise (Fig. 7).

    The paper fixes 25 % edge perturbation so no method can rely on
    structure alone while features degrade.  The node permutation and
    edge noise are held **fixed across levels** (same seed) so only the
    feature transformation varies — this is what makes the
    feature-blindness of GWD and the Prop. 4 invariance of SLOTAlign
    visible as exactly flat curves.
    """
    return _run_sweep(
        graph,
        aligners,
        levels,
        seed=seed,
        k=k,
        pair_builder=lambda g, level, s: make_semi_synthetic_pair(
            g,
            edge_noise=edge_noise,
            feature_transform=transform,
            feature_noise=level,
            seed=seed,
        ),
    )


def _run_sweep(graph, aligners, levels, seed, k, pair_builder):
    levels = [float(level) for level in levels]
    seeds = spawn_seeds(seed, len(levels))
    results = {
        name: SweepResult(method=name, levels=levels, hits=[], runtimes=[])
        for name in aligners
    }
    for level, level_seed in zip(levels, seeds):
        pair = pair_builder(graph, level, level_seed)
        for name, aligner in aligners.items():
            outcome = aligner.fit(pair.source, pair.target)
            # the engine's stage-3 adapter: dense and CSR plans alike
            report = evaluate_alignment(outcome, pair.ground_truth, ks=(k,))
            results[name].hits.append(report[f"hits@{k}"])
            results[name].runtimes.append(outcome.runtime)
    return list(results.values())


def evaluate_on_pair(aligners: dict, pair: AlignmentPair, ks=(1, 5, 10, 30)) -> dict:
    """Hit@k table + runtime for a fixed pair (Table II/III protocol)."""
    table: dict[str, dict[str, float]] = {}
    for name, aligner in aligners.items():
        outcome = aligner.fit(pair.source, pair.target)
        row = evaluate_alignment(
            outcome, pair.ground_truth, ks=ks, with_runtime=True
        )
        row.pop("mrr", None)  # the paper's tables report Hit@k + time only
        table[name] = row
    return table
