"""Perturbation-sweep runner behind Figures 3, 6 and 7.

PR 8 adds the partial-overlap sweep (:func:`run_partial_sweep`):
overlap fraction × anchor fraction over the partial solver backends,
scoring Hit@k/MRR on the matchable nodes and precision/recall of
unmatchable-node detection — the robustness axis the paper's Sec. VII
names as future work.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.config import SLOTAlignConfig
from repro.datasets.pairs import (
    AlignmentPair,
    PartialPairSpec,
    make_partial_pair,
    make_semi_synthetic_pair,
)
from repro.engine.evaluate import evaluate_alignment
from repro.engine.pipeline import AlignmentEngine
from repro.eval.metrics import unmatchable_detection
from repro.graphs.graph import AttributedGraph
from repro.utils.random import spawn_seeds


@dataclass
class SweepResult:
    """One method's Hit@1 curve over a perturbation sweep."""

    method: str
    levels: list[float]
    hits: list[float]
    runtimes: list[float] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "method": self.method,
            "levels": list(self.levels),
            "hits": list(self.hits),
            "runtimes": list(self.runtimes),
        }


def run_structure_sweep(
    graph: AttributedGraph,
    aligners: dict,
    levels,
    seed=0,
    k: int = 1,
    decoder: str | None = None,
) -> list[SweepResult]:
    """Hit@k of each aligner as edge perturbation grows (Fig. 6 protocol).

    ``decoder`` selects the decode stage applied to every method's
    plan (``None`` scores the raw posterior, the paper's protocol).
    """
    return _run_sweep(
        graph,
        aligners,
        levels,
        seed=seed,
        k=k,
        pair_builder=lambda g, level, s: make_semi_synthetic_pair(
            g, edge_noise=level, seed=s
        ),
        decoder=decoder,
    )


def run_feature_sweep(
    graph: AttributedGraph,
    aligners: dict,
    levels,
    transform: str,
    edge_noise: float = 0.25,
    seed=0,
    k: int = 1,
    decoder: str | None = None,
) -> list[SweepResult]:
    """Hit@k under a feature transformation at fixed edge noise (Fig. 7).

    The paper fixes 25 % edge perturbation so no method can rely on
    structure alone while features degrade.  The node permutation and
    edge noise are held **fixed across levels** (same seed) so only the
    feature transformation varies — this is what makes the
    feature-blindness of GWD and the Prop. 4 invariance of SLOTAlign
    visible as exactly flat curves.
    """
    return _run_sweep(
        graph,
        aligners,
        levels,
        seed=seed,
        k=k,
        pair_builder=lambda g, level, s: make_semi_synthetic_pair(
            g,
            edge_noise=edge_noise,
            feature_transform=transform,
            feature_noise=level,
            seed=seed,
        ),
        decoder=decoder,
    )


def _run_sweep(graph, aligners, levels, seed, k, pair_builder, decoder=None):
    levels = [float(level) for level in levels]
    seeds = spawn_seeds(seed, len(levels))
    results = {
        name: SweepResult(method=name, levels=levels, hits=[], runtimes=[])
        for name in aligners
    }
    for level, level_seed in zip(levels, seeds):
        pair = pair_builder(graph, level, level_seed)
        for name, aligner in aligners.items():
            outcome = aligner.fit(pair.source, pair.target)
            # the engine's stage-3/4 adapter: dense and CSR plans
            # alike, optionally routed through a registered decoder
            report = evaluate_alignment(
                outcome, pair.ground_truth, ks=(k,), decoder=decoder
            )
            results[name].hits.append(report[f"hits@{k}"])
            results[name].runtimes.append(outcome.runtime)
    return list(results.values())


def run_partial_sweep(
    graph: AttributedGraph,
    overlaps,
    anchor_fractions=(0.0,),
    backend: str = "partial-dummy",
    config: SLOTAlignConfig | None = None,
    seed=0,
    ks=(1, 5, 10),
    threshold: float = 0.5,
    decoder: str | None = None,
) -> list[dict]:
    """Partial-alignment quality over overlap × anchor fractions.

    For each overlap level one partial pair is built per anchor
    fraction **from the same seed**, so the node drops are identical
    across anchor fractions and the anchor effect is isolated (the
    feature-sweep discipline applied to the supervision axis).  Each
    point runs the requested partial backend with ``partial_mass`` set
    to the pair's actual matchable fraction, and reports:

    * Hit@k / MRR over the matchable ground truth only (a node whose
      counterpart was dropped has no ground-truth row — but a node
      wrongly matched *onto* a dropped counterpart's column still
      scores as a miss through its rank);
    * precision/recall of unmatchable-node detection from the
      backend's per-node shed scores (:func:`unmatchable_detection`);
    * the transported (matched) mass against the requested budget.
    """
    overlaps = [float(level) for level in overlaps]
    base_config = config if config is not None else SLOTAlignConfig(track_history=False)
    seeds = spawn_seeds(seed, len(overlaps))
    points: list[dict] = []
    for overlap, level_seed in zip(overlaps, seeds):
        for anchor_fraction in anchor_fractions:
            spec = PartialPairSpec(
                overlap=overlap, anchor_fraction=float(anchor_fraction)
            )
            pair = make_partial_pair(graph, spec, seed=level_seed)
            cfg = replace(
                base_config,
                partial_mass=float(pair.source_matchable.mean()),
            )
            anchors = pair.anchors if pair.anchors.size else None
            engine = AlignmentEngine(cfg, backend=backend, decoder=decoder)
            run = engine.run(
                pair.source, pair.target, pair.ground_truth,
                ks=ks, anchors=anchors,
            )
            partial = run.result.extras.get("partial", {})
            detection = unmatchable_detection(
                partial["source_unmatchable"],
                pair.source_matchable,
                threshold=threshold,
            )
            points.append(
                {
                    "overlap": overlap,
                    "anchor_fraction": float(anchor_fraction),
                    "backend": backend,
                    "matchable_fraction": float(pair.source_matchable.mean()),
                    "n_anchors": int(pair.anchors.shape[0]),
                    **run.metrics,
                    "detection": detection,
                    "matched_mass": float(partial.get("matched_mass", 1.0)),
                    "runtime": float(run.result.runtime),
                }
            )
    return points


def evaluate_on_pair(
    aligners: dict,
    pair: AlignmentPair,
    ks=(1, 5, 10, 30),
    decoder: str | None = None,
) -> dict:
    """Hit@k table + runtime for a fixed pair (Table II/III protocol)."""
    table: dict[str, dict[str, float]] = {}
    for name, aligner in aligners.items():
        outcome = aligner.fit(pair.source, pair.target)
        row = evaluate_alignment(
            outcome, pair.ground_truth, ks=ks, with_runtime=True,
            decoder=decoder,
        )
        row.pop("mrr", None)  # the paper's tables report Hit@k + time only
        table[name] = row
    return table
