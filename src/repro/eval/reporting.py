"""Plain-text rendering of experiment outputs (paper-style tables)."""

from __future__ import annotations

from typing import Iterable


def format_table(
    rows: dict[str, dict[str, float]],
    columns: Iterable[str] | None = None,
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render ``{row_label: {column: value}}`` as an aligned text table."""
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(next(iter(rows.values())).keys())
    columns = list(columns)
    header = ["method"] + columns
    body = []
    for label, values in rows.items():
        body.append(
            [label]
            + [
                float_fmt.format(values[col]) if col in values else "-"
                for col in columns
            ]
        )
    widths = [
        max(len(str(cell)) for cell in col_cells)
        for col_cells in zip(header, *body)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_sweep(results, title: str | None = None) -> str:
    """Render a list of :class:`SweepResult` as level-by-method table."""
    if not results:
        return "(empty sweep)"
    levels = results[0].levels
    header = ["level"] + [r.method for r in results]
    body = []
    for i, level in enumerate(levels):
        body.append(
            [f"{level:.2f}"] + [f"{r.hits[i]:.1f}" for r in results]
        )
    widths = [
        max(len(str(cell)) for cell in col_cells)
        for col_cells in zip(header, *body)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
