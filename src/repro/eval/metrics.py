"""Alignment quality metrics.

The paper evaluates with Hit@k: the percentage of ground-truth source
nodes whose true target lands in the top-k candidates of the plan row.
All ground-truth correspondences are used (no train/test split — the
methods are unsupervised).

Every metric accepts either a dense ``n × m`` array or a
``scipy.sparse`` matrix (the partitioned pipeline's stitched plans).
The sparse path ranks each row's stored entries against its implicit
zeros directly — it never densifies — and is **exactly** equal to the
dense computation: the mid-rank counts are integers either way, so the
two paths agree bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ShapeError


def hits_at_k(plan, ground_truth: np.ndarray, k: int) -> float:
    """Hit@k in **percent** (0-100), matching the paper's tables.

    Parameters
    ----------
    plan:
        ``n × m`` soft correspondence scores (dense array or sparse
        matrix; sparse plans are evaluated without densification).
    ground_truth:
        ``t × 2`` array of (source, target) anchor pairs.
    k:
        Number of candidates considered per source node.
    """
    plan, gt = _validate(plan, ground_truth)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if gt.shape[0] == 0:
        return 0.0
    rank = _rank_true_targets(plan, gt)
    return float(np.mean(rank < k) * 100.0)


def mean_reciprocal_rank(plan, ground_truth: np.ndarray) -> float:
    """MRR of the true target within each plan row (in [0, 1])."""
    plan, gt = _validate(plan, ground_truth)
    if gt.shape[0] == 0:
        return 0.0
    rank = _rank_true_targets(plan, gt) + 1.0
    return float(np.mean(1.0 / rank))


def _rank_true_targets(plan, gt: np.ndarray) -> np.ndarray:
    """Mid-rank of every ground-truth target, dense or sparse plan."""
    if sp.issparse(plan):
        return _sparse_mid_rank(plan, gt)
    rows = plan[gt[:, 0]]
    true_scores = rows[np.arange(gt.shape[0]), gt[:, 1]]
    return _mid_rank(rows, true_scores)


def _mid_rank(rows: np.ndarray, true_scores: np.ndarray) -> np.ndarray:
    """0-based rank of the true score with mid-rank tie handling.

    A plan row where every candidate ties (e.g. a zero feature vector
    under cosine similarity) must not count its true target as rank 0;
    mid-rank places it in the middle of its tie group, the standard
    unbiased convention.
    """
    strictly_larger = np.sum(rows > true_scores[:, None], axis=1)
    ties = np.sum(rows == true_scores[:, None], axis=1) - 1  # exclude self
    return strictly_larger + 0.5 * ties


def _sparse_mid_rank(plan: sp.csr_array, gt: np.ndarray) -> np.ndarray:
    """Mid-rank over a CSR plan, counting implicit zeros analytically.

    Per ground-truth pair: the stored entries of the row are compared
    against the true score directly, and the ``m − nnz`` implicit
    zeros join the strictly-larger count (when the true score is
    negative) or the tie group (when it is zero).  Identical, bit for
    bit, to :func:`_mid_rank` on the densified row.
    """
    m = plan.shape[1]
    indptr, indices, data = plan.indptr, plan.indices, plan.data
    ranks = np.empty(gt.shape[0])
    for i, (row, col) in enumerate(gt):
        lo, hi = indptr[row], indptr[row + 1]
        row_idx = indices[lo:hi]
        row_val = data[lo:hi]
        pos = np.searchsorted(row_idx, col)
        stored = pos < row_idx.size and row_idx[pos] == col
        true = float(row_val[pos]) if stored else 0.0
        implicit = m - row_val.size
        larger = int(np.sum(row_val > true))
        ties = int(np.sum(row_val == true)) - 1
        if true < 0.0:
            larger += implicit
        elif true == 0.0:
            # the implicit zeros tie with the true score; when the true
            # entry is itself implicit it is part of ``implicit`` and
            # the −1 self-exclusion above already accounts for it
            ties += implicit
        ranks[i] = larger + 0.5 * ties
    return ranks


def sparse_topk(plan, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Top-k candidate columns and scores per row, without densifying.

    Returns ``(cols, scores)`` of shape ``(n, k)``: per row the stored
    entries ordered by decreasing score (ties by increasing column),
    padded with column ``-1`` / score ``0.0`` when a row stores fewer
    than ``k`` entries.  Accepts dense input too (for API symmetry).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not sp.issparse(plan):
        plan = sp.csr_array(np.asarray(plan, dtype=np.float64))
    csr = _sorted_csr(plan)
    n = csr.shape[0]
    cols = np.full((n, k), -1, dtype=np.int64)
    scores = np.zeros((n, k))
    indptr, indices, data = csr.indptr, csr.indices, csr.data
    if data.size == 0:
        return cols, scores
    counts = np.diff(indptr)
    row_of = np.repeat(np.arange(n), counts)
    # one global sort: by row, then decreasing score, then column —
    # each row's span comes out in exactly the per-row ranking order
    order = np.lexsort((indices, -data, row_of))
    take = np.minimum(counts, k)
    starts = indptr[:-1]
    # slot j of row i reads the j-th entry of the row's sorted span
    out_rows = np.repeat(np.arange(n), take)
    slots = np.arange(take.sum()) - np.repeat(
        np.cumsum(take) - take, take
    )
    picked = order[np.repeat(starts, take) + slots]
    cols[out_rows, slots] = indices[picked]
    scores[out_rows, slots] = data[picked]
    return cols, scores


def alignment_accuracy(matching: np.ndarray, ground_truth: np.ndarray) -> float:
    """Fraction (percent) of anchors whose discrete match is correct."""
    matching = np.asarray(matching, dtype=np.int64)
    gt = np.asarray(ground_truth, dtype=np.int64)
    if gt.ndim != 2 or gt.shape[1] != 2:
        raise ShapeError(f"ground_truth must be t x 2, got shape {gt.shape}")
    if gt.shape[0] == 0:
        return 0.0
    if gt[:, 0].max() >= matching.shape[0]:
        raise ShapeError("ground truth references nodes beyond the matching")
    return float(np.mean(matching[gt[:, 0]] == gt[:, 1]) * 100.0)


def evaluate_plan(
    plan, ground_truth: np.ndarray, ks=(1, 5, 10, 30)
) -> dict[str, float]:
    """Hit@k for each requested k plus MRR, as a flat dict.

    The mid-ranks are computed once and every metric is derived from
    them — on sparse plans this avoids re-validating (and re-copying)
    the matrix per metric.
    """
    for k in ks:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
    plan, gt = _validate(plan, ground_truth)
    if gt.shape[0] == 0:
        return {f"hits@{k}": 0.0 for k in ks} | {"mrr": 0.0}
    rank = _rank_true_targets(plan, gt)
    report = {f"hits@{k}": float(np.mean(rank < k) * 100.0) for k in ks}
    report["mrr"] = float(np.mean(1.0 / (rank + 1.0)))
    return report


def decoded_ranks(decoded, gt: np.ndarray) -> np.ndarray:  #: pinned
    """Per-ground-truth-pair mid-ranks of a decoded matching.

    For ``posterior_ranked`` decodings (row-argmax) the decoder's
    candidate ordering *is* the plan's own, so the ranks are exactly
    :func:`_rank_true_targets` on the plan — the pre-decode-stage
    evaluate path, bit for bit (pinned by ``repro lint``).

    For every other decoder the discrete matching overrides the
    posterior at rank 0: the matched cell is promoted to the front of
    its row's ranking and the remaining candidates keep the plan's
    mid-rank order behind it.  Concretely, relative to the plan
    mid-rank ``base`` of the true target:

    * decoder matched the true target → rank 0 (a Hit@1);
    * decoder left the source unmatched → ``max(base, 1)`` — an
      unmatch hypothesis occupies rank 0, everything else shifts
      behind it;
    * decoder matched a different target → ``base`` plus the promoted
      cell's displacement (0 when the plan already ranked it above the
      true target, 0.5 when they tied, 1 when it was below).

    Under this convention ``mean(rank < 1)`` is exactly the decoder's
    discrete matching accuracy, while Hit@k for k > 1 and MRR still
    reward a posterior that kept the true target near the front.
    """
    plan = decoded.plan
    if decoded.posterior_ranked:
        return _rank_true_targets(plan, gt)
    # lazy import: decode.py lazily imports this module for sparse_topk
    from repro.engine.decode import _cell_scores

    base = _rank_true_targets(plan, gt)
    matched_col = decoded.matching[gt[:, 0]]
    true_scores = _cell_scores(plan, gt[:, 0], gt[:, 1])
    ranks = np.maximum(base, 1.0)  # default: unmatched source rows
    matched = matched_col >= 0
    if np.any(matched):
        m_scores = _cell_scores(plan, gt[matched, 0], matched_col[matched])
        displaced = (
            base[matched]
            + np.where(m_scores > true_scores[matched], 0.0, 0.5)
            + np.where(m_scores < true_scores[matched], 0.5, 0.0)
        )
        ranks[matched] = displaced
    ranks[matched_col == gt[:, 1]] = 0.0
    return ranks


def evaluate_decoded(
    decoded, ground_truth: np.ndarray, ks=(1, 5, 10, 30)
) -> dict[str, float]:
    """Hit@k plus MRR of a :class:`DecodedMatching`, as a flat dict.

    The same report shape as :func:`evaluate_plan`, computed from
    :func:`decoded_ranks` — on ``posterior_ranked`` decodings the two
    are bitwise-identical.
    """
    for k in ks:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
    _, gt = _validate(decoded.plan, ground_truth)
    if gt.shape[0] == 0:
        return {f"hits@{k}": 0.0 for k in ks} | {"mrr": 0.0}
    rank = decoded_ranks(decoded, gt)
    report = {f"hits@{k}": float(np.mean(rank < k) * 100.0) for k in ks}
    report["mrr"] = float(np.mean(1.0 / (rank + 1.0)))
    return report


def unmatchable_detection(
    scores: np.ndarray,
    matchable_mask: np.ndarray,
    threshold: float = 0.5,
) -> dict[str, float]:
    """Precision/recall of unmatchable-node detection from shed scores.

    The partial backends emit a per-node score in [0, 1] — the
    fraction of the node's mass shed to the dummy sink (or, for the
    unbalanced solve, its marginal shortfall).  Against the pair's
    matchable mask this is a binary detection problem with the
    **unmatchable** nodes as the positive class.

    Returns ``precision``/``recall``/``f1`` at ``threshold`` plus the
    threshold-free ``average_precision`` (area under the PR curve via
    the standard rank-then-average construction) and the class counts.
    A pair with no unmatchable nodes (overlap 1.0) has vacuous targets:
    recall and average precision are 1.0, and precision is 1.0 exactly
    when nothing is flagged.
    """
    scores = np.asarray(scores, dtype=np.float64)
    mask = np.asarray(matchable_mask, dtype=bool)
    if scores.ndim != 1 or mask.shape != scores.shape:
        raise ShapeError(
            f"scores and matchable_mask must be 1-D of equal length, got "
            f"{scores.shape} and {mask.shape}"
        )
    positives = ~mask
    n_pos = int(positives.sum())
    predicted = scores >= threshold
    tp = int(np.sum(predicted & positives))
    fp = int(np.sum(predicted & ~positives))
    precision = tp / (tp + fp) if (tp + fp) else 1.0
    recall = tp / n_pos if n_pos else 1.0
    f1 = (
        2.0 * precision * recall / (precision + recall)
        if (precision + recall)
        else 0.0
    )
    if n_pos:
        order = np.argsort(-scores, kind="stable")
        hits = positives[order]
        cum_tp = np.cumsum(hits)
        prec_at_rank = cum_tp / np.arange(1, scores.size + 1)
        average_precision = float(prec_at_rank[hits].sum() / n_pos)
    else:
        average_precision = 1.0
    return {
        "precision": float(precision),
        "recall": float(recall),
        "f1": float(f1),
        "average_precision": average_precision,
        "n_unmatchable": n_pos,
        "n_flagged": tp + fp,
    }


def _sorted_csr(plan) -> sp.csr_array:
    """CSR with sorted indices, copying first if sorting would mutate.

    ``sp.csr_array(other_csr)`` shares the underlying buffers, so an
    in-place ``sort_indices()`` would reorder the *caller's* arrays as
    a side effect.
    """
    csr = sp.csr_array(plan)
    if not csr.has_sorted_indices:
        csr = csr.copy()
        csr.sort_indices()
    return csr


def _validate(plan, ground_truth):
    if sp.issparse(plan):
        plan = _sorted_csr(plan).astype(np.float64)
    else:
        plan = np.asarray(plan, dtype=np.float64)
        if plan.ndim != 2:
            raise ShapeError(f"plan must be 2-D, got shape {plan.shape}")
    gt = np.asarray(ground_truth, dtype=np.int64)
    if gt.ndim != 2 or gt.shape[1] != 2:
        raise ShapeError(f"ground_truth must be t x 2, got shape {gt.shape}")
    if gt.size:
        if gt[:, 0].max() >= plan.shape[0] or gt[:, 1].max() >= plan.shape[1]:
            raise ShapeError("ground truth indices exceed plan dimensions")
        if gt.min() < 0:
            raise ShapeError("ground truth indices must be non-negative")
    return plan, gt
