"""Alignment quality metrics.

The paper evaluates with Hit@k: the percentage of ground-truth source
nodes whose true target lands in the top-k candidates of the plan row.
All ground-truth correspondences are used (no train/test split — the
methods are unsupervised).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError


def hits_at_k(plan: np.ndarray, ground_truth: np.ndarray, k: int) -> float:
    """Hit@k in **percent** (0-100), matching the paper's tables.

    Parameters
    ----------
    plan:
        ``n × m`` soft correspondence scores.
    ground_truth:
        ``t × 2`` array of (source, target) anchor pairs.
    k:
        Number of candidates considered per source node.
    """
    plan, gt = _validate(plan, ground_truth)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if gt.shape[0] == 0:
        return 0.0
    rows = plan[gt[:, 0]]
    true_scores = rows[np.arange(gt.shape[0]), gt[:, 1]]
    rank = _mid_rank(rows, true_scores)
    return float(np.mean(rank < k) * 100.0)


def mean_reciprocal_rank(plan: np.ndarray, ground_truth: np.ndarray) -> float:
    """MRR of the true target within each plan row (in [0, 1])."""
    plan, gt = _validate(plan, ground_truth)
    if gt.shape[0] == 0:
        return 0.0
    rows = plan[gt[:, 0]]
    true_scores = rows[np.arange(gt.shape[0]), gt[:, 1]]
    rank = _mid_rank(rows, true_scores) + 1.0
    return float(np.mean(1.0 / rank))


def _mid_rank(rows: np.ndarray, true_scores: np.ndarray) -> np.ndarray:
    """0-based rank of the true score with mid-rank tie handling.

    A plan row where every candidate ties (e.g. a zero feature vector
    under cosine similarity) must not count its true target as rank 0;
    mid-rank places it in the middle of its tie group, the standard
    unbiased convention.
    """
    strictly_larger = np.sum(rows > true_scores[:, None], axis=1)
    ties = np.sum(rows == true_scores[:, None], axis=1) - 1  # exclude self
    return strictly_larger + 0.5 * ties


def alignment_accuracy(matching: np.ndarray, ground_truth: np.ndarray) -> float:
    """Fraction (percent) of anchors whose discrete match is correct."""
    matching = np.asarray(matching, dtype=np.int64)
    gt = np.asarray(ground_truth, dtype=np.int64)
    if gt.ndim != 2 or gt.shape[1] != 2:
        raise ShapeError(f"ground_truth must be t x 2, got shape {gt.shape}")
    if gt.shape[0] == 0:
        return 0.0
    if gt[:, 0].max() >= matching.shape[0]:
        raise ShapeError("ground truth references nodes beyond the matching")
    return float(np.mean(matching[gt[:, 0]] == gt[:, 1]) * 100.0)


def evaluate_plan(
    plan: np.ndarray, ground_truth: np.ndarray, ks=(1, 5, 10, 30)
) -> dict[str, float]:
    """Hit@k for each requested k plus MRR, as a flat dict."""
    report = {f"hits@{k}": hits_at_k(plan, ground_truth, k) for k in ks}
    report["mrr"] = mean_reciprocal_rank(plan, ground_truth)
    return report


def _validate(plan, ground_truth):
    plan = np.asarray(plan, dtype=np.float64)
    gt = np.asarray(ground_truth, dtype=np.int64)
    if plan.ndim != 2:
        raise ShapeError(f"plan must be 2-D, got shape {plan.shape}")
    if gt.ndim != 2 or gt.shape[1] != 2:
        raise ShapeError(f"ground_truth must be t x 2, got shape {gt.shape}")
    if gt.size:
        if gt[:, 0].max() >= plan.shape[0] or gt[:, 1].max() >= plan.shape[1]:
            raise ShapeError("ground truth indices exceed plan dimensions")
        if gt.min() < 0:
            raise ShapeError("ground truth indices must be non-negative")
    return plan, gt
