"""Evaluation: metrics, robustness sweeps, report formatting."""

from repro.eval.metrics import (
    hits_at_k,
    mean_reciprocal_rank,
    alignment_accuracy,
    decoded_ranks,
    evaluate_decoded,
    evaluate_plan,
    sparse_topk,
    unmatchable_detection,
)
from repro.eval.robustness import (
    SweepResult,
    run_structure_sweep,
    run_feature_sweep,
    run_partial_sweep,
    evaluate_on_pair,
)
from repro.eval.reporting import format_table, format_sweep
from repro.eval.aggregate import AggregateResult, repeat_evaluation, format_aggregates
from repro.eval.fidelity import (
    fidelity_margin,
    format_fidelity,
    record_decoders,
    record_fidelity,
    record_partial,
)

__all__ = [
    "hits_at_k",
    "mean_reciprocal_rank",
    "alignment_accuracy",
    "decoded_ranks",
    "evaluate_decoded",
    "evaluate_plan",
    "sparse_topk",
    "unmatchable_detection",
    "SweepResult",
    "run_structure_sweep",
    "run_feature_sweep",
    "run_partial_sweep",
    "evaluate_on_pair",
    "format_table",
    "format_sweep",
    "AggregateResult",
    "repeat_evaluation",
    "format_aggregates",
    "fidelity_margin",
    "format_fidelity",
    "record_decoders",
    "record_fidelity",
    "record_partial",
]
