"""The ``guarded-by`` rule: declared shared state only moves under its lock.

Declaration syntax — a structured comment on the ``__init__`` line
that first assigns the attribute::

    self._items: deque[Job] = deque()  #: guarded-by: _lock, _not_empty

means every read or write of ``self._items`` anywhere else in the
class must happen lexically inside a ``with self._lock:`` (or
``with self._not_empty:``) block.  Several lock names may be declared
when aliases guard the same state — a :class:`threading.Condition`
built over the lock is the canonical case.

A method whose *caller* is contractually required to hold the lock
opts out per method::

    def _store(self, key, bases) -> None:  #: requires: _lock

The rule then treats the lock as held for the whole body (the runtime
:mod:`repro.analysis.racecheck` harness covers the callers
dynamically, so the static escape hatch stays honest).

``__init__`` itself is exempt: construction happens before the object
is shared.  The analysis is lexical by design — it does not chase
calls, so helper methods touching guarded state need either an inline
``with`` or a ``#: requires:`` contract.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, Module, Rule


def _with_guard_names(node: ast.With) -> list[str]:
    """Lock attribute names entered by a ``with`` statement."""
    names = []
    for item in node.items:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            names.append(expr.attr)
    return names


class _MethodChecker(ast.NodeVisitor):
    """Walks one method body tracking the active ``with self.<lock>:`` set."""

    def __init__(self, rule, module, class_name, declared, preheld):
        self.rule = rule
        self.module = module
        self.class_name = class_name
        self.declared = declared  # attr -> frozenset of lock names
        self.guards: list[str] = list(preheld)
        self.findings: list[Finding] = []

    def visit_With(self, node: ast.With) -> None:
        entered = _with_guard_names(node)
        self.guards.extend(entered)
        self.generic_visit(node)
        del self.guards[len(self.guards) - len(entered):]

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in self.declared
        ):
            locks = self.declared[node.attr]
            if not locks.intersection(self.guards):
                want = " or ".join(sorted(locks))
                self.findings.append(
                    Finding(
                        path=self.module.path,
                        line=node.lineno,
                        rule_id=self.rule.rule_id,
                        message=(
                            f"{self.class_name}.{node.attr} is declared "
                            f"guarded-by {want} but is accessed without "
                            f"holding it (wrap in `with self.{sorted(locks)[0]}:` "
                            "or declare `#: requires:` on the method)"
                        ),
                    )
                )
        self.generic_visit(node)


class GuardedByRule(Rule):
    rule_id = "guarded-by"
    description = (
        "attributes declared `#: guarded-by: <lock>` may only be accessed "
        "inside `with self.<lock>:` (or a method marked `#: requires: <lock>`)"
    )

    def check(self, module: Module) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(module, node))
        return findings

    # ------------------------------------------------------------------
    def _declarations(
        self, module: Module, cls: ast.ClassDef
    ) -> dict[str, frozenset[str]]:
        """``attr -> lock names`` from the class's ``__init__`` body."""
        declared: dict[str, frozenset[str]] = {}
        for method in cls.body:
            if (
                not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef))
                or method.name != "__init__"
            ):
                continue
            for stmt in ast.walk(method):
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                for target in targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    spec = module.marker(stmt, "guarded-by")
                    if spec:
                        declared[target.attr] = frozenset(
                            name.strip()
                            for name in spec.split(",")
                            if name.strip()
                        )
        return declared

    def _check_class(self, module: Module, cls: ast.ClassDef) -> list[Finding]:
        declared = self._declarations(module, cls)
        if not declared:
            return []
        findings: list[Finding] = []
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue  # construction precedes sharing
            requires = module.marker(method, "requires")
            preheld = (
                [name.strip() for name in requires.split(",") if name.strip()]
                if requires
                else []
            )
            checker = _MethodChecker(
                self, module, cls.name, declared, preheld
            )
            for stmt in method.body:
                checker.visit(stmt)
            findings.extend(checker.findings)
        return findings
