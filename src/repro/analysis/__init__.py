"""Project-native static analysis: ``repro lint`` and ``racecheck``.

The codebase rests on three load-bearing correctness contracts that
tests alone cannot enforce:

1. **bitwise-pinned numeric paths** — the fast Sinkhorn kernels, the
   lockstep portfolio update and the fused contraction core must never
   be silently modified; a divergent variant must register under a new
   solver-backend name (the "never mutate ``fused-dense``" rule);
2. **guarded shared state** — attributes of the threaded serving layer
   (:class:`~repro.serve.jobs.JobQueue`,
   :class:`~repro.serve.service.AlignmentService`,
   :class:`~repro.engine.planning.PlanCache`) may only be touched
   under their declared lock;
3. **no densification at scale** — the sparse pipeline must never
   materialise an n×n object outside the whitelisted guard sites.

This package enforces all three:

* :mod:`repro.analysis.core` — the AST rule engine behind
  ``repro lint`` (findings with ``file:line``, rule ids, inline
  suppression via ``# repro-lint: ignore[rule-id]``);
* :mod:`repro.analysis.guards` — the ``guarded-by`` checker over
  ``#: guarded-by: _lock`` declarations;
* :mod:`repro.analysis.pins` — the ``pinned-path`` fingerprint rule
  over ``#: pinned`` markers and the committed ``pins.json``;
* :mod:`repro.analysis.densify` — the ``no-densify`` rule;
* :mod:`repro.analysis.unused` — the ``unused-name`` hygiene rule;
* :mod:`repro.analysis.racecheck` — runtime instrumented locks for the
  concurrency tests: lock-order-inversion detection and unguarded
  concurrent-access detection on registered objects.
"""

from repro.analysis.core import (
    Finding,
    LintError,
    Module,
    default_rules,
    iter_modules,
    run_lint,
)
from repro.analysis.pins import update_pins

__all__ = [
    "Finding",
    "LintError",
    "Module",
    "default_rules",
    "iter_modules",
    "run_lint",
    "update_pins",
]
