"""The ``pinned-path`` rule: bitwise-pinned numeric code cannot drift.

The fast Sinkhorn kernels, the lockstep portfolio update and the fused
contraction core carry a bitwise contract: serial, batched and
coalesced solves must produce bit-for-bit identical iterates, and the
benchmark baselines are calibrated against these exact instruction
sequences.  The project rule (ROADMAP item 5) is therefore *never
mutate a pinned path in place* — a divergent numeric variant registers
under a new solver-backend name instead.

Enforcement: a definition marked with ``#: pinned`` on its header
line::

    def sinkhorn_log_kernel_fast(...):  #: pinned

is fingerprinted by a **normalized AST hash** — docstrings stripped,
comments and formatting irrelevant by construction — and the hash is
committed to ``src/repro/analysis/pins.json``.  Lint fails when

* a marked definition's hash differs from its committed pin (the
  edit must either be reverted, moved to a new backend, or explicitly
  re-pinned with ``repro lint --update-pins``),
* a marked definition has no committed pin (new pins must be
  committed consciously), or
* ``pins.json`` carries an entry whose marked definition no longer
  exists (stale pins would silently stop guarding anything).

Doc-only and formatting-only edits never trip the rule; any semantic
edit does.
"""

from __future__ import annotations

import ast
import copy
import hashlib
import json
from pathlib import Path

from repro.analysis.core import (
    Finding,
    Module,
    Rule,
    iter_modules,
    qualname_walk,
)

PINS_PATH = Path(__file__).resolve().parent / "pins.json"


def _strip_docstrings(node: ast.AST) -> ast.AST:
    """Remove docstring statements everywhere under ``node`` (copied)."""
    node = copy.deepcopy(node)
    for child in ast.walk(node):
        body = getattr(child, "body", None)
        if (
            isinstance(
                child,
                (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            )
            and body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            child.body = body[1:] or [ast.Pass()]
    return node


def fingerprint(node: ast.AST) -> str:
    """Normalized-AST SHA-256 of one definition.

    ``ast.dump`` without attributes erases line/column info, so moving
    a function or reformatting it keeps the fingerprint; changing any
    statement, operand or constant changes it.
    """
    normalized = _strip_docstrings(node)
    dump = ast.dump(normalized, annotate_fields=True, include_attributes=False)
    return hashlib.sha256(dump.encode("utf-8")).hexdigest()


def collect_pinned(modules) -> dict[str, tuple[str, int, str]]:
    """``qualname -> (hash, line, path)`` for every ``#: pinned`` marker.

    Qualnames are ``<rel-path>::<dotted name>``, e.g.
    ``ot/sinkhorn.py::sinkhorn_log_kernel_fast``.
    """
    pinned: dict[str, tuple[str, int, str]] = {}
    for module in modules:
        for qual, node in qualname_walk(module.tree):
            if module.marker(node, "pinned") is not None:
                key = f"{module.rel}::{qual}"
                pinned[key] = (fingerprint(node), node.lineno, module.path)
    return pinned


def load_pins(pins_path: Path | None = None) -> dict[str, str]:
    path = PINS_PATH if pins_path is None else Path(pins_path)
    if not path.exists():
        return {}
    return json.loads(path.read_text(encoding="utf-8"))


def update_pins(
    root: Path | None = None, pins_path: Path | None = None
) -> dict[str, str]:
    """Regenerate ``pins.json`` from the current tree and return it."""
    path = PINS_PATH if pins_path is None else Path(pins_path)
    pins = {
        qual: digest
        for qual, (digest, _, _) in sorted(collect_pinned(iter_modules(root)).items())
    }
    path.write_text(
        json.dumps(pins, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return pins


class PinnedPathRule(Rule):
    rule_id = "pinned-path"
    description = (
        "definitions marked `#: pinned` must hash-match pins.json; "
        "divergent numeric variants register a new backend instead "
        "(re-pin deliberate changes with `repro lint --update-pins`)"
    )

    def __init__(
        self, pins_path: Path | None = None, check_stale: bool = True
    ):
        self.pins_path = PINS_PATH if pins_path is None else Path(pins_path)
        self.check_stale = check_stale
        self._pins = load_pins(self.pins_path)
        self._seen: set[str] = set()

    def check(self, module: Module) -> list[Finding]:
        findings: list[Finding] = []
        for key, (digest, line, path) in collect_pinned([module]).items():
            self._seen.add(key)
            committed = self._pins.get(key)
            if committed is None:
                findings.append(
                    Finding(
                        path=path,
                        line=line,
                        rule_id=self.rule_id,
                        message=(
                            f"{key} is marked `#: pinned` but has no entry in "
                            f"{self.pins_path.name}; commit one with "
                            "`repro lint --update-pins`"
                        ),
                    )
                )
            elif committed != digest:
                findings.append(
                    Finding(
                        path=path,
                        line=line,
                        rule_id=self.rule_id,
                        message=(
                            f"{key} was modified but is bitwise-pinned: "
                            "register the variant under a new solver backend "
                            "(never mutate fused-dense), or — for a deliberate, "
                            "reviewed change — regenerate the pin with "
                            "`repro lint --update-pins`"
                        ),
                    )
                )
        return findings

    def finish(self) -> list[Finding]:
        if not self.check_stale:
            # partial-tree runs cannot distinguish "stale" from
            # "lives in an unscanned module"
            return []
        stale = sorted(set(self._pins) - self._seen)
        return [
            Finding(
                path=f"src/repro/analysis/{self.pins_path.name}",
                line=1,
                rule_id=self.rule_id,
                message=(
                    f"stale pin {key}: no `#: pinned` definition matches it; "
                    "regenerate pins.json with `repro lint --update-pins`"
                ),
            )
            for key in stale
        ]
