"""The ``unused-name`` rule: dead imports and never-read locals.

A deliberately small hygiene rule — the project-specific rules carry
the correctness contracts; this one just keeps the tree free of the
dead names that accumulate while refactoring.  Two checks:

* **module-level imports** never referenced anywhere in the module
  (names re-exported via ``__all__`` count as referenced; package
  ``__init__.py`` files are skipped entirely — re-export is their
  job — and dotted side-effect imports like
  ``import scipy.sparse.linalg`` are exempt);
* **function locals** assigned through a simple name and never loaded
  anywhere in the function (nested scopes included).  Underscore-
  prefixed names, tuple-unpacking targets and augmented assignments
  are exempt — those encode intent, not oversight.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, Module, Rule


def _all_exports(tree: ast.Module) -> set[str]:
    exports: set[str] = set()
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        value = node.value
        if isinstance(value, (ast.List, ast.Tuple)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    exports.add(element.value)
    return exports


def _loaded_names(tree: ast.AST) -> set[str]:
    loaded: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Load, ast.Del)
        ):
            loaded.add(node.id)
        elif isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ):
            loaded.add(node.value.id)
    return loaded


class UnusedNameRule(Rule):
    rule_id = "unused-name"
    description = "dead module imports and function locals that are never read"

    def check(self, module: Module) -> list[Finding]:
        findings: list[Finding] = []
        findings.extend(self._check_imports(module))
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_locals(module, node))
        return findings

    # ------------------------------------------------------------------
    def _check_imports(self, module: Module) -> list[Finding]:
        if module.rel.endswith("__init__.py"):
            return []
        used = _loaded_names(module.tree) | _all_exports(module.tree)
        findings = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                bindings = [
                    (alias.asname or alias.name.split(".")[0], alias)
                    for alias in node.names
                    # dotted import without alias: side-effect /
                    # namespace registration, binds the root package
                    if not ("." in alias.name and alias.asname is None)
                ]
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                bindings = [
                    (alias.asname or alias.name, alias)
                    for alias in node.names
                    if alias.name != "*"
                ]
            else:
                continue
            for name, _alias in bindings:
                if name not in used and not name.startswith("_"):
                    findings.append(
                        Finding(
                            path=module.path,
                            line=node.lineno,
                            rule_id=self.rule_id,
                            message=f"import {name!r} is never used",
                        )
                    )
        return findings

    @staticmethod
    def _own_scope(func) -> list[ast.AST]:
        """Nodes of the function's own scope (nested scopes excluded).

        Loads are collected over the *whole* subtree (closures read
        outer locals) but stores only bind in their own scope, so a
        nested function's dead local is reported once, against the
        nested function.
        """
        nodes: list[ast.AST] = []
        stack = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            nodes.append(node)
            if not isinstance(
                node,
                (
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.ClassDef,
                    ast.Lambda,
                    ast.ListComp,
                    ast.SetComp,
                    ast.DictComp,
                    ast.GeneratorExp,
                ),
            ):
                stack.extend(ast.iter_child_nodes(node))
        return nodes

    def _check_locals(
        self, module: Module, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> list[Finding]:
        loaded = _loaded_names(func)
        stores: dict[str, int] = {}
        for node in self._own_scope(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        stores.setdefault(target.id, node.lineno)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    stores.setdefault(node.target.id, node.lineno)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if isinstance(node.target, ast.Name):
                    stores.setdefault(node.target.id, node.lineno)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.optional_vars, ast.Name):
                        stores.setdefault(
                            item.optional_vars.id, node.lineno
                        )
        return [
            Finding(
                path=module.path,
                line=line,
                rule_id=self.rule_id,
                message=(
                    f"local {name!r} is assigned but never read in "
                    f"{func.name}()"
                ),
            )
            for name, line in sorted(stores.items(), key=lambda kv: kv[1])
            if name not in loaded and not name.startswith("_")
        ]
