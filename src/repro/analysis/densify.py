"""The ``no-densify`` rule: the sparse pipeline never materialises n×n.

ROADMAP item 2's contract: everything downstream of the partitioned
aligner stays sparse — CSR plans flow into the metrics, top-k and
matching without densification, and the *only* blessed escape hatch is
:meth:`PartitionedAlignment.dense_plan`, which refuses plans above
``DENSE_GUARD_ENTRIES`` unless forced.

Inside the scoped subtrees (``repro/scale/``, ``repro/engine/``) this
rule flags

* any ``.toarray()`` / ``.todense()`` call, and
* ``np.asarray(...)`` applied to an expression that names an
  ``adjacency`` (graph adjacencies are CSR throughout the codebase, so
  this is a densification in disguise),

unless the call sits inside an allowlisted guard site or carries an
inline ``# repro-lint: ignore[no-densify]`` at a size-guarded fallback
(the dense eigendecomposition under ``_DENSE_BISECT_CUTOFF`` is the
one such site today).
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, Module, Rule

SCOPES = ("scale/", "engine/")
"""Package-relative subtrees the rule applies to."""

GUARD_SITES = frozenset({
    "scale/aligner.py::PartitionedAlignment.dense_plan",
})
"""Qualnames allowed to densify: these *are* the guard (size-checked,
force-gated) the rest of the pipeline is told to use instead."""


def _names_adjacency(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and "adjacency" in sub.attr:
            return True
        if isinstance(sub, ast.Name) and "adjacency" in sub.id:
            return True
    return False


class NoDensifyRule(Rule):
    rule_id = "no-densify"
    description = (
        "no .toarray()/.todense()/np.asarray(adjacency) in repro/scale or "
        "repro/engine outside the dense_plan guard site"
    )

    def check(self, module: Module) -> list[Finding]:
        if not module.rel.startswith(SCOPES):
            return []
        findings: list[Finding] = []
        allowed_ranges = self._allowed_ranges(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            message = self._violation(node)
            if message is None:
                continue
            if any(lo <= node.lineno <= hi for lo, hi in allowed_ranges):
                continue
            findings.append(
                Finding(
                    path=module.path,
                    line=node.lineno,
                    rule_id=self.rule_id,
                    message=message,
                )
            )
        return findings

    # ------------------------------------------------------------------
    def _allowed_ranges(self, module: Module) -> list[tuple[int, int]]:
        from repro.analysis.core import qualname_walk

        ranges = []
        for qual, node in qualname_walk(module.tree):
            if f"{module.rel}::{qual}" in GUARD_SITES:
                ranges.append((node.lineno, node.end_lineno))
        return ranges

    def _violation(self, node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in (
            "toarray",
            "todense",
        ):
            return (
                f".{func.attr}() densifies a sparse operand in the scaled "
                "pipeline; use dense_plan()/sparse-aware metrics, or "
                "suppress at a size-guarded fallback"
            )
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "asarray"
            and isinstance(func.value, ast.Name)
            and func.value.id == "np"
            and node.args
            and _names_adjacency(node.args[0])
        ):
            return (
                "np.asarray over an adjacency densifies a CSR matrix in "
                "the scaled pipeline; keep the computation sparse"
            )
        return None
