"""Runtime race/lock-order detector for the concurrency tests.

The static ``guarded-by`` rule checks the lexical discipline; this
module checks the *dynamic* one.  A :class:`RaceRegistry` hands out
instrumented drop-in replacements for :class:`threading.Lock` and
:class:`threading.Condition` that record, per thread, which locks are
held while each new lock is acquired.  From that acquisition graph it
reports:

* **lock-order inversions** — lock ``B`` acquired under ``A`` in one
  place and ``A`` acquired under ``B`` in another (the classic
  two-thread deadlock shape), including longer cycles through three or
  more locks;
* **unguarded accesses** — reads/writes of attributes registered via
  :meth:`RaceRegistry.guard` while the declared lock is not held by
  the accessing thread (the runtime mirror of the static rule: it
  covers call-chains the lexical checker cannot see).

Usage in a test::

    registry = RaceRegistry()
    with registry.instrument(repro.engine.planning, repro.serve.jobs):
        cache = PlanCache()           # built with instrumented locks
        registry.guard(cache, ("_entries", "_bytes"), cache._lock)
        ... hammer from threads ...
    registry.assert_clean()

:meth:`RaceRegistry.instrument` swaps each module's ``threading``
global for a proxy whose ``Lock``/``Condition`` factories return
instrumented objects; everything else passes through, so only objects
constructed inside the ``with`` block are tracked.  Inversions are
recorded the moment the *second* ordering is observed — the threads do
not need to actually deadlock for the finding to fire, which is what
makes the detector usable from fast deterministic tests.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

_get_ident = threading.get_ident
_RealLock = threading.Lock
_RealCondition = threading.Condition


@dataclass(frozen=True)
class LockOrderFinding:
    """One observed inversion (or longer cycle) in the acquisition graph."""

    cycle: tuple[str, ...]

    def format(self) -> str:
        path = " -> ".join(self.cycle + (self.cycle[0],))
        return f"lock-order inversion: {path}"


@dataclass(frozen=True)
class UnguardedAccessFinding:
    """One access to a guarded attribute without its lock held."""

    label: str
    attr: str
    operation: str

    def format(self) -> str:
        return (
            f"unguarded {self.operation} of {self.label}.{self.attr} "
            "without its declared lock held"
        )


class RaceCheckError(AssertionError):
    """Raised by :meth:`RaceRegistry.assert_clean` when findings exist."""


class InstrumentedLock:
    """A :class:`threading.Lock` that reports acquisitions to a registry.

    Implements the full lock protocol :class:`threading.Condition`
    relies on (including ``_is_owned``, answered exactly from the
    recorded owner instead of the stdlib's acquire-probe fallback), so
    a condition built over an instrumented lock behaves identically to
    one over a plain lock — ``wait()`` releases and re-acquires
    through the instrumented path and the held-set stays truthful.
    """

    def __init__(self, registry: "RaceRegistry", name: str):
        self._registry = registry
        self._lock = _RealLock()
        self.name = name
        self._owner: int | None = None

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._registry._before_acquire(self)
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._owner = _get_ident()
            self._registry._on_acquired(self)
        return acquired

    def release(self) -> None:
        self._registry._on_release(self)
        self._owner = None
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def _is_owned(self) -> bool:
        """Whether the *current thread* holds this lock."""
        return self._owner == _get_ident()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "locked" if self.locked() else "unlocked"
        return f"<InstrumentedLock {self.name} {state}>"


class _ThreadingProxy:
    """Stand-in for a module's ``threading`` global during instrumentation.

    ``Lock`` and ``Condition`` come from the registry; every other
    attribute (``Thread``, ``Event``, ``local``, ...) resolves to the
    real module, so instrumented code keeps its exact semantics.
    """

    def __init__(self, registry: "RaceRegistry"):
        self._registry = registry

    def Lock(self):
        return self._registry.lock()

    def Condition(self, lock=None):
        return self._registry.condition(lock)

    def __getattr__(self, name):
        return getattr(threading, name)


class RaceRegistry:
    """Collects the acquisition graph and access findings for one test."""

    def __init__(self):
        self._meta = _RealLock()
        self._held = threading.local()
        # (id(a), id(b)) -> (a.name, b.name): "b acquired while a held"
        self._edges: dict[tuple[int, int], tuple[str, str]] = {}
        self._inversions: dict[frozenset[int], LockOrderFinding] = {}
        self._unguarded: dict[tuple[str, str, str], UnguardedAccessFinding] = {}
        self._counter = 0

    # ------------------------------------------------------------------
    # factories
    def lock(self, name: str | None = None) -> InstrumentedLock:
        with self._meta:
            self._counter += 1
            label = name or f"lock#{self._counter}"
        return InstrumentedLock(self, label)

    def condition(self, lock=None, name: str | None = None):
        """A real :class:`threading.Condition` over an instrumented lock."""
        if lock is None:
            lock = self.lock(name)
        if not isinstance(lock, InstrumentedLock):
            raise TypeError(
                "racecheck conditions must wrap an InstrumentedLock "
                f"(got {type(lock).__name__})"
            )
        return _RealCondition(lock)

    # ------------------------------------------------------------------
    # acquisition bookkeeping
    def _held_stack(self) -> list[InstrumentedLock]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def _before_acquire(self, lock: InstrumentedLock) -> None:
        held = self._held_stack()
        if not held:
            return
        with self._meta:
            for prior in held:
                if prior is lock:
                    continue
                edge = (id(prior), id(lock))
                if edge not in self._edges:
                    self._edges[edge] = (prior.name, lock.name)
                    self._check_cycle(lock)

    def _on_acquired(self, lock: InstrumentedLock) -> None:
        self._held_stack().append(lock)

    def _on_release(self, lock: InstrumentedLock) -> None:
        held = self._held_stack()
        for index in range(len(held) - 1, -1, -1):
            if held[index] is lock:
                del held[index]
                return

    def _check_cycle(self, lock: InstrumentedLock) -> None:
        """DFS from ``lock`` under ``_meta``: a path back to ``lock``
        through the observed must-follow edges is an inversion."""
        adjacency: dict[int, list[tuple[int, str, str]]] = {}
        for (a, b), (name_a, name_b) in self._edges.items():
            adjacency.setdefault(a, []).append((b, name_a, name_b))
        start = id(lock)
        stack: list[tuple[int, tuple[int, ...], tuple[str, ...]]] = [
            (start, (start,), (lock.name,))
        ]
        while stack:
            node, path, names = stack.pop()
            for successor, _, succ_name in adjacency.get(node, ()):
                if successor == start and len(path) > 1:
                    key = frozenset(path)
                    if key not in self._inversions:
                        self._inversions[key] = LockOrderFinding(cycle=names)
                elif successor not in path:
                    stack.append(
                        (successor, path + (successor,), names + (succ_name,))
                    )

    # ------------------------------------------------------------------
    # guarded-object access checking
    def guard(self, obj, attrs, lock: InstrumentedLock, label: str | None = None):
        """Monitor ``obj``'s ``attrs``: any touch without ``lock`` held
        by the accessing thread is recorded as a finding.

        Implemented by swapping the instance onto a dynamically-created
        subclass whose ``__getattribute__``/``__setattr__`` consult the
        lock's recorded owner — zero cost for unregistered attributes
        beyond one set-membership test.
        """
        if not isinstance(lock, InstrumentedLock):
            raise TypeError("guard() needs an InstrumentedLock")
        monitored = frozenset(attrs)
        registry = self
        display = label or type(obj).__name__
        base = type(obj)

        class _Guarded(base):
            def __getattribute__(self, name):
                if name in monitored and not lock._is_owned():
                    registry._record_unguarded(display, name, "read")
                return super().__getattribute__(name)

            def __setattr__(self, name, value):
                if name in monitored and not lock._is_owned():
                    registry._record_unguarded(display, name, "write")
                super().__setattr__(name, value)

        _Guarded.__name__ = base.__name__
        _Guarded.__qualname__ = base.__qualname__
        obj.__class__ = _Guarded
        return obj

    def _record_unguarded(self, label: str, attr: str, operation: str) -> None:
        key = (label, attr, operation)
        with self._meta:
            if key not in self._unguarded:
                self._unguarded[key] = UnguardedAccessFinding(
                    label=label, attr=attr, operation=operation
                )

    # ------------------------------------------------------------------
    # module instrumentation
    def instrument(self, *modules):
        """Context manager: swap each module's ``threading`` global for
        the instrumented proxy, restoring it on exit."""
        return _Instrumentation(self, modules)

    # ------------------------------------------------------------------
    # reporting
    def findings(self) -> list:
        with self._meta:
            return sorted(self._inversions.values(), key=lambda f: f.cycle) + sorted(
                self._unguarded.values(),
                key=lambda f: (f.label, f.attr, f.operation),
            )

    def assert_clean(self) -> None:
        findings = self.findings()
        if findings:
            report = "\n".join(f"  {finding.format()}" for finding in findings)
            raise RaceCheckError(
                f"racecheck recorded {len(findings)} finding(s):\n{report}"
            )


class _Instrumentation:
    def __init__(self, registry: RaceRegistry, modules):
        self.registry = registry
        self.modules = modules
        self._saved: list[tuple[object, object]] = []

    def __enter__(self) -> RaceRegistry:
        proxy = _ThreadingProxy(self.registry)
        for module in self.modules:
            if not hasattr(module, "threading"):
                raise AttributeError(
                    f"{module.__name__} has no module-level `threading` "
                    "to instrument"
                )
            self._saved.append((module, module.threading))
            module.threading = proxy
        return self.registry

    def __exit__(self, exc_type, exc, tb) -> None:
        for module, original in self._saved:
            module.threading = original
        self._saved.clear()


__all__ = [
    "InstrumentedLock",
    "LockOrderFinding",
    "RaceCheckError",
    "RaceRegistry",
    "UnguardedAccessFinding",
]
