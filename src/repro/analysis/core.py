"""The rule engine behind ``repro lint``.

The engine walks every Python module under the ``repro`` package root,
parses it once into a :class:`Module` (source, AST, suppression table),
runs each registered :class:`Rule` over it and collects
:class:`Finding` objects.  A finding is reported as::

    src/repro/serve/jobs.py:141: [guarded-by] ...

Suppression is inline and per-line::

    norm.toarray()  # repro-lint: ignore[no-densify]

A suppression comment on its own line applies to the next source line,
so guard sites with long expressions stay readable.  ``ignore[*]``
suppresses every rule on the line.  There is deliberately **no**
baseline file: the tree lints clean, and new findings must be fixed or
explicitly suppressed at the site where the contract is waived.

Rules see the whole module (and may keep cross-module state, reported
via :meth:`Rule.finish` after the walk) — the pinned-path rule uses
that to flag stale ``pins.json`` entries whose target no longer
exists.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

PACKAGE_ROOT = Path(__file__).resolve().parents[1]
"""Filesystem root of the ``repro`` package (``src/repro``)."""

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*ignore\[([\w*,\s-]+)\]")

_MARKER_RE = re.compile(r"#:\s*(guarded-by|requires|pinned)\b:?\s*([\w,\s]*)")
"""Structured source annotations the project rules consume.

``#: guarded-by: _lock`` (attribute declarations), ``#: requires:
_lock`` (method precondition: caller holds the lock) and ``#: pinned``
(bitwise-pinned definition) share one comment grammar so they are
greppable as a family.
"""


class LintError(RuntimeError):
    """Raised for unusable lint configuration (bad path, bad rule id)."""


@dataclass(frozen=True, order=True)
class Finding:
    """One lint finding, anchored to a file and line."""

    path: str
    line: int
    rule_id: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule_id}] {self.message}"


class Module:
    """One parsed source module plus its lint-relevant side tables.

    Parameters
    ----------
    path:
        Display path for findings (repo-relative where possible).
    source:
        Full module source text.
    rel:
        Path relative to the package root, posix-style (e.g.
        ``"ot/sinkhorn.py"``) — the stable key used by the pinned-path
        rule and the scope checks.
    """

    def __init__(self, path: str, source: str, rel: str):
        self.path = str(path)
        self.rel = Path(rel).as_posix()
        self.source = source
        try:
            self.tree = ast.parse(source)
        except SyntaxError as exc:  # pragma: no cover - unparseable tree
            raise LintError(f"{path}: cannot parse: {exc}") from exc
        self.lines = source.splitlines()
        self.suppressions = self._parse_suppressions(self.lines)

    @staticmethod
    def _parse_suppressions(lines: list[str]) -> dict[int, frozenset[str]]:
        table: dict[int, frozenset[str]] = {}
        for lineno, text in enumerate(lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            ids = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            target = lineno
            if text.lstrip().startswith("#"):
                # standalone comment: applies to the next source line
                target = lineno + 1
            table[target] = table.get(target, frozenset()) | ids
        return table

    def suppressed(self, line: int, rule_id: str) -> bool:
        ids = self.suppressions.get(line)
        return ids is not None and (rule_id in ids or "*" in ids)

    def marker(self, node: ast.AST, kind: str) -> str | None:
        """The ``#: <kind>`` annotation attached to a definition node.

        Searched over the header lines of the statement — from the
        ``def``/``class``/assignment line down to the line before its
        body (or its own last line for simple statements) — so markers
        survive black-style argument wrapping.
        """
        start = getattr(node, "lineno", None)
        if start is None:
            return None
        body = getattr(node, "body", None)
        if body:
            stop = body[0].lineno - 1
        else:
            stop = getattr(node, "end_lineno", start)
        for lineno in range(start, max(stop, start) + 1):
            if lineno > len(self.lines):
                break
            match = _MARKER_RE.search(self.lines[lineno - 1])
            if match and match.group(1) == kind:
                return match.group(2).strip()
        return None


class Rule:
    """Base class for project lint rules."""

    rule_id: str = ""
    description: str = ""

    def check(self, module: Module) -> list[Finding]:
        raise NotImplementedError

    def finish(self) -> list[Finding]:
        """Cross-module findings, emitted after every module was seen."""
        return []


def iter_modules(root: Path | None = None) -> list[Module]:
    """Parse every ``.py`` file under ``root`` (default: the package).

    ``rel`` stays relative to the *package* root when linting the
    package tree, so rule scopes ("``scale/``", pin qualnames) are
    stable no matter where the repo is checked out.
    """
    base = PACKAGE_ROOT if root is None else Path(root)
    if not base.exists():
        raise LintError(f"lint root does not exist: {base}")
    files = [base] if base.is_file() else sorted(base.rglob("*.py"))
    modules = []
    for file in files:
        try:
            rel = file.resolve().relative_to(PACKAGE_ROOT).as_posix()
            display = f"src/repro/{rel}"
        except ValueError:
            rel = file.as_posix()
            display = rel
        modules.append(
            Module(display, file.read_text(encoding="utf-8"), rel)
        )
    return modules


def default_rules() -> list[Rule]:
    """The project rule set, in reporting-priority order."""
    # local imports: the rule modules import this one for the base types
    from repro.analysis.densify import NoDensifyRule
    from repro.analysis.guards import GuardedByRule
    from repro.analysis.pins import PinnedPathRule
    from repro.analysis.unused import UnusedNameRule

    return [PinnedPathRule(), GuardedByRule(), NoDensifyRule(), UnusedNameRule()]


def run_lint(
    root: Path | None = None,
    rules: Iterable[Rule] | None = None,
    modules: Iterable[Module] | None = None,
) -> list[Finding]:
    """Run ``rules`` over the tree and return unsuppressed findings.

    ``modules`` injects pre-built modules (tests seed violations
    through synthetic sources); otherwise the tree under ``root`` is
    parsed.
    """
    active = list(default_rules() if rules is None else rules)
    everything = (
        list(modules) if modules is not None else iter_modules(root)
    )
    findings: list[Finding] = []
    for module in everything:
        for rule in active:
            for finding in rule.check(module):
                if not module.suppressed(finding.line, finding.rule_id):
                    findings.append(finding)
    for rule in active:
        findings.extend(rule.finish())
    return sorted(findings)


def qualname_walk(tree: ast.AST):
    """Yield ``(qualname, node)`` for every def/class in ``tree``.

    Qualified names join nesting with ``.`` (``Class.method``), the
    form used by pin entries and allowlists.
    """

    def visit(node: ast.AST, prefix: str):
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                qual = f"{prefix}{child.name}"
                yield qual, child
                yield from visit(child, f"{qual}.")
            else:
                yield from visit(child, prefix)

    yield from visit(tree, "")
