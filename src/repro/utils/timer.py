"""Wall-clock timing used by the experiment harness."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start

    def start(self) -> None:
        """Start (or restart) the timer outside a ``with`` block."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the timer and return the elapsed seconds."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed = time.perf_counter() - self._start
        return self.elapsed
