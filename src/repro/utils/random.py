"""Random-state helpers.

Everything stochastic in this library is driven by
:class:`numpy.random.Generator` objects so experiments are reproducible
bit-for-bit given a seed.
"""

from __future__ import annotations

import numpy as np

RandomStateLike = "int | np.random.Generator | None"


def check_random_state(seed) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for nondeterministic entropy, an ``int`` seed, or an
        existing ``Generator`` (returned unchanged).
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed)!r}"
    )


def spawn_seeds(seed, n: int) -> list[int]:
    """Derive ``n`` independent integer seeds from ``seed``.

    Useful when an experiment fans out into several sub-tasks that must
    each be reproducible on their own.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = check_random_state(seed)
    return [int(s) for s in rng.integers(0, 2**31 - 1, size=n)]
