"""Small shared utilities: seeding, validation, timing."""

from repro.utils.random import check_random_state, spawn_seeds
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_probability_vector,
    check_square,
    check_same_shape,
    as_float_array,
)

__all__ = [
    "check_random_state",
    "spawn_seeds",
    "Timer",
    "check_probability_vector",
    "check_square",
    "check_same_shape",
    "as_float_array",
]
