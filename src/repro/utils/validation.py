"""Array validation helpers shared across solvers."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError


def as_float_array(x, name: str = "array") -> np.ndarray:
    """Convert ``x`` to a C-contiguous float64 ndarray, validating finiteness."""
    arr = np.ascontiguousarray(x, dtype=np.float64)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return arr


def check_square(matrix: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Validate that ``matrix`` is a square 2-D array and return it."""
    arr = np.asarray(matrix)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ShapeError(f"{name} must be square 2-D, got shape {arr.shape}")
    return arr


def check_same_shape(a: np.ndarray, b: np.ndarray, names=("a", "b")) -> None:
    """Raise :class:`ShapeError` unless ``a`` and ``b`` share a shape."""
    if np.asarray(a).shape != np.asarray(b).shape:
        raise ShapeError(
            f"{names[0]} and {names[1]} must have the same shape, "
            f"got {np.asarray(a).shape} vs {np.asarray(b).shape}"
        )


def check_probability_vector(p, size: int | None = None, name: str = "p") -> np.ndarray:
    """Validate a non-negative vector summing to one (within tolerance)."""
    vec = np.asarray(p, dtype=np.float64)
    if vec.ndim != 1:
        raise ShapeError(f"{name} must be 1-D, got shape {vec.shape}")
    if size is not None and vec.shape[0] != size:
        raise ShapeError(f"{name} must have length {size}, got {vec.shape[0]}")
    if np.any(vec < -1e-12):
        raise ValueError(f"{name} has negative entries")
    total = float(vec.sum())
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ValueError(f"{name} must sum to 1, sums to {total}")
    return vec
