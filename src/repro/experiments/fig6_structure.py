"""Figure 6 — structure-inconsistency robustness, 8 methods × 4 datasets.

Protocol: for Cora, Citeseer, PPI and Facebook, perturb 0-70 % of target
edges (features of Cora/Citeseer/Facebook truncated to their first 100
columns) and report Hit@1 for all eight methods.

Expected shape: SLOTAlign degrades slowest and leads at most noise
levels; GWD collapses fastest; KNN is flat (structure-blind); the
GNN cross-compare methods sit in between.
"""

from __future__ import annotations

from repro.datasets import (
    load_citeseer,
    load_cora,
    load_facebook,
    load_ppi,
    truncate_feature_columns,
)
from repro.eval.robustness import run_structure_sweep
from repro.experiments.config import ExperimentScale, default_aligners

PERTURBATION_LEVELS = (0.0, 0.2, 0.4, 0.6)

DATASET_BUILDERS = {
    "cora": lambda s: truncate_feature_columns(load_cora(scale=s), 100),
    "citeseer": lambda s: truncate_feature_columns(load_citeseer(scale=s), 100),
    "ppi": lambda s: load_ppi(scale=s),
    "facebook": lambda s: truncate_feature_columns(load_facebook(scale=s), 100),
}


def run_fig6(
    scale: ExperimentScale | None = None,
    datasets=("cora", "citeseer", "ppi", "facebook"),
    methods=None,
    levels=PERTURBATION_LEVELS,
) -> dict:
    """Return ``{dataset: [SweepResult, ...]}`` for the selected subset."""
    scale = scale or ExperimentScale()
    output = {}
    for name in datasets:
        graph = DATASET_BUILDERS[name](scale.dataset_scale)
        aligners = default_aligners(scale, include=methods)
        output[name] = run_structure_sweep(
            graph, aligners, levels, seed=scale.seed, decoder=scale.decoder
        )
    return output
