"""Shared experiment configuration.

Every experiment module accepts a ``scale`` knob trading fidelity for
speed and a ``seed`` for reproducibility.  ``default_aligners`` builds
the paper's eight-method comparison set with the hyperparameters used
throughout Sec. V.

Two protocol rules keep reduced-fidelity runs honest:

* **lazy, per-method seeding** — aligners are constructed only after
  the ``include`` filter is applied, and every stochastic method
  derives its seed from ``(scale.seed, method name)``.  Selecting a
  method subset therefore neither shifts any other method's RNG draws
  nor pays for setup it will not use.
* **budget-consistent schedules** — iteration-dependent quantities
  (the Fig. 8 η grid, the annealing horizon) are expressed relative to
  the iteration budget, so the ``fast`` profile tests the paper's
  claim rather than the budget mismatch (see ``eta_budget_scale``).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace

from repro.baselines import (
    FusedGWAligner,
    GATAlignAligner,
    GCNAlignAligner,
    GWDAligner,
    KNNAligner,
    REGALAligner,
    WAlignAligner,
)
from repro.core import REAL_WORLD_CONFIG, SEMI_SYNTHETIC_CONFIG, SLOTAlign

#: iteration budget the paper-protocol hyperparameters are stated for;
#: reduced budgets rescale η against it (see ``eta_budget_scale``)
REFERENCE_SLOT_ITERS = 500


def method_seed(base_seed: int, method: str) -> int:
    """Stable per-method seed: mixing ``base_seed`` with the method name.

    CRC32 of the name keeps the derivation deterministic across runs
    and Python processes (``hash()`` is salted), so excluding one
    method never shifts another's draws.
    """
    return (int(base_seed) * 1_000_003 + zlib.crc32(method.encode())) % (2**31)


@dataclass
class ExperimentScale:
    """Speed/fidelity knobs for an experiment run.

    ``dataset_scale`` shrinks the stand-in datasets; ``fast`` trims
    iteration counts of the slower baselines.  ``engine_backend``
    selects the dense solver backend every SLOTAlign variant routes
    through (``fused-dense`` / ``batched-restart`` — outputs are
    bitwise-identical, so the choice is purely a wall-clock knob).
    ``decoder`` selects the decode stage every sweep/table evaluation
    routes its plans through (a registered decoder name); ``None``
    scores the raw posterior, which is the paper's protocol and
    bitwise-identical to the pre-decode-stage pipeline.
    ``precision`` sets the solve-stage working precision
    (``"float32"`` routes to the reduced-precision fast backends;
    expect Hit@1 parity within the documented band, not bitwise
    equality).
    """

    dataset_scale: float = 0.07
    fast: bool = True
    seed: int = 0
    engine_backend: str = "fused-dense"
    decoder: str | None = None
    precision: str = "float64"

    @property
    def gnn_epochs(self) -> int:
        return 25 if self.fast else 80

    @property
    def gw_iters(self) -> int:
        return 60 if self.fast else 200

    @property
    def slot_iters(self) -> int:
        return 150 if self.fast else REFERENCE_SLOT_ITERS

    @property
    def real_world_n_bases(self) -> int:
        """Scale-aware K for the Table II profile.

        The paper's real-world K=4 includes two propagated-feature
        hops; at stand-in sizes (≤ 5 % scale, ~100-600 nodes) two hops
        of smoothing blur the ~100-node Douban pair past usefulness —
        the hop views end with learned weight ≈ 0 yet their noise
        during the interior phase of the β-trajectory costs ~8 Hit@1.
        Reduced-scale runs therefore keep the edge + node views only;
        full-scale runs keep the paper's K=4.
        """
        return 2 if self.dataset_scale <= 0.05 else 4

    @property
    def eta_budget_scale(self) -> float:
        """Multiplier keeping ``η × iterations`` constant across budgets.

        The KL-proximal step η is stated for ``REFERENCE_SLOT_ITERS``
        outer iterations; a trimmed budget takes proportionally fewer
        proximal steps, so sweeping the *paper's* η values at bench
        scale probes the budget mismatch, not the sensitivity claim.
        Hyperparameter sweeps multiply their η grid by this factor.
        """
        return REFERENCE_SLOT_ITERS / self.slot_iters


def slotalign_semi_synthetic(scale: ExperimentScale) -> SLOTAlign:
    """SLOTAlign with the paper's semi-synthetic defaults (K=2, τ=0.1).

    In ``fast`` mode the solver gets the same iteration economy as the
    GW family it is compared against (the Fig. 7 runtime column claims
    they are comparable): a committed node-view start instead of the
    restart portfolio, 60 outer iterations and 30 inner Sinkhorn
    scalings — roughly GWD's proximal budget.  The seed's fast profile
    trimmed the GNN baselines 3x but left SLOTAlign at 150x100 inner
    iterations, which is what made it the slowest method in the panel.
    Full fidelity (``fast=False``) keeps the paper protocol: the
    multi-start portfolio at 500x100.

    Both profiles carry the degenerate-view fixes (tied weights +
    centred kernels, see DESIGN.md): without them the committed
    node-view start cannot shed a feature view that truncation has
    emptied of signal, and SLOTAlign falls below feature-blind GWD.
    """
    if scale.fast:
        cfg = replace(
            SEMI_SYNTHETIC_CONFIG,
            max_outer_iter=60,
            sinkhorn_iter=30,
            multi_start=False,
            single_start_view="node",
            track_history=False,
        )
    else:
        cfg = replace(
            SEMI_SYNTHETIC_CONFIG,
            max_outer_iter=scale.slot_iters,
            track_history=False,
        )
    return SLOTAlign(cfg, backend=scale.engine_backend, precision=scale.precision)


def slotalign_real_world(scale: ExperimentScale, **overrides) -> SLOTAlign:
    """SLOTAlign with the paper's real-world defaults (K=4, τ=1).

    ``K`` is scale-aware (``real_world_n_bases``): the paper's K=4 at
    full fidelity, edge + node views only at stand-in scale, where two
    propagated hops over-smooth the ~100-node pairs.

    The real-world profile carries the full Sec. IV base construction
    (centred kernels, attribute-propagated cosine hops with the lazy
    walk) plus the Sec. V-C feature-similarity initialisation, which
    the stand-in protocol extends from DBP15K to Douban/ACM-DBLP:
    at bench sizes the uniform coupling has no symmetry-breaking
    signal to anneal towards, while the informative init needs no
    annealing at all (annealing exists to break uniform-init
    symmetry, so it is disabled whenever the init is on).
    """
    use_init = overrides.get(
        "use_feature_similarity_init",
        REAL_WORLD_CONFIG.use_feature_similarity_init,
    )
    params = dict(
        n_bases=scale.real_world_n_bases,
        max_outer_iter=scale.slot_iters,
        track_history=False,
        use_feature_similarity_init=use_init,
        anneal=not use_init,
    )
    params.update(overrides)
    return SLOTAlign(
        replace(REAL_WORLD_CONFIG, **params), backend=scale.engine_backend,
        precision=scale.precision,
    )


DEFAULT_METHODS = (
    "SLOTAlign", "KNN", "REGAL", "GCNAlign", "GATAlign",
    "WAlign", "GWD", "FusedGW",
)
"""The paper's eight-method comparison panel, in report order."""


def default_aligners(scale: ExperimentScale, include=None) -> dict:
    """The eight-method comparison set of Figures 6-7.

    Aligners are built lazily: the ``include`` filter is applied to
    factories, so deselected methods are neither constructed nor
    seeded, and every stochastic method draws from its own
    ``method_seed`` stream.
    """
    factories = {
        "SLOTAlign": lambda: slotalign_semi_synthetic(scale),
        "KNN": KNNAligner,
        "REGAL": lambda: REGALAligner(seed=method_seed(scale.seed, "REGAL")),
        "GCNAlign": lambda: GCNAlignAligner(
            n_epochs=scale.gnn_epochs, seed=method_seed(scale.seed, "GCNAlign")
        ),
        "GATAlign": lambda: GATAlignAligner(
            n_epochs=max(10, scale.gnn_epochs // 2),
            seed=method_seed(scale.seed, "GATAlign"),
        ),
        "WAlign": lambda: WAlignAligner(
            n_epochs=scale.gnn_epochs, seed=method_seed(scale.seed, "WAlign")
        ),
        "GWD": lambda: GWDAligner(max_iter=scale.gw_iters),
        "FusedGW": lambda: FusedGWAligner(max_iter=scale.gw_iters),
    }
    if include is not None:
        factories = {k: v for k, v in factories.items() if k in include}
    return {name: build() for name, build in factories.items()}
