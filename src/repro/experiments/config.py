"""Shared experiment configuration.

Every experiment module accepts a ``scale`` knob trading fidelity for
speed and a ``seed`` for reproducibility.  ``default_aligners`` builds
the paper's eight-method comparison set with the hyperparameters used
throughout Sec. V.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import (
    FusedGWAligner,
    GATAlignAligner,
    GCNAlignAligner,
    GWDAligner,
    KNNAligner,
    REGALAligner,
    WAlignAligner,
)
from repro.core import SEMI_SYNTHETIC_CONFIG, SLOTAlign, SLOTAlignConfig


@dataclass
class ExperimentScale:
    """Speed/fidelity knobs for an experiment run.

    ``dataset_scale`` shrinks the stand-in datasets; ``fast`` trims
    iteration counts of the slower baselines.
    """

    dataset_scale: float = 0.07
    fast: bool = True
    seed: int = 0

    @property
    def gnn_epochs(self) -> int:
        return 25 if self.fast else 80

    @property
    def gw_iters(self) -> int:
        return 60 if self.fast else 200

    @property
    def slot_iters(self) -> int:
        return 150 if self.fast else 500


def slotalign_semi_synthetic(scale: ExperimentScale) -> SLOTAlign:
    """SLOTAlign with the paper's semi-synthetic defaults (K=2, τ=0.1).

    In ``fast`` mode the solver gets the same iteration economy as the
    GW family it is compared against (the Fig. 7 runtime column claims
    they are comparable): a committed node-view start instead of the
    restart portfolio, 60 outer iterations and 30 inner Sinkhorn
    scalings — roughly GWD's proximal budget.  The seed's fast profile
    trimmed the GNN baselines 3x but left SLOTAlign at 150x100 inner
    iterations, which is what made it the slowest method in the panel.
    Full fidelity (``fast=False``) keeps the paper protocol: the
    multi-start portfolio at 500x100.
    """
    if scale.fast:
        cfg = SLOTAlignConfig(
            n_bases=SEMI_SYNTHETIC_CONFIG.n_bases,
            structure_lr=SEMI_SYNTHETIC_CONFIG.structure_lr,
            sinkhorn_lr=SEMI_SYNTHETIC_CONFIG.sinkhorn_lr,
            max_outer_iter=60,
            sinkhorn_iter=30,
            multi_start=False,
            single_start_view="node",
            track_history=False,
        )
    else:
        cfg = SLOTAlignConfig(
            n_bases=SEMI_SYNTHETIC_CONFIG.n_bases,
            structure_lr=SEMI_SYNTHETIC_CONFIG.structure_lr,
            sinkhorn_lr=SEMI_SYNTHETIC_CONFIG.sinkhorn_lr,
            max_outer_iter=scale.slot_iters,
            track_history=False,
        )
    return SLOTAlign(cfg)


def slotalign_real_world(scale: ExperimentScale, **overrides) -> SLOTAlign:
    """SLOTAlign with the paper's real-world defaults (K=4, τ=1)."""
    params = dict(
        n_bases=4,
        structure_lr=1.0,
        sinkhorn_lr=0.01,
        max_outer_iter=scale.slot_iters,
        track_history=False,
    )
    params.update(overrides)
    return SLOTAlign(SLOTAlignConfig(**params))


def default_aligners(scale: ExperimentScale, include=None) -> dict:
    """The eight-method comparison set of Figures 6-7."""
    methods = {
        "SLOTAlign": slotalign_semi_synthetic(scale),
        "KNN": KNNAligner(),
        "REGAL": REGALAligner(seed=scale.seed),
        "GCNAlign": GCNAlignAligner(n_epochs=scale.gnn_epochs, seed=scale.seed),
        "GATAlign": GATAlignAligner(
            n_epochs=max(10, scale.gnn_epochs // 2), seed=scale.seed
        ),
        "WAlign": WAlignAligner(n_epochs=scale.gnn_epochs, seed=scale.seed),
        "GWD": GWDAligner(max_iter=scale.gw_iters),
        "FusedGW": FusedGWAligner(max_iter=scale.gw_iters),
    }
    if include is not None:
        methods = {k: v for k, v in methods.items() if k in include}
    return methods
