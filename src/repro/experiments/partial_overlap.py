"""Partial-overlap robustness sweep: the Sec. VII future-work axis.

The paper's semi-synthetic protocol perturbs edges and features but
keeps the node sets bijective; its real pairs are not (Douban: 1,118 of
3,906 online users have an offline copy), and partial alignment is
named as future work.  This driver sweeps the partial workload the way
Figures 6/7 sweep noise: overlap fraction × anchor fraction on a Cora
stand-in, solved by the partial engine backends, scoring Hit@k/MRR on
the matchable nodes and precision/recall of unmatchable-node
detection.

The sweep's overlap=1.0, zero-anchor point is the **parity anchor**:
``partial-dummy`` at mass 1 delegates to the reference ``fused-dense``
portfolio, so its Hit@1 must equal the full-bijective reference run
*exactly* — recorded as ``full_bijective_hits1`` in the ``partial``
cohort of ``BENCH_fidelity.json`` and gated by
``benchmarks/compare_bench.py``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import SEMI_SYNTHETIC_CONFIG
from repro.core.config import SLOTAlignConfig
from repro.datasets import load_cora
from repro.datasets.pairs import PartialPairSpec, make_partial_pair
from repro.engine import AlignmentEngine
from repro.eval.robustness import run_partial_sweep
from repro.experiments.config import ExperimentScale
from repro.utils.random import spawn_seeds

OVERLAPS = (1.0, 0.8, 0.6)
ANCHOR_FRACTIONS = (0.0, 0.2)
BACKENDS = ("partial-dummy", "partial-unbalanced")


def partial_config(scale: ExperimentScale) -> SLOTAlignConfig:
    """The SLOTAlign profile every sweep point (and the reference) uses.

    Mirrors ``slotalign_semi_synthetic``: the fast profile commits to
    the node-view start at the GW family's iteration economy, full
    fidelity keeps the multi-start portfolio at the paper budget.
    """
    if scale.fast:
        return replace(
            SEMI_SYNTHETIC_CONFIG,
            max_outer_iter=60,
            sinkhorn_iter=30,
            multi_start=False,
            single_start_view="node",
            track_history=False,
        )
    return replace(
        SEMI_SYNTHETIC_CONFIG,
        max_outer_iter=scale.slot_iters,
        track_history=False,
    )


def run_partial_overlap(
    scale: ExperimentScale,
    overlaps=OVERLAPS,
    anchor_fractions=ANCHOR_FRACTIONS,
    backends=BACKENDS,
) -> dict:
    """The full sweep grid plus the full-bijective reference point."""
    overlaps = tuple(float(level) for level in overlaps)
    graph = load_cora(scale=scale.dataset_scale, seed=scale.seed)
    config = partial_config(scale)
    points: list[dict] = []
    for backend in backends:
        points.extend(
            run_partial_sweep(
                graph,
                overlaps,
                anchor_fractions=anchor_fractions,
                backend=backend,
                config=config,
                seed=scale.seed,
                decoder=scale.decoder,
            )
        )
    # the reference rebuilds the overlap=1.0 pair from the *same* level
    # seed the sweep drew, so the parity claim is about the solver, not
    # about two different pairs happening to agree
    level_seeds = spawn_seeds(scale.seed, len(overlaps))
    reference_seed = (
        level_seeds[overlaps.index(1.0)] if 1.0 in overlaps else level_seeds[0]
    )
    pair = make_partial_pair(
        graph, PartialPairSpec(overlap=1.0), seed=reference_seed
    )
    engine = AlignmentEngine(config, backend="fused-dense")
    reference = engine.run(pair.source, pair.target, pair.ground_truth, ks=(1,))
    return {
        "dataset": "cora",
        "dataset_scale": scale.dataset_scale,
        "points": points,
        "full_bijective_hits1": float(reference.metrics["hits@1"]),
    }


def format_partial(out: dict) -> str:
    """Human-readable rendering of the sweep (the runner's report)."""
    lines = [
        f"Partial overlap — {out['dataset']} "
        f"(full-bijective fused-dense Hit@1 {out['full_bijective_hits1']:.2f})",
        f"{'backend':<20}{'overlap':>8}{'anchors':>8}{'hit@1':>8}"
        f"{'mrr':>8}{'det-AP':>8}{'mass':>8}",
    ]
    for point in out["points"]:
        detection = point.get("detection", {})
        lines.append(
            f"{point['backend']:<20}{point['overlap']:>8.2f}"
            f"{point['anchor_fraction']:>8.2f}{point['hits@1']:>8.2f}"
            f"{point['mrr']:>8.3f}"
            f"{detection.get('average_precision', float('nan')):>8.3f}"
            f"{point['matched_mass']:>8.3f}"
        )
    return "\n".join(lines)
