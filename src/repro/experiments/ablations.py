"""SLOTAlign ablations (Table II bottom block).

Variants:
* ``-w/o edge-view`` / ``-w/o node-view`` / ``-w/o subgraph-view`` —
  drop one view family from the basis construction;
* ``-fixed beta`` — keep the uniform basis weights (no structure
  learning), isolating the value of the joint optimisation;
* ``-parameterized GNN`` — replace the parameter-free propagation with
  a trained GCN when building the subgraph-view bases.
"""

from __future__ import annotations

from dataclasses import replace

from repro.autodiff.optim import Adam
from repro.autodiff.tensor import Tensor
from repro.core import SLOTAlign, SLOTAlignConfig
from repro.core.result import AlignmentResult
from repro.core.slotalign import SLOTAlign as _SLOTAlign
from repro.exceptions import GraphError
from repro.experiments.config import (
    ExperimentScale,
    method_seed,
    slotalign_real_world,
)
from repro.gnn.gcn import GCN, dense_normalized_adjacency
from repro.graphs.graph import AttributedGraph
from repro.graphs.normalization import row_normalize
from repro.utils.timer import Timer


def ablation_aligners(scale: ExperimentScale) -> dict:
    """The five Table-II ablation variants, keyed as in the paper.

    Each variant is derived from the full real-world protocol (tied
    weights, centred kernels, cosine hops, similarity init — the
    ``slotalign_real_world`` config) so each row isolates its one
    removed ingredient.  View counts are *relative to the reference*
    (its K is scale-aware): dropping a view family removes one view,
    never adds views the reference does not use.  At stand-in scale
    (K=2, edge + node) the subgraph-view row is therefore identical to
    the full model — the scale-aware protocol already excludes hops
    there, and the row records that honestly.
    """
    base = slotalign_real_world(scale).config
    backend = scale.engine_backend
    return {
        "SLOT-w/o-edge": SLOTAlign(
            replace(
                base,
                n_bases=max(1, base.n_bases - 1),
                include_views=("node", "subgraph"),
            ),
            backend=backend,
        ),
        "SLOT-w/o-node": SLOTAlign(
            replace(
                base,
                n_bases=max(1, base.n_bases - 1),
                include_views=("edge", "subgraph"),
            ),
            backend=backend,
        ),
        "SLOT-w/o-subgraph": SLOTAlign(
            replace(
                base,
                n_bases=min(base.n_bases, 2),
                include_views=("edge", "node"),
            ),
            backend=backend,
        ),
        "SLOT-fixed-beta": SLOTAlign(
            replace(base, learn_weights=False), backend=backend
        ),
        "SLOT-param-GNN": ParameterizedGNNSLOTAlign(
            replace(base),
            gnn_epochs=max(10, scale.gnn_epochs // 2),
            seed=method_seed(scale.seed, "SLOT-param-GNN"),
        ),
    }


class ParameterizedGNNSLOTAlign:
    """Ablation: subgraph-view built from a *trained* GCN.

    The GCN (with linear layers and ReLU, per Wu et al.'s original
    parameterised form) is trained to minimise the same GW objective
    (Eq. 9) on its output Gram matrices, then its embeddings replace the
    parameter-free propagation in the subgraph views.  The paper finds
    this *underperforms* the parameter-free version — unstable
    unsupervised training (Sec. V-D).
    """

    name = "SLOT-param-GNN"

    def __init__(self, config: SLOTAlignConfig, gnn_epochs: int = 15, seed: int = 0):
        self.config = config
        self.gnn_epochs = gnn_epochs
        self.seed = seed

    def fit(
        self, source: AttributedGraph, target: AttributedGraph
    ) -> AlignmentResult:
        if source.features is None or target.features is None:
            raise GraphError("parameterised-GNN ablation requires features")
        with Timer() as timer:
            emb_s, emb_t = self._train_gnn(source, target)
            inner = _SLOTAlign(self.config)
            result = inner.fit(
                source.with_features(emb_s), target.with_features(emb_t)
            )
        result.runtime = timer.elapsed
        result.method = self.name
        return result

    def _train_gnn(self, source, target):
        """Train a weight-shared GCN on the GW-style Gram objective."""
        from repro.baselines.base import pad_features_to_common_dim

        feats_s, feats_t = pad_features_to_common_dim(
            row_normalize(source.features), row_normalize(target.features)
        )
        out_dim = min(32, feats_s.shape[1])
        encoder = GCN([feats_s.shape[1], 64, out_dim], seed=self.seed)
        adj_s = dense_normalized_adjacency(source)
        adj_t = dense_normalized_adjacency(target)
        optimizer = Adam(encoder.parameters(), lr=0.005)
        n, m = source.n_nodes, target.n_nodes
        for _ in range(self.gnn_epochs):
            emb_s = encoder(adj_s, Tensor(feats_s))
            emb_t = encoder(adj_t, Tensor(feats_t))
            gram_s = emb_s @ emb_s.T
            gram_t = emb_t @ emb_t.T
            # unsupervised surrogate of Eq. 9 with uniform plan:
            # match the two Gram energies while keeping them bounded
            loss = (
                (gram_s * gram_s).mean()
                + (gram_t * gram_t).mean()
                - 2.0 * gram_s.mean() * gram_t.mean()
            )
            encoder.zero_grad()
            loss.backward()
            optimizer.step()
        return encoder(adj_s, Tensor(feats_s)).data, encoder(
            adj_t, Tensor(feats_t)
        ).data
