"""Scalability study: runtime-vs-n for whole-graph vs partitioned.

Not a paper artefact — the paper (Sec. IV-D) leaves large-graph
alignment as future work — but the measurement that justifies the
``repro.scale`` subsystem: as ``n`` grows, whole-graph SLOTAlign cost
grows ~quadratically per iteration while the partitioned pipeline pays
``k`` blocks of ``(n/k)²`` plus a sparse repair pass, and the Hit@1 gap
between them stays small once boundary repair recovers the cross-part
links.

Run:  ``python -m repro.experiments scale``
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.core import SLOTAlign
from repro.datasets import make_semi_synthetic_pair
from repro.eval import hits_at_k
from repro.experiments.config import ExperimentScale, slotalign_semi_synthetic
from repro.graphs import stochastic_block_model
from repro.graphs.features import community_bag_of_words
from repro.scale import DivideAndConquerAligner, available_cpus

SIZES = (120, 240, 480)
COMMUNITY = 30
"""Community size of the benchmark SBM; parts are sized to hold a few
communities each so block quality stays representative."""


def scalability_pair(n_nodes: int, seed: int = 0):
    """Seeded community-structured pair with ``n_nodes`` nodes."""
    n_blocks = max(2, n_nodes // COMMUNITY)
    graph = stochastic_block_model(
        [COMMUNITY] * n_blocks, 0.35, 0.01, seed=seed
    )
    feats = community_bag_of_words(
        graph.node_labels, 80, words_per_node=12, seed=seed + 1
    )
    graph = graph.with_features(feats)
    return make_semi_synthetic_pair(graph, edge_noise=0.02, seed=seed + 2)


def run_scalability(
    scale: ExperimentScale | None = None,
    sizes=SIZES,
    n_parts: int | None = None,
) -> dict:
    """Return ``{label: {metric: value}}`` rows for the runtime curve.

    Per size: whole-graph SLOTAlign seconds and Hit@1, partitioned
    serial seconds, partitioned parallel seconds (``auto`` backend —
    process pool on multi-core machines, the bitwise-identical serial
    loop otherwise), no-repair and repaired Hit@1.  ``n_parts=None``
    sizes parts to hold ~3 communities each: the balanced k-way cut
    splits communities when the per-part count is fractional, and a
    split community is the worst case for block alignment.
    """
    scale = scale or ExperimentScale()
    curve: dict[str, dict[str, float]] = {}
    for size in sizes:
        n = max(2 * COMMUNITY, int(round(size * scale.dataset_scale / 0.07)))
        pair = scalability_pair(n, seed=scale.seed)
        k_parts = n_parts or max(
            2, pair.source.n_nodes // (3 * COMMUNITY)
        )
        # the scaling study pins the scale subsystem's own solver
        # profile (the configuration its bitwise contract and the
        # four_block section of BENCH_scale.json are measured against)
        # rather than the accuracy-overhaul semi-synthetic profile:
        # kernel centring under a *committed* single start is
        # basin-fragile on this equal-size-block SBM fixture (the
        # full-fidelity multi-start portfolio recovers it, but would
        # break the fast profile's GW runtime parity), and the curve's
        # job is runtime comparability across PRs, not Table/Fig
        # accuracy — the accuracy benchmarks exercise the overhauled
        # profiles
        base = slotalign_semi_synthetic(scale).config
        config = replace(base, tie_weights=False, center_kernels=False)

        t0 = time.perf_counter()
        whole = SLOTAlign(config, backend=scale.engine_backend).fit(
            pair.source, pair.target
        )
        whole_seconds = time.perf_counter() - t0
        whole_hit = hits_at_k(whole.plan, pair.ground_truth, 1)

        def fit(executor: str, repair: bool):
            aligner = DivideAndConquerAligner(
                config, n_parts=k_parts, executor=executor,
                boundary_repair=repair,
                solver_backend=scale.engine_backend,
            )
            start = time.perf_counter()
            out = aligner.fit(pair.source, pair.target)
            return out, time.perf_counter() - start

        # the timed arms run the identical pipeline (repair included on
        # both) so their ratio isolates the executor; the no-repair fit
        # contributes only its Hit@1 to the quality-gap columns
        plain, _ = fit("serial", False)
        repaired, serial_seconds = fit("serial", True)
        _, parallel_seconds = fit("auto", True)

        curve[f"n={pair.source.n_nodes}"] = {
            "whole_s": whole_seconds,
            "part_serial_s": serial_seconds,
            "part_parallel_s": parallel_seconds,
            "whole_hit1": whole_hit,
            "part_hit1": hits_at_k(plain.plan, pair.ground_truth, 1),
            "repaired_hit1": hits_at_k(repaired.plan, pair.ground_truth, 1),
            "cut_frac": repaired.extras["source_cut_fraction"],
        }
    return {"curve": curve, "cpu_count": available_cpus()}
