"""Experiment harness: one module per paper table/figure."""

from repro.experiments.config import (
    ExperimentScale,
    default_aligners,
    method_seed,
    slotalign_real_world,
    slotalign_semi_synthetic,
)
from repro.experiments.fig3_motivation import run_fig3
from repro.experiments.fig6_structure import run_fig6
from repro.experiments.fig7_feature import run_fig7
from repro.experiments.fig8_sensitivity import run_fig8
from repro.experiments.scalability import run_scalability
from repro.experiments.serve_traffic import (
    format_serve_report,
    run_serve_traffic,
)
from repro.experiments.partial_overlap import format_partial, run_partial_overlap
from repro.experiments.table2_realworld import run_table2
from repro.experiments.table3_dbp15k import run_table3
from repro.experiments.ablations import ablation_aligners
from repro.experiments.runner import run_experiment

__all__ = [
    "ExperimentScale",
    "default_aligners",
    "method_seed",
    "slotalign_real_world",
    "slotalign_semi_synthetic",
    "run_fig3",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "format_partial",
    "run_partial_overlap",
    "run_scalability",
    "format_serve_report",
    "run_serve_traffic",
    "run_table2",
    "run_table3",
    "ablation_aligners",
    "run_experiment",
]
