"""Table II — real-world alignment: Douban Online-Offline and ACM-DBLP.

Protocol: all eight methods on the two noisy-pair simulators, reporting
Hit@{1,5,10,30} and runtime; plus the five SLOTAlign ablations of the
table's bottom block.

Expected shape: SLOTAlign leads Hit@1 on both pairs; KNN is weak on
Douban (coarse location features) but strong on ACM-DBLP (venue
counts); GWD is weak on Douban (partial overlap + structure noise) but
competitive on ACM-DBLP; each ablation hurts.
"""

from __future__ import annotations

from repro.datasets import load_acm_dblp, load_douban
from repro.eval.robustness import evaluate_on_pair
from repro.experiments.ablations import ablation_aligners
from repro.experiments.config import (
    DEFAULT_METHODS,
    ExperimentScale,
    default_aligners,
    slotalign_real_world,
)

KS = (1, 5, 10, 30)


def run_table2(
    scale: ExperimentScale | None = None,
    datasets=("douban", "acm-dblp"),
    methods=None,
    with_ablations: bool = True,
) -> dict:
    """Return ``{dataset: {method: {hits@k..., time}}}``."""
    scale = scale or ExperimentScale()
    loaders = {
        "douban": lambda: load_douban(
            scale=min(1.0, scale.dataset_scale * 3), seed=scale.seed + 23
        ),
        "acm-dblp": lambda: load_acm_dblp(
            scale=scale.dataset_scale, seed=scale.seed + 29
        ),
    }
    output = {}
    for name in datasets:
        pair = loaders[name]()
        # build the baselines lazily; SLOTAlign is excluded from the
        # default construction because Table II uses the real-world
        # profile, not the semi-synthetic one
        include_slot = methods is None or "SLOTAlign" in methods
        baseline_names = [
            m
            for m in (methods if methods is not None else DEFAULT_METHODS)
            if m != "SLOTAlign"
        ]
        aligners = default_aligners(scale, include=baseline_names)
        if include_slot:
            aligners["SLOTAlign"] = slotalign_real_world(scale)
        if with_ablations:
            aligners.update(ablation_aligners(scale))
        output[name] = evaluate_on_pair(
            aligners, pair, ks=KS, decoder=scale.decoder
        )
    return output
