"""Figure 3 — motivation: WAlign vs GWD vs KNN under inconsistency.

Protocol (paper Sec. III): Cora with the first 100 feature columns as
the source graph; the left panel sweeps structure perturbation 0-60 %
with features unchanged, the right panel fixes 25 % edge perturbation
and sweeps feature-column permutation 0-70 %.

Expected shape: WAlign degrades under both noise types and falls to/
below KNN at high ratios; GWD ignores feature noise entirely but is the
most structure-fragile; KNN ignores structure noise entirely.
"""

from __future__ import annotations

from repro.baselines import GWDAligner, KNNAligner, WAlignAligner
from repro.datasets import load_cora, truncate_feature_columns
from repro.eval.robustness import run_feature_sweep, run_structure_sweep
from repro.experiments.config import ExperimentScale

STRUCTURE_LEVELS = (0.0, 0.2, 0.4, 0.6)
FEATURE_LEVELS = (0.0, 0.2, 0.4, 0.7)


def run_fig3(scale: ExperimentScale | None = None) -> dict:
    """Run both panels; returns ``{"structure": [...], "feature": [...]}``."""
    scale = scale or ExperimentScale()
    graph = truncate_feature_columns(
        load_cora(scale=scale.dataset_scale), 100
    )
    aligners = {
        "WAlign": WAlignAligner(n_epochs=scale.gnn_epochs, seed=scale.seed),
        "GWD": GWDAligner(max_iter=scale.gw_iters),
        "KNN": KNNAligner(),
    }
    structure = run_structure_sweep(
        graph, aligners, STRUCTURE_LEVELS, seed=scale.seed,
        decoder=scale.decoder,
    )
    feature = run_feature_sweep(
        graph,
        aligners,
        FEATURE_LEVELS,
        transform="permutation",
        edge_noise=0.25,
        seed=scale.seed,
        decoder=scale.decoder,
    )
    return {"structure": structure, "feature": feature}
