"""Figure 8 — hyperparameter sensitivity of SLOTAlign.

Protocol: sweep the structure-learning step τ ∈ {0.2, 0.5, 1, 2, 5},
the Sinkhorn step η ∈ {0.001, 0.002, 0.005, 0.01, 0.02} and the number
of bases K ∈ {3, ..., 7} on representative datasets, reporting Hit@1.

Expected shape: flat curves — SLOTAlign is robust to all three
hyperparameters and the default (η=0.01, τ=1, K=4) is competitive
everywhere.
"""

from __future__ import annotations

from repro.core import SLOTAlign, SLOTAlignConfig
from repro.datasets import load_acm_dblp, load_cora, load_dbp15k
from repro.datasets.pairs import make_semi_synthetic_pair, truncate_feature_columns
from repro.eval.metrics import hits_at_k
from repro.experiments.config import ExperimentScale

TAU_GRID = (0.2, 0.5, 1.0, 2.0, 5.0)
ETA_GRID = (0.001, 0.002, 0.005, 0.01, 0.02)
K_GRID = (3, 4, 5, 6, 7)


def _pairs(scale: ExperimentScale) -> dict:
    cora = truncate_feature_columns(load_cora(scale=scale.dataset_scale), 100)
    return {
        "cora": make_semi_synthetic_pair(
            cora, edge_noise=0.2, seed=scale.seed
        ),
        "acm-dblp": load_acm_dblp(
            scale=scale.dataset_scale, seed=scale.seed + 29
        ),
        "dbp15k_zh_en": load_dbp15k(
            "zh_en", scale=scale.dataset_scale, seed=scale.seed + 31
        ),
    }


def run_fig8(
    scale: ExperimentScale | None = None,
    datasets=("cora", "acm-dblp"),
    parameters=("tau", "eta", "k"),
) -> dict:
    """Return ``{parameter: {dataset: [(value, hit@1), ...]}}``."""
    scale = scale or ExperimentScale()
    pairs = {k: v for k, v in _pairs(scale).items() if k in datasets}
    grids = {"tau": TAU_GRID, "eta": ETA_GRID, "k": K_GRID}
    output: dict = {}
    for parameter in parameters:
        output[parameter] = {}
        for name, pair in pairs.items():
            curve = []
            for value in grids[parameter]:
                cfg_kwargs = dict(
                    n_bases=4,
                    structure_lr=1.0,
                    sinkhorn_lr=0.01,
                    max_outer_iter=scale.slot_iters,
                    track_history=False,
                    use_feature_similarity_init=name.startswith("dbp15k"),
                )
                if parameter == "tau":
                    cfg_kwargs["structure_lr"] = value
                elif parameter == "eta":
                    cfg_kwargs["sinkhorn_lr"] = value
                else:
                    cfg_kwargs["n_bases"] = int(value)
                aligner = SLOTAlign(SLOTAlignConfig(**cfg_kwargs))
                outcome = aligner.fit(pair.source, pair.target)
                curve.append(
                    (value, hits_at_k(outcome.plan, pair.ground_truth, 1))
                )
            output[parameter][name] = curve
    return output
