"""Figure 8 — hyperparameter sensitivity of SLOTAlign.

Protocol: sweep the structure-learning step τ ∈ {0.2, 0.5, 1, 2, 5},
the Sinkhorn step η ∈ {0.001, 0.002, 0.005, 0.01, 0.02} and the number
of bases K ∈ {3, ..., 7} on representative datasets, reporting Hit@1.

The grids are stated for the paper's iteration budget
(``REFERENCE_SLOT_ITERS``).  η is the per-iteration KL-proximal step,
so what the sweep actually probes is the *total* proximal movement
``η × iterations``: running the paper's η values unchanged under a
trimmed ``fast`` budget tests the budget mismatch, not the robustness
claim (the smallest η then moves the plan a third as far as the paper's
protocol and craters by tens of Hit@1 points).  The driver therefore
multiplies the η grid by ``scale.eta_budget_scale`` — reported values
stay the paper's, the effective steps keep ``η × iterations``
invariant.  τ is budget-coupled the same way through the number of
projected-gradient steps, so it shares the rescaling; K is
budget-free and is swept as-is.

Expected shape: flat curves — SLOTAlign is robust to all three
hyperparameters and the default (η=0.01, τ=1, K=4) is competitive
everywhere.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import REAL_WORLD_CONFIG, SLOTAlign
from repro.datasets import load_acm_dblp, load_cora, load_dbp15k
from repro.datasets.pairs import make_semi_synthetic_pair, truncate_feature_columns
from repro.eval.metrics import hits_at_k
from repro.experiments.config import ExperimentScale

TAU_GRID = (0.2, 0.5, 1.0, 2.0, 5.0)
ETA_GRID = (0.001, 0.002, 0.005, 0.01, 0.02)
K_GRID = (3, 4, 5, 6, 7)


def _cora_pair(scale: ExperimentScale):
    cora = truncate_feature_columns(load_cora(scale=scale.dataset_scale), 100)
    return make_semi_synthetic_pair(cora, edge_noise=0.2, seed=scale.seed)


# dataset -> (pair loader, use the Sec. V-C informative-init protocol).
# Loaders keep unselected datasets unbuilt; the protocol column is
# explicit per dataset (semi-synthetic pairs start uniform and keep the
# anneal, real-world/KG pairs use the similarity init without it) so a
# new entry must state its protocol instead of inheriting one from a
# name-prefix rule.
_DATASETS = {
    "cora": (_cora_pair, False),
    "acm-dblp": (
        lambda scale: load_acm_dblp(
            scale=scale.dataset_scale, seed=scale.seed + 29
        ),
        True,
    ),
    "dbp15k_zh_en": (
        lambda scale: load_dbp15k(
            "zh_en", scale=scale.dataset_scale, seed=scale.seed + 31
        ),
        True,
    ),
}


def run_fig8(
    scale: ExperimentScale | None = None,
    datasets=("cora", "acm-dblp"),
    parameters=("tau", "eta", "k"),
) -> dict:
    """Return ``{parameter: {dataset: [(value, hit@1), ...]}}``.

    Reported sweep values are the paper's; the effective τ/η steps are
    rescaled by ``scale.eta_budget_scale`` so trimmed budgets keep
    ``step × iterations`` at the paper protocol's level.
    """
    scale = scale or ExperimentScale()
    pairs = {
        name: (loader(scale), use_init)
        for name, (loader, use_init) in _DATASETS.items()
        if name in datasets
    }
    grids = {"tau": TAU_GRID, "eta": ETA_GRID, "k": K_GRID}
    budget = scale.eta_budget_scale
    output: dict = {}
    for parameter in parameters:
        output[parameter] = {}
        for name, (pair, use_init) in pairs.items():
            curve = []
            for value in grids[parameter]:
                cfg_kwargs = dict(
                    n_bases=4,
                    structure_lr=REAL_WORLD_CONFIG.structure_lr * budget,
                    sinkhorn_lr=REAL_WORLD_CONFIG.sinkhorn_lr * budget,
                    max_outer_iter=scale.slot_iters,
                    track_history=False,
                    use_feature_similarity_init=use_init,
                    anneal=not use_init,
                )
                if parameter == "tau":
                    cfg_kwargs["structure_lr"] = value * budget
                elif parameter == "eta":
                    cfg_kwargs["sinkhorn_lr"] = value * budget
                else:
                    cfg_kwargs["n_bases"] = int(value)
                aligner = SLOTAlign(
                    replace(REAL_WORLD_CONFIG, **cfg_kwargs),
                    backend=scale.engine_backend,
                )
                outcome = aligner.fit(pair.source, pair.target)
                curve.append(
                    (value, hits_at_k(outcome.plan, pair.ground_truth, 1))
                )
            output[parameter][name] = curve
    return output
