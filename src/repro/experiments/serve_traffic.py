"""Synthetic-traffic driver for the alignment service.

Models the serving workload the ROADMAP's alignment-as-a-service item
describes: a burst of small alignment requests over a handful of
*distinct* pairs, each pair requested repeatedly.  Repetition
exercises the shared plan cache (content-equal graphs hit the same
entry regardless of which job carries them), and the same-shape burst
exercises batch coalescing (queued compatible jobs solve as one
stacked lockstep batch).  The driver reports the service-level
numbers the benchmark gates on — pairs/sec, cache hit rate, latency
percentiles, coalescing counters — plus a **bitwise fidelity check**:
the served plan of the first pair must be bit-for-bit identical to a
direct single-pair :class:`AlignmentEngine` run.

Run:  ``python -m repro serve <dataset>``
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import SLOTAlignConfig
from repro.datasets import load_graph_dataset, make_semi_synthetic_pair
from repro.engine import AlignmentEngine, PlanCache
from repro.scale import available_cpus
from repro.serve import AlignmentService, wait_all


def serve_config(iters: int = 25) -> SLOTAlignConfig:
    """The solver profile served traffic runs under.

    Short-budget, history-free: serving latency is dominated by the
    solve loop, and the bitwise contract holds at any budget.
    """
    return SLOTAlignConfig(
        n_bases=2,
        structure_lr=0.1,
        max_outer_iter=iters,
        sinkhorn_iter=20,
        track_history=False,
    )


def traffic_pairs(
    dataset: str, n_distinct: int, scale: float, seed: int
) -> list:
    """``n_distinct`` same-shape pairs from one dataset stand-in.

    All pairs share the base graph (and therefore plan shape — the
    coalescing precondition) but use distinct perturbation seeds, so
    their targets are distinct cache entries while repeated requests
    for the same pair are exact cache hits.
    """
    graph = load_graph_dataset(dataset, scale=scale)
    return [
        make_semi_synthetic_pair(graph, edge_noise=0.05, seed=seed + i)
        for i in range(n_distinct)
    ]


def run_serve_traffic(
    dataset: str = "cora",
    scale: float = 0.05,
    seed: int = 0,
    n_jobs: int = 24,
    n_distinct: int = 4,
    workers: int = 2,
    max_batch: int = 8,
    iters: int = 25,
) -> dict:
    """Drive the service with a synthetic burst and report its stats.

    Jobs are submitted round-robin over ``n_distinct`` pairs *before*
    the workers start, so the backlog is visible to the first dequeue
    and coalescing engages deterministically.
    """
    config = serve_config(iters)
    pairs = traffic_pairs(dataset, n_distinct, scale, seed)
    cache = PlanCache()
    service = AlignmentService(
        config, cache=cache, workers=workers, max_batch=max_batch
    )
    jobs = []
    for index in range(n_jobs):
        pair = pairs[index % n_distinct]
        jobs.append(
            service.submit(
                pair.source, pair.target, tag=f"pair-{index % n_distinct}"
            )
        )
    t0 = time.perf_counter()
    with service:
        finished = wait_all(jobs, timeout=600)
    serve_seconds = time.perf_counter() - t0
    if not finished:
        raise RuntimeError("serve traffic did not finish within 600s")

    stats = service.stats()
    info = cache.info()
    lookups = info["hits"] + info["misses"]
    latency = stats["latency_seconds"]

    # fidelity: the served plan of pair 0 must be bit-for-bit what a
    # direct single-pair engine run produces (coalescing and cache
    # sharing are pure scheduling)
    direct = AlignmentEngine(config, cache=None).align(
        pairs[0].source, pairs[0].target
    )
    served = jobs[0].result.result
    bitwise_equal = bool(np.array_equal(served.plan, direct.plan))

    completed = stats["completed"]
    return {
        "dataset": dataset,
        "scale": scale,
        "n_jobs": n_jobs,
        "n_distinct": n_distinct,
        "workers": workers,
        "max_batch": max_batch,
        "iters": iters,
        "n_nodes": pairs[0].source.n_nodes,
        "completed": completed,
        "failed": stats["failed"],
        "rejected": stats["rejected"],
        "serve_seconds": serve_seconds,
        "pairs_per_second": completed / serve_seconds,
        "latency_ms": {
            "p50": 1e3 * latency["p50"] if latency["p50"] else None,
            "p99": 1e3 * latency["p99"] if latency["p99"] else None,
            "mean": 1e3 * latency["mean"] if latency["mean"] else None,
        },
        "cache": {
            "hits": info["hits"],
            "misses": info["misses"],
            "builds": info["builds"],
            "hit_rate": info["hits"] / lookups if lookups else 0.0,
        },
        "coalesced_batches": stats["coalesced_batches"],
        "coalesced_pairs": stats["coalesced_pairs"],
        "solo_pairs": stats["solo_pairs"],
        "single_pair_bitwise_equal": bitwise_equal,
        "cpu_count": available_cpus(),
    }


def format_serve_report(report: dict) -> str:
    """Human-readable rendering of a traffic report for the CLI."""
    latency = report["latency_ms"]
    cache = report["cache"]
    lines = [
        f"dataset            {report['dataset']} "
        f"(scale={report['scale']}, n={report['n_nodes']})",
        f"traffic            {report['n_jobs']} jobs over "
        f"{report['n_distinct']} distinct pairs",
        f"service            {report['workers']} workers, "
        f"max_batch={report['max_batch']}",
        f"completed          {report['completed']} "
        f"(failed={report['failed']}, rejected={report['rejected']})",
        f"pairs/sec          {report['pairs_per_second']:.2f}",
        f"latency p50        {latency['p50']:.1f} ms",
        f"latency p99        {latency['p99']:.1f} ms",
        f"cache hit rate     {cache['hit_rate']:.2%} "
        f"({cache['hits']} hits / {cache['builds']} builds)",
        f"coalesced          {report['coalesced_pairs']} pairs in "
        f"{report['coalesced_batches']} batches "
        f"(solo={report['solo_pairs']})",
        f"bitwise vs direct  "
        f"{'OK' if report['single_pair_bitwise_equal'] else 'MISMATCH'}",
    ]
    return "\n".join(lines)
