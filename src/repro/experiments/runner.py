"""Command-line experiment runner: ``python -m repro.experiments <exp>``.

Prints the paper-style tables/series for any of the reproduced
artefacts (fig3, fig6, fig7, table2, table3, fig8); ``fidelity``
regenerates both accuracy tables and refreshes the
SLOTAlign-vs-best-baseline margins in ``BENCH_fidelity.json``.
"""

from __future__ import annotations

import argparse

from repro.engine import ensure_decoder, ensure_dense_backend, ensure_precision
from repro.eval.fidelity import (
    format_fidelity,
    record_decoders,
    record_fidelity,
    record_partial,
)
from repro.exceptions import ConfigError
from repro.eval.reporting import format_sweep, format_table
from repro.experiments.config import ExperimentScale
from repro.experiments.decoders import format_decoders, run_decoder_comparison
from repro.experiments.fig3_motivation import run_fig3
from repro.experiments.partial_overlap import format_partial, run_partial_overlap
from repro.experiments.fig6_structure import run_fig6
from repro.experiments.fig7_feature import run_fig7
from repro.experiments.fig8_sensitivity import run_fig8
from repro.experiments.scalability import run_scalability
from repro.experiments.serve_traffic import (
    format_serve_report,
    run_serve_traffic,
)
from repro.experiments.table2_realworld import run_table2
from repro.experiments.table3_dbp15k import run_table3

EXPERIMENTS = (
    "fig3", "fig6", "fig7", "table2", "table3", "fig8", "scale", "fidelity",
    "serve", "partial", "decoders",
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the paper's tables and figures",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS)
    parser.add_argument(
        "--scale", type=float, default=0.07, help="dataset scale in (0, 1]"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--full", action="store_true", help="disable fast mode (longer runs)"
    )
    parser.add_argument(
        "--backend", default="fused-dense",
        help="dense engine backend for every SLOTAlign solve "
        "(fused-dense / batched-restart; outputs are bitwise-identical)",
    )
    parser.add_argument(
        "--decoder", default=None,
        help="decode stage applied to every evaluated plan (a "
        "registered decoder name); default scores the raw posterior, "
        "the paper's protocol",
    )
    parser.add_argument(
        "--precision", choices=("float64", "float32"), default="float64",
        help="solve-stage working precision for every SLOTAlign solve; "
        "float32 routes to the reduced-precision fast backends",
    )
    args = parser.parse_args(argv)
    try:
        # the experiment drivers run whole-pair dense solves; this also
        # names the valid choices on unknown names (no bare KeyError)
        ensure_dense_backend(args.backend, "the experiment runner")
        ensure_precision(args.precision)
        if args.decoder is not None:
            ensure_decoder(args.decoder)
    except ConfigError as exc:
        raise SystemExit(str(exc)) from exc
    scale = ExperimentScale(
        dataset_scale=args.scale, fast=not args.full, seed=args.seed,
        engine_backend=args.backend, decoder=args.decoder,
        precision=args.precision,
    )
    print(run_experiment(args.experiment, scale))
    return 0


def run_experiment(name: str, scale: ExperimentScale) -> str:
    """Run one experiment and render its report."""
    if name == "fig3":
        out = run_fig3(scale)
        return "\n\n".join(
            format_sweep(out[panel], title=f"Fig. 3 — {panel} inconsistency")
            for panel in ("structure", "feature")
        )
    if name == "fig6":
        out = run_fig6(scale)
        return "\n\n".join(
            format_sweep(res, title=f"Fig. 6 — {ds} (Hit@1 vs edge noise)")
            for ds, res in out.items()
        )
    if name == "fig7":
        out = run_fig7(scale)
        chunks = []
        for ds, transforms in out.items():
            for transform, res in transforms.items():
                chunks.append(
                    format_sweep(res, title=f"Fig. 7 — {ds} / {transform}")
                )
        return "\n\n".join(chunks)
    if name == "table2":
        out = run_table2(scale)
        return "\n\n".join(
            format_table(rows, title=f"Table II — {ds}")
            for ds, rows in out.items()
        )
    if name == "table3":
        out = run_table3(scale)
        return "\n\n".join(
            format_table(rows, title=f"Table III — DBP15K {subset}")
            for subset, rows in out.items()
        )
    if name == "scale":
        out = run_scalability(scale)
        return format_table(
            out["curve"],
            title=(
                "Scalability — whole-graph vs partitioned "
                f"(cpu_count={out['cpu_count']})"
            ),
        )
    if name == "serve":
        report = run_serve_traffic(scale=scale.dataset_scale, seed=scale.seed)
        return format_serve_report(report)
    if name == "fidelity":
        table2 = run_table2(scale, with_ablations=False)
        for dataset, rows in table2.items():
            record_fidelity(
                f"table2_{dataset}", rows, fixed=True,
                dataset_scale=scale.dataset_scale,
            )
        table3 = run_table3(scale)
        for subset, rows in table3.items():
            record_fidelity(
                f"table3_{subset}", rows, fixed=True,
                dataset_scale=scale.dataset_scale,
            )
        return format_fidelity()
    if name == "partial":
        out = run_partial_overlap(scale)
        record_partial(
            out["points"],
            dataset_scale=scale.dataset_scale,
            full_bijective_hits1=out["full_bijective_hits1"],
        )
        return format_partial(out)
    if name == "decoders":
        cohort = run_decoder_comparison(scale)
        record_decoders(cohort, dataset_scale=scale.dataset_scale)
        return format_decoders(cohort)
    if name == "fig8":
        out = run_fig8(scale)
        chunks = []
        for parameter, curves in out.items():
            rows = {
                ds: {f"{v:g}": hit for v, hit in curve}
                for ds, curve in curves.items()
            }
            chunks.append(
                format_table(rows, title=f"Fig. 8 — sensitivity to {parameter}")
            )
        return "\n\n".join(chunks)
    raise ValueError(f"unknown experiment {name!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
