"""Figure 7 — feature-inconsistency robustness + runtime.

Protocol: 25 % edge perturbation fixed; sweep each of the three feature
transformations (permutation / truncation / compression) 0-70 % on the
four semi-synthetic datasets; also record per-method runtime.

Expected shape: SLOTAlign is *exactly* flat under permutation (Prop. 4)
and stays ahead of GWD under truncation/compression; cross-compare
baselines collapse under every transformation; GWD is flat everywhere
but low; REGAL is fastest, GW-family methods comparable, GNN methods
slowest.
"""

from __future__ import annotations

from repro.datasets import FEATURE_TRANSFORMS
from repro.eval.robustness import run_feature_sweep
from repro.experiments.config import ExperimentScale, default_aligners
from repro.experiments.fig6_structure import DATASET_BUILDERS

FEATURE_LEVELS = (0.0, 0.2, 0.4, 0.7)
EDGE_NOISE = 0.25


def run_fig7(
    scale: ExperimentScale | None = None,
    datasets=("cora", "citeseer", "ppi", "facebook"),
    transforms=FEATURE_TRANSFORMS,
    methods=None,
    levels=FEATURE_LEVELS,
) -> dict:
    """Return ``{dataset: {transform: [SweepResult, ...]}}``."""
    scale = scale or ExperimentScale()
    output: dict = {}
    for name in datasets:
        graph = DATASET_BUILDERS[name](scale.dataset_scale)
        output[name] = {}
        for transform in transforms:
            aligners = default_aligners(scale, include=methods)
            output[name][transform] = run_feature_sweep(
                graph,
                aligners,
                levels,
                transform=transform,
                edge_noise=EDGE_NOISE,
                seed=scale.seed,
                decoder=scale.decoder,
            )
    return output
