"""Decoder comparison cohort: decode quality at zero solver cost.

Stage 3 of the engine (``decode``) turns one solved transport plan
into a matching; every registered decoder consumes the *same* plan, so
comparing them costs nothing beyond the decode itself.  The regime
where the choice matters is a **reduced Sinkhorn budget**: with only a
couple of inner scalings per outer iteration the plan's column
marginals are far from balanced, many rows argmax onto the same few
columns, and a one-to-one decoder (``hungarian``, ``mea``) resolves
the collisions that ``row-argmax`` cannot — recovering Hit@1/MRR the
solver would otherwise need more Sinkhorn iterations to earn.  At full
convergence the plan is (nearly) doubly stochastic — already a soft
one-to-one — and every decoder agrees with the argmax; the cohort
records that honestly via pairs whose ``improved_over_baseline`` list
is empty.

The cohort protocol is pinned here (datasets, noise levels,
``SINKHORN_BUDGET``) the way ``partial_overlap`` pins its grid: the
benchmark regenerates ``BENCH_fidelity.json``'s ``decoders`` cohort
from these constants, and ``compare_bench.check_decoders`` gates on at
least :data:`MIN_IMPROVED_PAIRS` pairs where some one-to-one decoder
beats ``row-argmax``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import SEMI_SYNTHETIC_CONFIG
from repro.core.config import SLOTAlignConfig
from repro.datasets import load_graph_dataset, make_semi_synthetic_pair
from repro.engine import AlignmentEngine, available_decoders
from repro.eval.metrics import evaluate_decoded
from repro.experiments.config import ExperimentScale

#: inner Sinkhorn scalings per outer iteration for the cohort's
#: solves — deliberately under-converged (the fast profile uses 30):
#: the decoder choice is invisible on a doubly-stochastic plan, so the
#: cohort measures decoding where it can actually move the metric
SINKHORN_BUDGET = 2

#: (dataset, edge_noise) per cohort pair; PPI's hub-heavy structure
#: produces the strongest argmax collisions, Cora at low noise is the
#: honest near-converged control where no decoder wins
PAIRS = (
    ("ppi", 0.1),
    ("ppi", 0.2),
    ("cora", 0.1),
    ("citeseer", 0.2),
)

#: pairs in the cohort that must list a non-empty
#: ``improved_over_baseline`` for the bench gate to pass
MIN_IMPROVED_PAIRS = 2

KS = (1, 5, 10)


def pair_name(dataset: str, edge_noise: float) -> str:
    """Stable cohort key for one (dataset, noise) bench pair."""
    return f"{dataset}-noise{edge_noise:g}"


def decoder_config(scale: ExperimentScale) -> SLOTAlignConfig:
    """The under-converged solver profile every cohort pair uses.

    The fast semi-synthetic profile with ``sinkhorn_iter`` cut to
    :data:`SINKHORN_BUDGET` — same α-updates, same outer budget, but
    the plan's marginals never balance, which is precisely the input
    a decode stage has to be robust to.
    """
    base = replace(
        SEMI_SYNTHETIC_CONFIG,
        max_outer_iter=60 if scale.fast else scale.slot_iters,
        sinkhorn_iter=SINKHORN_BUDGET,
        multi_start=False,
        single_start_view="node",
        track_history=False,
    )
    return base


def run_decoder_comparison(
    scale: ExperimentScale,
    pairs=PAIRS,
    decoders=None,
    ks=KS,
) -> dict:
    """Every registered decoder on every cohort pair's single solve.

    Returns ``{pair_name: {decoder: metric report}}`` — the
    :func:`repro.eval.fidelity.record_decoders` input shape.  Each
    report also carries ``decode_seconds`` (the stage-3 wall-clock;
    the solver cost is shared, so this is the entire marginal price of
    a better matching) and ``n_matched``.
    """
    decoders = tuple(decoders) if decoders is not None else available_decoders()
    config = decoder_config(scale)
    engine = AlignmentEngine(config, backend=scale.engine_backend)
    cohort: dict[str, dict[str, dict[str, float]]] = {}
    for dataset, edge_noise in pairs:
        graph = load_graph_dataset(dataset, scale=scale.dataset_scale)
        pair = make_semi_synthetic_pair(
            graph, edge_noise=edge_noise, seed=scale.seed
        )
        result = engine.align(pair.source, pair.target)
        reports: dict[str, dict[str, float]] = {}
        for name in decoders:
            decoded = engine.decode(result, decoder=name)
            report = evaluate_decoded(decoded, pair.ground_truth, ks=ks)
            report["decode_seconds"] = float(decoded.decode_seconds)
            report["n_matched"] = int(decoded.n_matched)
            reports[name] = report
        cohort[pair_name(dataset, edge_noise)] = reports
    return cohort


def format_decoders(cohort: dict, baseline: str = "row-argmax") -> str:
    """Human-readable rendering of the cohort (the runner's report)."""
    lines = [
        f"Decoder comparison — sinkhorn_iter={SINKHORN_BUDGET} "
        f"(baseline {baseline})",
        f"{'pair':<20}{'decoder':<16}{'hit@1':>8}{'mrr':>8}"
        f"{'matched':>9}{'decode-s':>10}",
    ]
    for name, reports in cohort.items():
        base = reports.get(baseline, {})
        for decoder, report in reports.items():
            marker = ""
            if decoder != baseline and base:
                if (
                    report["hits@1"] > base["hits@1"]
                    or report["mrr"] > base["mrr"]
                ):
                    marker = "  *"
            lines.append(
                f"{name:<20}{decoder:<16}{report['hits@1']:>8.2f}"
                f"{report['mrr']:>8.3f}{report.get('n_matched', 0):>9d}"
                f"{report.get('decode_seconds', 0.0):>10.4f}{marker}"
            )
    lines.append("(* improves on the baseline's Hit@1 or MRR)")
    return "\n".join(lines)
