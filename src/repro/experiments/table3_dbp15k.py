"""Table III — DBP15K knowledge-graph alignment.

Protocol: the three bilingual subsets (ZH-EN, JA-EN, FR-EN); SLOTAlign
uses the feature-similarity π initialisation (Sec. V-C); compared
against GCNAlign and the KG specialists (supervised LIME gets 30 % of
the anchors as seeds).  Metrics: Hit@1 / Hit@10.

Expected shape: SLOTAlign best on every subset; everyone improves with
cross-lingual feature agreement (FR > JA > ZH); LIME is the strongest
baseline thanks to supervision.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import (
    EVAAligner,
    GCNAlignAligner,
    LIMEAligner,
    MultiKEAligner,
    SelfKGAligner,
)
from repro.datasets import load_dbp15k
from repro.eval.metrics import hits_at_k
from repro.experiments.config import ExperimentScale, slotalign_real_world
from repro.utils.random import check_random_state

KS = (1, 10)
SEED_FRACTION = 0.3  # anchors granted to the supervised LIME baseline


def run_table3(
    scale: ExperimentScale | None = None,
    subsets=("zh_en", "ja_en", "fr_en"),
    methods=None,
) -> dict:
    """Return ``{subset: {method: {hits@1, hits@10, time}}}``."""
    scale = scale or ExperimentScale()
    output = {}
    for subset in subsets:
        pair = load_dbp15k(
            subset, scale=scale.dataset_scale, seed=scale.seed + 31
        )
        rng = check_random_state(scale.seed)
        n_seeds = max(2, int(SEED_FRACTION * pair.n_anchors))
        seed_rows = rng.choice(pair.n_anchors, size=n_seeds, replace=False)
        aligners = {
            "GCNAlign": GCNAlignAligner(
                n_epochs=scale.gnn_epochs, seed=scale.seed
            ),
            "LIME": LIMEAligner().set_seeds(pair.ground_truth[seed_rows]),
            "MultiKE": MultiKEAligner(),
            "EVA": EVAAligner(),
            "SelfKG": SelfKGAligner(
                n_epochs=scale.gnn_epochs, seed=scale.seed
            ),
            "SLOTAlign": slotalign_real_world(
                scale, use_feature_similarity_init=True
            ),
        }
        if methods is not None:
            aligners = {k: v for k, v in aligners.items() if k in methods}
        table = {}
        for name, aligner in aligners.items():
            outcome = aligner.fit(pair.source, pair.target)
            row = {
                f"hits@{k}": hits_at_k(outcome.plan, pair.ground_truth, k)
                for k in KS
            }
            row["time"] = outcome.runtime
            table[name] = row
        output[subset] = table
    return output
