"""Table III — DBP15K knowledge-graph alignment.

Protocol: the three bilingual subsets (ZH-EN, JA-EN, FR-EN); SLOTAlign
uses the feature-similarity π initialisation (Sec. V-C) and
relation-aware structure bases — the generic view family (edge, node,
attribute-propagated hop) extended with the adjacency of the most
frequent relation type, which the language-independent ontology makes
comparable across languages.  Compared against GCNAlign and the KG
specialists (supervised LIME gets 30 % of the anchors as seeds).
Metrics: Hit@1 / Hit@10.

Aligners are constructed lazily: the ``methods`` filter is applied to
factories, so deselected baselines are neither built nor seeded
(subsetting must not shift anyone else's RNG draws), and every
stochastic method draws from its own ``method_seed`` stream — LIME's
anchor sample included.

Expected shape: SLOTAlign best on every subset; everyone improves with
cross-lingual feature agreement (FR > JA > ZH); the unsupervised
embed-and-cross-compare baselines depend entirely on that agreement.
"""

from __future__ import annotations

from repro.baselines import (
    EVAAligner,
    GCNAlignAligner,
    LIMEAligner,
    MultiKEAligner,
    SelfKGAligner,
)
from repro.core.views import build_relation_bases
from repro.datasets import load_dbp15k
from repro.datasets.kg import rank_relations
from repro.eval.metrics import hits_at_k
from repro.experiments.config import (
    ExperimentScale,
    method_seed,
    slotalign_real_world,
)
from repro.utils.random import check_random_state

KS = (1, 10)
SEED_FRACTION = 0.3  # anchors granted to the supervised LIME baseline
N_RELATION_VIEWS = 1  # relation-aware bases appended to the generic ones


class KGSLOTAlign:
    """SLOTAlign over relation-aware KG bases (Sec. IV on typed triples).

    Wraps the real-world profile: the generic views (edge, node,
    attribute-propagated hops) are built by ``prepare_bases`` and the
    per-relation adjacencies of the pair's knowledge graphs are
    appended, so β can learn how much each relation's structure is
    worth.  Relation views are adjacency-like and enter uncentred,
    exactly like the edge view.  The relation ids are ranked on the
    *combined* counts of both KGs so the two sides always build their
    views from the same relation types (per-side ranking can pick
    different relations and inject cross-lingual noise).
    """

    name = "SLOTAlign"

    def __init__(self, aligner, kg_source, kg_target, n_relation_views: int):
        self.aligner = aligner
        self.kg_source = kg_source
        self.kg_target = kg_target
        self.n_relation_views = n_relation_views

    def fit(self, source, target):
        bases_s, bases_t = self.aligner.prepare_bases(source, target)
        if self.n_relation_views > 0:
            shared_ids = rank_relations(
                (self.kg_source, self.kg_target), self.n_relation_views
            )
            bases_s = bases_s + build_relation_bases(
                self.kg_source, self.n_relation_views, relation_ids=shared_ids
            )
            bases_t = bases_t + build_relation_bases(
                self.kg_target, self.n_relation_views, relation_ids=shared_ids
            )
        return self.aligner.fit(source, target, bases=(bases_s, bases_t))


def table3_slotalign(scale: ExperimentScale, pair) -> KGSLOTAlign:
    """The Table III SLOTAlign: K=4 total (3 generic + 1 relation view)."""
    aligner = slotalign_real_world(
        scale, n_bases=4 - N_RELATION_VIEWS, use_feature_similarity_init=True
    )
    return KGSLOTAlign(
        aligner,
        pair.metadata["kg_source"],
        pair.metadata["kg_target"],
        N_RELATION_VIEWS,
    )


def run_table3(
    scale: ExperimentScale | None = None,
    subsets=("zh_en", "ja_en", "fr_en"),
    methods=None,
) -> dict:
    """Return ``{subset: {method: {hits@1, hits@10, time}}}``."""
    scale = scale or ExperimentScale()
    output = {}
    for subset in subsets:
        pair = load_dbp15k(
            subset, scale=scale.dataset_scale, seed=scale.seed + 31
        )

        def lime():
            rng = check_random_state(method_seed(scale.seed, "LIME"))
            n_seeds = max(2, int(SEED_FRACTION * pair.n_anchors))
            seed_rows = rng.choice(pair.n_anchors, size=n_seeds, replace=False)
            return LIMEAligner().set_seeds(pair.ground_truth[seed_rows])

        factories = {
            "GCNAlign": lambda: GCNAlignAligner(
                n_epochs=scale.gnn_epochs,
                seed=method_seed(scale.seed, "GCNAlign"),
            ),
            "LIME": lime,
            "MultiKE": MultiKEAligner,
            "EVA": EVAAligner,
            "SelfKG": lambda: SelfKGAligner(
                n_epochs=scale.gnn_epochs,
                seed=method_seed(scale.seed, "SelfKG"),
            ),
            "SLOTAlign": lambda: table3_slotalign(scale, pair),
        }
        if methods is not None:
            factories = {k: v for k, v in factories.items() if k in methods}
        table = {}
        for name, build in factories.items():
            outcome = build().fit(pair.source, pair.target)
            row = {
                f"hits@{k}": hits_at_k(outcome.plan, pair.ground_truth, k)
                for k in KS
            }
            row["time"] = outcome.runtime
            table[name] = row
        output[subset] = table
    return output
