"""Entry point for ``python -m repro.experiments``."""

from repro.experiments.runner import main

raise SystemExit(main())
