"""Random-graph topology generators.

These provide the structural substrates for the dataset stand-ins:
citation networks are modelled with power-law-cluster graphs, social
networks with Barabási–Albert / power-law-cluster graphs, PPI with a
dense stochastic block model, and knowledge graphs with degree-skewed
multi-relational topologies (see :mod:`repro.datasets.kg`).

All generators are seeded and return edge lists consumed by
:class:`repro.graphs.AttributedGraph`.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.graph import AttributedGraph
from repro.utils.random import check_random_state


def erdos_renyi_graph(n_nodes: int, p: float, seed=None, name="er") -> AttributedGraph:
    """G(n, p) random graph."""
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"edge probability must be in [0, 1], got {p}")
    rng = check_random_state(seed)
    iu, ju = np.triu_indices(n_nodes, k=1)
    mask = rng.random(iu.shape[0]) < p
    edges = np.column_stack([iu[mask], ju[mask]])
    return AttributedGraph.from_edges(n_nodes, edges, name=name)


def barabasi_albert_graph(
    n_nodes: int, n_attach: int, seed=None, name="ba"
) -> AttributedGraph:
    """Preferential-attachment graph: each new node attaches to ``n_attach``."""
    if n_attach < 1 or n_attach >= n_nodes:
        raise GraphError(f"n_attach must be in [1, n_nodes), got {n_attach}")
    rng = check_random_state(seed)
    edges: list[tuple[int, int]] = []
    # repeated-nodes list implements degree-proportional sampling
    repeated: list[int] = list(range(n_attach))
    for new in range(n_attach, n_nodes):
        targets: set[int] = set()
        while len(targets) < n_attach:
            pick = repeated[rng.integers(0, len(repeated))] if repeated else int(
                rng.integers(0, new)
            )
            targets.add(pick)
        for t in targets:
            edges.append((new, t))
            repeated.extend([new, t])
    return AttributedGraph.from_edges(n_nodes, edges, name=name)


def powerlaw_cluster_graph(
    n_nodes: int, n_attach: int, triangle_p: float, seed=None, name="plc"
) -> AttributedGraph:
    """Holme–Kim power-law graph with tunable clustering.

    Like Barabási–Albert, but after each preferential attachment a
    triangle is closed with probability ``triangle_p`` — giving the high
    clustering typical of citation and social networks.
    """
    if n_attach < 1 or n_attach >= n_nodes:
        raise GraphError(f"n_attach must be in [1, n_nodes), got {n_attach}")
    if not 0.0 <= triangle_p <= 1.0:
        raise GraphError(f"triangle_p must be in [0, 1], got {triangle_p}")
    rng = check_random_state(seed)
    edge_set: set[tuple[int, int]] = set()
    neighbors: list[list[int]] = [[] for _ in range(n_nodes)]
    repeated: list[int] = list(range(n_attach))

    def add_edge(u: int, v: int) -> bool:
        if u == v:
            return False
        key = (u, v) if u < v else (v, u)
        if key in edge_set:
            return False
        edge_set.add(key)
        neighbors[u].append(v)
        neighbors[v].append(u)
        repeated.extend([u, v])
        return True

    for new in range(n_attach, n_nodes):
        added = 0
        last_target: int | None = None
        guard = 0
        while added < n_attach and guard < 100 * n_attach:
            guard += 1
            close_triangle = (
                last_target is not None
                and neighbors[last_target]
                and rng.random() < triangle_p
            )
            if close_triangle:
                cands = neighbors[last_target]
                target = cands[rng.integers(0, len(cands))]
            else:
                target = (
                    repeated[rng.integers(0, len(repeated))]
                    if repeated
                    else int(rng.integers(0, new))
                )
            if add_edge(new, target):
                added += 1
                last_target = target
    return AttributedGraph.from_edges(n_nodes, sorted(edge_set), name=name)


def watts_strogatz_graph(
    n_nodes: int, n_neighbors: int, rewire_p: float, seed=None, name="ws"
) -> AttributedGraph:
    """Small-world ring lattice with random rewiring."""
    if n_neighbors % 2 or n_neighbors < 2:
        raise GraphError(f"n_neighbors must be even and >= 2, got {n_neighbors}")
    if not 0.0 <= rewire_p <= 1.0:
        raise GraphError(f"rewire_p must be in [0, 1], got {rewire_p}")
    rng = check_random_state(seed)
    edge_set: set[tuple[int, int]] = set()
    half = n_neighbors // 2
    for u in range(n_nodes):
        for k in range(1, half + 1):
            v = (u + k) % n_nodes
            edge_set.add((u, v) if u < v else (v, u))
    edges = sorted(edge_set)
    result: set[tuple[int, int]] = set(edges)
    for u, v in edges:
        if rng.random() < rewire_p:
            result.discard((u, v))
            for _ in range(100):
                w = int(rng.integers(0, n_nodes))
                key = (u, w) if u < w else (w, u)
                if w != u and key not in result:
                    result.add(key)
                    break
            else:
                result.add((u, v))
    return AttributedGraph.from_edges(n_nodes, sorted(result), name=name)


def stochastic_block_model(
    block_sizes,
    p_within: float,
    p_between: float,
    seed=None,
    name="sbm",
) -> AttributedGraph:
    """Stochastic block model with uniform within/between densities.

    Returns a graph whose ``node_labels`` carry the block index, which
    the feature synthesisers use to correlate attributes with
    communities.
    """
    sizes = [int(s) for s in block_sizes]
    if any(s <= 0 for s in sizes):
        raise GraphError("block sizes must be positive")
    for p in (p_within, p_between):
        if not 0.0 <= p <= 1.0:
            raise GraphError(f"probabilities must be in [0, 1], got {p}")
    rng = check_random_state(seed)
    n = sum(sizes)
    labels = np.repeat(np.arange(len(sizes)), sizes)
    iu, ju = np.triu_indices(n, k=1)
    same = labels[iu] == labels[ju]
    probs = np.where(same, p_within, p_between)
    mask = rng.random(iu.shape[0]) < probs
    graph = AttributedGraph.from_edges(
        n, np.column_stack([iu[mask], ju[mask]]), name=name
    )
    graph.node_labels = labels
    return graph


def random_bipartite_expansion(
    core: AttributedGraph, extra_nodes: int, attach_p: float, seed=None
) -> AttributedGraph:
    """Grow ``core`` by ``extra_nodes`` peripheral nodes.

    Each new node attaches to existing nodes independently with
    probability ``attach_p`` (at least one edge is forced so the graph
    stays connected to the periphery).  Used by the Douban simulator
    where the online graph strictly contains the offline graph.
    """
    rng = check_random_state(seed)
    n_old = core.n_nodes
    n_new = n_old + extra_nodes
    edges = [tuple(e) for e in core.edge_list()]
    for new in range(n_old, n_new):
        attached = np.flatnonzero(rng.random(new) < attach_p)
        if attached.size == 0:
            attached = np.array([rng.integers(0, new)])
        edges.extend((int(a), new) for a in attached)
    graph = AttributedGraph.from_edges(n_new, edges, name=core.name)
    return graph
