"""Inconsistency simulators (paper Sec. III and Sec. V-B).

Structure inconsistency
    ``perturb_edges`` moves a fraction ``p`` of edges to previously
    unconnected positions — exactly the paper's protocol ("randomly
    perturb p% edges in Gt to other previous unconnected positions").

Feature inconsistency (three simulators, Fig. 7)
    * ``permute_features``  — randomly permute p% feature columns;
    * ``truncate_features`` — randomly delete p% feature columns;
    * ``compress_features`` — PCA-compress features by ratio p%.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.graph import AttributedGraph
from repro.utils.random import check_random_state


def perturb_edges(
    graph: AttributedGraph, ratio: float, seed=None
) -> AttributedGraph:
    """Move ``ratio`` of edges to previously unconnected positions.

    Each selected edge is removed and a new edge is inserted between a
    uniformly random currently-unconnected node pair, keeping the edge
    count constant (the paper's structure-noise model).
    """
    if not 0.0 <= ratio <= 1.0:
        raise GraphError(f"ratio must be in [0, 1], got {ratio}")
    if ratio == 0.0:
        return graph.copy()
    rng = check_random_state(seed)
    n = graph.n_nodes
    edges = graph.edge_list()
    m = edges.shape[0]
    n_move = int(round(ratio * m))
    if n_move == 0:
        return graph.copy()
    move_idx = rng.choice(m, size=n_move, replace=False)
    keep_mask = np.ones(m, dtype=bool)
    keep_mask[move_idx] = False
    edge_set = {tuple(e) for e in edges}
    kept = [tuple(e) for e in edges[keep_mask]]
    current: set[tuple[int, int]] = set(kept)
    removed = {tuple(e) for e in edges[move_idx]}
    added: list[tuple[int, int]] = []
    max_attempts = 100 * n_move + 1000
    attempts = 0
    while len(added) < n_move and attempts < max_attempts:
        attempts += 1
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        # "previously unconnected": not in the original graph and not
        # already chosen as a replacement
        if key in edge_set or key in current or key in removed:
            continue
        current.add(key)
        added.append(key)
    new_graph = AttributedGraph.from_edges(
        n, kept + added, features=None, name=f"{graph.name}-perturbed"
    )
    new_graph = new_graph.with_features(graph.features)
    new_graph.node_labels = (
        None if graph.node_labels is None else graph.node_labels.copy()
    )
    return new_graph


def permute_features(
    graph: AttributedGraph, ratio: float, seed=None
) -> AttributedGraph:
    """Randomly permute ``ratio`` of feature columns (Definition 3).

    The selected columns are shuffled among themselves with a random
    derangement-like permutation; the remaining columns stay in place.
    """
    _check_has_features(graph)
    if not 0.0 <= ratio <= 1.0:
        raise GraphError(f"ratio must be in [0, 1], got {ratio}")
    rng = check_random_state(seed)
    d = graph.n_features
    n_permute = int(round(ratio * d))
    if n_permute < 2:
        return graph.copy()
    cols = rng.choice(d, size=n_permute, replace=False)
    shuffled = cols.copy()
    rng.shuffle(shuffled)
    order = np.arange(d)
    order[cols] = shuffled
    out = graph.with_features(graph.features[:, order])
    out.name = f"{graph.name}-featperm"
    return out


def truncate_features(
    graph: AttributedGraph, ratio: float, seed=None
) -> AttributedGraph:
    """Randomly delete ``ratio`` of feature columns."""
    _check_has_features(graph)
    if not 0.0 <= ratio < 1.0:
        raise GraphError(f"ratio must be in [0, 1), got {ratio}")
    rng = check_random_state(seed)
    d = graph.n_features
    n_drop = int(round(ratio * d))
    if n_drop == 0:
        return graph.copy()
    drop = rng.choice(d, size=n_drop, replace=False)
    keep = np.setdiff1d(np.arange(d), drop)
    out = graph.with_features(graph.features[:, keep])
    out.name = f"{graph.name}-feattrunc"
    return out


def compress_features(
    graph: AttributedGraph, ratio: float, seed=None
) -> AttributedGraph:
    """PCA-compress features with compression ratio ``ratio``.

    A ratio of 0.3 keeps 70 % of the dimensions: the features are
    projected onto the top ``d·(1-ratio)`` principal components, which
    simulates aligning sparse bag-of-words features against dense
    low-dimensional features.
    """
    _check_has_features(graph)
    if not 0.0 <= ratio < 1.0:
        raise GraphError(f"ratio must be in [0, 1), got {ratio}")
    if ratio == 0.0:
        return graph.copy()
    feats = graph.features
    d = feats.shape[1]
    n_keep = max(1, int(round((1.0 - ratio) * d)))
    n_keep = min(n_keep, min(feats.shape))
    centered = feats - feats.mean(axis=0, keepdims=True)
    # principal axes via thin SVD; deterministic given input
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    compressed = centered @ vt[:n_keep].T
    out = graph.with_features(compressed)
    out.name = f"{graph.name}-featpca"
    return out


def add_feature_noise(
    graph: AttributedGraph, scale: float, seed=None
) -> AttributedGraph:
    """Add i.i.d. Gaussian noise of the given scale to the features.

    Not one of the paper's three simulators, but used by the noisy
    real-world pair generators to model measurement error.
    """
    _check_has_features(graph)
    if scale < 0:
        raise GraphError(f"scale must be non-negative, got {scale}")
    rng = check_random_state(seed)
    noisy = graph.features + scale * rng.standard_normal(graph.features.shape)
    out = graph.with_features(noisy)
    out.name = f"{graph.name}-noisyfeat"
    return out


def inject_nodes(
    graph: AttributedGraph, n_new: int, seed=None
) -> AttributedGraph:
    """Append ``n_new`` impostor nodes with resampled edges and features.

    Each injected node receives the degree of a uniformly sampled
    existing node (at least 1) and connects to uniformly random
    endpoints; its feature vector is a bootstrap resample of existing
    per-column feature values, so impostors match the marginal feature
    statistics without copying any real node.  Used by the
    partial-overlap pair builder to model unmatchable nodes that exist
    on one side only (fake accounts, non-overlapping users).
    """
    if n_new < 0:
        raise GraphError(f"n_new must be non-negative, got {n_new}")
    if n_new == 0:
        return graph.copy()
    rng = check_random_state(seed)
    n = graph.n_nodes
    if n == 0:
        raise GraphError("cannot inject nodes into an empty graph")
    total = n + n_new
    edges = [tuple(e) for e in graph.edge_list()]
    existing: set[tuple[int, int]] = set(edges)
    degrees = np.maximum(graph.degrees.astype(np.int64), 1)
    for new_node in range(n, total):
        target_degree = int(degrees[int(rng.integers(0, n))])
        attached = 0
        attempts = 0
        while attached < target_degree and attempts < 50 * target_degree + 100:
            attempts += 1
            other = int(rng.integers(0, new_node))
            key = (other, new_node)
            if key in existing:
                continue
            existing.add(key)
            edges.append(key)
            attached += 1
    features = None
    if graph.features is not None:
        feats = graph.features
        # per-column bootstrap: marginals match, joint rows are novel
        sampled = np.empty((n_new, feats.shape[1]))
        for col in range(feats.shape[1]):
            sampled[:, col] = feats[rng.integers(0, n, size=n_new), col]
        features = np.vstack([feats, sampled])
    out = AttributedGraph.from_edges(
        total, edges, features=features, name=f"{graph.name}-injected"
    )
    if graph.node_labels is not None:
        pad = np.zeros(n_new, dtype=graph.node_labels.dtype)
        out.node_labels = np.concatenate([graph.node_labels, pad])
    return out


def drop_edges(graph: AttributedGraph, ratio: float, seed=None) -> AttributedGraph:
    """Delete ``ratio`` of edges without replacement (missing-edge noise)."""
    if not 0.0 <= ratio <= 1.0:
        raise GraphError(f"ratio must be in [0, 1], got {ratio}")
    rng = check_random_state(seed)
    edges = graph.edge_list()
    m = edges.shape[0]
    n_drop = int(round(ratio * m))
    keep_mask = np.ones(m, dtype=bool)
    if n_drop:
        keep_mask[rng.choice(m, size=n_drop, replace=False)] = False
    out = AttributedGraph.from_edges(
        graph.n_nodes, edges[keep_mask], name=f"{graph.name}-dropped"
    )
    out = out.with_features(graph.features)
    out.node_labels = None if graph.node_labels is None else graph.node_labels.copy()
    return out


def _check_has_features(graph: AttributedGraph) -> None:
    if graph.features is None:
        raise GraphError("graph has no features to perturb")
