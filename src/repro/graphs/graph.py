"""The :class:`AttributedGraph` container used throughout the library.

The paper (Sec. II) denotes an undirected attributed graph as
``G = (V, A, X)`` with binary adjacency ``A`` and node features
``X ∈ R^{n×d}``.  We store the adjacency as a ``scipy.sparse.csr_array``
(so large graphs stay cheap) and features as a dense float64 matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError


def _to_csr(adjacency) -> sp.csr_array:
    """Coerce any array/sparse input into a canonical binary CSR adjacency."""
    if sp.issparse(adjacency):
        mat = sp.csr_array(adjacency)
    else:
        arr = np.asarray(adjacency)
        if arr.ndim != 2:
            raise GraphError(f"adjacency must be 2-D, got shape {arr.shape}")
        mat = sp.csr_array(arr)
    if mat.shape[0] != mat.shape[1]:
        raise GraphError(f"adjacency must be square, got shape {mat.shape}")
    mat = mat.astype(np.float64)
    mat.eliminate_zeros()
    mat.sum_duplicates()
    return mat


@dataclass
class AttributedGraph:
    """An undirected attributed graph ``G = (V, A, X)``.

    Parameters
    ----------
    adjacency:
        ``n × n`` symmetric binary adjacency matrix (dense or sparse).
    features:
        ``n × d`` node feature matrix; may be ``None`` for plain graphs.
    name:
        Optional human-readable label used in experiment reports.

    Notes
    -----
    The adjacency is validated to be symmetric and hollow (no
    self-loops); self-loops are added explicitly by the normalisation
    step (Eq. 5) where the paper requires them.
    """

    adjacency: sp.csr_array
    features: np.ndarray | None = None
    name: str = "graph"
    node_labels: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.adjacency = _to_csr(self.adjacency)
        n = self.adjacency.shape[0]
        diff = self.adjacency - self.adjacency.T
        if diff.nnz and np.max(np.abs(diff.data)) > 1e-9:
            raise GraphError("adjacency must be symmetric for undirected graphs")
        if self.adjacency.diagonal().any():
            raise GraphError("adjacency must not contain self-loops")
        if self.features is not None:
            feats = np.asarray(self.features, dtype=np.float64)
            if feats.ndim != 2:
                raise GraphError(f"features must be 2-D, got shape {feats.shape}")
            if feats.shape[0] != n:
                raise GraphError(
                    f"features have {feats.shape[0]} rows for {n} nodes"
                )
            if not np.all(np.isfinite(feats)):
                raise GraphError("features contain non-finite values")
            self.features = feats
        if self.node_labels is not None:
            labels = np.asarray(self.node_labels)
            if labels.shape[0] != n:
                raise GraphError("node_labels length must equal n_nodes")
            self.node_labels = labels

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self.adjacency.shape[0]

    @property
    def n_edges(self) -> int:
        """Number of undirected edges (each edge counted once)."""
        return int(self.adjacency.nnz // 2)

    @property
    def n_features(self) -> int:
        """Feature dimensionality ``d`` (0 when the graph is plain)."""
        return 0 if self.features is None else self.features.shape[1]

    @property
    def degrees(self) -> np.ndarray:
        """Node degree vector."""
        return np.asarray(self.adjacency.sum(axis=1)).ravel()

    def dense_adjacency(self) -> np.ndarray:
        """Return the adjacency as a dense float64 array."""
        return self.adjacency.toarray()

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        return bool(self.adjacency[u, v] != 0)

    def edge_list(self) -> np.ndarray:
        """Return the ``m × 2`` array of edges with ``u < v``."""
        coo = self.adjacency.tocoo()
        mask = coo.row < coo.col
        return np.column_stack([coo.row[mask], coo.col[mask]])

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        n_nodes: int,
        edges,
        features: np.ndarray | None = None,
        name: str = "graph",
    ) -> "AttributedGraph":
        """Build a graph from an iterable of ``(u, v)`` pairs.

        Duplicate edges, reversed duplicates and self-loops are dropped.
        """
        edges = np.asarray(list(edges), dtype=np.int64).reshape(-1, 2)
        if edges.size:
            if edges.min() < 0 or edges.max() >= n_nodes:
                raise GraphError("edge endpoints out of range")
            keep = edges[:, 0] != edges[:, 1]
            edges = edges[keep]
        if edges.size:
            lo = np.minimum(edges[:, 0], edges[:, 1])
            hi = np.maximum(edges[:, 0], edges[:, 1])
            uniq = np.unique(np.column_stack([lo, hi]), axis=0)
            row = np.concatenate([uniq[:, 0], uniq[:, 1]])
            col = np.concatenate([uniq[:, 1], uniq[:, 0]])
            data = np.ones(row.shape[0])
        else:
            row = col = np.empty(0, dtype=np.int64)
            data = np.empty(0)
        adj = sp.csr_array(
            sp.coo_array((data, (row, col)), shape=(n_nodes, n_nodes))
        )
        return cls(adjacency=adj, features=features, name=name)

    @classmethod
    def from_networkx(cls, nx_graph, features=None, name="graph") -> "AttributedGraph":
        """Build from a :mod:`networkx` graph (node order = sorted nodes)."""
        nodes = sorted(nx_graph.nodes())
        index = {v: i for i, v in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in nx_graph.edges() if u != v]
        return cls.from_edges(len(nodes), edges, features=features, name=name)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def with_features(self, features: np.ndarray | None) -> "AttributedGraph":
        """Return a copy of this graph carrying different features."""
        return AttributedGraph(
            adjacency=self.adjacency.copy(),
            features=None if features is None else np.array(features),
            name=self.name,
            node_labels=None if self.node_labels is None else self.node_labels.copy(),
        )

    def subgraph(self, nodes) -> "AttributedGraph":
        """Induced subgraph on ``nodes`` (kept in the given order)."""
        idx = np.asarray(nodes, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_nodes):
            raise GraphError("subgraph node indices out of range")
        sub_adj = self.adjacency[idx][:, idx]
        feats = None if self.features is None else self.features[idx]
        labels = None if self.node_labels is None else self.node_labels[idx]
        return AttributedGraph(
            adjacency=sub_adj, features=feats, name=self.name, node_labels=labels
        )

    def copy(self) -> "AttributedGraph":
        """Deep copy."""
        return AttributedGraph(
            adjacency=self.adjacency.copy(),
            features=None if self.features is None else self.features.copy(),
            name=self.name,
            node_labels=None if self.node_labels is None else self.node_labels.copy(),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AttributedGraph(name={self.name!r}, n_nodes={self.n_nodes}, "
            f"n_edges={self.n_edges}, n_features={self.n_features})"
        )
