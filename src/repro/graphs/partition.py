"""Partition bookkeeping: cut edges, boundary nodes, part adjacency.

These helpers power the ``repro.scale`` subsystem: the boundary-repair
pass needs to know which nodes sit on a partition cut (they are the
candidates whose correspondences the block solver may have lost) and
which part pairs share cut edges (the only blocks worth re-scoring
against).  All functions take a *node-to-part assignment* vector so
they compose with any partitioner.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.graph import AttributedGraph


def partition_assignment(parts, n_nodes: int) -> np.ndarray:
    """Node-to-part id vector from a list of index arrays.

    Parameters
    ----------
    parts:
        List of node-index arrays, one per part.  Parts must be
        disjoint; nodes missing from every part get id ``-1``.
    n_nodes:
        Total number of nodes in the graph.
    """
    assignment = np.full(n_nodes, -1, dtype=np.int64)
    for part_id, idx in enumerate(parts):
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size == 0:
            continue
        if idx.min() < 0 or idx.max() >= n_nodes:
            raise GraphError("partition indices out of range")
        if np.any(assignment[idx] != -1):
            raise GraphError("partition parts overlap")
        assignment[idx] = part_id
    return assignment


def cut_edges(graph: AttributedGraph, assignment: np.ndarray) -> np.ndarray:
    """``c × 2`` array (``u < v``) of edges whose endpoints differ in part.

    Edges touching an unassigned node (``-1``) are counted as cut: the
    node is outside every block, so the edge cannot be modelled by any
    block solver.
    """
    assignment = _check_assignment(graph, assignment)
    edges = graph.edge_list()
    if edges.size == 0:
        return edges.reshape(0, 2)
    pu = assignment[edges[:, 0]]
    pv = assignment[edges[:, 1]]
    crossing = (pu != pv) | (pu == -1) | (pv == -1)
    return edges[crossing]


def boundary_nodes(graph: AttributedGraph, assignment: np.ndarray) -> np.ndarray:
    """Sorted indices of nodes incident to at least one cut edge."""
    crossing = cut_edges(graph, assignment)
    if crossing.size == 0:
        return np.empty(0, dtype=np.int64)
    return np.unique(crossing)


def adjacent_parts(graph: AttributedGraph, assignment: np.ndarray) -> set:
    """Unordered part-id pairs ``(i, j)``, ``i < j``, joined by a cut edge.

    Pairs involving unassigned nodes are omitted — there is no block to
    re-score against.
    """
    assignment = _check_assignment(graph, assignment)
    crossing = cut_edges(graph, assignment)
    pairs = set()
    for u, v in crossing:
        pu, pv = int(assignment[u]), int(assignment[v])
        if pu == -1 or pv == -1 or pu == pv:
            continue
        pairs.add((min(pu, pv), max(pu, pv)))
    return pairs


def edge_cut_fraction(graph: AttributedGraph, assignment: np.ndarray) -> float:
    """Fraction of edges lost to the cut (LIME reports ≈0.2 at 75 parts)."""
    if graph.n_edges == 0:
        return 0.0
    return cut_edges(graph, assignment).shape[0] / graph.n_edges


def _check_assignment(graph: AttributedGraph, assignment) -> np.ndarray:
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (graph.n_nodes,):
        raise GraphError(
            f"assignment must have shape ({graph.n_nodes},), "
            f"got {assignment.shape}"
        )
    return assignment
