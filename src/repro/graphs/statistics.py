"""Graph statistics used to validate the dataset stand-ins.

The stand-ins claim to match the paper datasets' *statistical
character*; these functions quantify that claim (density, clustering,
degree-distribution skew, community strength) and power the dataset
validation tests.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.graph import AttributedGraph


def average_degree(graph: AttributedGraph) -> float:
    """Mean node degree ``2m/n``."""
    if graph.n_nodes == 0:
        raise GraphError("empty graph has no average degree")
    return 2.0 * graph.n_edges / graph.n_nodes


def density(graph: AttributedGraph) -> float:
    """Edge density ``2m / (n(n-1))``."""
    n = graph.n_nodes
    if n < 2:
        return 0.0
    return 2.0 * graph.n_edges / (n * (n - 1))


def clustering_coefficient(graph: AttributedGraph) -> float:
    """Global clustering coefficient (3 × triangles / wedges)."""
    adj = graph.dense_adjacency()
    deg = adj.sum(axis=1)
    triangles = float(np.trace(adj @ adj @ adj)) / 6.0
    wedges = float(np.sum(deg * (deg - 1))) / 2.0
    if wedges == 0:
        return 0.0
    return 3.0 * triangles / wedges


def degree_gini(graph: AttributedGraph) -> float:
    """Gini coefficient of the degree distribution (0 = regular, →1 = hubs)."""
    degrees = np.sort(graph.degrees)
    n = degrees.shape[0]
    if n == 0 or degrees.sum() == 0:
        return 0.0
    cum = np.cumsum(degrees)
    return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)


def modularity(graph: AttributedGraph, labels: np.ndarray | None = None) -> float:
    """Newman modularity of a node partition (defaults to node_labels)."""
    if labels is None:
        labels = graph.node_labels
    if labels is None:
        raise GraphError("modularity needs a node partition")
    labels = np.asarray(labels)
    adj = graph.dense_adjacency()
    two_m = adj.sum()
    if two_m == 0:
        return 0.0
    deg = adj.sum(axis=1)
    same = labels[:, None] == labels[None, :]
    expected = np.outer(deg, deg) / two_m
    return float(np.sum((adj - expected)[same]) / two_m)


def feature_sparsity(graph: AttributedGraph) -> float:
    """Fraction of zero entries in the feature matrix."""
    if graph.features is None:
        raise GraphError("graph has no features")
    return float(np.mean(graph.features == 0))


def structural_summary(graph: AttributedGraph) -> dict[str, float]:
    """One-call bundle of all statistics (labels optional)."""
    summary = {
        "n_nodes": float(graph.n_nodes),
        "n_edges": float(graph.n_edges),
        "average_degree": average_degree(graph),
        "density": density(graph),
        "clustering": clustering_coefficient(graph),
        "degree_gini": degree_gini(graph),
    }
    if graph.node_labels is not None:
        summary["modularity"] = modularity(graph)
    if graph.features is not None:
        summary["feature_sparsity"] = feature_sparsity(graph)
    return summary


def edge_overlap(a: AttributedGraph, b: AttributedGraph) -> float:
    """Jaccard overlap of two graphs' edge sets (same node ids).

    Quantifies structure inconsistency between paired graphs: the
    Douban/ACM-DBLP simulators aim for partial overlap, the perturbation
    simulator for a controlled fraction.
    """
    if a.n_nodes != b.n_nodes:
        raise GraphError("edge_overlap needs graphs over the same node set")
    edges_a = {tuple(e) for e in a.edge_list()}
    edges_b = {tuple(e) for e in b.edge_list()}
    union = edges_a | edges_b
    if not union:
        return 1.0
    return len(edges_a & edges_b) / len(union)
