"""Node permutation and graph-pair construction (paper Sec. V-A).

For the semi-synthetic datasets the paper treats the original graph as
the source ``Gs`` and generates the target by a node permutation:
``At = Pᵀ As P`` and ``Xt = Pᵀ Xs``.  The ground truth is the
permutation itself.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.graphs.graph import AttributedGraph
from repro.utils.random import check_random_state


def permutation_matrix(perm: np.ndarray) -> sp.csr_array:
    """Sparse permutation matrix ``P`` with ``P[i, perm[i]] = 1``.

    With this convention, source node ``i`` corresponds to target node
    ``perm[i]``, and ``Pᵀ A P`` relabels rows/columns accordingly.
    """
    perm = np.asarray(perm, dtype=np.int64)
    n = perm.shape[0]
    if sorted(perm.tolist()) != list(range(n)):
        raise GraphError("perm must be a permutation of range(n)")
    data = np.ones(n)
    return sp.csr_array(sp.coo_array((data, (np.arange(n), perm)), shape=(n, n)))


def permute_graph(
    graph: AttributedGraph, perm: np.ndarray | None = None, seed=None
) -> tuple[AttributedGraph, np.ndarray]:
    """Return ``(permuted_graph, perm)`` where node ``i`` maps to ``perm[i]``.

    Row ``perm[i]`` of the permuted graph is source node ``i``; both
    the adjacency and feature matrix are relabelled consistently.
    """
    n = graph.n_nodes
    if perm is None:
        rng = check_random_state(seed)
        perm = rng.permutation(n)
    perm = np.asarray(perm, dtype=np.int64)
    p_mat = permutation_matrix(perm)
    new_adj = sp.csr_array(p_mat.T @ graph.adjacency @ p_mat)
    new_feats = None
    if graph.features is not None:
        new_feats = np.empty_like(graph.features)
        new_feats[perm] = graph.features
    labels = None
    if graph.node_labels is not None:
        labels = np.empty_like(graph.node_labels)
        labels[perm] = graph.node_labels
    permuted = AttributedGraph(
        adjacency=new_adj,
        features=new_feats,
        name=f"{graph.name}-permuted",
        node_labels=labels,
    )
    return permuted, perm


def ground_truth_from_permutation(perm: np.ndarray) -> np.ndarray:
    """``m × 2`` array of (source index, target index) pairs."""
    perm = np.asarray(perm, dtype=np.int64)
    return np.column_stack([np.arange(perm.shape[0]), perm])


def invert_permutation(perm: np.ndarray) -> np.ndarray:
    """Inverse permutation: ``inv[perm[i]] = i``."""
    perm = np.asarray(perm, dtype=np.int64)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.shape[0])
    return inv
