"""Feature synthesis for the dataset stand-ins.

Real datasets attach bag-of-words vectors (Cora/Citeseer), profile
indicators (Facebook), gene signatures (PPI), venue counts (ACM-DBLP)
or dense language-model embeddings (DBP15K).  The synthesisers here
produce features with matching *statistical character* — sparsity,
community correlation, dimensionality — which is what the alignment
algorithms actually exploit.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.utils.random import check_random_state


def community_bag_of_words(
    labels: np.ndarray,
    n_features: int,
    words_per_node: int = 20,
    topic_concentration: float = 0.8,
    seed=None,
) -> np.ndarray:
    """0/1 bag-of-words features correlated with community labels.

    Each community owns a block of "topic words"; every node samples
    ``words_per_node`` words, drawing from its community's block with
    probability ``topic_concentration`` and from the whole vocabulary
    otherwise.  Mirrors how citation-network bag-of-words features
    cluster by research area.
    """
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise GraphError("labels must be a 1-D array")
    if n_features < 1:
        raise GraphError("n_features must be positive")
    rng = check_random_state(seed)
    communities = np.unique(labels)
    n_comm = communities.shape[0]
    block = max(1, n_features // max(n_comm, 1))
    feats = np.zeros((labels.shape[0], n_features))
    for i, lab in enumerate(labels):
        comm_idx = int(np.searchsorted(communities, lab))
        lo = (comm_idx * block) % n_features
        hi = min(lo + block, n_features)
        for _ in range(words_per_node):
            if hi > lo and rng.random() < topic_concentration:
                w = int(rng.integers(lo, hi))
            else:
                w = int(rng.integers(0, n_features))
            feats[i, w] = 1.0
    return feats


def degree_correlated_features(
    degrees: np.ndarray, n_features: int, noise: float = 0.3, seed=None
) -> np.ndarray:
    """Dense features whose leading directions correlate with degree.

    Models profile-like features where activity level (degree) leaks
    into the attributes, as in social networks.
    """
    degrees = np.asarray(degrees, dtype=np.float64)
    if n_features < 1:
        raise GraphError("n_features must be positive")
    rng = check_random_state(seed)
    n = degrees.shape[0]
    base = np.log1p(degrees)[:, None]
    directions = rng.standard_normal((1, n_features))
    feats = base @ directions + noise * rng.standard_normal((n, n_features))
    return feats


def latent_position_features(
    n_nodes: int,
    n_features: int,
    n_latent: int = 16,
    noise: float = 0.1,
    seed=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Latent positions + a random linear readout.

    Returns ``(latent, features)``.  The bilingual KG simulator encodes
    the *same* latent entity twice through *different* readouts to get
    informative-but-unaligned cross-lingual features.
    """
    if min(n_nodes, n_features, n_latent) < 1:
        raise GraphError("n_nodes, n_features and n_latent must be positive")
    rng = check_random_state(seed)
    latent = rng.standard_normal((n_nodes, n_latent))
    readout = rng.standard_normal((n_latent, n_features)) / np.sqrt(n_latent)
    features = latent @ readout + noise * rng.standard_normal((n_nodes, n_features))
    return latent, features


def random_orthogonal_matrix(dim: int, seed=None) -> np.ndarray:
    """Haar-random orthogonal matrix via QR of a Gaussian matrix."""
    if dim < 1:
        raise GraphError("dim must be positive")
    rng = check_random_state(seed)
    gauss = rng.standard_normal((dim, dim))
    q, r = np.linalg.qr(gauss)
    # fix signs so the distribution is Haar rather than QR-skewed
    return q * np.sign(np.diag(r))


def pca_project(features: np.ndarray, n_components: int) -> np.ndarray:
    """Project centred features onto the top principal components."""
    feats = np.asarray(features, dtype=np.float64)
    n_components = min(n_components, min(feats.shape))
    if n_components < 1:
        raise GraphError("n_components must be positive")
    centered = feats - feats.mean(axis=0, keepdims=True)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    return centered @ vt[:n_components].T
