"""Graph substrate: containers, generators, normalisation, perturbation."""

from repro.graphs.graph import AttributedGraph
from repro.graphs.generators import (
    erdos_renyi_graph,
    barabasi_albert_graph,
    powerlaw_cluster_graph,
    watts_strogatz_graph,
    stochastic_block_model,
    random_bipartite_expansion,
)
from repro.graphs.normalization import (
    symmetric_normalize,
    row_normalize,
    add_self_loops,
    degree_matrix,
)
from repro.graphs.permutation import (
    permutation_matrix,
    permute_graph,
    ground_truth_from_permutation,
    invert_permutation,
)
from repro.graphs.perturbation import (
    perturb_edges,
    permute_features,
    truncate_features,
    compress_features,
    add_feature_noise,
    drop_edges,
)
from repro.graphs.partition import (
    partition_assignment,
    cut_edges,
    boundary_nodes,
    adjacent_parts,
    edge_cut_fraction,
)
from repro.graphs.io import save_graph, load_graph
from repro.graphs.statistics import (
    average_degree,
    density,
    clustering_coefficient,
    degree_gini,
    modularity,
    feature_sparsity,
    structural_summary,
    edge_overlap,
)

__all__ = [
    "AttributedGraph",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "powerlaw_cluster_graph",
    "watts_strogatz_graph",
    "stochastic_block_model",
    "random_bipartite_expansion",
    "symmetric_normalize",
    "row_normalize",
    "add_self_loops",
    "degree_matrix",
    "permutation_matrix",
    "permute_graph",
    "ground_truth_from_permutation",
    "invert_permutation",
    "perturb_edges",
    "permute_features",
    "truncate_features",
    "compress_features",
    "add_feature_noise",
    "drop_edges",
    "partition_assignment",
    "cut_edges",
    "boundary_nodes",
    "adjacent_parts",
    "edge_cut_fraction",
    "save_graph",
    "load_graph",
    "average_degree",
    "density",
    "clustering_coefficient",
    "degree_gini",
    "modularity",
    "feature_sparsity",
    "structural_summary",
    "edge_overlap",
]
