"""Adjacency normalisation used by the subgraph view (paper Eq. 5).

``Â = M^{-1/2} (A + I) M^{-1/2}`` where ``M`` is the degree matrix of
``A + I`` — the symmetric normalisation with self-loops of SGC / GCN.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError


def add_self_loops(adjacency: sp.csr_array) -> sp.csr_array:
    """Return ``A + I`` as CSR."""
    n = adjacency.shape[0]
    return sp.csr_array(adjacency + sp.eye_array(n, format="csr"))


def symmetric_normalize(adjacency, add_loops: bool = True) -> sp.csr_array:
    """Symmetrically normalised adjacency ``M^{-1/2}(A+I)M^{-1/2}``.

    Parameters
    ----------
    adjacency:
        Sparse or dense square adjacency.
    add_loops:
        If True (the paper's setting) add the identity before
        normalising so isolated nodes keep a well-defined row.
    """
    if not sp.issparse(adjacency):
        adjacency = sp.csr_array(np.asarray(adjacency, dtype=np.float64))
    else:
        adjacency = sp.csr_array(adjacency).astype(np.float64)
    if adjacency.shape[0] != adjacency.shape[1]:
        raise GraphError(f"adjacency must be square, got {adjacency.shape}")
    mat = add_self_loops(adjacency) if add_loops else adjacency
    degrees = np.asarray(mat.sum(axis=1)).ravel()
    with np.errstate(divide="ignore"):
        inv_sqrt = 1.0 / np.sqrt(degrees)
    inv_sqrt[~np.isfinite(inv_sqrt)] = 0.0
    d_inv = sp.dia_array((inv_sqrt[None, :], [0]), shape=mat.shape).tocsr()
    return sp.csr_array(d_inv @ mat @ d_inv)


def row_normalize(matrix: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """L2-normalise rows of a dense matrix; zero rows stay zero."""
    arr = np.asarray(matrix, dtype=np.float64)
    norms = np.linalg.norm(arr, axis=1, keepdims=True)
    norms = np.where(norms < eps, 1.0, norms)
    return arr / norms


def degree_matrix(adjacency) -> np.ndarray:
    """Diagonal of the degree matrix as a vector."""
    if sp.issparse(adjacency):
        return np.asarray(adjacency.sum(axis=1)).ravel()
    return np.asarray(adjacency).sum(axis=1)
