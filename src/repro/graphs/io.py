"""Saving/loading :class:`AttributedGraph` objects as ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.graphs.graph import AttributedGraph


def save_graph(graph: AttributedGraph, path) -> None:
    """Serialise a graph to a single ``.npz`` file."""
    path = Path(path)
    adj = graph.adjacency.tocoo()
    payload = {
        "n_nodes": np.array([graph.n_nodes], dtype=np.int64),
        "row": adj.coords[0].astype(np.int64),
        "col": adj.coords[1].astype(np.int64),
        "data": adj.data,
        "name": np.array([graph.name]),
    }
    if graph.features is not None:
        payload["features"] = graph.features
    if graph.node_labels is not None:
        payload["node_labels"] = np.asarray(graph.node_labels)
    np.savez_compressed(path, **payload)


def load_graph(path) -> AttributedGraph:
    """Load a graph previously written by :func:`save_graph`."""
    path = Path(path)
    if not path.exists():
        raise GraphError(f"no such graph file: {path}")
    with np.load(path, allow_pickle=False) as archive:
        n = int(archive["n_nodes"][0])
        adj = sp.csr_array(
            sp.coo_array(
                (archive["data"], (archive["row"], archive["col"])), shape=(n, n)
            )
        )
        features = archive["features"] if "features" in archive else None
        labels = archive["node_labels"] if "node_labels" in archive else None
        name = str(archive["name"][0])
    return AttributedGraph(
        adjacency=adj, features=features, name=name, node_labels=labels
    )
