"""Anchor-based boundary repair for stitched partition plans.

Partitioned alignment loses exactly the correspondences that cross the
partition cut: a ground-truth pair ``(s, t)`` whose target node ``t``
was assigned to a different part than ``s`` gets plan mass zero, no
matter how well the blocks themselves are solved.  This pass recovers
those pairs from the information the blocks *did* get right:

1. **anchors** — high-confidence matched pairs (mutual argmax of the
   stitched plan): the blocks align the interiors of well-assigned
   regions correctly, and those pairs act as a noisy seed alignment;
2. **agreement scores** — for a candidate pair ``(u, t)`` count the
   anchors ``(a_s, a_t)`` with ``a_s ∈ N(u)`` and ``a_t ∈ N(t)``.
   With anchor selector ``S`` (ones at anchor pairs) this is one sparse
   triple product ``A_src · S · A_tgt``, never densified;
3. **re-scoring** — every *boundary* target node (≥ 1 cut edge under
   the target partition; a misassigned node's neighbours live in the
   part it should have joined, so it is essentially always on the cut)
   is re-scored against source rows of **adjacent** blocks.  When the
   cross-part agreement strictly beats the row's current in-part
   agreement, the stitched plan is patched: the new pair receives just
   over the row's current maximum and the row is rescaled to preserve
   its mass, so the patched plan keeps the original marginals up to
   the (few) repaired rows.

The pass is plain post-processing on the stitched plan — it never
re-runs a block solver — so parallel and serial pipelines feed it
bit-identical inputs and it cannot break the executor's bitwise
contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import AttributedGraph
from repro.graphs.partition import (
    adjacent_parts,
    boundary_nodes,
    partition_assignment,
)

_PATCH_BOOST = 1.0625
"""A repaired entry is set to this multiple of the row's previous
maximum: enough to win the argmax outright (and survive the row's mass
rescaling) without distorting the row distribution."""


@dataclass
class RepairStats:
    """Bookkeeping from one boundary-repair pass."""

    n_anchors: int = 0
    n_boundary_source: int = 0
    n_boundary_target: int = 0
    n_candidates: int = 0
    n_patched: int = 0
    patched_pairs: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "n_anchors": self.n_anchors,
            "n_boundary_source": self.n_boundary_source,
            "n_boundary_target": self.n_boundary_target,
            "n_candidates": self.n_candidates,
            "n_patched": self.n_patched,
            "patched_pairs": [tuple(p) for p in self.patched_pairs],
        }


def collect_anchors(plan: sp.csr_array) -> np.ndarray:
    """Mutual-argmax pairs of a sparse plan, as a ``k × 2`` array.

    A pair ``(u, t)`` is an anchor when ``t`` is the (unique-by-first)
    argmax of row ``u`` *and* ``u`` is the argmax of column ``t`` —
    the standard reciprocal-best-match filter, cheap and surprisingly
    precise on block-solved plans.
    """
    csr = sp.csr_array(plan)
    row_best = _sparse_row_argmax(csr)
    col_best = _sparse_row_argmax(sp.csr_array(csr.T))
    rows = np.flatnonzero(row_best >= 0)
    mutual = rows[col_best[row_best[rows]] == rows]
    return np.column_stack([mutual, row_best[mutual]]).astype(np.int64)


def anchor_agreement(
    source: AttributedGraph,
    target: AttributedGraph,
    anchors: np.ndarray,
) -> sp.csr_array:
    """``n × m`` sparse count of neighbouring anchors per candidate pair.

    ``agreement[u, t] = |{(a_s, a_t) ∈ anchors : a_s ~ u, a_t ~ t}|``.
    """
    n, m = source.n_nodes, target.n_nodes
    anchors = np.asarray(anchors, dtype=np.int64).reshape(-1, 2)
    if anchors.shape[0] == 0:
        return sp.csr_array((n, m))
    selector = sp.csr_array(
        (
            np.ones(anchors.shape[0]),
            (anchors[:, 0], anchors[:, 1]),
        ),
        shape=(n, m),
    )
    return sp.csr_array(source.adjacency @ selector @ target.adjacency)


def repair_plan(
    source: AttributedGraph,
    target: AttributedGraph,
    plan: sp.csr_array,
    source_parts: list[np.ndarray],
    target_parts: list[np.ndarray],
    min_agreement: float = 2.0,
) -> tuple[sp.csr_array, RepairStats]:
    """Patch cross-part correspondences back into a stitched plan.

    Parameters
    ----------
    min_agreement:
        Minimum anchor-agreement count for a cross-part patch; pairs
        supported by a single anchor are indistinguishable from noise.

    Returns the patched plan (CSR, same shape) and a :class:`RepairStats`.
    """
    stats = RepairStats()
    n, m = plan.shape
    src_assign = partition_assignment(source_parts, n)
    tgt_assign = partition_assignment(target_parts, m)
    boundary_t = boundary_nodes(target, tgt_assign)
    stats.n_boundary_source = int(boundary_nodes(source, src_assign).size)
    stats.n_boundary_target = int(boundary_t.size)
    if boundary_t.size == 0:
        return sp.csr_array(plan), stats

    anchors = collect_anchors(plan)
    stats.n_anchors = int(anchors.shape[0])
    if anchors.shape[0] == 0:
        return sp.csr_array(plan), stats
    agreement = anchor_agreement(source, target, anchors)

    # candidate entries: boundary target column, different (assigned)
    # parts, and the part pair adjacent across the source cut
    neighbours = adjacent_parts(source, src_assign)
    coo = agreement.tocoo()
    is_boundary_t = np.zeros(m, dtype=bool)
    is_boundary_t[boundary_t] = True
    part_u = src_assign[coo.row]
    part_t = tgt_assign[coo.col]
    keep = (
        is_boundary_t[coo.col]
        & (part_u >= 0)
        & (part_t >= 0)
        & (part_u != part_t)
        & (coo.data >= min_agreement)
    )
    # adjacency restriction (vectorised lookup table — the agreement
    # matrix scales with anchor-degree products, so a per-entry Python
    # loop here would dominate the repair pass on large pairs); with
    # no adjacent part pairs there is nothing to re-score against and
    # every cross-part candidate is rejected
    n_parts = len(source_parts)
    adj_table = np.zeros((n_parts, n_parts), dtype=bool)
    for i, j in neighbours:
        adj_table[i, j] = adj_table[j, i] = True
    surviving = np.flatnonzero(keep)
    keep[surviving] &= adj_table[part_u[surviving], part_t[surviving]]
    cand_row = coo.row[keep]
    cand_col = coo.col[keep]
    cand_val = coo.data[keep]
    stats.n_candidates = int(cand_row.size)
    if cand_row.size == 0:
        return sp.csr_array(plan), stats

    # normalise agreement by degree: a raw anchor count scales with the
    # endpoint degrees (hub columns collect spurious agreement), while
    # count / sqrt(deg_u · deg_t) ≈ 1 exactly when u's matched
    # neighbourhood is t's neighbourhood — the true correspondence
    deg_s = np.maximum(source.degrees, 1.0)
    deg_t = np.maximum(target.degrees, 1.0)

    def normalised(u: int, t: int, count: float) -> float:
        return count / float(np.sqrt(deg_s[u] * deg_t[t]))

    # per candidate row: best cross-part agreement vs the agreement of
    # the row's current in-part match
    best_val: dict[int, float] = {}
    best_col: dict[int, int] = {}
    for u, t, v in zip(cand_row, cand_col, cand_val):
        u, t = int(u), int(t)
        v = normalised(u, t, float(v))
        if v > best_val.get(u, 0.0):
            best_val[u] = v
            best_col[u] = t
    csr = sp.csr_array(plan)
    row_best = _sparse_row_argmax(csr)
    agreement_csr = sp.csr_array(agreement)

    # gate first: a claimant must beat its own current in-part
    # agreement before it may compete for a column — gating after the
    # per-column selection would let a strong but already-well-matched
    # row shadow the genuinely misassigned runner-up and leave the
    # column unpatched entirely
    for u in list(best_val):
        cur = int(row_best[u])
        current_agreement = (
            normalised(u, cur, float(agreement_csr[u, cur]))
            if cur >= 0
            else 0.0
        )
        if best_val[u] <= current_agreement:
            del best_val[u]
            del best_col[u]

    # one claim per target column: when several surviving rows want
    # the same boundary target, only the strongest agreement can be
    # the true correspondence — patching them all would smear the
    # column
    strongest: dict[int, int] = {}
    for u, t in best_col.items():
        if t not in strongest or best_val[u] > best_val[strongest[t]]:
            strongest[t] = u
    winners = set(strongest.values())

    add_rows: list[int] = []
    add_cols: list[int] = []
    add_vals: list[float] = []
    row_scale = np.ones(n)
    for u in sorted(winners):
        t_new = best_col[u]
        lo, hi = csr.indptr[u], csr.indptr[u + 1]
        row_sum = float(csr.data[lo:hi].sum()) if hi > lo else 0.0
        row_max = float(csr.data[lo:hi].max()) if hi > lo else 0.0
        new_val = _PATCH_BOOST * row_max if row_max > 0 else 1.0 / m
        add_rows.append(u)
        add_cols.append(t_new)
        add_vals.append(new_val)
        if row_sum > 0:
            # preserve the row's mass after the new entry is added
            row_scale[u] = row_sum / (row_sum + new_val)
        stats.patched_pairs.append((int(u), int(t_new)))
    stats.n_patched = len(stats.patched_pairs)
    if not add_rows:
        return csr, stats
    # patched entries are structural zeros of the stitched plan (they
    # cross the partition), so sparse addition acts as assignment
    additions = sp.csr_array(
        (np.asarray(add_vals), (np.asarray(add_rows), np.asarray(add_cols))),
        shape=(n, m),
    )
    scaled = sp.diags_array(row_scale) @ (csr + additions)
    return sp.csr_array(scaled), stats


def _sparse_row_argmax(csr: sp.csr_array) -> np.ndarray:
    """Argmax column per row of a non-negative CSR (−1 for empty rows).

    Ties break to the lowest column index among stored entries, which
    is deterministic and matches ``np.argmax`` on the dense row when
    the maximum is positive.  Rows whose stored maximum is ≤ 0 report
    no confident match (a dense argmax would pick an implicit zero).
    Fully vectorised over the CSR segments — this runs three times per
    repair pass, over every row and column of the stitched plan.
    """
    csr = sp.csr_array(csr)
    if not csr.has_sorted_indices:
        # copy before sorting: csr_array(other) shares buffers and an
        # in-place sort would reorder the caller's arrays
        csr = csr.copy()
        csr.sort_indices()
    n = csr.shape[0]
    out = np.full(n, -1, dtype=np.int64)
    indptr, indices, data = csr.indptr, csr.indices, csr.data
    if data.size == 0:
        return out
    counts = np.diff(indptr)
    nonempty = np.flatnonzero(counts > 0)
    row_max = np.zeros(n)
    row_max[nonempty] = np.maximum.reduceat(data, indptr[nonempty])
    row_of = np.repeat(np.arange(n), counts)
    hits = np.flatnonzero(data == row_max[row_of])
    # entries are sorted by column within each row, so the first
    # maximal entry per row is the lowest-column tie-break
    hit_rows, first = np.unique(row_of[hits], return_index=True)
    out[hit_rows] = indices[hits[first]]
    out[row_max <= 0] = -1
    return out
