"""Joint graph partitioning for the divide-and-conquer pipeline.

Two partitioners over the **source** graph:

* :func:`bisect_partition` — the original recursive spectral bisection,
  stopping once every part is at most ``max_block_size`` (parts follow
  the graph's natural cluster boundaries; sizes may be uneven);
* :func:`kway_partition` — recursive bisection *generalised to direct
  k-way with size balancing*: the recursion splits the requested part
  count ``k`` into ``⌈k/2⌉ + ⌊k/2⌋`` and cuts the Fiedler-sorted node
  order at the proportional position, so exactly ``k`` parts come out
  with sizes differing by at most one.  This is the partitioner the
  parallel executor wants: balanced parts give balanced worker loads.

Target nodes are then assigned to the source parts through cheap
intra-graph signatures (:func:`assign_target`), mimicking LIME's
bi-directional partition matching, and rebalanced so no part receives
more than twice its source size (:func:`rebalance`).

All spectral steps are deterministic *and sign-canonical*: the Fiedler
vector is flipped so its largest-magnitude entry is positive, which
keeps partitions equivariant under node relabelling (eigensolvers
return eigenvectors up to sign, and the sign would otherwise depend on
the input ordering).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg  # noqa: F401  (enables the sp.linalg namespace)

from repro.exceptions import GraphError
from repro.graphs.graph import AttributedGraph
from repro.graphs.normalization import row_normalize, symmetric_normalize

_DENSE_BISECT_CUTOFF = 64
"""Below this block size the dense eigendecomposition wins: ARPACK's
per-iteration overhead dominates and ``eigh`` on a tiny block is exact
and branch-free."""


def fiedler_vector(graph: AttributedGraph) -> np.ndarray:
    """Second-largest eigenvector of the normalised adjacency.

    Large blocks use ``scipy.sparse.linalg.eigsh(k=2)`` on the sparse
    matrix — O(iters · nnz) instead of the dense O(n³) ``eigh`` — with
    a deterministic start vector so partitions are reproducible.  Tiny
    blocks, and any block where the Lanczos iteration fails to
    converge, fall back to the dense path.  The returned vector is
    sign-canonical (largest-magnitude entry positive).
    """
    norm = symmetric_normalize(graph.adjacency)
    n = norm.shape[0]
    if n <= 1:
        return np.zeros(n)
    vec = None
    if n > _DENSE_BISECT_CUTOFF:
        try:
            eigvals, eigvecs = sp.linalg.eigsh(
                norm, k=2, which="LA", v0=np.full(n, 1.0 / np.sqrt(n))
            )
            # eigsh orders ascending for LA; the Fiedler direction is
            # the second-largest eigenvalue's vector
            vec = eigvecs[:, np.argsort(eigvals)[-2]]
        except (sp.linalg.ArpackNoConvergence, RuntimeError):
            vec = None  # dense fallback below
    if vec is None:
        # dense fallback is size-guarded: only blocks at or below
        # _DENSE_BISECT_CUTOFF (or failed Lanczos solves) reach it
        eigvals, eigvecs = np.linalg.eigh(norm.toarray())  # repro-lint: ignore[no-densify]
        vec = eigvecs[:, -2]
    peak = np.argmax(np.abs(vec))
    if vec[peak] < 0:
        vec = -vec
    return vec


def spectral_bisect(graph: AttributedGraph) -> tuple[np.ndarray, np.ndarray]:
    """Bisect by the Fiedler vector of the normalised adjacency."""
    # second-largest eigenvector of Â == Fiedler direction of Laplacian
    fiedler = fiedler_vector(graph)
    median = np.median(fiedler)
    left = np.flatnonzero(fiedler <= median)
    right = np.flatnonzero(fiedler > median)
    if left.size == 0 or right.size == 0:
        half = graph.n_nodes // 2
        order = np.argsort(fiedler, kind="stable")
        left, right = order[:half], order[half:]
    return left, right


def bisect_partition(
    graph: AttributedGraph,
    max_block_size: int,
    min_block_size: int = 8,
) -> list[np.ndarray]:
    """Recursive spectral bisection until every part is small enough.

    Parts smaller than ``min_block_size`` are merged back into their
    sibling to avoid degenerate GW problems.
    """
    parts: list[np.ndarray] = []
    stack = [np.arange(graph.n_nodes)]
    while stack:
        idx = stack.pop()
        if idx.size <= max_block_size:
            parts.append(idx)
            continue
        left, right = spectral_bisect(graph.subgraph(idx))
        if left.size < min_block_size or right.size < min_block_size:
            parts.append(idx)
            continue
        stack.append(idx[left])
        stack.append(idx[right])
    return parts


def kway_partition(graph: AttributedGraph, n_parts: int) -> list[np.ndarray]:
    """Direct k-way spectral partition with size balancing.

    Recursive bisection generalised to an arbitrary part count: each
    recursion level sorts the block's nodes by Fiedler value and cuts
    at the position proportional to the child part counts
    (``⌈k/2⌉ : ⌊k/2⌋``), so the final parts have sizes within one node
    of ``n / k`` while still following the spectral geometry.
    Returns exactly ``n_parts`` index arrays (sorted within each part).
    """
    if n_parts < 1:
        raise GraphError(f"n_parts must be >= 1, got {n_parts}")
    if n_parts > graph.n_nodes:
        raise GraphError(
            f"cannot cut {graph.n_nodes} nodes into {n_parts} parts"
        )
    parts: list[np.ndarray] = []
    stack = [(np.arange(graph.n_nodes), n_parts)]
    while stack:
        idx, k = stack.pop()
        if k == 1:
            parts.append(np.sort(idx))
            continue
        k_left = (k + 1) // 2
        fiedler = fiedler_vector(graph.subgraph(idx))
        order = np.argsort(fiedler, kind="stable")
        split = int(round(idx.size * k_left / k))
        split = min(max(split, k_left), idx.size - (k - k_left))
        stack.append((idx[order[split:]], k - k_left))
        stack.append((idx[order[:split]], k_left))
    return parts


def assign_target(
    source: AttributedGraph,
    target: AttributedGraph,
    source_parts: list[np.ndarray],
) -> list[np.ndarray]:
    """Assign each target node to the most similar source part.

    Uses cheap intra-graph signatures — degree percentile plus (when
    available) feature centroids — so the assignment is
    feature-space-agnostic when features are incomparable.
    """
    scores = assignment_scores(source, target, source_parts)
    assignment = np.argmax(scores, axis=1)
    # balance: cap each part's target size at twice its source size
    target_parts = [
        np.flatnonzero(assignment == p) for p in range(len(source_parts))
    ]
    return rebalance(target_parts, source_parts, scores)


def features_comparable(
    source: AttributedGraph, target: AttributedGraph
) -> bool:
    """Whether the two graphs carry directly comparable feature spaces."""
    return (
        source.features is not None
        and target.features is not None
        and source.features.shape[1] == target.features.shape[1]
    )


def assignment_scores(
    source: AttributedGraph,
    target: AttributedGraph,
    source_parts: list[np.ndarray],
) -> np.ndarray:
    """``m × p`` affinity of every target node to every source part."""
    if features_comparable(source, target):
        src_sig = row_normalize(source.features)
        tgt_sig = row_normalize(target.features)
        centroids = np.stack(
            [
                src_sig[part].mean(axis=0)
                if part.size
                else np.zeros(src_sig.shape[1])
                for part in source_parts
            ]
        )
        return tgt_sig @ centroids.T
    # structure-only fallback: degree percentile matching
    src_deg = source.degrees
    tgt_deg = target.degrees
    centroids = np.array(
        [
            np.mean(np.log1p(src_deg[part])) if part.size else 0.0
            for part in source_parts
        ]
    )
    return -np.abs(np.log1p(tgt_deg)[:, None] - centroids[None, :])


def rebalance(
    target_parts: list[np.ndarray],
    source_parts: list[np.ndarray],
    scores: np.ndarray,
) -> list[np.ndarray]:
    """Cap over-full target parts, spilling nodes to their next-best part.

    Nodes are (re)assigned in order of decreasing confidence; each
    takes its best-scoring part with free capacity (twice the source
    part's size).  When every part is full — possible only if the
    caller passes more target nodes than twice the total source size —
    the node falls back to its top preference regardless of capacity,
    so no node is ever dropped.
    """
    capacities = [max(2 * part.size, 1) for part in source_parts]
    order = np.argsort(-scores.max(axis=1), kind="stable")  # most confident first
    filled: list[list[int]] = [[] for _ in source_parts]
    preference = np.argsort(-scores, axis=1, kind="stable")
    for node in order:
        for part in preference[node]:
            if len(filled[part]) < capacities[part]:
                filled[part].append(int(node))
                break
        else:
            filled[int(preference[node][0])].append(int(node))
    return [np.array(sorted(members), dtype=np.int64) for members in filled]
