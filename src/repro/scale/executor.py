"""Block execution strategies for the partitioned aligner.

The executor is **pure scheduling**: every backend runs the exact same
``align_block`` function on the exact same pickled inputs, so per-block
results are bitwise-identical across ``serial`` / ``thread`` /
``process`` (pickling NumPy float64 arrays is exact, and each worker
process runs the same single-threaded BLAS code path).  A regression
test pins this contract the same way ``tests/test_fused_objective.py``
pins the fused hot path.

``process`` is the backend that actually buys wall-clock on multi-core
machines; ``thread`` exists for environments where ``fork``/pickling is
unavailable (it still overlaps the small Python-side overhead between
BLAS calls); ``serial`` is the reference loop.  ``auto`` picks
``process`` when more than one CPU is visible and ``serial`` otherwise
— on a single-core box a pool only adds pickling overhead.
"""

from __future__ import annotations

import os
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)

from repro.core.config import SLOTAlignConfig
from repro.core.result import AlignmentResult
from repro.exceptions import GraphError
from repro.graphs.graph import AttributedGraph

EXECUTORS = ("serial", "thread", "process", "auto")


class _PoolUnavailable(Exception):
    """Internal: the pool backend could not spawn its workers."""


def available_cpus() -> int:
    """CPUs actually usable by this process.

    ``os.cpu_count()`` reports host cores; under cgroup quotas or CPU
    affinity (CI containers, ``taskset``) the process may see far
    fewer, and sizing a pool by host cores adds pure overhead.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # non-Linux fallback
        return os.cpu_count() or 1


def align_block(
    config: SLOTAlignConfig,
    source: AttributedGraph,
    target: AttributedGraph,
    backend: str = "fused-dense",
) -> AlignmentResult:
    """Solve one block pair through the alignment engine.

    Top-level so process pools can pickle it.  ``backend`` selects the
    dense solver backend per block (``batched-restart`` amortises each
    block's restart portfolio into stacked GEMMs; results are
    bitwise-identical across backends, like the executors).
    """
    from repro.engine.pipeline import align_pair

    return align_pair(config, source, target, backend=backend)


def resolve_executor(executor: str) -> str:
    """Map ``auto`` to a concrete backend for this machine."""
    if executor not in EXECUTORS:
        raise GraphError(
            f"executor must be one of {EXECUTORS}, got {executor!r}"
        )
    if executor == "auto":
        return "process" if available_cpus() > 1 else "serial"
    return executor


def run_blocks(
    config: SLOTAlignConfig,
    blocks: list[tuple[AttributedGraph, AttributedGraph]],
    executor: str = "serial",
    max_workers: int | None = None,
    solver_backend: str = "fused-dense",
) -> tuple[list[AlignmentResult], str]:
    """Align every block pair, preserving input order.

    Returns ``(results, backend_used)``.  Falls back to the serial
    loop if a pool backend fails to start (e.g. a sandbox forbids
    spawning processes) — the results are bitwise-identical either
    way, and ``backend_used`` reports what actually ran so callers
    never attribute serial wall-clock to a pool.
    """
    backend = resolve_executor(executor)
    if backend != "serial" and len(blocks) > 1:
        pool_cls = (
            ProcessPoolExecutor if backend == "process" else ThreadPoolExecutor
        )
        workers = max_workers or min(len(blocks), available_cpus())
        try:
            pool = pool_cls(max_workers=workers)
        except (OSError, PermissionError):
            pool = None  # pool construction forbidden: serial fallback
        if pool is not None:
            try:
                with pool:
                    # workers are spawned lazily on submit, so a
                    # sandbox that forbids fork surfaces there, not
                    # at construction
                    try:
                        futures = [
                            pool.submit(
                                align_block, config, sub_s, sub_t,
                                solver_backend,
                            )
                            for sub_s, sub_t in blocks
                        ]
                    except (OSError, PermissionError) as exc:
                        raise _PoolUnavailable from exc
                    try:
                        return (
                            [future.result() for future in futures],
                            backend,
                        )
                    except BrokenExecutor as exc:
                        # the pool died (partial spawn failure, killed
                        # worker); exceptions raised *by a block
                        # solve* are neither caught nor retried — they
                        # propagate as-is instead of triggering a
                        # serial re-run
                        raise _PoolUnavailable from exc
            except _PoolUnavailable:
                pass  # fall through to the serial loop
    return (
        [
            align_block(config, sub_s, sub_t, solver_backend)
            for sub_s, sub_t in blocks
        ],
        "serial",
    )
