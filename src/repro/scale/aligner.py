"""Divide-and-conquer alignment for large graph pairs (paper Sec. IV-D).

The paper notes SLOTAlign is quadratic in the node counts and points to
LIME's bi-directional graph-partition strategy (METIS-based) and
LargeEA's mini-batching as the route to million-node graphs, leaving it
as future work.  This subsystem implements that route as a pipeline:

1. **partition** both graphs jointly: the source graph is cut by
   recursive spectral bisection (``max_block_size``) or direct k-way
   balanced partitioning (``n_parts``); target nodes are assigned to
   the source parts through cheap intra-graph signatures, mimicking
   LIME's bi-directional partition matching;
2. **align** each subgraph pair with SLOTAlign, serially or on a
   worker pool (:mod:`repro.scale.executor` — pure scheduling, block
   results are bitwise-identical across backends);
3. **stitch** the block plans into one global sparse correspondence
   matrix (CSR, block-structured);
4. **repair** the partition boundary: high-confidence matches seed an
   anchor alignment, boundary nodes are re-scored against adjacent
   blocks and lost cross-part correspondences are patched back in
   (:mod:`repro.scale.boundary`) — recovering most of what LIME simply
   writes off (≈20 % of links at 75 parts).

Everything downstream stays sparse: :class:`PartitionedAlignment`
exposes top-k candidates and discrete matchings without ever calling
``toarray()``, and :mod:`repro.eval.metrics` consumes the CSR plan
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np
import scipy.sparse as sp

from repro.core.config import SLOTAlignConfig
from repro.core.result import AlignmentResult
from repro.exceptions import GraphError
from repro.graphs.graph import AttributedGraph
from repro.graphs.partition import edge_cut_fraction, partition_assignment
from repro.scale.boundary import repair_plan
from repro.scale.executor import run_blocks
from repro.scale.partition import (
    assign_target,
    bisect_partition,
    features_comparable,
    kway_partition,
)
from repro.utils.timer import Timer

DENSE_GUARD_ENTRIES = 4_000_000
"""``dense_plan`` refuses to materialise plans above this entry count:
a partitioned pipeline that densifies its output has silently given up
its memory advantage.  Pass ``force=True`` to override (tests, tiny
demos)."""


@dataclass
class PartitionedAlignment:
    """Output of :class:`DivideAndConquerAligner`.

    Attributes
    ----------
    plan:
        Sparse global correspondence matrix (CSR), nonzero only within
        matched partition pairs plus any boundary-repaired entries.
    partitions:
        List of ``(source_indices, target_indices)`` per part.
    block_results:
        The per-part :class:`AlignmentResult` objects.
    """

    plan: sp.csr_array
    partitions: list[tuple[np.ndarray, np.ndarray]]
    block_results: list[AlignmentResult]
    runtime: float = 0.0
    extras: dict = field(default_factory=dict)

    def dense_plan(self, force: bool = False) -> np.ndarray:
        """Materialise the global plan (small problems only).

        Raises :class:`GraphError` above :data:`DENSE_GUARD_ENTRIES`
        entries unless ``force=True`` — use :meth:`top_k` /
        :meth:`matching` or the sparse-aware metrics instead.
        """
        n, m = self.plan.shape
        if not force and n * m > DENSE_GUARD_ENTRIES:
            raise GraphError(
                f"refusing to densify a {n}x{m} plan "
                f"({n * m} entries > {DENSE_GUARD_ENTRIES}); use top_k()/"
                "matching() or pass force=True"
            )
        return self.plan.toarray()

    def top_k(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Top-k candidate columns and scores per source row, sparse.

        Returns ``(cols, scores)`` of shape ``(n, k)``; rows with fewer
        than ``k`` stored entries are padded with column ``-1`` and
        score ``0.0``.  Columns are ordered by decreasing score (ties
        by increasing column index).  Never densifies.
        """
        from repro.eval.metrics import sparse_topk

        return sparse_topk(self.plan, k)

    def matching(self) -> np.ndarray:
        """Discrete argmax matching per source row (−1 for empty rows)."""
        cols, _ = self.top_k(1)
        return cols[:, 0]

    def decode(self, decoder: str | None = None):
        """Decode the stitched CSR plan through the decoder registry.

        Every registered decoder consumes the sparse plan directly —
        the Hungarian decoder solves the sparse bipartite assignment,
        the MEA sweep walks stored entries — so this never densifies
        (the no-densify lint rule applies to this module).
        """
        from repro.engine.decode import DEFAULT_DECODER, decode_plan

        return decode_plan(self, decoder if decoder is not None else DEFAULT_DECODER)

    @property
    def n_parts(self) -> int:
        return len(self.partitions)


class DivideAndConquerAligner:
    """Partition-then-align wrapper around SLOTAlign.

    Parameters
    ----------
    config:
        SLOTAlign configuration used per block.
    max_block_size:
        Recursive bisection stops once a source part is at most this
        large (ignored when ``n_parts`` is given).
    min_block_size:
        Parts smaller than this are merged into their sibling to avoid
        degenerate GW problems.
    n_parts:
        Direct k-way partitioning into exactly this many size-balanced
        parts (the executor-friendly mode: balanced parts give
        balanced worker loads).
    executor:
        ``"serial"`` | ``"thread"`` | ``"process"`` | ``"auto"``.
        Block results are bitwise-identical across backends; see
        :mod:`repro.scale.executor`.
    max_workers:
        Pool size for the parallel backends (default: one per block,
        capped at the CPU count).
    boundary_repair:
        Run the anchor-based boundary-repair pass on the stitched plan
        (default on; it is pure post-processing and recovers cross-part
        correspondences the blocks cannot see).
    min_agreement:
        Anchor-agreement threshold for a cross-part patch.
    block_init:
        ``"auto"`` (default) enables the paper's Sec. V-C
        feature-similarity initialisation for the block solves whenever
        the pair actually gets partitioned (≥ 2 blocks) and the feature
        spaces are comparable.  A block sees only a fragment of the
        global structure, so block-level GW is prone to
        community-permutation local optima that the whole-graph solve
        escapes — the informative init anchors node identity and
        removes that failure mode (measured: 1–5 % → 78–94 % block
        Hit@1 on 90-node three-community blocks).  ``"config"`` leaves
        the per-block configuration exactly as passed; a single-block
        fit always does (it *is* the whole problem, so
        ``DivideAndConquerAligner`` with one part stays equivalent to
        plain SLOTAlign).
    solver_backend:
        Dense engine backend used for every block solve
        (``"fused-dense"`` or ``"batched-restart"``; block results are
        bitwise-identical across backends, like the executors).
    """

    def __init__(
        self,
        config: SLOTAlignConfig | None = None,
        max_block_size: int = 400,
        min_block_size: int = 8,
        n_parts: int | None = None,
        executor: str = "serial",
        max_workers: int | None = None,
        boundary_repair: bool = True,
        min_agreement: float = 2.0,
        block_init: str = "auto",
        solver_backend: str = "fused-dense",
    ):
        if max_block_size < 2 * min_block_size:
            raise GraphError("max_block_size must be at least 2x min_block_size")
        if n_parts is not None and n_parts < 1:
            raise GraphError(f"n_parts must be >= 1, got {n_parts}")
        if block_init not in ("auto", "config"):
            raise GraphError(
                f"block_init must be 'auto' or 'config', got {block_init!r}"
            )
        # lazy import: repro.scale must stay importable before
        # repro.engine finishes initialising (core/__init__ imports us)
        from repro.engine.backends import ensure_dense_backend

        ensure_dense_backend(solver_backend, "per-block solving")
        self.config = config or SLOTAlignConfig()
        self.max_block_size = max_block_size
        self.min_block_size = min_block_size
        self.n_parts = n_parts
        self.executor = executor
        self.max_workers = max_workers
        self.boundary_repair = boundary_repair
        self.min_agreement = min_agreement
        self.block_init = block_init
        self.solver_backend = solver_backend

    # ------------------------------------------------------------------
    def fit(
        self,
        source: AttributedGraph,
        target: AttributedGraph,
        source_parts: list[np.ndarray] | None = None,
        target_parts: list[np.ndarray] | None = None,
    ) -> PartitionedAlignment:
        """Partition both graphs, align per part, stitch, repair.

        ``source_parts`` / ``target_parts`` inject precomputed
        partitions (reuse across executor comparisons, tests that need
        controlled assignments); when omitted the configured
        partitioner runs.
        """
        with Timer() as timer:
            if source_parts is None:
                source_parts = self._partition_source(source)
            if target_parts is None:
                target_parts = assign_target(source, target, source_parts)
            if len(source_parts) != len(target_parts):
                raise GraphError(
                    "source_parts and target_parts must have equal length"
                )

            blocks: list[tuple[AttributedGraph, AttributedGraph]] = []
            partitions: list[tuple[np.ndarray, np.ndarray]] = []
            for src_idx, tgt_idx in zip(source_parts, target_parts):
                if src_idx.size == 0 or tgt_idx.size == 0:
                    continue
                blocks.append((source.subgraph(src_idx), target.subgraph(tgt_idx)))
                partitions.append((src_idx, tgt_idx))
            if not partitions:
                raise GraphError("partitioning produced no alignable blocks")

            block_config = self._block_config(source, target, len(partitions))
            block_results, backend_used = run_blocks(
                block_config,
                blocks,
                executor=self.executor,
                max_workers=self.max_workers,
                solver_backend=self.solver_backend,
            )
            plan = self._stitch(
                partitions, block_results, source.n_nodes, target.n_nodes
            )

            src_assign = partition_assignment(
                [src for src, _ in partitions], source.n_nodes
            )
            extras = {
                "n_parts": len(partitions),
                "executor": backend_used,
                "executor_requested": self.executor,
                "solver_backend": self.solver_backend,
                "source_cut_fraction": edge_cut_fraction(source, src_assign),
                "block_feature_init": block_config.use_feature_similarity_init,
            }
            if self.boundary_repair and len(partitions) > 1:
                plan, stats = repair_plan(
                    source,
                    target,
                    plan,
                    [src for src, _ in partitions],
                    [tgt for _, tgt in partitions],
                    min_agreement=self.min_agreement,
                )
                extras["repair"] = stats.as_dict()
        return PartitionedAlignment(
            plan=plan,
            partitions=partitions,
            block_results=block_results,
            runtime=timer.elapsed,
            extras=extras,
        )

    # ------------------------------------------------------------------
    def _block_config(
        self,
        source: AttributedGraph,
        target: AttributedGraph,
        n_blocks: int,
    ) -> SLOTAlignConfig:
        """Per-block solver configuration (see ``block_init``)."""
        if (
            self.block_init == "auto"
            and n_blocks > 1
            and features_comparable(source, target)
        ):
            # the informative init replaces the committed-vertex start:
            # a block solve that both starts β at the node vertex and
            # initialises π from feature similarity over-commits to the
            # feature view and measurably underperforms the neutral
            # uniform β start (21–38 % vs 70–92 % block Hit@1)
            return replace(
                self.config,
                use_feature_similarity_init=True,
                single_start_view="uniform",
            )
        return self.config

    def _partition_source(self, graph: AttributedGraph) -> list[np.ndarray]:
        if self.n_parts is not None:
            # kway_partition balances sizes to within one node of n/k,
            # so the min-size guard reduces to checking the quotient —
            # unlike bisection there is no sibling to merge a tiny
            # part back into
            if graph.n_nodes // self.n_parts < self.min_block_size:
                raise GraphError(
                    f"n_parts={self.n_parts} would cut {graph.n_nodes} "
                    f"nodes into blocks below min_block_size="
                    f"{self.min_block_size}"
                )
            return kway_partition(graph, self.n_parts)
        return bisect_partition(
            graph, self.max_block_size, self.min_block_size
        )

    @staticmethod
    def _stitch(
        partitions: list[tuple[np.ndarray, np.ndarray]],
        block_results: list[AlignmentResult],
        n: int,
        m: int,
    ) -> sp.csr_array:
        """Scatter the dense block plans into one global CSR matrix."""
        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        vals: list[np.ndarray] = []
        for (src_idx, tgt_idx), result in zip(partitions, block_results):
            r, c = np.meshgrid(src_idx, tgt_idx, indexing="ij")
            rows.append(r.ravel())
            cols.append(c.ravel())
            vals.append(result.plan.ravel())
        return sp.csr_array(
            sp.coo_array(
                (
                    np.concatenate(vals),
                    (np.concatenate(rows), np.concatenate(cols)),
                ),
                shape=(n, m),
            )
        )
