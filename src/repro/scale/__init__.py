"""Large-graph alignment subsystem: partition → align → stitch → repair.

Public surface of the divide-and-conquer pipeline (paper Sec. IV-D
future work, made concrete): partitioners, the block executor, the
boundary-repair pass and the orchestrating aligner.
"""

from repro.scale.aligner import (
    DENSE_GUARD_ENTRIES,
    DivideAndConquerAligner,
    PartitionedAlignment,
)
from repro.scale.boundary import (
    RepairStats,
    anchor_agreement,
    collect_anchors,
    repair_plan,
)
from repro.scale.diagnostics import (
    ground_truth_target_parts,
    hit1_mask,
    inject_misassignment,
)
from repro.scale.executor import (
    EXECUTORS,
    align_block,
    available_cpus,
    resolve_executor,
    run_blocks,
)
from repro.scale.partition import (
    assign_target,
    assignment_scores,
    bisect_partition,
    fiedler_vector,
    kway_partition,
    rebalance,
    spectral_bisect,
)

__all__ = [
    "DENSE_GUARD_ENTRIES",
    "DivideAndConquerAligner",
    "PartitionedAlignment",
    "RepairStats",
    "anchor_agreement",
    "collect_anchors",
    "repair_plan",
    "ground_truth_target_parts",
    "hit1_mask",
    "inject_misassignment",
    "EXECUTORS",
    "align_block",
    "available_cpus",
    "resolve_executor",
    "run_blocks",
    "assign_target",
    "assignment_scores",
    "bisect_partition",
    "fiedler_vector",
    "kway_partition",
    "rebalance",
    "spectral_bisect",
]
