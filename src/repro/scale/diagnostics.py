"""Seeded fault injection + discrete checks for the repair pass.

The boundary-repair contract ("recover at least half of the cross-part
links lost by the no-repair baseline") is measured with a *controlled*
failure: start from ground-truth-correct target parts and deliberately
move a few nodes into the next part — the exact mistake the target
assignment makes organically, without its confounds.  Both the
regression test (``tests/test_scale_boundary.py``) and the benchmark
(``benchmarks/test_scalability_bench.py``) use these helpers so the
protocol cannot drift between what is pinned and what is reported.
"""

from __future__ import annotations

import numpy as np

from repro.eval.metrics import sparse_topk
from repro.exceptions import GraphError


def ground_truth_target_parts(
    source_parts: list[np.ndarray], ground_truth: np.ndarray
) -> list[np.ndarray]:
    """Target parts that mirror the source parts exactly, via the
    ground-truth correspondence (every source node must be covered)."""
    gt_map = dict(np.asarray(ground_truth, dtype=np.int64).tolist())
    parts = []
    for part in source_parts:
        try:
            parts.append(
                np.array(sorted(gt_map[int(s)] for s in part), dtype=np.int64)
            )
        except KeyError as exc:
            raise GraphError(
                f"source node {exc} has no ground-truth correspondence"
            ) from exc
    return parts


def inject_misassignment(
    target_parts: list[np.ndarray], n_move: int, seed: int = 0
) -> list[np.ndarray]:
    """Move ``n_move`` nodes round-robin into the next part.

    Deterministic given ``seed``; each moved node's ground-truth link
    becomes cross-part, which is precisely what boundary repair exists
    to recover.
    """
    parts = [list(p) for p in target_parts]
    n_parts = len(parts)
    rng = np.random.default_rng(seed)
    for i in range(n_move):
        p = i % n_parts
        if not parts[p]:
            continue
        node = parts[p][int(rng.integers(len(parts[p])))]
        parts[p].remove(node)
        parts[(p + 1) % n_parts].append(node)
    return [np.array(sorted(p), dtype=np.int64) for p in parts]


def hit1_mask(plan, ground_truth: np.ndarray) -> np.ndarray:
    """Boolean per ground-truth pair: is the row's argmax the true
    target?  Sparse-safe (goes through :func:`sparse_topk`)."""
    gt = np.asarray(ground_truth, dtype=np.int64)
    cols, _ = sparse_topk(plan, 1)
    return cols[gt[:, 0], 0] == gt[:, 1]
