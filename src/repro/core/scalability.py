"""Deprecated shim: import :mod:`repro.scale` instead.

The divide-and-conquer aligner started life here as a serial sketch;
it has since grown into a real subsystem (k-way partitioning, parallel
block execution, anchor-based boundary repair, sparse evaluation) and
lives in :mod:`repro.scale`.  This module is a pure re-export kept so
the historical import path ``repro.core.scalability`` — including the
private names the original tests reached for — keeps working; new code
should import from :mod:`repro.scale`.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.core.scalability is deprecated; import from repro.scale instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.scale.aligner import (  # noqa: E402
    DENSE_GUARD_ENTRIES,
    DivideAndConquerAligner,
    PartitionedAlignment,
)
from repro.scale.partition import (  # noqa: E402
    _DENSE_BISECT_CUTOFF,
    assign_target,
    bisect_partition,
    fiedler_vector as _fiedler_vector,
    kway_partition,
    rebalance as _rebalance,
    spectral_bisect as _spectral_bisect,
)

__all__ = [
    "DENSE_GUARD_ENTRIES",
    "DivideAndConquerAligner",
    "PartitionedAlignment",
    "assign_target",
    "bisect_partition",
    "kway_partition",
    "_DENSE_BISECT_CUTOFF",
    "_fiedler_vector",
    "_rebalance",
    "_spectral_bisect",
]
