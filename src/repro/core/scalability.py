"""Divide-and-conquer alignment for large graph pairs (paper Sec. IV-D).

The paper notes SLOTAlign is quadratic in the node counts and points to
LIME's bi-directional graph-partition strategy (METIS-based) and
LargeEA's mini-batching as the route to million-node graphs, leaving it
as future work.  This module implements that route:

1. partition *both* graphs jointly: spectral bi-partitioning is applied
   recursively to the **source** graph; target nodes are assigned to
   the source parts through a cheap anchor alignment (degree + feature
   signatures), mimicking LIME's bi-directional partition matching;
2. run SLOTAlign independently on each subgraph pair;
3. stitch the block plans into one global (sparse, block-diagonal up to
   the partition) correspondence matrix.

The price is the cross-part links lost at partition boundaries — the
same trade-off LIME reports (≈80 % of links preserved at 75 parts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg  # noqa: F401  (enables the sp.linalg namespace)

from repro.core.result import AlignmentResult
from repro.core.slotalign import SLOTAlign
from repro.core.config import SLOTAlignConfig
from repro.exceptions import GraphError
from repro.graphs.graph import AttributedGraph
from repro.graphs.normalization import row_normalize, symmetric_normalize
from repro.utils.timer import Timer


@dataclass
class PartitionedAlignment:
    """Output of :class:`DivideAndConquerAligner`.

    Attributes
    ----------
    plan:
        Sparse global correspondence matrix (CSR), nonzero only within
        matched partition pairs.
    partitions:
        List of ``(source_indices, target_indices)`` per part.
    block_results:
        The per-part :class:`AlignmentResult` objects.
    """

    plan: sp.csr_array
    partitions: list[tuple[np.ndarray, np.ndarray]]
    block_results: list[AlignmentResult]
    runtime: float = 0.0
    extras: dict = field(default_factory=dict)

    def dense_plan(self) -> np.ndarray:
        """Materialise the global plan (small problems only)."""
        return self.plan.toarray()


class DivideAndConquerAligner:
    """Partition-then-align wrapper around SLOTAlign.

    Parameters
    ----------
    config:
        SLOTAlign configuration used per block.
    max_block_size:
        Recursive bisection stops once a source part is at most this
        large.
    min_block_size:
        Parts smaller than this are merged into their sibling to avoid
        degenerate GW problems.
    """

    def __init__(
        self,
        config: SLOTAlignConfig | None = None,
        max_block_size: int = 400,
        min_block_size: int = 8,
    ):
        if max_block_size < 2 * min_block_size:
            raise GraphError("max_block_size must be at least 2x min_block_size")
        self.config = config or SLOTAlignConfig()
        self.max_block_size = max_block_size
        self.min_block_size = min_block_size

    # ------------------------------------------------------------------
    def fit(
        self, source: AttributedGraph, target: AttributedGraph
    ) -> PartitionedAlignment:
        """Partition both graphs, align per part, stitch the plans."""
        with Timer() as timer:
            source_parts = self._partition_source(source)
            target_parts = self._assign_target(source, target, source_parts)
            block_results: list[AlignmentResult] = []
            partitions: list[tuple[np.ndarray, np.ndarray]] = []
            rows: list[np.ndarray] = []
            cols: list[np.ndarray] = []
            vals: list[np.ndarray] = []
            for src_idx, tgt_idx in zip(source_parts, target_parts):
                if src_idx.size == 0 or tgt_idx.size == 0:
                    continue
                sub_s = source.subgraph(src_idx)
                sub_t = target.subgraph(tgt_idx)
                result = SLOTAlign(self.config).fit(sub_s, sub_t)
                block_results.append(result)
                partitions.append((src_idx, tgt_idx))
                block = result.plan
                r, c = np.meshgrid(src_idx, tgt_idx, indexing="ij")
                rows.append(r.ravel())
                cols.append(c.ravel())
                vals.append(block.ravel())
            if not partitions:
                raise GraphError("partitioning produced no alignable blocks")
            plan = sp.csr_array(
                sp.coo_array(
                    (
                        np.concatenate(vals),
                        (np.concatenate(rows), np.concatenate(cols)),
                    ),
                    shape=(source.n_nodes, target.n_nodes),
                )
            )
        return PartitionedAlignment(
            plan=plan,
            partitions=partitions,
            block_results=block_results,
            runtime=timer.elapsed,
            extras={"n_parts": len(partitions)},
        )

    # ------------------------------------------------------------------
    def _partition_source(self, graph: AttributedGraph) -> list[np.ndarray]:
        """Recursive spectral bisection of the source graph."""
        parts: list[np.ndarray] = []
        stack = [np.arange(graph.n_nodes)]
        while stack:
            idx = stack.pop()
            if idx.size <= self.max_block_size:
                parts.append(idx)
                continue
            left, right = _spectral_bisect(graph.subgraph(idx))
            if (
                left.size < self.min_block_size
                or right.size < self.min_block_size
            ):
                parts.append(idx)
                continue
            stack.append(idx[left])
            stack.append(idx[right])
        return parts

    def _assign_target(
        self,
        source: AttributedGraph,
        target: AttributedGraph,
        source_parts: list[np.ndarray],
    ) -> list[np.ndarray]:
        """Assign each target node to the most similar source part.

        Uses cheap intra-graph signatures — degree percentile plus
        (when available) feature centroids — so the assignment is
        feature-space-agnostic when features are incomparable.
        """
        if source.features is not None and target.features is not None and (
            source.features.shape[1] == target.features.shape[1]
        ):
            src_sig = row_normalize(source.features)
            tgt_sig = row_normalize(target.features)
            centroids = np.stack(
                [src_sig[part].mean(axis=0) for part in source_parts]
            )
            scores = tgt_sig @ centroids.T
        else:
            # structure-only fallback: degree percentile matching
            src_deg = source.degrees
            tgt_deg = target.degrees
            centroids = np.array(
                [np.mean(np.log1p(src_deg[part])) for part in source_parts]
            )
            scores = -np.abs(
                np.log1p(tgt_deg)[:, None] - centroids[None, :]
            )
        assignment = np.argmax(scores, axis=1)
        # balance: cap each part's target size at twice its source size
        target_parts = [
            np.flatnonzero(assignment == p) for p in range(len(source_parts))
        ]
        return _rebalance(target_parts, source_parts, scores)


_DENSE_BISECT_CUTOFF = 64
"""Below this block size the dense eigendecomposition wins: ARPACK's
per-iteration overhead dominates and ``eigh`` on a tiny block is exact
and branch-free."""


def _fiedler_vector(graph: AttributedGraph) -> np.ndarray:
    """Second-largest eigenvector of the normalised adjacency.

    Large blocks use ``scipy.sparse.linalg.eigsh(k=2)`` on the sparse
    matrix — O(iters · nnz) instead of the dense O(n³) ``eigh`` — with
    a deterministic start vector so partitions are reproducible.  Tiny
    blocks, and any block where the Lanczos iteration fails to
    converge, fall back to the dense path.
    """
    norm = symmetric_normalize(graph.adjacency)
    n = norm.shape[0]
    if n <= 1:
        return np.zeros(n)
    if n > _DENSE_BISECT_CUTOFF:
        try:
            eigvals, eigvecs = sp.linalg.eigsh(
                norm, k=2, which="LA", v0=np.full(n, 1.0 / np.sqrt(n))
            )
            # eigsh orders ascending for LA; the Fiedler direction is
            # the second-largest eigenvalue's vector
            return eigvecs[:, np.argsort(eigvals)[-2]]
        except (sp.linalg.ArpackNoConvergence, RuntimeError):
            pass  # dense fallback below
    eigvals, eigvecs = np.linalg.eigh(norm.toarray())
    return eigvecs[:, -2]


def _spectral_bisect(graph: AttributedGraph) -> tuple[np.ndarray, np.ndarray]:
    """Bisect by the Fiedler vector of the normalised adjacency."""
    # second-largest eigenvector of Â == Fiedler direction of Laplacian
    fiedler = _fiedler_vector(graph)
    median = np.median(fiedler)
    left = np.flatnonzero(fiedler <= median)
    right = np.flatnonzero(fiedler > median)
    if left.size == 0 or right.size == 0:
        half = graph.n_nodes // 2
        order = np.argsort(fiedler)
        left, right = order[:half], order[half:]
    return left, right


def _rebalance(
    target_parts: list[np.ndarray],
    source_parts: list[np.ndarray],
    scores: np.ndarray,
) -> list[np.ndarray]:
    """Cap over-full target parts, spilling nodes to their next-best part."""
    capacities = [max(2 * part.size, 1) for part in source_parts]
    order = np.argsort(-scores.max(axis=1))  # most confident first
    filled: list[list[int]] = [[] for _ in source_parts]
    preference = np.argsort(-scores, axis=1)
    for node in order:
        for part in preference[node]:
            if len(filled[part]) < capacities[part]:
                filled[part].append(int(node))
                break
        else:
            filled[int(preference[node][0])].append(int(node))
    return [np.array(sorted(members), dtype=np.int64) for members in filled]
