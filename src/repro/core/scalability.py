"""Backward-compatible shim over the :mod:`repro.scale` subsystem.

The divide-and-conquer aligner started life here as a serial sketch;
it has since grown into a real subsystem (k-way partitioning, parallel
block execution, anchor-based boundary repair, sparse evaluation) and
lives in :mod:`repro.scale`.  This module keeps the historical import
path ``repro.core.scalability`` working — including the private names
the original tests reached for.
"""

from __future__ import annotations

from repro.scale.aligner import (
    DENSE_GUARD_ENTRIES,
    DivideAndConquerAligner,
    PartitionedAlignment,
)
from repro.scale.partition import (
    _DENSE_BISECT_CUTOFF,
    assign_target,
    bisect_partition,
    fiedler_vector as _fiedler_vector,
    kway_partition,
    rebalance as _rebalance,
    spectral_bisect as _spectral_bisect,
)

__all__ = [
    "DENSE_GUARD_ENTRIES",
    "DivideAndConquerAligner",
    "PartitionedAlignment",
    "assign_target",
    "bisect_partition",
    "kway_partition",
    "_DENSE_BISECT_CUTOFF",
    "_fiedler_vector",
    "_rebalance",
    "_spectral_bisect",
]
