"""Deprecated shim: import :mod:`repro.scale` instead.

The divide-and-conquer aligner started life here as a serial sketch;
it has since grown into a real subsystem (k-way partitioning, parallel
block execution, anchor-based boundary repair, sparse evaluation) and
lives in :mod:`repro.scale`.  This module is a pure re-export kept so
the historical import path ``repro.core.scalability`` — including the
private names the original tests reached for — keeps working; new code
should import from :mod:`repro.scale`.
"""

from __future__ import annotations

import sys
import warnings


def _import_site_stacklevel() -> int:
    """Stacklevel pointing the warning at whoever imported this module.

    A module-level ``warnings.warn`` fires underneath frames of import
    machinery.  ``warnings`` itself skips the frozen
    ``importlib._bootstrap`` frames when resolving ``stacklevel``, but
    *not* ``importlib/__init__.py`` — so a fixed ``stacklevel=2``
    blames ``importlib.import_module`` when the import goes through it
    (as :func:`importlib.reload` and dynamic importers do).  Walk the
    stack counting frames exactly as ``warnings`` will (ignoring the
    natively-skipped bootstrap frames) until the first frame outside
    ``importlib`` — the import site the deprecation should name.
    """
    level = 1  # stacklevel=1 == this module's body (the warn caller)
    try:
        # frame 0 = this helper, 1 = module body, 2.. = import machinery
        frame = sys._getframe(2)
    except ValueError:  # pragma: no cover - module body is outermost
        return 1
    while frame is not None:
        filename = frame.f_code.co_filename
        natively_skipped = "importlib" in filename and "_bootstrap" in filename
        if not natively_skipped:
            level += 1
            module_name = frame.f_globals.get("__name__", "")
            if not module_name.startswith("importlib"):
                break  # the import site
        frame = frame.f_back
    return level


warnings.warn(
    "repro.core.scalability is deprecated; import from repro.scale instead",
    DeprecationWarning,
    stacklevel=_import_site_stacklevel(),
)

from repro.scale.aligner import (  # noqa: E402
    DENSE_GUARD_ENTRIES,
    DivideAndConquerAligner,
    PartitionedAlignment,
)
from repro.scale.partition import (  # noqa: E402
    _DENSE_BISECT_CUTOFF,
    assign_target,
    bisect_partition,
    fiedler_vector as _fiedler_vector,
    kway_partition,
    rebalance as _rebalance,
    spectral_bisect as _spectral_bisect,
)

__all__ = [
    "DENSE_GUARD_ENTRIES",
    "DivideAndConquerAligner",
    "PartitionedAlignment",
    "assign_target",
    "bisect_partition",
    "kway_partition",
    "_DENSE_BISECT_CUTOFF",
    "_fiedler_vector",
    "_rebalance",
    "_spectral_bisect",
]
