"""The SLOTAlign objective ``F(π, β_s, β_t)`` and its gradients (Eq. 9).

With ``D_s = Σ_q β_s^{(q)} D_s^{(q)}`` and ``D_t = Σ_q β_t^{(q)} D_t^{(q)}``:

    F = (1/n²)‖D_s‖_F² + (1/m²)‖D_t‖_F² − 2 tr(D_s π D_t πᵀ)

Gradients (all matrices symmetric):

    ∂F/∂β_s^{(p)} = (2/n²)⟨D_s, D_s^{(p)}⟩ − 2⟨D_s^{(p)}, π D_t πᵀ⟩
    ∂F/∂β_t^{(p)} = (2/m²)⟨D_t, D_t^{(p)}⟩ − 2⟨D_t^{(p)}, πᵀ D_s π⟩
    ∂F/∂π        = −2 (D_s π D_tᵀ + D_sᵀ π D_t)

The β-gradient uses precomputed Gram matrices
``G_s[p,q] = ⟨D_s^{(p)}, D_s^{(q)}⟩`` so the α-update costs
O(K² + K n²) instead of K² full contractions per iteration.

Fused contraction engine
------------------------
The solver's outer loop evaluates ``value``, ``plan_gradient`` and
``alpha_gradient`` several times per iteration, historically rebuilding
the combined matrices ``D_s``/``D_t`` for every call and running ~9
dense n²-matmuls where ~4 suffice.  This module now

* stacks the K bases into ``(K, n, n)`` tensors once at construction,
* caches ``(D_s, D_t)`` keyed on the current weight iterate — the
  combination itself uses the same sequential accumulation as
  :func:`repro.core.views.combine_bases`, so cached and uncached
  evaluations are bitwise identical,
* memoises the transport products ``D_s π`` / ``π D_t`` per evaluation
  point ``(π, β_s, β_t)`` so value/gradient calls at the same iterate
  share their dominant contractions, and
* when every basis is exactly symmetric (the Eq. 6 views always are)
  and ``fused=True``, collapses ``∂F/∂π`` to ``−4 D_s π D_t`` — two
  matmuls instead of four.  The fused form equals the general formula
  up to one ulp per entry (BLAS transpose kernels accumulate in a
  different order); with ``fused=False`` this class reproduces the
  pre-fusion serial formulas bit for bit, which is pinned by
  ``tests/test_fused_objective.py``.

Returned ``D`` matrices and gradients may be cached — treat them as
read-only.  Input plans are identity-memoised: do not mutate a plan
array in place between evaluations (pass a fresh array instead, as the
solver does), or the memo will serve results for the old contents.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.core.views import combine_bases, stack_bases


class JointObjective:
    """Caches bases, Gram matrices and transport products for fast
    F/∇F evaluation.

    Parameters
    ----------
    source_bases / target_bases:
        The candidate structure bases ``{D^{(q)}}`` per graph.
    fused:
        Enable the symmetric fast path for ``plan_gradient`` (used only
        when every basis is exactly symmetric; see the module
        docstring).  ``False`` forces the general serial formulas.
    """

    def __init__(
        self,
        source_bases: list[np.ndarray],
        target_bases: list[np.ndarray],
        fused: bool = True,
    ):
        if not source_bases or not target_bases:
            raise ShapeError("need at least one basis per graph")
        if len(source_bases) != len(target_bases):
            raise ShapeError(
                f"basis count mismatch: {len(source_bases)} vs {len(target_bases)}"
            )
        source_bases = [np.asarray(b, dtype=np.float64) for b in source_bases]
        target_bases = [np.asarray(b, dtype=np.float64) for b in target_bases]
        self.n = source_bases[0].shape[0]
        self.m = target_bases[0].shape[0]
        for basis in source_bases:
            if basis.shape != (self.n, self.n):
                raise ShapeError("source bases must share shape (n, n)")
        for basis in target_bases:
            if basis.shape != (self.m, self.m):
                raise ShapeError("target bases must share shape (m, m)")
        self.source_stack = stack_bases(source_bases)
        self.target_stack = stack_bases(target_bases)
        self.source_bases = list(self.source_stack)
        self.target_bases = list(self.target_stack)
        self.n_bases = len(self.source_bases)
        self.gram_source = _gram(self.source_bases)
        self.gram_target = _gram(self.target_bases)
        self.symmetric = all(
            np.array_equal(basis, basis.T)
            for basis in (*self.source_bases, *self.target_bases)
        )
        self.fused = bool(fused) and self.symmetric
        # combined-matrix cache keyed on the weight iterates; transport-
        # product memo keyed on the evaluation point.  Both hold strong
        # references, so id()-keys cannot alias freed arrays.
        self._combined_cache: dict[tuple[bytes, bytes], tuple] = {}
        self._product_cache: dict[tuple, dict] = {}

    # ------------------------------------------------------------------
    def combined(self, beta_s: np.ndarray, beta_t: np.ndarray):  #: pinned
        """``(D_s, D_t)`` for the given weights (cached; read-only)."""
        beta_s = np.asarray(beta_s, dtype=np.float64)
        beta_t = np.asarray(beta_t, dtype=np.float64)
        key = (beta_s.tobytes(), beta_t.tobytes())
        cached = self._combined_cache.get(key)
        if cached is None:
            if len(self._combined_cache) >= 8:
                self._combined_cache.clear()
            cached = (
                combine_bases(self.source_bases, beta_s),
                combine_bases(self.target_bases, beta_t),
            )
            self._combined_cache[key] = cached
        return cached

    def _products(
        self, plan: np.ndarray, beta_s: np.ndarray, beta_t: np.ndarray
    ) -> dict:
        """Memo of transport products at one evaluation point.

        Lazily filled with ``sp = D_s π``, ``spt = (D_s π) D_t`` (or the
        general ``(D_s π) D_tᵀ``) and ``pt = π D_t`` — the contractions
        shared across ``value``/``plan_gradient``/``alpha_gradient``.
        Keyed on object identity plus the weight bytes; the memo keeps
        references to the two most recent iterates only.
        """
        key = (id(plan), beta_s.tobytes(), beta_t.tobytes())
        memo = self._product_cache.get(key)
        if memo is None:
            if len(self._product_cache) >= 2:
                self._product_cache.clear()
            memo = {"plan": plan}  # strong ref pins id() for the key
            self._product_cache[key] = memo
        return memo

    def value(
        self, plan: np.ndarray, beta_s: np.ndarray, beta_t: np.ndarray
    ) -> float:  #: pinned
        """Objective value ``F(π, β_s, β_t)``."""
        d_s, d_t = self.combined(beta_s, beta_t)
        term_s = float(beta_s @ self.gram_source @ beta_s) / self.n**2
        term_t = float(beta_t @ self.gram_target @ beta_t) / self.m**2
        memo = self._products(plan, beta_s, beta_t)
        spt = memo.get("spt")
        if spt is None:
            sp = memo.get("sp")
            if sp is None:
                sp = memo["sp"] = d_s @ plan
            spt = memo["spt"] = sp @ d_t if self.fused else sp @ d_t.T
        cross = -2.0 * float(np.sum(spt * plan))
        return term_s + term_t + cross

    def plan_gradient(
        self, plan: np.ndarray, beta_s: np.ndarray, beta_t: np.ndarray
    ) -> np.ndarray:  #: pinned
        """``∂F/∂π`` at the current iterate.

        The fused-contraction core is **bitwise-pinned** (``repro
        lint``): divergent numeric variants register a new solver
        backend instead of editing this path.
        """
        d_s, d_t = self.combined(beta_s, beta_t)
        memo = self._products(plan, beta_s, beta_t)
        if self.fused:
            # symmetric bases: −2(D_s π D_tᵀ + D_sᵀ π D_t) = −4 D_s π D_t
            spt = memo.get("spt")
            if spt is None:
                sp = memo.get("sp")
                if sp is None:
                    sp = memo["sp"] = d_s @ plan
                spt = memo["spt"] = sp @ d_t
            return -4.0 * spt
        spt = memo.get("spt")
        if spt is None:
            sp = memo.get("sp")
            if sp is None:
                sp = memo["sp"] = d_s @ plan
            spt = memo["spt"] = sp @ d_t.T
        return -2.0 * (spt + d_s.T @ plan @ d_t)

    def alpha_gradient(
        self, plan: np.ndarray, beta_s: np.ndarray, beta_t: np.ndarray
    ) -> np.ndarray:  #: pinned
        """Concatenated gradient ``[∂F/∂β_s, ∂F/∂β_t]``."""
        d_s, d_t = self.combined(beta_s, beta_t)
        memo = self._products(plan, beta_s, beta_t)
        # transported structure matrices reused across all K components
        pt = memo.get("pt")
        if pt is None:
            pt = memo["pt"] = plan @ d_t
        transported_t = pt @ plan.T  # (n, n)
        transported_s = plan.T @ d_s @ plan  # (m, m)
        # stacked contraction: sums each contiguous (n, n) slice exactly
        # as np.sum(basis * transported) does, so the batched form is
        # bitwise-equal to the per-basis loop it replaces
        cross_s = (self.source_stack * transported_t).sum(axis=(1, 2))
        cross_t = (self.target_stack * transported_s).sum(axis=(1, 2))
        grad_s = np.empty(self.n_bases)
        grad_t = np.empty(self.n_bases)
        for q in range(self.n_bases):
            grad_s[q] = (
                2.0 / self.n**2 * float(self.gram_source[q] @ beta_s)
                - 2.0 * float(cross_s[q])
            )
            grad_t[q] = (
                2.0 / self.m**2 * float(self.gram_target[q] @ beta_t)
                - 2.0 * float(cross_t[q])
            )
        return np.concatenate([grad_s, grad_t])

    def lipschitz_estimates(self) -> tuple[float, float]:
        """Crude upper bounds ``(L_α, L_π)`` on the gradient Lipschitz
        moduli used by Theorem 5's step-size condition.

        ``∇_α F`` is linear in α with Hessian blocks
        ``(2/n²)G_s`` and ``(2/m²)G_t``; ``∇_π F`` is linear in π with
        operator norm bounded by ``4‖D_s‖₂‖D_t‖₂ <= 4‖D_s‖_F‖D_t‖_F``.
        """
        l_alpha = 2.0 * max(
            np.linalg.norm(self.gram_source, 2) / self.n**2,
            np.linalg.norm(self.gram_target, 2) / self.m**2,
        )
        max_norm_s = max(np.linalg.norm(b) for b in self.source_bases)
        max_norm_t = max(np.linalg.norm(b) for b in self.target_bases)
        l_pi = 4.0 * max_norm_s * max_norm_t
        return float(l_alpha), float(l_pi)


def _gram(bases: list[np.ndarray]) -> np.ndarray:
    k = len(bases)
    gram = np.empty((k, k))
    for p in range(k):
        for q in range(p, k):
            gram[p, q] = gram[q, p] = float(np.sum(bases[p] * bases[q]))
    return gram
