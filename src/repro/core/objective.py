"""The SLOTAlign objective ``F(π, β_s, β_t)`` and its gradients (Eq. 9).

With ``D_s = Σ_q β_s^{(q)} D_s^{(q)}`` and ``D_t = Σ_q β_t^{(q)} D_t^{(q)}``:

    F = (1/n²)‖D_s‖_F² + (1/m²)‖D_t‖_F² − 2 tr(D_s π D_t πᵀ)

Gradients (all matrices symmetric):

    ∂F/∂β_s^{(p)} = (2/n²)⟨D_s, D_s^{(p)}⟩ − 2⟨D_s^{(p)}, π D_t πᵀ⟩
    ∂F/∂β_t^{(p)} = (2/m²)⟨D_t, D_t^{(p)}⟩ − 2⟨D_t^{(p)}, πᵀ D_s π⟩
    ∂F/∂π        = −2 (D_s π D_tᵀ + D_sᵀ π D_t)

The β-gradient uses precomputed Gram matrices
``G_s[p,q] = ⟨D_s^{(p)}, D_s^{(q)}⟩`` so the α-update costs
O(K² + K n²) instead of K² full contractions per iteration.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.core.views import combine_bases


class JointObjective:
    """Caches bases and Gram matrices for fast F/∇F evaluation."""

    def __init__(
        self, source_bases: list[np.ndarray], target_bases: list[np.ndarray]
    ):
        if not source_bases or not target_bases:
            raise ShapeError("need at least one basis per graph")
        if len(source_bases) != len(target_bases):
            raise ShapeError(
                f"basis count mismatch: {len(source_bases)} vs {len(target_bases)}"
            )
        self.source_bases = [np.asarray(b, dtype=np.float64) for b in source_bases]
        self.target_bases = [np.asarray(b, dtype=np.float64) for b in target_bases]
        self.n = self.source_bases[0].shape[0]
        self.m = self.target_bases[0].shape[0]
        for basis in self.source_bases:
            if basis.shape != (self.n, self.n):
                raise ShapeError("source bases must share shape (n, n)")
        for basis in self.target_bases:
            if basis.shape != (self.m, self.m):
                raise ShapeError("target bases must share shape (m, m)")
        self.n_bases = len(self.source_bases)
        self.gram_source = _gram(self.source_bases)
        self.gram_target = _gram(self.target_bases)

    # ------------------------------------------------------------------
    def combined(self, beta_s: np.ndarray, beta_t: np.ndarray):
        """``(D_s, D_t)`` for the given weights."""
        return (
            combine_bases(self.source_bases, beta_s),
            combine_bases(self.target_bases, beta_t),
        )

    def value(
        self, plan: np.ndarray, beta_s: np.ndarray, beta_t: np.ndarray
    ) -> float:
        """Objective value ``F(π, β_s, β_t)``."""
        d_s, d_t = self.combined(beta_s, beta_t)
        term_s = float(beta_s @ self.gram_source @ beta_s) / self.n**2
        term_t = float(beta_t @ self.gram_target @ beta_t) / self.m**2
        cross = -2.0 * float(np.sum((d_s @ plan @ d_t.T) * plan))
        return term_s + term_t + cross

    def plan_gradient(
        self, plan: np.ndarray, beta_s: np.ndarray, beta_t: np.ndarray
    ) -> np.ndarray:
        """``∂F/∂π`` at the current iterate."""
        d_s, d_t = self.combined(beta_s, beta_t)
        return -2.0 * (d_s @ plan @ d_t.T + d_s.T @ plan @ d_t)

    def alpha_gradient(
        self, plan: np.ndarray, beta_s: np.ndarray, beta_t: np.ndarray
    ) -> np.ndarray:
        """Concatenated gradient ``[∂F/∂β_s, ∂F/∂β_t]``."""
        d_s, d_t = self.combined(beta_s, beta_t)
        # transported structure matrices reused across all K components
        transported_t = plan @ d_t @ plan.T  # (n, n)
        transported_s = plan.T @ d_s @ plan  # (m, m)
        grad_s = np.empty(self.n_bases)
        grad_t = np.empty(self.n_bases)
        for q in range(self.n_bases):
            grad_s[q] = (
                2.0 / self.n**2 * float(self.gram_source[q] @ beta_s)
                - 2.0 * float(np.sum(self.source_bases[q] * transported_t))
            )
            grad_t[q] = (
                2.0 / self.m**2 * float(self.gram_target[q] @ beta_t)
                - 2.0 * float(np.sum(self.target_bases[q] * transported_s))
            )
        return np.concatenate([grad_s, grad_t])

    def lipschitz_estimates(self) -> tuple[float, float]:
        """Crude upper bounds ``(L_α, L_π)`` on the gradient Lipschitz
        moduli used by Theorem 5's step-size condition.

        ``∇_α F`` is linear in α with Hessian blocks
        ``(2/n²)G_s`` and ``(2/m²)G_t``; ``∇_π F`` is linear in π with
        operator norm bounded by ``4‖D_s‖₂‖D_t‖₂ <= 4‖D_s‖_F‖D_t‖_F``.
        """
        l_alpha = 2.0 * max(
            np.linalg.norm(self.gram_source, 2) / self.n**2,
            np.linalg.norm(self.gram_target, 2) / self.m**2,
        )
        max_norm_s = max(np.linalg.norm(b) for b in self.source_bases)
        max_norm_t = max(np.linalg.norm(b) for b in self.target_bases)
        l_pi = 4.0 * max_norm_s * max_norm_t
        return float(l_alpha), float(l_pi)


def _gram(bases: list[np.ndarray]) -> np.ndarray:
    k = len(bases)
    gram = np.empty((k, k))
    for p in range(k):
        for q in range(p, k):
            gram[p, q] = gram[q, p] = float(np.sum(bases[p] * bases[q]))
    return gram
