"""Iterate tracking for Algorithm 1 (used to verify Theorem 5)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class IterateHistory:
    """Record of an alternating-optimisation run.

    Attributes
    ----------
    objective_values:
        ``F(π_k, α_k)`` after each outer iteration (when tracking is
        enabled).
    alpha_deltas / plan_deltas:
        ``‖α_{k+1} − α_k‖`` and ``‖π_{k+1} − π_k‖_F`` per iteration —
        Theorem 5 predicts both sequences are square-summable.
    """

    objective_values: list[float] = field(default_factory=list)
    alpha_deltas: list[float] = field(default_factory=list)
    plan_deltas: list[float] = field(default_factory=list)
    n_iterations: int = 0
    converged: bool = False

    def record(
        self,
        objective: float | None,
        alpha_delta: float,
        plan_delta: float,
    ) -> None:
        """Append one iteration's statistics."""
        if objective is not None:
            self.objective_values.append(float(objective))
        self.alpha_deltas.append(float(alpha_delta))
        self.plan_deltas.append(float(plan_delta))
        self.n_iterations += 1

    def is_monotone_decreasing(self, slack: float = 1e-8) -> bool:
        """Whether the recorded objective never increases beyond ``slack``.

        Theorem 5's sufficient-decrease property implies this holds for
        valid step sizes.
        """
        values = np.asarray(self.objective_values)
        if values.size < 2:
            return True
        return bool(np.all(np.diff(values) <= slack))

    def total_squared_movement(self) -> float:
        """``Σ_k ‖π_{k+1}−π_k‖² + ‖α_{k+1}−α_k‖²`` (finite per Thm. 5)."""
        alpha = np.asarray(self.alpha_deltas)
        plan = np.asarray(self.plan_deltas)
        return float(np.sum(alpha**2) + np.sum(plan**2))
