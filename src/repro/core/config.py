"""Configuration for SLOTAlign (paper Algorithm 1 inputs)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigError


@dataclass
class SLOTAlignConfig:
    """Hyperparameters of Algorithm 1.

    Attributes
    ----------
    n_bases:
        ``K`` — number of candidate structure bases.  ``K=2`` is
        edge-view + node-view; each increment adds one subgraph-view
        hop.  Paper defaults: 2 on semi-synthetic data, 4 on the
        real-world datasets.
    structure_lr:
        ``τ`` — step size of the projected-gradient α-update (Eq. 11).
    sinkhorn_lr:
        ``η`` — step size of the KL-proximal π-update (Eq. 12).
    max_outer_iter:
        ``kmax`` — cap on alternating iterations.
    sinkhorn_iter:
        Inner Sinkhorn iterations per π-update.
    alpha_tol / plan_tol:
        ``ε₁``/``ε₂`` stopping tolerances on successive iterates.
    sinkhorn_tol:
        Marginal-violation tolerance of the inner Sinkhorn projection
        (previously hardcoded to ``1e-9`` in the solver).
    normalize_bases:
        Max-abs normalise every structure basis so the views live on
        comparable scales (matches the released implementation).
    use_feature_similarity_init:
        Initialise π from cross-graph feature similarity rather than
        the uniform coupling — the paper enables this on DBP15K
        (Sec. V-C) to ease large-scale optimisation.
    alpha_steps:
        Gradient steps on α per outer iteration (1 in Algorithm 1).
    track_history:
        Record the objective after every outer iteration (needed by the
        convergence tests, costs one tensor contraction per iteration).
    multi_start:
        Run the alternating scheme from several initial weight vectors
        (the uniform mixture plus the edge-/node-view vertices of the
        simplex) and keep the iterate with the lowest objective value.
        Problem (8) is nonconvex; restart-and-select is the standard
        remedy and every restart ingredient is intra-graph, so the
        feature-permutation invariance of Proposition 4 is preserved.
        Ignored when an informative initial plan is supplied.
    single_start_view:
        Weight initialisation when ``multi_start`` is disabled (it has
        no effect while the portfolio is enabled): ``"uniform"`` (the
        default mixture) or a view name (``"edge"``/``"node"``) to
        start from that vertex of the simplex.  Committing to the
        empirically dominant vertex is the reduced-fidelity benchmark
        profile's way of skipping the portfolio without giving up its
        usual winner.
    anneal:
        Warm-start the KL-proximal coefficient: η is decayed
        geometrically from ``eta_start`` to ``sinkhorn_lr`` over the
        first ``anneal_fraction`` of iterations.  Large early η keeps
        the plan smooth while the structure weights settle; the final
        phase runs at the constant paper value, to which Theorem 5's
        analysis applies.
    eta_start / anneal_fraction:
        Annealing schedule parameters (see ``anneal``).
    fused_contractions:
        Use the fused symmetric contraction engine: ``∂F/∂π`` drops to
        two matmuls instead of four and the objective's cross term
        shares the same ``(D_s π) D_t`` product — both equal to the
        general formulas up to accumulated ulps.  Disable to force the
        bitwise-exact serial formulas.
    portfolio_prune_iter:
        Offset of the successive-halving checkpoint(s) of the
        multi-start portfolio.  With annealing enabled the (single)
        checkpoint fires this many iterations *after* the annealing
        horizon — mid-annealing objective values cannot rank restarts
        (see ``repro.engine.restarts.prune_schedule``); without annealing an
        early generous-margin checkpoint fires here and a tighter one
        at three times it.  ``0`` disables pruning (every restart runs
        its full budget, the pre-portfolio behaviour).  Survivors
        continue their exact iterate path, so whenever the eventual
        winner survives pruning the selected plan is bit-for-bit the
        one the unpruned portfolio returns.
    portfolio_prune_margin:
        Objective margin of the early non-annealed checkpoint: a
        restart is pruned only when its objective exceeds the current
        leader's by more than this.
    portfolio_refine_margin:
        Tighter margin applied once the ranking has stabilised (the
        post-anneal checkpoint, and the later non-annealed one).
    tie_weights:
        Share one weight vector across both graphs (``β_s = β_t``,
        updated with the averaged gradient).  Independently learned
        weights can collapse onto *different* views per graph, after
        which the cross term compares incomparable mixtures — the
        asymmetric-collapse failure mode behind the seed-era Table
        II/III losses.  Tying keeps ``D_s(β)`` and ``D_t(β)`` the same
        mixture of the same view family, as the paper's learned-weight
        plots assume.
    center_kernels:
        Double-center the feature-kernel views (node/subgraph):
        ``D ← H D H`` with ``H = I − 11ᵀ/n``.  Uncentred similarity
        kernels carry a large constant component whose GW cross term
        is maximal under *any* coupling, so the β-update rewards the
        smoothest view regardless of alignment information (the
        degenerate β-update).  Centring removes exactly that
        plan-independent component; it is permutation-equivariant, so
        Proposition 4 is unaffected.
    renormalize_hops:
        Row-L2-normalise the propagated features of every subgraph
        view before taking the Gram, giving each hop cosine semantics.
        Without this, high-degree hubs dominate the propagated norms
        and the hop kernels collapse toward rank one — another face of
        the degenerate β-update.
    hop_mix:
        Lazy-walk mixing coefficient λ of the subgraph views (only
        used with ``renormalize_hops``): each hop propagates
        ``Z ← (1−λ) Z + λ Â Z``.  ``1.0`` is the paper's plain ``Â``
        propagation; smaller values retain the node's own attributes,
        so one view can blend "my attributes" with "my neighbourhood's
        attributes".
    partial_mass:
        Fraction of the marginal mass the **partial** solve mode
        transports (the "fraction assumed aligned").  ``1.0`` keeps
        classical balanced transport; lower values let unmatchable
        nodes shed their mass instead of being forced onto bad
        partners.  Consumed only by the ``partial-dummy`` /
        ``partial-unbalanced`` solver backends — the classical dense
        backends *refuse* a config with ``partial_mass < 1`` rather
        than silently ignoring it.
    partial_rho:
        Marginal-relaxation strength of the ``partial-unbalanced``
        backend's KL-relaxed π-update; ``ρ → ∞`` recovers balanced
        transport, small ρ makes shedding mass cheap.
    partial_anchor_weight:
        Log-domain reward added to each anchor cell of the π-update
        kernel every outer iteration (and subtracted from the anchor
        rows' dummy cells), expressing semi-supervised seed
        correspondences as a sustained prior.  ``exp(weight)`` is the
        multiplicative pull towards an anchor cell per update.
    """

    n_bases: int = 4
    structure_lr: float = 1.0
    sinkhorn_lr: float = 0.01
    max_outer_iter: int = 100
    sinkhorn_iter: int = 100
    alpha_tol: float = 1e-6
    plan_tol: float = 1e-7
    sinkhorn_tol: float = 1e-9
    normalize_bases: bool = True
    use_feature_similarity_init: bool = False
    alpha_steps: int = 1
    track_history: bool = True
    include_views: tuple[str, ...] = field(
        default=("edge", "node", "subgraph")
    )
    learn_weights: bool = True
    multi_start: bool = True
    single_start_view: str = "uniform"
    anneal: bool = True
    eta_start: float = 0.5
    anneal_fraction: float = 0.6
    fused_contractions: bool = True
    portfolio_prune_iter: int = 20
    portfolio_prune_margin: float = 0.25
    portfolio_refine_margin: float = 0.05
    tie_weights: bool = False
    center_kernels: bool = False
    renormalize_hops: bool = False
    hop_mix: float = 1.0
    partial_mass: float = 1.0
    partial_rho: float = 1.0
    partial_anchor_weight: float = 10.0

    def __post_init__(self) -> None:
        if self.n_bases < 1:
            raise ConfigError(f"n_bases must be >= 1, got {self.n_bases}")
        if self.structure_lr <= 0:
            raise ConfigError(f"structure_lr must be positive, got {self.structure_lr}")
        if self.sinkhorn_lr <= 0:
            raise ConfigError(f"sinkhorn_lr must be positive, got {self.sinkhorn_lr}")
        if self.max_outer_iter < 1:
            raise ConfigError(
                f"max_outer_iter must be >= 1, got {self.max_outer_iter}"
            )
        if self.sinkhorn_iter < 1:
            raise ConfigError(f"sinkhorn_iter must be >= 1, got {self.sinkhorn_iter}")
        if self.alpha_tol < 0 or self.plan_tol < 0:
            raise ConfigError("tolerances must be non-negative")
        if self.alpha_steps < 1:
            raise ConfigError(f"alpha_steps must be >= 1, got {self.alpha_steps}")
        unknown = set(self.include_views) - {"edge", "node", "subgraph"}
        if unknown:
            raise ConfigError(f"unknown views: {sorted(unknown)}")
        if not self.include_views:
            raise ConfigError("at least one view must be included")
        if self.eta_start < self.sinkhorn_lr:
            raise ConfigError(
                "eta_start must be >= sinkhorn_lr (annealing decays towards it)"
            )
        if not 0.0 < self.anneal_fraction <= 1.0:
            raise ConfigError(
                f"anneal_fraction must be in (0, 1], got {self.anneal_fraction}"
            )
        if self.sinkhorn_tol < 0:
            raise ConfigError(
                f"sinkhorn_tol must be non-negative, got {self.sinkhorn_tol}"
            )
        if not 0.0 < self.hop_mix <= 1.0:
            raise ConfigError(f"hop_mix must be in (0, 1], got {self.hop_mix}")
        if self.portfolio_prune_iter < 0:
            raise ConfigError(
                f"portfolio_prune_iter must be >= 0, got {self.portfolio_prune_iter}"
            )
        if self.portfolio_prune_margin < 0 or self.portfolio_refine_margin < 0:
            raise ConfigError("portfolio prune margins must be non-negative")
        if not 0.0 < self.partial_mass <= 1.0:
            raise ConfigError(
                f"partial_mass must be in (0, 1], got {self.partial_mass}"
            )
        if self.partial_rho <= 0:
            raise ConfigError(
                f"partial_rho must be positive, got {self.partial_rho}"
            )
        if self.partial_anchor_weight < 0:
            raise ConfigError(
                "partial_anchor_weight must be non-negative, "
                f"got {self.partial_anchor_weight}"
            )
        if self.single_start_view not in {"uniform", "edge", "node"}:
            raise ConfigError(
                f"single_start_view must be 'uniform', 'edge' or 'node', "
                f"got {self.single_start_view!r}"
            )
        if self.single_start_view != "uniform":
            if self.single_start_view not in self.include_views:
                raise ConfigError(
                    f"single_start_view {self.single_start_view!r} requires "
                    f"that view to be included, got {self.include_views}"
                )
            # views are materialised in order edge, node, subgraph...,
            # truncated to n_bases — the requested vertex must survive
            needed = 1 if self.single_start_view == "edge" else (
                1 + ("edge" in self.include_views)
            )
            if self.n_bases < needed:
                raise ConfigError(
                    f"single_start_view {self.single_start_view!r} needs "
                    f"n_bases >= {needed} with views {self.include_views}, "
                    f"got {self.n_bases}"
                )


SEMI_SYNTHETIC_CONFIG = SLOTAlignConfig(
    n_bases=2,
    structure_lr=0.1,
    sinkhorn_lr=0.01,
    tie_weights=True,
    center_kernels=True,
)
"""Paper defaults for the semi-synthetic robustness experiments."""

REAL_WORLD_CONFIG = SLOTAlignConfig(
    n_bases=4,
    structure_lr=1.0,
    sinkhorn_lr=0.01,
    tie_weights=True,
    center_kernels=True,
    renormalize_hops=True,
    hop_mix=0.5,
    use_feature_similarity_init=True,
    anneal=False,
)
"""Paper defaults for Douban / ACM-DBLP (plus the degenerate-view fixes
and the Sec. V-C similarity initialisation, which the stand-in protocol
extends to the real-world pairs; annealing exists to break uniform-init
symmetry, so it is off whenever the informative init is on)."""

DBP15K_CONFIG = SLOTAlignConfig(
    n_bases=4,
    structure_lr=1.0,
    sinkhorn_lr=0.01,
    tie_weights=True,
    center_kernels=True,
    renormalize_hops=True,
    hop_mix=0.5,
    use_feature_similarity_init=True,
    anneal=False,
)
"""Paper defaults for the KG alignment benchmark."""
