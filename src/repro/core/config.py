"""Configuration for SLOTAlign (paper Algorithm 1 inputs)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigError


@dataclass
class SLOTAlignConfig:
    """Hyperparameters of Algorithm 1.

    Attributes
    ----------
    n_bases:
        ``K`` — number of candidate structure bases.  ``K=2`` is
        edge-view + node-view; each increment adds one subgraph-view
        hop.  Paper defaults: 2 on semi-synthetic data, 4 on the
        real-world datasets.
    structure_lr:
        ``τ`` — step size of the projected-gradient α-update (Eq. 11).
    sinkhorn_lr:
        ``η`` — step size of the KL-proximal π-update (Eq. 12).
    max_outer_iter:
        ``kmax`` — cap on alternating iterations.
    sinkhorn_iter:
        Inner Sinkhorn iterations per π-update.
    alpha_tol / plan_tol:
        ``ε₁``/``ε₂`` stopping tolerances on successive iterates.
    normalize_bases:
        Max-abs normalise every structure basis so the views live on
        comparable scales (matches the released implementation).
    use_feature_similarity_init:
        Initialise π from cross-graph feature similarity rather than
        the uniform coupling — the paper enables this on DBP15K
        (Sec. V-C) to ease large-scale optimisation.
    alpha_steps:
        Gradient steps on α per outer iteration (1 in Algorithm 1).
    track_history:
        Record the objective after every outer iteration (needed by the
        convergence tests, costs one tensor contraction per iteration).
    multi_start:
        Run the alternating scheme from several initial weight vectors
        (the uniform mixture plus the edge-/node-view vertices of the
        simplex) and keep the iterate with the lowest objective value.
        Problem (8) is nonconvex; restart-and-select is the standard
        remedy and every restart ingredient is intra-graph, so the
        feature-permutation invariance of Proposition 4 is preserved.
        Ignored when an informative initial plan is supplied.
    anneal:
        Warm-start the KL-proximal coefficient: η is decayed
        geometrically from ``eta_start`` to ``sinkhorn_lr`` over the
        first ``anneal_fraction`` of iterations.  Large early η keeps
        the plan smooth while the structure weights settle; the final
        phase runs at the constant paper value, to which Theorem 5's
        analysis applies.
    eta_start / anneal_fraction:
        Annealing schedule parameters (see ``anneal``).
    """

    n_bases: int = 4
    structure_lr: float = 1.0
    sinkhorn_lr: float = 0.01
    max_outer_iter: int = 100
    sinkhorn_iter: int = 100
    alpha_tol: float = 1e-6
    plan_tol: float = 1e-7
    normalize_bases: bool = True
    use_feature_similarity_init: bool = False
    alpha_steps: int = 1
    track_history: bool = True
    include_views: tuple[str, ...] = field(
        default=("edge", "node", "subgraph")
    )
    learn_weights: bool = True
    multi_start: bool = True
    anneal: bool = True
    eta_start: float = 0.5
    anneal_fraction: float = 0.6

    def __post_init__(self) -> None:
        if self.n_bases < 1:
            raise ConfigError(f"n_bases must be >= 1, got {self.n_bases}")
        if self.structure_lr <= 0:
            raise ConfigError(f"structure_lr must be positive, got {self.structure_lr}")
        if self.sinkhorn_lr <= 0:
            raise ConfigError(f"sinkhorn_lr must be positive, got {self.sinkhorn_lr}")
        if self.max_outer_iter < 1:
            raise ConfigError(
                f"max_outer_iter must be >= 1, got {self.max_outer_iter}"
            )
        if self.sinkhorn_iter < 1:
            raise ConfigError(f"sinkhorn_iter must be >= 1, got {self.sinkhorn_iter}")
        if self.alpha_tol < 0 or self.plan_tol < 0:
            raise ConfigError("tolerances must be non-negative")
        if self.alpha_steps < 1:
            raise ConfigError(f"alpha_steps must be >= 1, got {self.alpha_steps}")
        unknown = set(self.include_views) - {"edge", "node", "subgraph"}
        if unknown:
            raise ConfigError(f"unknown views: {sorted(unknown)}")
        if not self.include_views:
            raise ConfigError("at least one view must be included")
        if self.eta_start < self.sinkhorn_lr:
            raise ConfigError(
                "eta_start must be >= sinkhorn_lr (annealing decays towards it)"
            )
        if not 0.0 < self.anneal_fraction <= 1.0:
            raise ConfigError(
                f"anneal_fraction must be in (0, 1], got {self.anneal_fraction}"
            )


SEMI_SYNTHETIC_CONFIG = SLOTAlignConfig(n_bases=2, structure_lr=0.1, sinkhorn_lr=0.01)
"""Paper defaults for the semi-synthetic robustness experiments."""

REAL_WORLD_CONFIG = SLOTAlignConfig(n_bases=4, structure_lr=1.0, sinkhorn_lr=0.01)
"""Paper defaults for Douban / ACM-DBLP."""

DBP15K_CONFIG = SLOTAlignConfig(
    n_bases=4,
    structure_lr=1.0,
    sinkhorn_lr=0.01,
    use_feature_similarity_init=True,
)
"""Paper defaults for the KG alignment benchmark."""
