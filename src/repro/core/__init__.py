"""SLOTAlign core: the paper's primary contribution."""

from repro.core.config import (
    SLOTAlignConfig,
    SEMI_SYNTHETIC_CONFIG,
    REAL_WORLD_CONFIG,
    DBP15K_CONFIG,
)
from repro.core.views import (
    build_relation_bases,
    build_structure_bases,
    center_kernel,
    combine_bases,
    normalize_basis,
)
from repro.core.objective import JointObjective
from repro.core.convergence import IterateHistory
from repro.core.result import AlignmentResult
from repro.core.slotalign import SLOTAlign, slotalign, feature_similarity_plan
from repro.scale.aligner import DivideAndConquerAligner, PartitionedAlignment

__all__ = [
    "SLOTAlignConfig",
    "SEMI_SYNTHETIC_CONFIG",
    "REAL_WORLD_CONFIG",
    "DBP15K_CONFIG",
    "build_relation_bases",
    "build_structure_bases",
    "center_kernel",
    "combine_bases",
    "normalize_basis",
    "JointObjective",
    "IterateHistory",
    "AlignmentResult",
    "SLOTAlign",
    "slotalign",
    "feature_similarity_plan",
    "DivideAndConquerAligner",
    "PartitionedAlignment",
]
