"""Common result type returned by every aligner in the library."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ot.matching import (
    argmax_matching,
    greedy_matching,
    hungarian_matching,
    top_k_candidates,
)


@dataclass
class AlignmentResult:
    """Outcome of an alignment run.

    Attributes
    ----------
    plan:
        ``n × m`` soft correspondence matrix (a transport plan for the
        OT methods, a similarity matrix for embedding methods —
        evaluation only uses relative row order).
    runtime:
        Wall-clock seconds spent in ``fit``.
    method:
        Name of the producing aligner.
    extras:
        Method-specific diagnostics (e.g. learned β weights, histories).
    """

    plan: np.ndarray
    runtime: float = 0.0
    method: str = ""
    extras: dict = field(default_factory=dict)

    def matching(self, strategy: str = "argmax") -> np.ndarray:
        """Discrete matching per Eq. (2).

        ``strategy`` is one of ``argmax``, ``greedy``, ``hungarian``.
        """
        if strategy == "argmax":
            return argmax_matching(self.plan)
        if strategy == "greedy":
            return greedy_matching(self.plan)
        if strategy == "hungarian":
            return hungarian_matching(self.plan)
        raise ValueError(f"unknown matching strategy {strategy!r}")

    def top_k(self, k: int) -> np.ndarray:
        """Top-k target candidates per source node."""
        return top_k_candidates(self.plan, k)

    def decode(self, decoder: str | None = None):
        """Decode the plan through the engine's decoder registry.

        Unlike :meth:`matching` (the legacy Eq. (2) strategies, kept
        for compatibility) this returns a full
        :class:`~repro.engine.decode.DecodedMatching` — matching plus
        per-match confidence, shed scores and decode timing — and
        accepts any registered decoder name (default ``row-argmax``).
        """
        # lazy import: repro.engine depends on this result type
        from repro.engine.decode import DEFAULT_DECODER, decode_plan

        return decode_plan(self, decoder if decoder is not None else DEFAULT_DECODER)
