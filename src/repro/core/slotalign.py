"""SLOTAlign: joint structure learning and optimal transport alignment.

This module is the paper-facing entry point for Algorithm 1.  Given
two attributed graphs it

1. constructs multi-view structure bases per graph (Eq. 6),
2. alternates a projected-gradient update on the basis weights
   ``α = [β_s, β_t]`` (Eq. 11) with a KL-proximal Sinkhorn update on the
   transport plan ``π`` (Eq. 12),
3. stops when both iterates move less than the tolerances, and
4. exposes the plan through :class:`repro.core.result.AlignmentResult`.

Since the engine refactor the mechanics live in :mod:`repro.engine`:
:class:`SLOTAlign` is a thin shim that routes ``fit`` through the
plan → solve → evaluate pipeline.  The practical solver devices —
η annealing, the multi-start restart portfolio with successive-halving
pruning, tied structure weights — are documented on
:class:`repro.core.config.SLOTAlignConfig` and implemented in
:mod:`repro.engine.restarts`; the solver *backends* (the reference
serial ``fused-dense`` loop and the bitwise-identical stacked
``batched-restart`` portfolio) are registered in
:mod:`repro.engine.backends` and selectable per aligner.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SLOTAlignConfig
from repro.core.convergence import IterateHistory
from repro.core.result import AlignmentResult
from repro.engine.planning import (  # noqa: F401  # repro-lint: ignore[unused-name]
    feature_similarity_plan,  # re-exported via repro.core
)
from repro.graphs.graph import AttributedGraph


class SLOTAlign:
    """Unsupervised attributed-graph aligner (the paper's contribution).

    Parameters
    ----------
    config:
        Hyperparameters of Algorithm 1.
    backend:
        Solver backend name from the engine registry (default
        ``"fused-dense"``; ``"batched-restart"`` runs the identical
        portfolio as one stacked-tensor solve).
    precision:
        Solve-stage working precision, ``"float64"`` (default) or
        ``"float32"`` — the float32 fast path routes to the
        reduced-precision backends (see :mod:`repro.engine.precision`).

    Example
    -------
    >>> from repro.graphs import erdos_renyi_graph, permute_graph
    >>> import numpy as np
    >>> g = erdos_renyi_graph(30, 0.2, seed=0).with_features(np.eye(30))
    >>> h, perm = permute_graph(g, seed=1)
    >>> result = SLOTAlign().fit(g, h)
    >>> result.plan.shape
    (30, 30)
    """

    def __init__(
        self,
        config: SLOTAlignConfig | None = None,
        backend: str | None = None,
        precision: str | None = None,
    ):
        self.config = config or SLOTAlignConfig()
        self.backend = backend or "fused-dense"
        self.precision = precision
        self.history: IterateHistory | None = None
        self.beta_source: np.ndarray | None = None
        self.beta_target: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _engine(self):
        # imported lazily so repro.core and repro.engine can be
        # imported in either order without a partial-init cycle
        from repro.engine.backends import ensure_dense_backend
        from repro.engine.pipeline import AlignmentEngine

        # SLOTAlign's contract is a dense AlignmentResult; the sparse
        # pipeline has its own front door (DivideAndConquerAligner /
        # the engine's "sparse" backend)
        ensure_dense_backend(self.backend, "SLOTAlign")
        kwargs = {}
        if self.precision is not None:
            kwargs["precision"] = self.precision
        return AlignmentEngine(self.config, backend=self.backend, **kwargs)

    def prepare_bases(
        self, source: AttributedGraph, target: AttributedGraph
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Build the structure bases for a graph pair, for reuse.

        Block-level reuse hook: callers that solve the same (sub)graph
        pair repeatedly — trajectory capture, sensitivity sweeps, the
        partitioned pipeline's diagnostics — can pay the basis
        construction once and pass the result to :meth:`fit` via
        ``bases=``.  Routed through the engine's content-keyed plan
        cache, so even independent callers hitting the same pair share
        the construction.
        """
        return self._engine().plan(source, target).bases

    def fit(
        self,
        source: AttributedGraph,
        target: AttributedGraph,
        init_plan: np.ndarray | None = None,
        bases: tuple[list[np.ndarray], list[np.ndarray]] | None = None,
    ) -> AlignmentResult:
        """Align ``source`` to ``target`` and return the soft plan.

        ``bases`` injects the output of :meth:`prepare_bases` so
        repeated solves of the same pair skip the basis construction.
        """
        result = self._engine().align(
            source, target, init_plan=init_plan, bases=bases
        )
        self.history = result.extras["history"]
        self.beta_source = result.extras["beta_source"]
        self.beta_target = result.extras["beta_target"]
        return result


def slotalign(
    source: AttributedGraph,
    target: AttributedGraph,
    config: SLOTAlignConfig | None = None,
    init_plan: np.ndarray | None = None,
) -> AlignmentResult:
    """Functional one-shot interface: ``slotalign(gs, gt)``."""
    return SLOTAlign(config).fit(source, target, init_plan=init_plan)
