"""SLOTAlign: joint structure learning and optimal transport alignment.

This module implements Algorithm 1 of the paper.  Given two attributed
graphs it

1. constructs multi-view structure bases per graph (Eq. 6),
2. alternates a projected-gradient update on the basis weights
   ``α = [β_s, β_t]`` (Eq. 11) with a KL-proximal Sinkhorn update on the
   transport plan ``π`` (Eq. 12),
3. stops when both iterates move less than the tolerances, and
4. exposes the plan through :class:`repro.core.result.AlignmentResult`.

Two practical devices harden the nonconvex optimisation (both
documented in DESIGN.md and ablatable through the config):

* **η annealing** — the KL-proximal coefficient starts large (smooth,
  exploratory updates) and decays to the paper's η, which breaks the
  symmetry of the uniform initial coupling on graphs whose informative
  view is sparse;
* **multi-start** — the scheme is run from the uniform weight vector
  and from the edge-/node-view vertices of the simplex, keeping the
  iterate with the lowest objective value.  All restart ingredients are
  intra-graph, so Proposition 4's feature-permutation invariance holds
  for the full procedure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SLOTAlignConfig
from repro.core.convergence import IterateHistory
from repro.core.objective import JointObjective
from repro.core.result import AlignmentResult
from repro.core.views import build_structure_bases
from repro.exceptions import ConvergenceError, GraphError
from repro.graphs.graph import AttributedGraph
from repro.graphs.normalization import row_normalize
from repro.ot.simplex import project_concatenated_simplices
from repro.ot.sinkhorn import sinkhorn_log, sinkhorn_log_kernel_fast
from repro.utils.timer import Timer


@dataclass
class _RunOutcome:
    """One restart's final iterates."""

    plan: np.ndarray
    alpha: np.ndarray
    objective: float
    history: IterateHistory
    label: str


class SLOTAlign:
    """Unsupervised attributed-graph aligner (the paper's contribution).

    Example
    -------
    >>> from repro.graphs import erdos_renyi_graph, permute_graph
    >>> import numpy as np
    >>> g = erdos_renyi_graph(30, 0.2, seed=0).with_features(np.eye(30))
    >>> h, perm = permute_graph(g, seed=1)
    >>> result = SLOTAlign().fit(g, h)
    >>> result.plan.shape
    (30, 30)
    """

    def __init__(self, config: SLOTAlignConfig | None = None):
        self.config = config or SLOTAlignConfig()
        self.history: IterateHistory | None = None
        self.beta_source: np.ndarray | None = None
        self.beta_target: np.ndarray | None = None

    # ------------------------------------------------------------------
    def fit(
        self,
        source: AttributedGraph,
        target: AttributedGraph,
        init_plan: np.ndarray | None = None,
    ) -> AlignmentResult:
        """Align ``source`` to ``target`` and return the soft plan."""
        cfg = self.config
        with Timer() as timer:
            source_bases = build_structure_bases(
                source, cfg.n_bases, cfg.include_views, cfg.normalize_bases
            )
            target_bases = build_structure_bases(
                target, cfg.n_bases, cfg.include_views, cfg.normalize_bases
            )
            k = len(source_bases)
            if len(target_bases) != k:
                raise GraphError(
                    "source and target produced different numbers of bases"
                )
            objective = JointObjective(source_bases, target_bases)
            n, m = objective.n, objective.m
            mu = np.full(n, 1.0 / n)
            nu = np.full(m, 1.0 / m)
            plan0, informative_init = self._initial_plan(
                source, target, mu, nu, init_plan
            )

            uniform_beta = np.full(k, 1.0 / k)
            starts: list[tuple[str, np.ndarray, bool]] = [
                ("uniform", uniform_beta, cfg.learn_weights)
            ]
            if cfg.multi_start and not informative_init and k > 1:
                # vertex restarts for the two first-order views: a
                # learned run per vertex (explores mixtures from a
                # committed view) plus a frozen node-view run (the
                # feature-only fallback when structure is hopeless)
                for label, view_index in self._vertex_views(cfg, k):
                    vertex = np.zeros(k)
                    vertex[view_index] = 1.0
                    starts.append((label, vertex, cfg.learn_weights))
                    if label == "node":
                        starts.append((f"{label}-frozen", vertex, False))

            outcomes = [
                self._solve(objective, beta0, learn, plan0, mu, nu, label)
                for label, beta0, learn in starts
            ]
            best = min(outcomes, key=lambda run: run.objective)

        self.history = best.history
        self.beta_source = best.alpha[:k].copy()
        self.beta_target = best.alpha[k:].copy()
        return AlignmentResult(
            plan=best.plan,
            runtime=timer.elapsed,
            method="SLOTAlign",
            extras={
                "beta_source": self.beta_source,
                "beta_target": self.beta_target,
                "history": best.history,
                "n_bases": k,
                "objective": best.objective,
                "selected_start": best.label,
                "start_objectives": {
                    run.label: run.objective for run in outcomes
                },
            },
        )

    # ------------------------------------------------------------------
    def _vertex_views(self, cfg: SLOTAlignConfig, k: int):
        """(label, basis index) of the single-view restarts to try."""
        index = 0
        vertices = []
        if "edge" in cfg.include_views:
            vertices.append(("edge", index))
            index += 1
        if "node" in cfg.include_views and index < k:
            vertices.append(("node", index))
        return vertices

    def _eta_schedule(self, iteration: int) -> float:
        """Annealed KL-proximal coefficient for this outer iteration."""
        cfg = self.config
        if not cfg.anneal or cfg.eta_start <= cfg.sinkhorn_lr:
            return cfg.sinkhorn_lr
        horizon = max(1, int(cfg.anneal_fraction * cfg.max_outer_iter))
        if iteration >= horizon:
            return cfg.sinkhorn_lr
        decay = (cfg.sinkhorn_lr / cfg.eta_start) ** (1.0 / horizon)
        return cfg.eta_start * decay**iteration

    def _solve(
        self,
        objective: JointObjective,
        beta0: np.ndarray,
        learn_weights: bool,
        plan0: np.ndarray,
        mu: np.ndarray,
        nu: np.ndarray,
        label: str,
    ) -> _RunOutcome:
        """One run of the alternating scheme (Algorithm 1)."""
        cfg = self.config
        k = objective.n_bases
        alpha = np.concatenate([beta0, beta0])
        plan = plan0.copy()
        history = IterateHistory()
        for iteration in range(cfg.max_outer_iter):
            new_alpha = alpha
            if learn_weights:
                for _ in range(cfg.alpha_steps):
                    grad = objective.alpha_gradient(
                        plan, new_alpha[:k], new_alpha[k:]
                    )
                    new_alpha = project_concatenated_simplices(
                        new_alpha - cfg.structure_lr * grad, k
                    )
            plan_grad = objective.plan_gradient(
                plan, new_alpha[:k], new_alpha[k:]
            )
            # KL-proximal step (Eq. 12): minimising
            # <grad, pi> + eta * KL(pi || pi_k) yields the kernel
            # pi_k * exp(-grad / eta), projected onto Pi(mu, nu)
            eta = self._eta_schedule(iteration)
            log_kernel = (
                np.log(np.maximum(plan, 1e-300)) - plan_grad / eta
            )
            sinkhorn_result = sinkhorn_log_kernel_fast(
                log_kernel,
                mu,
                nu,
                max_iter=cfg.sinkhorn_iter,
                tol=1e-9,
            )
            new_plan = sinkhorn_result.plan
            if not np.all(np.isfinite(new_plan)):
                raise ConvergenceError("SLOTAlign plan became non-finite")
            alpha_delta = float(np.linalg.norm(new_alpha - alpha))
            plan_delta = float(np.linalg.norm(new_plan - plan))
            value = (
                objective.value(new_plan, new_alpha[:k], new_alpha[k:])
                if cfg.track_history
                else None
            )
            history.record(value, alpha_delta, plan_delta)
            alpha, plan = new_alpha, new_plan
            if alpha_delta < cfg.alpha_tol and plan_delta < cfg.plan_tol:
                history.converged = True
                break
        final_value = objective.value(plan, alpha[:k], alpha[k:])
        return _RunOutcome(plan, alpha, final_value, history, label)

    # ------------------------------------------------------------------
    def _initial_plan(
        self,
        source: AttributedGraph,
        target: AttributedGraph,
        mu: np.ndarray,
        nu: np.ndarray,
        init_plan: np.ndarray | None,
    ) -> tuple[np.ndarray, bool]:
        """π₁ plus a flag for "informative" (non-uniform) inits.

        Uniform coupling by default; a user-supplied plan or (for the
        KG setting) the feature-similarity initialisation of Sec. V-C
        skips the multi-start portfolio.
        """
        n, m = mu.shape[0], nu.shape[0]
        if init_plan is not None:
            plan = np.asarray(init_plan, dtype=np.float64)
            if plan.shape != (n, m):
                raise GraphError(
                    f"init_plan must have shape {(n, m)}, got {plan.shape}"
                )
            if plan.min() < 0 or plan.sum() <= 0:
                raise GraphError("init_plan must be non-negative with positive mass")
            return plan / plan.sum(), True
        if self.config.use_feature_similarity_init:
            if source.features is None or target.features is None:
                raise GraphError(
                    "feature-similarity init requires features on both graphs"
                )
            return (
                feature_similarity_plan(source.features, target.features, mu, nu),
                True,
            )
        return np.outer(mu, nu), False


def feature_similarity_plan(
    source_features: np.ndarray,
    target_features: np.ndarray,
    mu: np.ndarray,
    nu: np.ndarray,
) -> np.ndarray:
    """Feasible plan built from cross-graph cosine similarity.

    The similarity matrix is sharpened in log domain and Sinkhorn-
    projected onto ``Π(μ, ν)`` so the first π-update starts from a
    valid coupling (paper Sec. V-C initialisation for DBP15K).

    Falls back to the independent coupling when the feature
    dimensionalities differ (similarity is then undefined).
    """
    xs = np.asarray(source_features, dtype=np.float64)
    xt = np.asarray(target_features, dtype=np.float64)
    if xs.shape[1] != xt.shape[1]:
        return np.outer(mu, nu)
    sim = row_normalize(xs) @ row_normalize(xt).T
    log_kernel = sim * 10.0
    result = sinkhorn_log(
        cost=None, mu=mu, nu=nu, max_iter=200, tol=1e-10, log_kernel=log_kernel
    )
    return result.plan


def slotalign(
    source: AttributedGraph,
    target: AttributedGraph,
    config: SLOTAlignConfig | None = None,
    init_plan: np.ndarray | None = None,
) -> AlignmentResult:
    """Functional one-shot interface: ``slotalign(gs, gt)``."""
    return SLOTAlign(config).fit(source, target, init_plan=init_plan)
