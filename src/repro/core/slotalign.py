"""SLOTAlign: joint structure learning and optimal transport alignment.

This module implements Algorithm 1 of the paper.  Given two attributed
graphs it

1. constructs multi-view structure bases per graph (Eq. 6),
2. alternates a projected-gradient update on the basis weights
   ``α = [β_s, β_t]`` (Eq. 11) with a KL-proximal Sinkhorn update on the
   transport plan ``π`` (Eq. 12),
3. stops when both iterates move less than the tolerances, and
4. exposes the plan through :class:`repro.core.result.AlignmentResult`.

Three practical devices harden the nonconvex optimisation (all
documented in DESIGN.md and ablatable through the config):

* **η annealing** — the KL-proximal coefficient starts large (smooth,
  exploratory updates) and decays to the paper's η, which breaks the
  symmetry of the uniform initial coupling on graphs whose informative
  view is sparse;
* **multi-start** — the scheme is run from the uniform weight vector
  and from the edge-/node-view vertices of the simplex, keeping the
  iterate with the lowest objective value.  All restart ingredients are
  intra-graph, so Proposition 4's feature-permutation invariance holds
  for the full procedure;
* **tied structure weights** (``tie_weights``) — both graphs share one
  weight vector, updated with the averaged β-gradient.  Independently
  learned weights can collapse onto *different* views per graph, after
  which ``tr(D_s π D_t πᵀ)`` compares incomparable mixtures and the
  alignment silently degrades (the seed-era Table II/III failures);
* **restart-portfolio scheduling** — instead of running every restart
  at the full iteration budget, the portfolio is successively halved:
  at an early checkpoint (and again after the annealing horizon, where
  the objective ranking has stabilised) clearly dominated restarts are
  pruned and only the survivors continue to convergence.  Survivors
  follow their exact unpruned iterate path — pruning never perturbs a
  trajectory, it only stops hopeless ones early — and all restarts
  share one :class:`~repro.core.objective.JointObjective`
  precomputation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.config import SLOTAlignConfig
from repro.core.convergence import IterateHistory
from repro.core.objective import JointObjective
from repro.core.result import AlignmentResult
from repro.core.views import build_structure_bases
from repro.exceptions import ConvergenceError, GraphError
from repro.graphs.graph import AttributedGraph
from repro.graphs.normalization import row_normalize
from repro.ot.simplex import project_concatenated_simplices
from repro.ot.sinkhorn import sinkhorn_log, sinkhorn_log_kernel_fast
from repro.utils.timer import Timer


@dataclass
class _RunOutcome:
    """One restart's final iterates."""

    plan: np.ndarray
    alpha: np.ndarray
    objective: float
    history: IterateHistory
    label: str
    pruned: bool = False
    iterations: int = 0


class _RestartRun:
    """Stepping state of one restart of the alternating scheme.

    The per-iteration body is a faithful transcription of the original
    single-shot loop: as long as a run is advanced to the full budget,
    its iterate sequence (and therefore its final plan) is bit-for-bit
    what the unscheduled solver produced.  ``step_until`` lets the
    portfolio scheduler advance restarts checkpoint by checkpoint.
    """

    def __init__(
        self,
        objective: JointObjective,
        config: SLOTAlignConfig,
        eta_schedule,
        beta0: np.ndarray,
        learn_weights: bool,
        plan0: np.ndarray,
        mu: np.ndarray,
        nu: np.ndarray,
        label: str,
    ):
        self.objective = objective
        self.config = config
        self.eta_schedule = eta_schedule
        self.learn_weights = learn_weights
        self.label = label
        self.mu = mu
        self.nu = nu
        self.k = objective.n_bases
        self.alpha = np.concatenate([beta0, beta0])
        self.plan = plan0.copy()
        self.history = IterateHistory()
        self.iteration = 0
        self.pruned = False
        self.pruned_at: int | None = None
        self.elapsed = 0.0
        self.timings = {"alpha_update": 0.0, "pi_update": 0.0, "objective_eval": 0.0}

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return (
            self.history.converged
            or self.iteration >= self.config.max_outer_iter
        )

    @property
    def active(self) -> bool:
        return not self.pruned and not self.finished

    def step_until(self, target_iteration: int) -> None:
        """Advance to ``min(target, max_outer_iter)`` or convergence."""
        target = min(target_iteration, self.config.max_outer_iter)
        start = time.perf_counter()
        while self.iteration < target and not self.history.converged:
            self._step_once()
        self.elapsed += time.perf_counter() - start

    def current_objective(self) -> float:
        """Objective at the current iterate (pure read, cache-friendly)."""
        t0 = time.perf_counter()
        value = self.objective.value(self.plan, self.alpha[:self.k], self.alpha[self.k:])
        self.timings["objective_eval"] += time.perf_counter() - t0
        return value

    def prune(self) -> None:
        self.pruned = True
        self.pruned_at = self.iteration

    def outcome(self) -> _RunOutcome:
        return _RunOutcome(
            plan=self.plan,
            alpha=self.alpha,
            objective=self.current_objective(),
            history=self.history,
            label=self.label,
            pruned=self.pruned,
            iterations=self.iteration,
        )

    # ------------------------------------------------------------------
    def _step_once(self) -> None:
        """One outer iteration of Algorithm 1 (Eq. 11 then Eq. 12)."""
        cfg = self.config
        objective = self.objective
        k = self.k
        alpha, plan = self.alpha, self.plan

        t0 = time.perf_counter()
        new_alpha = alpha
        if self.learn_weights:
            for _ in range(cfg.alpha_steps):
                grad = objective.alpha_gradient(
                    plan, new_alpha[:k], new_alpha[k:]
                )
                if cfg.tie_weights:
                    # shared weights: both halves take the averaged
                    # gradient, so beta_s == beta_t is an invariant of
                    # the iteration (the halves start equal)
                    mean = 0.5 * (grad[:k] + grad[k:])
                    grad = np.concatenate([mean, mean])
                new_alpha = project_concatenated_simplices(
                    new_alpha - cfg.structure_lr * grad, k
                )
        t1 = time.perf_counter()
        self.timings["alpha_update"] += t1 - t0

        plan_grad = objective.plan_gradient(plan, new_alpha[:k], new_alpha[k:])
        # KL-proximal step (Eq. 12): minimising
        # <grad, pi> + eta * KL(pi || pi_k) yields the kernel
        # pi_k * exp(-grad / eta), projected onto Pi(mu, nu)
        eta = self.eta_schedule(self.iteration)
        log_kernel = (
            np.log(np.maximum(plan, 1e-300)) - plan_grad / eta
        )
        sinkhorn_result = sinkhorn_log_kernel_fast(
            log_kernel,
            self.mu,
            self.nu,
            max_iter=cfg.sinkhorn_iter,
            tol=cfg.sinkhorn_tol,
        )
        new_plan = sinkhorn_result.plan
        if not np.all(np.isfinite(new_plan)):
            raise ConvergenceError("SLOTAlign plan became non-finite")
        t2 = time.perf_counter()
        self.timings["pi_update"] += t2 - t1

        alpha_delta = float(np.linalg.norm(new_alpha - alpha))
        plan_delta = float(np.linalg.norm(new_plan - plan))
        value = (
            objective.value(new_plan, new_alpha[:k], new_alpha[k:])
            if cfg.track_history
            else None
        )
        self.timings["objective_eval"] += time.perf_counter() - t2
        self.history.record(value, alpha_delta, plan_delta)
        self.alpha, self.plan = new_alpha, new_plan
        self.iteration += 1
        if alpha_delta < cfg.alpha_tol and plan_delta < cfg.plan_tol:
            self.history.converged = True


class SLOTAlign:
    """Unsupervised attributed-graph aligner (the paper's contribution).

    Example
    -------
    >>> from repro.graphs import erdos_renyi_graph, permute_graph
    >>> import numpy as np
    >>> g = erdos_renyi_graph(30, 0.2, seed=0).with_features(np.eye(30))
    >>> h, perm = permute_graph(g, seed=1)
    >>> result = SLOTAlign().fit(g, h)
    >>> result.plan.shape
    (30, 30)
    """

    def __init__(self, config: SLOTAlignConfig | None = None):
        self.config = config or SLOTAlignConfig()
        self.history: IterateHistory | None = None
        self.beta_source: np.ndarray | None = None
        self.beta_target: np.ndarray | None = None

    # ------------------------------------------------------------------
    def prepare_bases(
        self, source: AttributedGraph, target: AttributedGraph
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Build the structure bases for a graph pair, for reuse.

        Block-level reuse hook: callers that solve the same (sub)graph
        pair repeatedly — trajectory capture, sensitivity sweeps, the
        partitioned pipeline's diagnostics — can pay the basis
        construction once and pass the result to :meth:`fit` via
        ``bases=``.
        """
        cfg = self.config
        return (
            build_structure_bases(
                source, cfg.n_bases, cfg.include_views, cfg.normalize_bases,
                center_kernels=cfg.center_kernels,
                renormalize_hops=cfg.renormalize_hops,
                hop_mix=cfg.hop_mix,
            ),
            build_structure_bases(
                target, cfg.n_bases, cfg.include_views, cfg.normalize_bases,
                center_kernels=cfg.center_kernels,
                renormalize_hops=cfg.renormalize_hops,
                hop_mix=cfg.hop_mix,
            ),
        )

    def fit(
        self,
        source: AttributedGraph,
        target: AttributedGraph,
        init_plan: np.ndarray | None = None,
        bases: tuple[list[np.ndarray], list[np.ndarray]] | None = None,
    ) -> AlignmentResult:
        """Align ``source`` to ``target`` and return the soft plan.

        ``bases`` injects the output of :meth:`prepare_bases` so
        repeated solves of the same pair skip the basis construction.
        """
        cfg = self.config
        with Timer() as timer:
            t0 = time.perf_counter()
            if bases is None:
                bases = self.prepare_bases(source, target)
            source_bases, target_bases = bases
            k = len(source_bases)
            if len(target_bases) != k:
                raise GraphError(
                    "source and target produced different numbers of bases"
                )
            objective = JointObjective(
                source_bases, target_bases, fused=cfg.fused_contractions
            )
            basis_seconds = time.perf_counter() - t0
            n, m = objective.n, objective.m
            mu = np.full(n, 1.0 / n)
            nu = np.full(m, 1.0 / m)
            plan0, informative_init = self._initial_plan(
                source, target, mu, nu, init_plan
            )

            uniform_beta = np.full(k, 1.0 / k)
            first_label, first_beta = "uniform", uniform_beta
            if cfg.single_start_view != "uniform" and not cfg.multi_start:
                # committed single start: begin at the requested view's
                # vertex of the simplex instead of the uniform mixture
                for label, view_index in self._vertex_views(cfg, k):
                    if label == cfg.single_start_view:
                        vertex = np.zeros(k)
                        vertex[view_index] = 1.0
                        first_label, first_beta = label, vertex
                        break
                else:
                    raise GraphError(
                        f"single_start_view {cfg.single_start_view!r} has no "
                        "matching basis for this graph pair"
                    )
            starts: list[tuple[str, np.ndarray, bool]] = [
                (first_label, first_beta, cfg.learn_weights)
            ]
            if cfg.multi_start and not informative_init and k > 1:
                # vertex restarts for the two first-order views: a
                # learned run per vertex (explores mixtures from a
                # committed view) plus a frozen node-view run (the
                # feature-only fallback when structure is hopeless)
                for label, view_index in self._vertex_views(cfg, k):
                    vertex = np.zeros(k)
                    vertex[view_index] = 1.0
                    starts.append((label, vertex, cfg.learn_weights))
                    if label == "node":
                        starts.append((f"{label}-frozen", vertex, False))

            runs = [
                _RestartRun(
                    objective, cfg, self._eta_schedule,
                    beta0, learn, plan0, mu, nu, label,
                )
                for label, beta0, learn in starts
            ]
            checkpoints = self._prune_schedule() if len(runs) > 1 else []
            for checkpoint, margin in checkpoints:
                for run in runs:
                    if run.active:
                        run.step_until(checkpoint)
                contenders = {
                    run.label: run.current_objective()
                    for run in runs
                    if not run.pruned
                }
                leader = min(contenders.values())
                for run in runs:
                    if run.active and contenders[run.label] > leader + margin:
                        run.prune()
            for run in runs:
                if run.active:
                    run.step_until(cfg.max_outer_iter)

            outcomes = [run.outcome() for run in runs]
            survivors = [out for out in outcomes if not out.pruned]
            best = min(survivors, key=lambda run: run.objective)

        self.history = best.history
        self.beta_source = best.alpha[:k].copy()
        self.beta_target = best.alpha[k:].copy()
        phase_timings = {
            "basis_build": basis_seconds,
            "alpha_update": sum(r.timings["alpha_update"] for r in runs),
            "pi_update": sum(r.timings["pi_update"] for r in runs),
            "objective_eval": sum(r.timings["objective_eval"] for r in runs),
            "per_restart": {run.label: run.elapsed for run in runs},
        }
        return AlignmentResult(
            plan=best.plan,
            runtime=timer.elapsed,
            method="SLOTAlign",
            extras={
                "beta_source": self.beta_source,
                "beta_target": self.beta_target,
                "history": best.history,
                "n_bases": k,
                "objective": best.objective,
                "selected_start": best.label,
                "start_objectives": {
                    run.label: run.objective for run in outcomes
                },
                "portfolio": {
                    "checkpoints": [list(cp) for cp in checkpoints],
                    "pruned": {
                        run.label: run.iterations
                        for run in outcomes
                        if run.pruned
                    },
                    "iterations": {
                        run.label: run.iterations for run in outcomes
                    },
                },
                "phase_timings": phase_timings,
            },
        )

    # ------------------------------------------------------------------
    def _vertex_views(self, cfg: SLOTAlignConfig, k: int):
        """(label, basis index) of the single-view restarts to try."""
        index = 0
        vertices = []
        if "edge" in cfg.include_views:
            vertices.append(("edge", index))
            index += 1
        if "node" in cfg.include_views and index < k:
            vertices.append(("node", index))
        return vertices

    def _eta_schedule(self, iteration: int) -> float:
        """Annealed KL-proximal coefficient for this outer iteration."""
        cfg = self.config
        if not cfg.anneal or cfg.eta_start <= cfg.sinkhorn_lr:
            return cfg.sinkhorn_lr
        horizon = max(1, int(cfg.anneal_fraction * cfg.max_outer_iter))
        if iteration >= horizon:
            return cfg.sinkhorn_lr
        decay = (cfg.sinkhorn_lr / cfg.eta_start) ** (1.0 / horizon)
        return cfg.eta_start * decay**iteration

    def _prune_schedule(self) -> list[tuple[int, float]]:
        """Successive-halving checkpoints ``(iteration, margin)``.

        Mid-annealing objective values are unusable for ranking: the
        exploration phase deliberately keeps iterates smooth, so a
        restart's value can lag arbitrarily while η is large and the
        ordering routinely inverts as η decays (a frozen-weight run
        has been observed trailing by 1.2 at iteration 20 and winning
        outright at full budget).  With annealing enabled the only
        checkpoint therefore fires ``portfolio_prune_iter`` iterations
        after the annealing horizon, with the tight refine margin.
        Without annealing the ranking is meaningful early, so a
        generous-margin checkpoint fires at ``portfolio_prune_iter``
        and a tighter one at three times it.
        """
        cfg = self.config
        first = cfg.portfolio_prune_iter
        if first <= 0 or first >= cfg.max_outer_iter:
            return []
        if cfg.anneal and cfg.eta_start > cfg.sinkhorn_lr:
            horizon = max(1, int(cfg.anneal_fraction * cfg.max_outer_iter))
            checkpoint = horizon + first
            if checkpoint < cfg.max_outer_iter:
                return [(checkpoint, cfg.portfolio_refine_margin)]
            return []
        schedule = [(first, cfg.portfolio_prune_margin)]
        second = 3 * first
        if first < second < cfg.max_outer_iter:
            schedule.append((second, cfg.portfolio_refine_margin))
        return schedule

    # ------------------------------------------------------------------
    def _initial_plan(
        self,
        source: AttributedGraph,
        target: AttributedGraph,
        mu: np.ndarray,
        nu: np.ndarray,
        init_plan: np.ndarray | None,
    ) -> tuple[np.ndarray, bool]:
        """π₁ plus a flag for "informative" (non-uniform) inits.

        Uniform coupling by default; a user-supplied plan or (for the
        KG setting) the feature-similarity initialisation of Sec. V-C
        skips the multi-start portfolio.  When the feature spaces are
        incomparable (different dimensionalities) the similarity init
        degenerates to the uniform coupling, so the flag stays False
        and the multi-start portfolio remains enabled.
        """
        n, m = mu.shape[0], nu.shape[0]
        if init_plan is not None:
            plan = np.asarray(init_plan, dtype=np.float64)
            if plan.shape != (n, m):
                raise GraphError(
                    f"init_plan must have shape {(n, m)}, got {plan.shape}"
                )
            if plan.min() < 0 or plan.sum() <= 0:
                raise GraphError("init_plan must be non-negative with positive mass")
            return plan / plan.sum(), True
        if self.config.use_feature_similarity_init:
            if source.features is None or target.features is None:
                raise GraphError(
                    "feature-similarity init requires features on both graphs"
                )
            if source.features.shape[1] != target.features.shape[1]:
                return np.outer(mu, nu), False
            return (
                feature_similarity_plan(source.features, target.features, mu, nu),
                True,
            )
        return np.outer(mu, nu), False


def feature_similarity_plan(
    source_features: np.ndarray,
    target_features: np.ndarray,
    mu: np.ndarray,
    nu: np.ndarray,
) -> np.ndarray:
    """Feasible plan built from cross-graph cosine similarity.

    The similarity matrix is sharpened in log domain and Sinkhorn-
    projected onto ``Π(μ, ν)`` so the first π-update starts from a
    valid coupling (paper Sec. V-C initialisation for DBP15K).

    Falls back to the independent coupling when the feature
    dimensionalities differ (similarity is then undefined).
    """
    xs = np.asarray(source_features, dtype=np.float64)
    xt = np.asarray(target_features, dtype=np.float64)
    if xs.shape[1] != xt.shape[1]:
        return np.outer(mu, nu)
    sim = row_normalize(xs) @ row_normalize(xt).T
    log_kernel = sim * 10.0
    result = sinkhorn_log(
        cost=None, mu=mu, nu=nu, max_iter=200, tol=1e-10, log_kernel=log_kernel
    )
    return result.plan


def slotalign(
    source: AttributedGraph,
    target: AttributedGraph,
    config: SLOTAlignConfig | None = None,
    init_plan: np.ndarray | None = None,
) -> AlignmentResult:
    """Functional one-shot interface: ``slotalign(gs, gt)``."""
    return SLOTAlign(config).fit(source, target, init_plan=init_plan)
