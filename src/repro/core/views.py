"""Multi-view structure bases (paper Sec. IV-A, Eq. 6).

For a graph ``G = (V, A, X)`` with normalised adjacency ``Â``:

* edge-view      ``D(1) = A``
* node-view      ``D(2) = X Xᵀ``
* subgraph-views ``D(q) = Â^{q-2} X (Â^{q-2} X)ᵀ`` for ``2 < q <= K``

Features are row-L2-normalised first so the inner product equals cosine
similarity (the paper's note under node-view), and each basis is
max-abs normalised so views share a scale.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.graph import AttributedGraph
from repro.graphs.normalization import row_normalize
from repro.gnn.propagation import propagation_stack


def build_structure_bases(
    graph: AttributedGraph,
    n_bases: int,
    include_views: tuple[str, ...] = ("edge", "node", "subgraph"),
    normalize: bool = True,
) -> list[np.ndarray]:
    """Construct the candidate bases ``{D(q)}`` for one graph.

    Parameters
    ----------
    graph:
        The attributed graph.
    n_bases:
        ``K``; when all three view families are enabled this yields
        the edge view, the node view and ``K-2`` subgraph hops.
    include_views:
        Subset of {"edge", "node", "subgraph"} — the ablation hook.
    normalize:
        Max-abs normalise every basis.

    Returns
    -------
    List of ``n × n`` dense symmetric matrices.
    """
    if n_bases < 1:
        raise GraphError(f"n_bases must be >= 1, got {n_bases}")
    views = tuple(include_views)
    unknown = set(views) - {"edge", "node", "subgraph"}
    if unknown:
        raise GraphError(f"unknown views: {sorted(unknown)}")
    needs_features = "node" in views or "subgraph" in views
    if needs_features and graph.features is None:
        raise GraphError("node/subgraph views require node features")

    bases: list[np.ndarray] = []
    if "edge" in views:
        bases.append(graph.dense_adjacency())
    if needs_features:
        feats = row_normalize(graph.features)
        if "node" in views and len(bases) < n_bases:
            bases.append(feats @ feats.T)
        if "subgraph" in views:
            n_hops = n_bases - len(bases)
            if n_hops > 0:
                # propagate the *normalised* features, matching the
                # released implementation's use of cosine-scaled inputs
                prop_graph = graph.with_features(feats)
                stack = propagation_stack(prop_graph, n_hops)
                for hop in range(1, n_hops + 1):
                    z = stack[hop]
                    bases.append(z @ z.T)
    bases = bases[:n_bases]
    if not bases:
        raise GraphError("no structure bases could be built from the requested views")
    if normalize:
        bases = [normalize_basis(b) for b in bases]
    return bases


def normalize_basis(basis: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Scale a basis to Frobenius norm ``n`` (unit RMS entry).

    Equal-energy bases make the quadratic energy terms of Eq. (9)
    neutral at the uniform weight initialisation, so the early β
    updates are driven by the alignment term rather than by which view
    happens to be sparser — without this, the noisy-but-sparse edge
    view attracts weight in the first iterations and the transport plan
    commits to a poor basin before structure learning can react.
    """
    arr = np.asarray(basis, dtype=np.float64)
    norm = np.linalg.norm(arr)
    if norm < eps:
        return arr.copy()
    return arr * (arr.shape[0] / norm)


def stack_bases(bases: list[np.ndarray]) -> np.ndarray:
    """Stack K same-shape bases into one C-contiguous ``(K, n, n)`` tensor.

    Each slice of the stack is a bit-for-bit copy of the corresponding
    basis, so contractions over slices reproduce per-basis results
    exactly (the batched-solver bitwise-equality requirement).
    """
    if not bases:
        raise GraphError("cannot stack an empty basis list")
    arrays = [np.asarray(basis, dtype=np.float64) for basis in bases]
    shape = arrays[0].shape
    for basis in arrays:
        if basis.shape != shape:
            raise GraphError(
                f"bases must share a shape to stack, got {shape} vs {basis.shape}"
            )
    return np.stack(arrays)


def combine_bases(bases: list[np.ndarray], weights: np.ndarray) -> np.ndarray:
    """Convex combination ``D = Σ_q β(q) D(q)`` (Eq. 7)."""
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or weights.shape[0] != len(bases):
        raise GraphError(
            f"{len(bases)} bases need {len(bases)} weights, got shape {weights.shape}"
        )
    out = np.zeros_like(bases[0])
    for weight, basis in zip(weights, bases):
        if weight != 0.0:
            out += weight * basis
    return out
