"""Multi-view structure bases (paper Sec. IV-A, Eq. 6).

For a graph ``G = (V, A, X)`` with normalised adjacency ``Â``:

* edge-view      ``D(1) = A``
* node-view      ``D(2) = X Xᵀ``
* subgraph-views ``D(q) = Â^{q-2} X (Â^{q-2} X)ᵀ`` for ``2 < q <= K``

Features are row-L2-normalised first so the inner product equals cosine
similarity (the paper's note under node-view), and each basis is
normalised so views share a scale.

Two optional refinements harden the construction on the real-world and
KG pairs (both opt-in, both permutation-equivariant so Proposition 4 is
preserved; see DESIGN.md "Degenerate views"):

* **kernel centring** (``center_kernels``) — feature-kernel views are
  double-centred, removing the constant component whose GW cross term
  is maximal under any coupling and which otherwise attracts all the
  structure weight ("degenerate β-update");
* **attribute-propagated cosine hops** (``renormalize_hops`` +
  ``hop_mix``) — subgraph views re-normalise the propagated features
  per hop (cosine semantics at every depth) and propagate with the
  lazy walk ``(1−λ)I + λÂ``, so hub norms cannot collapse the hop
  kernels toward rank one.

Relation-aware bases for knowledge graphs live in
:func:`build_relation_bases`: per-relation adjacencies of the most
frequent relation types, the "relation view" family of Sec. IV applied
to typed triples.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.graph import AttributedGraph
from repro.graphs.normalization import row_normalize, symmetric_normalize
from repro.gnn.propagation import propagation_stack


def build_structure_bases(
    graph: AttributedGraph,
    n_bases: int,
    include_views: tuple[str, ...] = ("edge", "node", "subgraph"),
    normalize: bool = True,
    center_kernels: bool = False,
    renormalize_hops: bool = False,
    hop_mix: float = 1.0,
) -> list[np.ndarray]:
    """Construct the candidate bases ``{D(q)}`` for one graph.

    Parameters
    ----------
    graph:
        The attributed graph.
    n_bases:
        ``K``; when all three view families are enabled this yields
        the edge view, the node view and ``K-2`` subgraph hops.
    include_views:
        Subset of {"edge", "node", "subgraph"} — the ablation hook.
    normalize:
        Frobenius-normalise every basis (unit RMS entry).
    center_kernels:
        Double-centre the feature-kernel views (node and subgraph);
        the edge view is left untouched.
    renormalize_hops:
        Row-normalise propagated features per hop before the Gram
        (cosine semantics at every depth).
    hop_mix:
        Lazy-walk coefficient λ for the subgraph propagation when
        ``renormalize_hops`` is on; ``1.0`` is plain ``Â`` propagation.

    Returns
    -------
    List of ``n × n`` dense symmetric matrices.
    """
    if n_bases < 1:
        raise GraphError(f"n_bases must be >= 1, got {n_bases}")
    views = tuple(include_views)
    unknown = set(views) - {"edge", "node", "subgraph"}
    if unknown:
        raise GraphError(f"unknown views: {sorted(unknown)}")
    needs_features = "node" in views or "subgraph" in views
    if needs_features and graph.features is None:
        raise GraphError("node/subgraph views require node features")

    bases: list[np.ndarray] = []
    kernel_start = 0
    if "edge" in views:
        bases.append(graph.dense_adjacency())
        kernel_start = 1
    if needs_features:
        feats = row_normalize(graph.features)
        if "node" in views and len(bases) < n_bases:
            bases.append(feats @ feats.T)
        if "subgraph" in views:
            n_hops = n_bases - len(bases)
            if n_hops > 0 and renormalize_hops:
                norm_adj = symmetric_normalize(graph.adjacency)
                z = feats
                for _ in range(n_hops):
                    z = (1.0 - hop_mix) * z + hop_mix * np.asarray(norm_adj @ z)
                    zn = row_normalize(z)
                    bases.append(zn @ zn.T)
            elif n_hops > 0:
                # propagate the *normalised* features, matching the
                # released implementation's use of cosine-scaled inputs
                prop_graph = graph.with_features(feats)
                stack = propagation_stack(prop_graph, n_hops)
                for hop in range(1, n_hops + 1):
                    z = stack[hop]
                    bases.append(z @ z.T)
    bases = bases[:n_bases]
    if not bases:
        raise GraphError("no structure bases could be built from the requested views")
    if center_kernels:
        bases = [
            basis if index < kernel_start else _centered_or_inert(basis)
            for index, basis in enumerate(bases)
        ]
    if normalize:
        bases = [normalize_basis(b) for b in bases]
    return bases


def inert_kernel(n: int) -> np.ndarray:
    """The centred identity ``H = I − 11ᵀ/n``: the canonical
    information-free-but-non-degenerate basis.

    Positive energy (not an energy sink for the β-update), no constant
    component (no degenerate attraction), identical on both graphs of
    a pair.  Used wherever a view slot must be filled without signal:
    dead centred kernels and missing relation types.
    """
    return np.eye(n) - np.full((n, n), 1.0 / n)


def _centered_or_inert(basis: np.ndarray, rtol: float = 1e-9) -> np.ndarray:
    """Centre a kernel; substitute the inert kernel if nothing is left.

    An (exactly) constant kernel — degenerate features — centres to the
    zero matrix, which is worse than useless to the β-update: the zero
    view has zero energy *and* zero cross term, so ``F`` is minimised
    by draining all weight into it and the solver returns the uniform
    plan.  Such dead views are replaced by the centred identity
    ``H = I − 11ᵀ/n``: it has positive energy (no energy sink), no
    constant component (no degenerate attraction), and is identical on
    both graphs, so the weight update can freely move to the live
    structure views — feature-degenerate pairs then degrade to GW on
    structure instead of collapsing.
    """
    arr = np.asarray(basis, dtype=np.float64)
    centred = center_kernel(arr)
    if np.linalg.norm(centred) <= rtol * max(np.linalg.norm(arr), 1.0):
        return inert_kernel(arr.shape[0])
    return centred


def center_kernel(basis: np.ndarray) -> np.ndarray:
    """Double-centre a kernel: ``H D H`` with ``H = I − 11ᵀ/n``.

    Removes the rank-one constant component (row/column means and the
    grand mean).  A similarity kernel's constant mass produces a GW
    cross term that is maximal under *every* coupling, so it carries no
    alignment information while dominating the β-gradient; centring
    subtracts exactly that plan-independent part.  Centring commutes
    with simultaneous row/column permutation, so permutation
    equivariance of the basis construction (Prop. 4) is preserved.
    """
    arr = np.asarray(basis, dtype=np.float64)
    row_means = arr.mean(axis=1, keepdims=True)
    col_means = arr.mean(axis=0, keepdims=True)
    return arr - row_means - col_means + arr.mean()


def build_relation_bases(
    kg,
    n_views: int,
    normalize: bool = True,
    relation_ids: list[int] | None = None,
) -> list[np.ndarray]:
    """Relation-aware bases: adjacencies of the most frequent relations.

    Parameters
    ----------
    kg:
        A :class:`repro.datasets.kg.KnowledgeGraph`.
    n_views:
        Number of relation views; relations are ranked by triple count
        (ties broken by relation id, so the order is deterministic).
    relation_ids:
        Explicit relation ids to build views for, overriding the
        per-KG ranking.  **Pair callers must use this**: relation ids
        are shared vocabulary across the two graphs of a pair (the
        ontology is language-independent), but each side's frequency
        ranking is its own sample — ranking independently per KG can
        select *different* relations on the two sides, turning the
        relation view into cross-graph noise.  Rank once on combined
        counts (:func:`repro.datasets.kg.rank_relations`) and pass the
        result to both calls.

    Returns
    -------
    ``n_views`` dense symmetric adjacencies, Frobenius-normalised when
    ``normalize``.  Requested views beyond the available relation
    types are padded with the inert centred identity so both graphs of
    a pair always produce the same view count — *not* with zeros: a
    zero basis has zero energy and zero cross term, so the β-update
    would minimise F by draining all weight into it (the energy-sink
    degeneracy, see :func:`_centered_or_inert`).
    """
    if n_views < 1:
        raise GraphError(f"n_views must be >= 1, got {n_views}")
    ranked = (
        list(relation_ids)[:n_views]
        if relation_ids is not None
        else kg.top_relations(n_views)
    )
    bases: list[np.ndarray] = []
    for rank in range(n_views):
        dense = None
        if rank < len(ranked) and 0 <= ranked[rank] < max(kg.n_relations, 1):
            dense = kg.relation_adjacency(int(ranked[rank])).toarray()
            if not dense.any():
                # a shared id can be frequent in the paired KG yet
                # absent here; an all-zero basis is an energy sink
                dense = None
        if dense is None:
            dense = inert_kernel(kg.n_entities)
        bases.append(normalize_basis(dense) if normalize else dense)
    return bases


def normalize_basis(basis: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Scale a basis to Frobenius norm ``n`` (unit RMS entry).

    Equal-energy bases make the quadratic energy terms of Eq. (9)
    neutral at the uniform weight initialisation, so the early β
    updates are driven by the alignment term rather than by which view
    happens to be sparser — without this, the noisy-but-sparse edge
    view attracts weight in the first iterations and the transport plan
    commits to a poor basin before structure learning can react.
    """
    arr = np.asarray(basis, dtype=np.float64)
    norm = np.linalg.norm(arr)
    if norm < eps:
        return arr.copy()
    return arr * (arr.shape[0] / norm)


def stack_bases(bases: list[np.ndarray]) -> np.ndarray:
    """Stack K same-shape bases into one C-contiguous ``(K, n, n)`` tensor.

    Each slice of the stack is a bit-for-bit copy of the corresponding
    basis, so contractions over slices reproduce per-basis results
    exactly (the batched-solver bitwise-equality requirement).
    """
    if not bases:
        raise GraphError("cannot stack an empty basis list")
    arrays = [np.asarray(basis, dtype=np.float64) for basis in bases]
    shape = arrays[0].shape
    for basis in arrays:
        if basis.shape != shape:
            raise GraphError(
                f"bases must share a shape to stack, got {shape} vs {basis.shape}"
            )
    return np.stack(arrays)


def combine_bases(bases: list[np.ndarray], weights: np.ndarray) -> np.ndarray:
    """Convex combination ``D = Σ_q β(q) D(q)`` (Eq. 7)."""
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or weights.shape[0] != len(bases):
        raise GraphError(
            f"{len(bases)} bases need {len(bases)} weights, got shape {weights.shape}"
        )
    out = np.zeros_like(bases[0])
    for weight, basis in zip(weights, bases):
        if weight != 0.0:
            out += weight * basis
    return out
