"""A small reverse-mode automatic differentiation engine on NumPy.

This replaces PyTorch for the GNN-based baselines (GCNAlign, GATAlign,
WAlign and the KG methods).  It supports the dense operations those
models need: matmul, elementwise arithmetic, broadcasting, reductions,
relu/exp/log/sigmoid/tanh, indexing and concatenation.

Design: each :class:`Tensor` stores its value, an optional gradient and
a backward closure; :meth:`Tensor.backward` runs a topological sweep.
Broadcasting is handled by summing gradients back to the operand shape.
"""

from __future__ import annotations

import numpy as np


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # sum over leading axes added by broadcasting
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # sum over axes that were size 1 in the original
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A differentiable array node.

    Parameters
    ----------
    data:
        Array-like payload (coerced to float64 ndarray).
    requires_grad:
        Whether gradients should flow into this node.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")
    __array_priority__ = 100  # ensure ndarray + Tensor dispatches to us

    def __init__(self, data, requires_grad: bool = False):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # factory / utility
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """The underlying value (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """A view of the value with gradient flow cut."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # ------------------------------------------------------------------
    # autograd engine
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode differentiation from this node.

        ``grad`` defaults to 1 for scalar outputs.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar output")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self.grad = grad if self.grad is None else self.grad + grad
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        self.grad = grad if self.grad is None else self.grad + grad

    @staticmethod
    def _wrap(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def _make(self, data, parents, backward) -> "Tensor":
        out = Tensor(data, requires_grad=any(p.requires_grad for p in parents))
        if out.requires_grad:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other):
        other = self._wrap(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return self._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other):
        return self + (-self._wrap(other))

    def __rsub__(self, other):
        return self._wrap(other) + (-self)

    def __mul__(self, other):
        other = self._wrap(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return self._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._wrap(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2))

        return self._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other):
        return self._wrap(other) / self

    def __pow__(self, exponent: float):
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(self.data**exponent, (self,), backward)

    def __matmul__(self, other):
        other = self._wrap(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return self._make(self.data @ other.data, (self, other), backward)

    # ------------------------------------------------------------------
    # shape ops
    # ------------------------------------------------------------------
    def transpose(self) -> "Tensor":
        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.T)

        return self._make(self.data.T, (self,), backward)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], tuple):
            shape = shape[0]
        original = self.data.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return self._make(self.data.reshape(shape), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return self._make(self.data[index], (self,), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(grad):
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return self._make(
            self.data.sum(axis=axis, keepdims=keepdims), (self,), backward
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = (
            self.data.size
            if axis is None
            else self.data.shape[axis]
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(self.data * mask, (self,), backward)

    def exp(self) -> "Tensor":
        value = np.exp(np.clip(self.data, -500, 500))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * value)

        return self._make(value, (self,), backward)

    def log(self, eps: float = 1e-12) -> "Tensor":
        safe = np.maximum(self.data, eps)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / safe)

        return self._make(np.log(safe), (self,), backward)

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-np.clip(self.data, -500, 500)))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * value * (1.0 - value))

        return self._make(value, (self,), backward)

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - value**2))

        return self._make(value, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * sign)

        return self._make(np.abs(self.data), (self,), backward)

    def maximum(self, other) -> "Tensor":
        other = self._wrap(other)
        take_self = self.data >= other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * take_self)
            if other.requires_grad:
                other._accumulate(grad * ~take_self)

        return self._make(
            np.maximum(self.data, other.data), (self, other), backward
        )


def concatenate(tensors, axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for tensor, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(lo, hi)
                tensor._accumulate(grad[tuple(slicer)])

    data = np.concatenate([t.data for t in tensors], axis=axis)
    out = Tensor(data, requires_grad=any(t.requires_grad for t in tensors))
    if out.requires_grad:
        out._parents = tuple(tensors)
        out._backward = backward
    return out


def stack_rows(tensor: Tensor, indices) -> Tensor:
    """Differentiable fancy row indexing (embedding lookup)."""
    return tensor[np.asarray(indices, dtype=np.int64)]
