"""Module/parameter containers mirroring the familiar torch.nn shape."""

from __future__ import annotations

import numpy as np

from repro.autodiff.tensor import Tensor
from repro.utils.random import check_random_state


class Parameter(Tensor):
    """A tensor registered as trainable."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class: tracks parameters recursively through attributes."""

    def parameters(self) -> list[Parameter]:
        """All trainable parameters of this module and its children."""
        params: list[Parameter] = []
        seen: set[int] = set()
        for value in vars(self).values():
            for param in _collect(value):
                if id(param) not in seen:
                    seen.add(id(param))
                    params.append(param)
        return params

    def zero_grad(self) -> None:
        """Reset gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


def _collect(value):
    if isinstance(value, Parameter):
        yield value
    elif isinstance(value, Module):
        yield from value.parameters()
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _collect(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _collect(item)


class Linear(Module):
    """Dense affine layer ``y = x W + b`` with Glorot initialisation."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, seed=None):
        rng = check_random_state(seed)
        scale = np.sqrt(6.0 / (in_features + out_features))
        self.weight = Parameter(
            rng.uniform(-scale, scale, size=(in_features, out_features))
        )
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x
