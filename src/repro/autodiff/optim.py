"""First-order optimisers for the autodiff engine."""

from __future__ import annotations

import numpy as np

from repro.autodiff.tensor import Tensor


class Optimizer:
    """Base optimiser over a list of parameters."""

    def __init__(self, parameters):
        self.parameters: list[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters, lr: float = 0.01, momentum: float = 0.0):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, vel in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            vel *= self.momentum
            vel -= self.lr * param.grad
            param.data += vel


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        parameters,
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
