"""Functional layer on top of :class:`repro.autodiff.Tensor`.

Softmax, log-softmax, norms and the loss functions the alignment
baselines train with (margin ranking, contrastive InfoNCE).
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.tensor import Tensor


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    shifted = x - Tensor(np.max(x.data, axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis``."""
    shifted = x - Tensor(np.max(x.data, axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Row-wise L2 normalisation (differentiable)."""
    norm_sq = (x * x).sum(axis=axis, keepdims=True)
    return x / ((norm_sq + eps) ** 0.5)


def mse_loss(pred: Tensor, target) -> Tensor:
    """Mean squared error against a constant target."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target.detach()
    return (diff * diff).mean()


def margin_ranking_loss(
    positive_scores: Tensor, negative_scores: Tensor, margin: float = 1.0
) -> Tensor:
    """``mean(max(0, margin - pos + neg))`` — GCNAlign's training loss.

    ``positive_scores`` are similarities of pseudo-aligned pairs,
    ``negative_scores`` similarities of corrupted pairs.
    """
    gap = Tensor(np.full_like(positive_scores.data, margin)) - positive_scores
    hinge = (gap + negative_scores).maximum(Tensor(np.zeros_like(gap.data)))
    return hinge.mean()


def info_nce_loss(
    anchor: Tensor, positive: Tensor, temperature: float = 0.1
) -> Tensor:
    """In-batch contrastive loss (SelfKG-style self-supervision).

    Rows of ``anchor`` and ``positive`` are corresponding pairs; all
    other rows in the batch act as negatives.
    """
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    anchor_n = l2_normalize(anchor)
    positive_n = l2_normalize(positive)
    logits = (anchor_n @ positive_n.T) * (1.0 / temperature)
    log_probs = log_softmax(logits, axis=1)
    n = log_probs.shape[0]
    diag = log_probs[np.arange(n), np.arange(n)]
    return -diag.mean()
