"""Reverse-mode autodiff substrate (PyTorch stand-in for baselines)."""

from repro.autodiff.tensor import Tensor, concatenate, stack_rows
from repro.autodiff.module import Module, Parameter, Linear, Sequential
from repro.autodiff.optim import Optimizer, SGD, Adam
from repro.autodiff import functional

__all__ = [
    "Tensor",
    "concatenate",
    "stack_rows",
    "Module",
    "Parameter",
    "Linear",
    "Sequential",
    "Optimizer",
    "SGD",
    "Adam",
    "functional",
]
