"""Stage 2 of the alignment engine: **solve** — the backend registry.

A solver backend consumes a :class:`~repro.engine.planning.PreparedProblem`
and returns a result object carrying a plan:

* ``fused-dense`` — the reference serial restart portfolio over the
  fused contraction engine (:class:`repro.core.objective.JointObjective`);
  every other backend is defined against its output.
* ``batched-restart`` — the same portfolio executed in lockstep with
  the restarts stacked into ``(R, n, m)`` tensors, bit-for-bit equal
  to the serial loop (see :mod:`repro.engine.batched`).
* ``sparse`` — the divide-and-conquer pipeline of :mod:`repro.scale`:
  partition, per-block dense solves (each routed back through this
  engine), sparse stitching and boundary repair.  Returns a
  :class:`~repro.scale.aligner.PartitionedAlignment` whose plan is CSR.

Backends register under a name via :func:`register_backend`; unknown
names fail with an error that lists the valid choices (never a bare
``KeyError``), so CLI/runner validation can surface the registry
verbatim.
"""

from __future__ import annotations

from repro.core.objective import JointObjective
from repro.engine.planning import PreparedProblem
from repro.engine.restarts import (
    DEDUP_TOL_START,
    portfolio_phase_timings,
    portfolio_result,
    run_portfolio,
    run_portfolio_dedup,
)
from repro.exceptions import ConfigError
from repro.utils.timer import Timer

_REGISTRY: dict[str, tuple[type, str]] = {}

DEFAULT_BACKEND = "fused-dense"


def register_backend(name: str, backend_cls: type, description: str) -> None:
    """Register a solver backend class under ``name``.

    Re-registering a name replaces the previous entry (lets tests and
    downstream code substitute instrumented backends).
    """
    _REGISTRY[name] = (backend_cls, description)


def available_backends() -> dict[str, str]:
    """``{name: one-line description}`` of every registered backend."""
    return {name: entry[1] for name, entry in sorted(_REGISTRY.items())}


def _lookup(name: str) -> tuple[type, str]:
    """Registry entry for ``name``, or a choice-naming ConfigError."""
    entry = _REGISTRY.get(name)
    if entry is None:
        choices = ", ".join(sorted(_REGISTRY))
        raise ConfigError(
            f"unknown solver backend {name!r}; valid backends: {choices}"
        )
    return entry


def get_backend(name: str, **options):
    """Instantiate the backend registered under ``name``.

    Raises :class:`ConfigError` naming the valid choices when the
    backend is unknown — callers (CLI, experiment runner) surface this
    message directly instead of a bare ``KeyError``.
    """
    backend_cls, _ = _lookup(name)
    return backend_cls(**options)


def backend_kind(name: str) -> str:
    """``"dense"`` or ``"sparse"``: the plan representation returned.

    Unknown names raise the same choice-naming :class:`ConfigError` as
    :func:`get_backend`; no backend instance is constructed, so this
    is the cheap way to validate a name.
    """
    return getattr(_lookup(name)[0], "kind", "dense")


def dense_backends() -> list[str]:
    """Names of the registered backends returning dense results."""
    return [name for name in sorted(_REGISTRY) if backend_kind(name) == "dense"]


def ensure_dense_backend(name: str, context: str) -> str:
    """Validate that ``name`` is a dense backend, for ``context``.

    Callers whose result contract is dense (``SLOTAlign``, per-block
    solves) cannot consume the sparse pipeline's
    ``PartitionedAlignment`` — and a sparse block backend would nest a
    partition pipeline inside every block.  Fails with a message
    naming the dense choices.
    """
    if backend_kind(name) != "dense":
        choices = ", ".join(dense_backends())
        raise ConfigError(
            f"{context} requires a dense solver backend, got {name!r}; "
            f"dense backends: {choices}"
        )
    return name


def partial_backends() -> list[str]:
    """Names of the registered partial-alignment backends."""
    return [
        name for name in sorted(_REGISTRY)
        if getattr(_lookup(name)[0], "partial", False)
    ]


def ensure_classical_problem(problem: PreparedProblem, backend_name: str) -> None:
    """Refuse partial-alignment inputs on a classical balanced backend.

    The partial workload must never be *silently* served by the
    full-bijective solvers: a ``partial_mass < 1`` config or anchor
    seeds on the prepared problem mean the caller asked for partial
    semantics, which only the ``partial-*`` backends implement.
    """
    choices = ", ".join(partial_backends()) or "(none registered)"
    if problem.config.partial_mass != 1.0:
        raise ConfigError(
            f"config has partial_mass={problem.config.partial_mass} but "
            f"backend {backend_name!r} solves balanced transport only; "
            f"use a partial backend: {choices}"
        )
    if problem.anchors is not None and problem.anchors.size:
        raise ConfigError(
            f"the prepared problem carries anchor seeds but backend "
            f"{backend_name!r} cannot honour them; use a partial "
            f"backend: {choices}"
        )


class FusedDenseBackend:
    """Reference serial restart portfolio (the pre-engine solver).

    The loop is a faithful move of the original ``SLOTAlign.fit``
    body: restart construction, successive-halving checkpoints and the
    final full-budget advance are unchanged, so this backend's output
    is bit-for-bit the historical solver's (pinned by the trajectory
    golden in ``tests/test_goldens.py``).
    """

    name = "fused-dense"
    kind = "dense"

    def solve(self, problem: PreparedProblem):
        cfg = problem.config
        ensure_classical_problem(problem, self.name)
        with Timer() as timer:
            source_bases, target_bases = problem.bases
            k = len(source_bases)
            objective = JointObjective(
                source_bases, target_bases, fused=cfg.fused_contractions
            )
            mu, nu = problem.marginals()
            plan0, informative_init = problem.initial_coupling(mu, nu)
            runs, outcomes, best, checkpoints = run_portfolio(
                objective, cfg, plan0, mu, nu, informative_init
            )
        return portfolio_result(
            self.name, outcomes, best, k, checkpoints,
            portfolio_phase_timings(runs, problem.basis_seconds),
            runtime=timer.elapsed,
        )


class FusedDenseDedupBackend(FusedDenseBackend):
    """Serial portfolio with restart-trajectory dedup.

    Same restarts, same pruning checkpoints as ``fused-dense``, plus
    :func:`~repro.engine.restarts.dedup_schedule` checkpoints where
    restarts whose couplings have converged onto an earlier restart's
    (within the :func:`~repro.engine.restarts.dedup_tolerance`
    schedule, decaying from ``dedup_tol_start`` to the ``dedup_tol``
    floor) are dropped and their remaining iteration budget is split
    among the survivors — on the solver bench the clone cluster
    (uniform/node/node-frozen) plateaus near relative distance 1e-3,
    which the old fixed 1e-5 never caught.  A merge changes which
    trajectories run (and lets survivors exceed ``max_outer_iter``),
    so per the registry's never-silently-replace rule this is a new
    name; with no merge firing the output is bit-for-bit
    ``fused-dense``.
    """

    name = "fused-dense-dedup"
    kind = "dense"

    def __init__(
        self,
        dedup_tol: float = 1e-5,
        dedup_interval: int | None = None,
        dedup_tol_start: float = DEDUP_TOL_START,
    ):
        self.dedup_tol = dedup_tol
        self.dedup_interval = dedup_interval
        self.dedup_tol_start = dedup_tol_start

    def solve(self, problem: PreparedProblem):
        cfg = problem.config
        ensure_classical_problem(problem, self.name)
        with Timer() as timer:
            source_bases, target_bases = problem.bases
            k = len(source_bases)
            objective = JointObjective(
                source_bases, target_bases, fused=cfg.fused_contractions
            )
            mu, nu = problem.marginals()
            plan0, informative_init = problem.initial_coupling(mu, nu)
            runs, outcomes, best, checkpoints, dedup_info = run_portfolio_dedup(
                objective, cfg, plan0, mu, nu, informative_init,
                dedup_tol=self.dedup_tol,
                dedup_interval=self.dedup_interval,
                dedup_tol_start=self.dedup_tol_start,
            )
        result = portfolio_result(
            self.name, outcomes, best, k, checkpoints,
            portfolio_phase_timings(runs, problem.basis_seconds),
            runtime=timer.elapsed,
        )
        result.extras["dedup"] = dedup_info
        return result


class SparsePartitionBackend:
    """Divide-and-conquer backend over :mod:`repro.scale`.

    Partitions both graphs, solves every block pair with a dense
    engine backend (``block_backend``), stitches the block plans into
    a global CSR matrix and runs anchor-based boundary repair.  The
    whole-pair structure bases are never built — the plan stage's
    laziness is what makes one engine front both regimes.
    """

    name = "sparse"
    kind = "sparse"

    def __init__(
        self,
        max_block_size: int = 400,
        min_block_size: int = 8,
        n_parts: int | None = None,
        executor: str = "auto",
        max_workers: int | None = None,
        boundary_repair: bool = True,
        min_agreement: float = 2.0,
        block_init: str = "auto",
        block_backend: str = DEFAULT_BACKEND,
    ):
        self.options = dict(
            max_block_size=max_block_size,
            min_block_size=min_block_size,
            n_parts=n_parts,
            executor=executor,
            max_workers=max_workers,
            boundary_repair=boundary_repair,
            min_agreement=min_agreement,
            block_init=block_init,
            solver_backend=block_backend,
        )

    def solve(self, problem: PreparedProblem):
        # imported lazily: repro.scale pulls in the executor machinery,
        # which routes block solves back through this engine
        from repro.scale.aligner import DivideAndConquerAligner

        aligner = DivideAndConquerAligner(problem.config, **self.options)
        if problem.init_plan is not None:
            raise ConfigError(
                "the sparse backend partitions the pair and cannot consume "
                "a whole-pair init_plan; use a dense backend instead"
            )
        return aligner.fit(problem.source, problem.target)


def _register_builtin_backends() -> None:
    # imported here so the registry owns the import-order: batched.py
    # and partial.py import this module for register_backend
    from repro.engine.batched import BatchedDedupBackend, BatchedRestartBackend
    from repro.engine.mixed import BatchedF32Backend, FusedDenseF32Backend
    from repro.engine.partial import (
        PartialDummyBackend,
        PartialUnbalancedBackend,
    )
    from repro.engine.threaded import ThreadedRestartBackend

    register_backend(
        FusedDenseBackend.name,
        FusedDenseBackend,
        "serial restart portfolio over the fused dense contraction engine "
        "(reference implementation)",
    )
    register_backend(
        BatchedRestartBackend.name,
        BatchedRestartBackend,
        "multi-start portfolio as one stacked-tensor lockstep solve, "
        "bitwise-equal to fused-dense",
    )
    register_backend(
        FusedDenseDedupBackend.name,
        FusedDenseDedupBackend,
        "fused-dense with restart-trajectory dedup: converged-identical "
        "restarts merge and bequeath their iteration budget",
    )
    register_backend(
        BatchedDedupBackend.name,
        BatchedDedupBackend,
        "batched-restart with restart-trajectory dedup, merge-for-merge "
        "equal to fused-dense-dedup",
    )
    register_backend(
        FusedDenseF32Backend.name,
        FusedDenseF32Backend,
        "serial restart portfolio stepped in float32 against a "
        "preallocated workspace; decisions re-evaluated in float64",
    )
    register_backend(
        BatchedF32Backend.name,
        BatchedF32Backend,
        "lockstep-batched float32 portfolio, bitwise-equal to "
        "fused-dense-f32",
    )
    register_backend(
        ThreadedRestartBackend.name,
        ThreadedRestartBackend,
        "restart portfolio fanned across a shared-memory thread pool; "
        "bitwise-equal to the serial backend at either precision",
    )
    register_backend(
        SparsePartitionBackend.name,
        SparsePartitionBackend,
        "divide-and-conquer partition pipeline with sparse stitching and "
        "boundary repair (CSR plans)",
    )
    register_backend(
        PartialDummyBackend.name,
        PartialDummyBackend,
        "partial-overlap portfolio via dummy-mass rows/columns absorbing "
        "the unmatched slack (reduces to fused-dense at mass 1)",
    )
    register_backend(
        PartialUnbalancedBackend.name,
        PartialUnbalancedBackend,
        "partial-overlap portfolio with a KL-relaxed (unbalanced) "
        "Sinkhorn pi-update; mass conservation is soft",
    )


_register_builtin_backends()
