"""Stage 1 of the alignment engine: **plan**.

Planning turns a graph pair plus a :class:`SLOTAlignConfig` into a
:class:`PreparedProblem` — the structure bases (Eq. 6), the marginals
and the initial coupling — without committing to any solver.  Base
construction is routed through a **content-keyed cache**
(:class:`PlanCache`): the cache key is a digest of the graph's actual
adjacency/feature contents plus the view-construction parameters, so

* repeated solves of the same pair (sensitivity sweeps, trajectory
  capture, the partitioned pipeline's diagnostics),
* multi-method tables where several SLOTAlign variants share one view
  configuration, and
* multi-backend comparisons of the same problem

all pay the kernel construction once.  Keying on content rather than
object identity makes the cache safe under the repo's idiom of
rebuilding graph objects per experiment; two structurally identical
graphs hit the same entry no matter how they were loaded.

Cached basis arrays are shared read-only, matching the contract of
:class:`repro.core.objective.JointObjective` (which copies them into
its contiguous stacks at construction).
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SLOTAlignConfig
from repro.core.views import build_structure_bases
from repro.exceptions import GraphError
from repro.graphs.graph import AttributedGraph
from repro.graphs.normalization import row_normalize
from repro.ot.sinkhorn import sinkhorn_log


_VIEW_FIELDS = (
    "n_bases",
    "include_views",
    "normalize_bases",
    "center_kernels",
    "renormalize_hops",
    "hop_mix",
)
"""Config fields that determine the structure bases.

Single source of truth for the cache key *and* the build call: a new
view-affecting knob must be added here and consumed in
:func:`build_bases`, or two configs could silently share a cache entry
(wrong results, no error).
"""


def view_spec(config: SLOTAlignConfig) -> tuple:
    """The subset of the config that determines the structure bases.

    Two configs with equal view specs build bit-identical bases, so
    this tuple (plus the graph content digest) is the cache key.
    Floats enter via ``float.hex()`` so the key is exact, not
    repr-rounded.
    """
    spec = []
    for name in _VIEW_FIELDS:
        value = getattr(config, name)
        if isinstance(value, float):
            value = value.hex()
        elif isinstance(value, (list, tuple)):
            value = tuple(value)
        spec.append(value)
    return tuple(spec)


def build_bases(graph: AttributedGraph, config: SLOTAlignConfig) -> list[np.ndarray]:
    """Build one graph's structure bases from the ``_VIEW_FIELDS``.

    The one place the view-affecting config is consumed — both the
    cache and the uncached path go through here, so the key and the
    construction cannot drift apart.
    """
    return build_structure_bases(
        graph,
        config.n_bases,
        config.include_views,
        config.normalize_bases,
        center_kernels=config.center_kernels,
        renormalize_hops=config.renormalize_hops,
        hop_mix=config.hop_mix,
    )


def graph_digest(graph: AttributedGraph) -> bytes:
    """Content digest of a graph: adjacency structure + feature bytes.

    Node labels are excluded — the basis construction never reads
    them.  The digest is recomputed per call (no staleness risk if a
    caller mutates arrays in place); at stand-in sizes hashing costs
    milliseconds against solver seconds.
    """
    digest = hashlib.sha256()
    adjacency = graph.adjacency
    digest.update(np.int64(adjacency.shape[0]).tobytes())
    digest.update(adjacency.indptr.tobytes())
    digest.update(adjacency.indices.tobytes())
    digest.update(adjacency.data.tobytes())
    if graph.features is None:
        digest.update(b"\x00no-features")
    else:
        features = np.ascontiguousarray(graph.features, dtype=np.float64)
        digest.update(np.asarray(features.shape, dtype=np.int64).tobytes())
        digest.update(features.tobytes())
    return digest.digest()


class _InFlightBuild:
    """Rendezvous for one in-progress basis construction.

    Waiters park on ``event``; the builder publishes either ``bases``
    (frozen, shared directly — valid even when the finished entry is
    too large to cache) or ``error`` before setting the event.
    """

    __slots__ = ("event", "bases", "error")

    def __init__(self):
        self.event = threading.Event()
        self.bases: list[np.ndarray] | None = None
        self.error: BaseException | None = None


class PlanCache:
    """Content-keyed LRU cache of structure-basis lists.

    Entries are keyed on ``(graph_digest, view_spec)`` and evicted
    least-recently-used once the held arrays exceed ``max_bytes``
    (basis tensors dominate the footprint, so the budget is expressed
    in bytes rather than entry counts).

    Thread-safe: the shared process-wide cache is reached from the
    scale pipeline's ``thread`` executor and the serving worker pool,
    so lookups, LRU bookkeeping and eviction run under one lock.
    Basis *construction* happens outside the lock under a
    **single-flight** discipline: the first requester of a key becomes
    its builder, concurrent requesters park on a per-key event and
    receive the builder's arrays when it publishes — a burst of
    identical requests pays for exactly one kernel construction
    (``builds`` counts actual constructions; ``misses`` counts
    requests that found no ready entry, parked waiters included).
    """

    def __init__(self, max_bytes: int = 128 * 1024 * 1024):
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, list[np.ndarray]] = OrderedDict()  #: guarded-by: _lock
        self._bytes = 0  #: guarded-by: _lock
        self._in_flight: dict[tuple, _InFlightBuild] = {}  #: guarded-by: _lock
        self.hits = 0  #: guarded-by: _lock
        self.misses = 0  #: guarded-by: _lock
        self.builds = 0  #: guarded-by: _lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        with self._lock:
            return self._bytes

    def bases_for(
        self, graph: AttributedGraph, config: SLOTAlignConfig
    ) -> list[np.ndarray]:
        """Bases for one graph under one view spec, cached by content.

        Returns a fresh list container per call (so callers may extend
        it, as the KG pipeline does with relation views); the basis
        arrays themselves are shared and must be treated as read-only.

        Concurrent misses on one key are **single-flight**: exactly
        one thread constructs the bases, the rest wait on the in-flight
        build and share its (frozen) arrays — even when the entry is
        too large to retain in the cache afterwards.
        """
        key = (graph_digest(graph), view_spec(config))
        while True:
            with self._lock:
                cached = self._entries.get(key)
                if cached is not None:
                    self.hits += 1
                    self._entries.move_to_end(key)
                    return list(cached)
                self.misses += 1
                flight = self._in_flight.get(key)
                if flight is None:
                    flight = _InFlightBuild()
                    self._in_flight[key] = flight
                    break  # this thread is the builder
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            if flight.bases is not None:
                return list(flight.bases)
            # builder vanished without publishing (should not happen);
            # loop and retry from the cache
        try:
            bases = build_bases(graph, config)
            for basis in bases:
                # enforce the read-only contract before *any* sharing:
                # waiters receive these arrays even when the entry is
                # too large to cache, and an in-place mutation would
                # silently poison every concurrent content-equal solve
                basis.setflags(write=False)
            with self._lock:
                self.builds += 1
                self._store(key, bases)
            flight.bases = bases
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._lock:
                self._in_flight.pop(key, None)
            flight.event.set()
        return list(bases)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def info(self) -> dict:
        """Hit/miss counters and current footprint, for diagnostics."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "builds": self.builds,
            }

    def _store(self, key: tuple, bases: list[np.ndarray]) -> None:  #: requires: _lock
        """Insert under the held lock, evicting LRU past the budget.

        Arrays must already be frozen by the caller (the single-flight
        builder freezes before any sharing happens).
        """
        if key in self._entries:
            return  # a concurrent miss already stored identical bases
        size = sum(basis.nbytes for basis in bases)
        if size > self.max_bytes:
            return  # larger than the whole budget: never cached
        while self._bytes + size > self.max_bytes and self._entries:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= sum(basis.nbytes for basis in evicted)
        self._entries[key] = list(bases)
        self._bytes += size


_SHARED_CACHE: PlanCache | None = None
_SHARED_CACHE_LOCK = threading.Lock()


def shared_plan_cache() -> PlanCache:
    """The process-wide default plan cache (created on first use).

    Creation is guarded by a double-checked lock: two threads racing
    on first use must receive the *same* cache, or cross-request
    sharing (the whole point of the process-wide instance) is silently
    lost for one of them.
    """
    global _SHARED_CACHE
    if _SHARED_CACHE is None:
        with _SHARED_CACHE_LOCK:
            if _SHARED_CACHE is None:
                _SHARED_CACHE = PlanCache()
    return _SHARED_CACHE


def feature_similarity_plan(
    source_features: np.ndarray,
    target_features: np.ndarray,
    mu: np.ndarray,
    nu: np.ndarray,
) -> np.ndarray:
    """Feasible plan built from cross-graph cosine similarity.

    The similarity matrix is sharpened in log domain and Sinkhorn-
    projected onto ``Π(μ, ν)`` so the first π-update starts from a
    valid coupling (paper Sec. V-C initialisation for DBP15K).

    Falls back to the independent coupling when the feature
    dimensionalities differ (similarity is then undefined).
    """
    xs = np.asarray(source_features, dtype=np.float64)
    xt = np.asarray(target_features, dtype=np.float64)
    if xs.shape[1] != xt.shape[1]:
        return np.outer(mu, nu)
    sim = row_normalize(xs) @ row_normalize(xt).T
    log_kernel = sim * 10.0
    result = sinkhorn_log(
        cost=None, mu=mu, nu=nu, max_iter=200, tol=1e-10, log_kernel=log_kernel
    )
    return result.plan


@dataclass
class PreparedProblem:
    """Stage-1 output: everything a solver backend consumes.

    Bases are built lazily through the cache on first access (the
    sparse backend partitions the graphs instead and never triggers
    the whole-pair construction); ``basis_seconds`` records the actual
    construction cost (0.0 on a cache hit or injected bases).
    """

    source: AttributedGraph
    target: AttributedGraph
    config: SLOTAlignConfig
    init_plan: np.ndarray | None = None
    cache: PlanCache | None = None
    basis_seconds: float = 0.0
    anchors: np.ndarray | None = None
    _bases: tuple[list[np.ndarray], list[np.ndarray]] | None = field(
        default=None, repr=False
    )

    def __post_init__(self) -> None:
        if self.anchors is not None:
            anchors = np.asarray(self.anchors, dtype=np.int64).reshape(-1, 2)
            if anchors.size:
                if anchors.min() < 0 or (
                    anchors[:, 0].max() >= self.source.n_nodes
                    or anchors[:, 1].max() >= self.target.n_nodes
                ):
                    raise GraphError("anchor indices out of range for the pair")
            self.anchors = anchors

    @property
    def bases(self) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """``(source_bases, target_bases)``, built through the cache."""
        if self._bases is None:
            t0 = time.perf_counter()
            if self.cache is not None:
                built = (
                    self.cache.bases_for(self.source, self.config),
                    self.cache.bases_for(self.target, self.config),
                )
            else:
                built = (
                    build_bases(self.source, self.config),
                    build_bases(self.target, self.config),
                )
            self.basis_seconds = time.perf_counter() - t0
            self._bases = built
        source_bases, target_bases = self._bases
        if len(source_bases) != len(target_bases):
            raise GraphError(
                "source and target produced different numbers of bases"
            )
        return self._bases

    def inject_bases(
        self, bases: tuple[list[np.ndarray], list[np.ndarray]]
    ) -> None:
        """Use caller-supplied bases (e.g. relation-augmented KG views)."""
        self._bases = (list(bases[0]), list(bases[1]))

    def marginals(self) -> tuple[np.ndarray, np.ndarray]:
        """Uniform marginals sized to the basis dimensions."""
        source_bases, target_bases = self.bases
        n = source_bases[0].shape[0]
        m = target_bases[0].shape[0]
        return np.full(n, 1.0 / n), np.full(m, 1.0 / m)

    def initial_coupling(
        self, mu: np.ndarray, nu: np.ndarray
    ) -> tuple[np.ndarray, bool]:
        """π₁ plus a flag for "informative" (non-uniform) inits.

        Uniform coupling by default; a user-supplied plan or (for the
        KG setting) the feature-similarity initialisation of Sec. V-C
        skips the multi-start portfolio.  When the feature spaces are
        incomparable (different dimensionalities) the similarity init
        degenerates to the uniform coupling, so the flag stays False
        and the multi-start portfolio remains enabled.
        """
        n, m = mu.shape[0], nu.shape[0]
        if self.init_plan is not None:
            plan = np.asarray(self.init_plan, dtype=np.float64)
            if plan.shape != (n, m):
                raise GraphError(
                    f"init_plan must have shape {(n, m)}, got {plan.shape}"
                )
            if plan.min() < 0 or plan.sum() <= 0:
                raise GraphError(
                    "init_plan must be non-negative with positive mass"
                )
            return plan / plan.sum(), True
        if self.config.use_feature_similarity_init:
            if self.source.features is None or self.target.features is None:
                raise GraphError(
                    "feature-similarity init requires features on both graphs"
                )
            if self.source.features.shape[1] != self.target.features.shape[1]:
                return np.outer(mu, nu), False
            return (
                feature_similarity_plan(
                    self.source.features, self.target.features, mu, nu
                ),
                True,
            )
        return np.outer(mu, nu), False


def prepare_problem(
    source: AttributedGraph,
    target: AttributedGraph,
    config: SLOTAlignConfig,
    init_plan: np.ndarray | None = None,
    bases: tuple[list[np.ndarray], list[np.ndarray]] | None = None,
    cache: PlanCache | None = None,
    anchors: np.ndarray | None = None,
) -> PreparedProblem:
    """Run the plan stage for a pair and return the prepared problem.

    ``anchors`` (``k × 2`` source/target pairs) are semi-supervised
    seed correspondences carried on the problem for the partial
    backends; classical backends refuse a problem that has any.
    """
    problem = PreparedProblem(
        source=source,
        target=target,
        config=config,
        init_plan=init_plan,
        cache=cache,
        anchors=anchors,
    )
    if bases is not None:
        problem.inject_bases(bases)
    return problem
