"""The unified alignment engine: plan → solve → decode → evaluate.

:class:`AlignmentEngine` is the one front door every caller goes
through — ``SLOTAlign.fit``, the partitioned block solves, the
experiment drivers and the CLI are all thin shims over it.  Each stage
is explicit and separately callable:

* :meth:`AlignmentEngine.plan` — base/view construction through the
  content-keyed :class:`~repro.engine.planning.PlanCache`;
* :meth:`AlignmentEngine.solve` — dispatch to a registered solver
  backend (``fused-dense`` / ``batched-restart`` / ``sparse``);
* :meth:`AlignmentEngine.decode` — turn the solved transport plan
  into a discrete matching through a registered decoder
  (``row-argmax`` / ``mutual-argmax`` / ``hungarian`` / ``mea``);
* :meth:`AlignmentEngine.evaluate` — the representation-agnostic
  metric adapter.

Batching, caching and new backends therefore land once, here, and
benefit every workload — the seam the ROADMAP's serving ambitions
(async jobs, multi-pair throughput) build on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SLOTAlignConfig
from repro.engine.backends import DEFAULT_BACKEND, get_backend
from repro.engine.decode import DEFAULT_DECODER, DecodedMatching, decode_plan
from repro.engine.precision import (
    DEFAULT_PRECISION,
    backend_for_precision,
    ensure_precision,
)
from repro.engine.evaluate import evaluate_alignment
from repro.engine.planning import (
    PlanCache,
    PreparedProblem,
    prepare_problem,
    shared_plan_cache,
)
from repro.graphs.graph import AttributedGraph

_SHARED = object()
"""Sentinel: "use the process-wide shared plan cache"."""


@dataclass
class EngineRun:
    """One full pipeline pass: the result plus per-stage diagnostics.

    ``decoded`` carries the decode stage's
    :class:`~repro.engine.decode.DecodedMatching` when the run used a
    decoder (``decoder=None`` skips the stage and scores the plan
    posterior directly — the pre-decode pipeline, bit for bit).
    """

    result: object
    metrics: dict[str, float] = field(default_factory=dict)
    stage_seconds: dict[str, float] = field(default_factory=dict)
    decoded: DecodedMatching | None = None


class AlignmentEngine:
    """plan → solve → evaluate pipeline over a solver-backend registry.

    Parameters
    ----------
    config:
        The :class:`SLOTAlignConfig` applied by every stage.
    backend:
        Name of the registered solver backend (see
        :func:`repro.engine.available_backends`); validated lazily at
        solve time so construction never raises on registry changes.
    cache:
        A :class:`PlanCache` for the plan stage.  Defaults to the
        process-wide shared cache; pass ``None`` to disable caching.
    backend_options:
        Keyword arguments forwarded to the backend constructor (e.g.
        the sparse backend's ``n_parts``/``executor``).
    decoder:
        Registered decoder name (see
        :func:`repro.engine.available_decoders`) used by the decode
        stage of :meth:`run`, or ``None`` to skip decoding and score
        the plan posterior directly (the pre-decode behaviour, which
        ``row-argmax`` reproduces bit for bit).  Like ``backend`` it
        is validated lazily, at decode time.
    precision:
        Working precision of the solve stage — ``"float64"`` (the
        default, routing to the bitwise-pinned reference backends
        untouched) or ``"float32"`` (routing through
        :func:`repro.engine.precision.backend_for_precision` to the
        reduced-precision backends).  Validated eagerly so a typo
        fails at construction, not mid-solve.
    """

    def __init__(
        self,
        config: SLOTAlignConfig | None = None,
        backend: str = DEFAULT_BACKEND,
        cache=_SHARED,
        backend_options: dict | None = None,
        decoder: str | None = None,
        precision: str = DEFAULT_PRECISION,
    ):
        self.config = config or SLOTAlignConfig()
        self.backend = backend
        self.cache: PlanCache | None = (
            shared_plan_cache() if cache is _SHARED else cache
        )
        self.backend_options = dict(backend_options or {})
        self.decoder = decoder
        self.precision = ensure_precision(precision).name

    # ------------------------------------------------------------------
    def plan(
        self,
        source: AttributedGraph,
        target: AttributedGraph,
        init_plan: np.ndarray | None = None,
        bases=None,
        anchors: np.ndarray | None = None,
    ) -> PreparedProblem:
        """Stage 1: prepare the problem (bases built lazily, cached).

        ``anchors`` are semi-supervised seed correspondences consumed
        by the partial backends; the classical backends refuse a
        problem that carries any (never silently ignored).
        """
        return prepare_problem(
            source,
            target,
            self.config,
            init_plan=init_plan,
            bases=bases,
            cache=self.cache,
            anchors=anchors,
        )

    def solve(self, problem: PreparedProblem):
        """Stage 2: run the configured solver backend.

        The precision routing happens here, per solve: ``float64`` is
        the identity (the requested backend runs untouched), while
        ``float32`` swaps in the reduced-precision variant and merges
        its routing options under any explicit ``backend_options``
        (explicit options win).
        """
        name, extra = backend_for_precision(self.backend, self.precision)
        backend = get_backend(name, **{**extra, **self.backend_options})
        return backend.solve(problem)

    def decode(self, result, decoder: str | None = None) -> DecodedMatching:
        """Stage 3: discrete matching from the solved plan.

        ``decoder`` overrides the engine's configured decoder for this
        call; with neither set, the registry default
        (``row-argmax``) applies.
        """
        chosen = decoder if decoder is not None else self.decoder
        return decode_plan(result, chosen if chosen is not None else DEFAULT_DECODER)

    def evaluate(
        self, result, ground_truth: np.ndarray, ks=(1, 5, 10, 30),
        with_runtime: bool = False,
    ) -> dict[str, float]:
        """Stage 4: metrics from a plan, result, or decoded matching."""
        return evaluate_alignment(
            result, ground_truth, ks=ks, with_runtime=with_runtime
        )

    # ------------------------------------------------------------------
    def align(
        self,
        source: AttributedGraph,
        target: AttributedGraph,
        init_plan: np.ndarray | None = None,
        bases=None,
        anchors: np.ndarray | None = None,
    ):
        """plan + solve in one call (the ``fit``-shaped entry point)."""
        problem = self.plan(
            source, target, init_plan=init_plan, bases=bases, anchors=anchors
        )
        return self.solve(problem)

    def run(
        self,
        source: AttributedGraph,
        target: AttributedGraph,
        ground_truth: np.ndarray | None = None,
        init_plan: np.ndarray | None = None,
        ks=(1, 5, 10, 30),
        anchors: np.ndarray | None = None,
    ) -> EngineRun:
        """All pipeline stages with per-stage wall-clock accounting.

        The decode stage runs only when the engine was constructed
        with a ``decoder``; without one the plan posterior is scored
        directly and ``stage_seconds`` carries no ``"decode"`` entry —
        the pre-decode-stage pipeline, bit for bit.
        """
        t0 = time.perf_counter()
        problem = self.plan(source, target, init_plan=init_plan, anchors=anchors)
        t1 = time.perf_counter()
        result = self.solve(problem)
        t2 = time.perf_counter()
        decoded = None
        if self.decoder is not None:
            decoded = self.decode(result)
        t_decode = time.perf_counter()
        metrics: dict[str, float] = {}
        if ground_truth is not None:
            metrics = self.evaluate(
                decoded if decoded is not None else result, ground_truth, ks=ks
            )
        t3 = time.perf_counter()
        stage_seconds = {
            "plan": (t1 - t0) + problem.basis_seconds,
            "solve": (t2 - t1) - problem.basis_seconds,
        }
        if decoded is not None:
            stage_seconds["decode"] = t_decode - t2
        stage_seconds["evaluate"] = t3 - t_decode
        return EngineRun(
            result=result,
            metrics=metrics,
            stage_seconds=stage_seconds,
            decoded=decoded,
        )


def align_pair(
    config: SLOTAlignConfig,
    source: AttributedGraph,
    target: AttributedGraph,
    backend: str = DEFAULT_BACKEND,
):
    """Module-level one-shot engine alignment.

    Top-level (picklable) so process pools can ship it to workers —
    the partitioned pipeline's block solves route through here.

    Block solves deliberately bypass the shared plan cache: process
    workers could never see it anyway, so an in-process warm cache
    would make ``serial`` block timings incomparable to pool timings
    (the executor-isolation contract of the scalability bench), and a
    fit's blocks are distinct subgraphs with nothing to share.
    """
    engine = AlignmentEngine(config, backend=backend, cache=None)
    return engine.align(source, target)
