"""The ``batched-restart`` solver backend: one stacked-tensor portfolio.

The serial portfolio advances each restart in turn; on every outer
iteration each restart runs the same tensor program (α-gradient,
simplex projection, π-gradient, KL-proximal Sinkhorn projection) on
its own ``(n, m)`` iterate.  This backend advances **all live restarts
in lockstep**, stacking their iterates into ``(R, n, m)`` tensors so
each per-iteration contraction becomes one batched matmul instead of R
dispatches — on small problems (where BLAS call overhead rivals the
GEMM itself) that amortisation is the Fig. 7-regime win recorded in
``BENCH_solver.json``.

Bitwise contract
----------------
Every restart's iterate sequence is **bit-for-bit identical** to the
serial ``fused-dense`` backend's, because every batched operation used
here is bitwise-equal to its per-slice serial counterpart on the
supported BLAS configurations:

* batched ``matmul`` over a C-contiguous stack — including the
  transposed-view operands ``P.swapaxes(1, 2) @ D`` (transA) and
  ``pt @ P.swapaxes(1, 2)`` (transB) — calls the same per-slice GEMM
  kernels as the 2-D expressions ``P.T @ D`` / ``pt @ P.T``;
* the combined matrices ``D(β)`` are produced by the *same*
  sequential-accumulation :func:`repro.core.views.combine_bases` call
  (via ``JointObjective.combined``) and stacked by exact copy;
* elementwise kernels (log, exp, maximum, divide, broadcasting
  products) are order-independent per element;
* reductions keep the serial shapes: per-restart scalars (norms,
  objective values) are evaluated on contiguous slices with the exact
  serial expressions.

Restart lifecycles stay independent: a restart that converges or is
pruned is compressed out of the stack (sliced copies are exact) and
the survivors' trajectories are unaffected — exactly the property the
serial scheduler has.  ``tests/test_batched_restart.py`` pins the
whole contract across seeds, view counts and early-stopped restarts.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.convergence import IterateHistory
from repro.core.objective import JointObjective
from repro.engine.planning import PreparedProblem
from repro.engine.restarts import (
    DEDUP_TOL_START,
    RunOutcome,
    _apply_dedup,
    build_starts,
    dedup_schedule,
    dedup_tolerance,
    eta_schedule,
    portfolio_result,
    prune_schedule,
    select_best,
)
from repro.exceptions import ConvergenceError
from repro.ot.simplex import project_concatenated_simplices
from repro.ot.sinkhorn import sinkhorn_log_kernel_fast_batched
from repro.utils.timer import Timer


class _BatchedRun:
    """One restart's state between lockstep iterations.

    Each run carries its *own* :class:`JointObjective`: within one
    pair every restart shares the objective instance, while the
    coalesced multi-pair solve (:mod:`repro.engine.coalesce`) stacks
    runs whose objectives belong to different graph pairs.  All
    lockstep tensor work only ever touches a run's own slice, so the
    composition of the batch never changes any run's iterates.
    """

    __slots__ = (
        "label", "objective", "alpha", "plan", "history", "iteration",
        "pruned", "pruned_at", "learn_weights", "elapsed",
        "deduped", "merged_into",
    )

    def __init__(self, label, objective, beta0, learn_weights, plan0):
        self.label = label
        self.objective = objective
        self.alpha = np.concatenate([beta0, beta0])
        self.plan = plan0.copy()
        self.history = IterateHistory()
        self.iteration = 0
        self.pruned = False
        self.pruned_at = None
        self.deduped = False
        self.merged_into = None
        self.learn_weights = learn_weights
        self.elapsed = 0.0

    @property
    def finished(self) -> bool:
        return self.history.converged

    def prune(self) -> None:
        self.pruned = True
        self.pruned_at = self.iteration


class _LockstepPortfolio:
    """Advances a set of restarts iteration-by-iteration, batched.

    The runs may share one objective (the within-pair portfolio) or
    carry one objective each (the cross-pair coalesced solve); the
    only requirements are a common ``(n, m)`` plan shape, common
    marginals and a common config, so the stacked contractions and the
    shared η schedule stay well-defined.
    """

    def __init__(self, config, mu, nu):
        self.config = config
        self.mu = mu
        self.nu = nu
        self.timings = {
            "alpha_update": 0.0, "pi_update": 0.0, "objective_eval": 0.0,
        }

    # ------------------------------------------------------------------
    def advance(
        self,
        runs: list[_BatchedRun],
        target_iteration: int,
        limit: int | None = None,
    ) -> None:
        """Step every live run to ``min(target, max_outer_iter)``.

        ``limit`` overrides the config's outer-iteration cap — the
        dedup backend passes its extended budget so survivors can
        spend a merged clone's freed iterations.
        """
        cap = self.config.max_outer_iter if limit is None else limit
        target = min(target_iteration, cap)
        while True:
            active = [
                run for run in runs
                if not run.pruned and not run.finished
                and run.iteration < target
            ]
            if not active:
                return
            # lockstep invariant: the scheduler only ever advances the
            # whole live set to a common checkpoint, so live runs share
            # one iteration counter
            self._step_all(active)

    def current_objective(self, run: _BatchedRun) -> float:
        t0 = time.perf_counter()
        k = run.objective.n_bases
        value = run.objective.value(
            run.plan, run.alpha[:k], run.alpha[k:]
        )
        self.timings["objective_eval"] += time.perf_counter() - t0
        return value

    def outcome(self, run: _BatchedRun) -> RunOutcome:
        return RunOutcome(
            plan=run.plan,
            alpha=run.alpha,
            objective=self.current_objective(run),
            history=run.history,
            label=run.label,
            pruned=run.pruned,
            iterations=run.iteration,
            deduped=run.deduped,
            merged_into=run.merged_into,
        )

    # ------------------------------------------------------------------
    def _combined_stacks(self, runs: list[_BatchedRun], alphas: list[np.ndarray]):
        """Stacked ``(R, n, n)`` / ``(R, m, m)`` combined matrices.

        Each slice comes from the run's own ``JointObjective.combined``
        — the exact sequential accumulation the serial solver uses —
        and ``np.stack`` copies it bit-for-bit into the batch.
        """
        pairs = []
        for run, alpha in zip(runs, alphas):
            k = run.objective.n_bases
            pairs.append(run.objective.combined(alpha[:k], alpha[k:]))
        return (
            np.stack([d_s for d_s, _ in pairs]),
            np.stack([d_t for _, d_t in pairs]),
        )

    def _step_all(self, active: list[_BatchedRun]) -> None:  #: pinned
        """One outer iteration of Algorithm 1 for every live restart.

        Bitwise-pinned (``repro lint``): this is the lockstep update
        whose per-slice results must stay bit-for-bit equal to the
        serial ``fused-dense`` path.
        """
        cfg = self.config
        iteration = active[0].iteration
        step_start = time.perf_counter()

        plans = np.stack([run.plan for run in active])

        t0 = time.perf_counter()
        new_alphas = [run.alpha for run in active]
        learn_rows = [
            row for row, run in enumerate(active) if run.learn_weights
        ]
        if learn_rows:
            for _ in range(cfg.alpha_steps):
                d_s, d_t = self._combined_stacks(
                    [active[row] for row in learn_rows],
                    [new_alphas[row] for row in learn_rows],
                )
                learn_plans = plans[learn_rows]
                # the three transported matrices of the α-gradient,
                # batched over the learning restarts
                pt = np.matmul(learn_plans, d_t)
                transported_t = np.matmul(pt, learn_plans.swapaxes(1, 2))
                transported_s = np.matmul(
                    np.matmul(learn_plans.swapaxes(1, 2), d_s), learn_plans
                )
                for offset, row in enumerate(learn_rows):
                    run = active[row]
                    k = run.objective.n_bases
                    grad = self._alpha_gradient_from(
                        run,
                        new_alphas[row],
                        transported_t[offset],
                        transported_s[offset],
                    )
                    if cfg.tie_weights:
                        mean = 0.5 * (grad[:k] + grad[k:])
                        grad = np.concatenate([mean, mean])
                    new_alphas[row] = project_concatenated_simplices(
                        new_alphas[row] - cfg.structure_lr * grad, k
                    )
        t1 = time.perf_counter()
        self.timings["alpha_update"] += t1 - t0

        d_s, d_t = self._combined_stacks(active, new_alphas)
        sp = np.matmul(d_s, plans)
        fused_rows = [
            row for row, run in enumerate(active) if run.objective.fused
        ]
        if len(fused_rows) == len(active):
            # symmetric bases: −2(D_s π D_tᵀ + D_sᵀ π D_t) = −4 D_s π D_t
            plan_grads = -4.0 * np.matmul(sp, d_t)
        elif not fused_rows:
            spt = np.matmul(sp, d_t.swapaxes(1, 2))
            plan_grads = -2.0 * (
                spt
                + np.matmul(np.matmul(d_s.swapaxes(1, 2), plans), d_t)
            )
        else:
            # mixed batch (coalesced pairs disagreeing on basis
            # symmetry): each sub-stack gets its own formula on a
            # contiguous fancy-indexed copy — per-slice results are
            # identical to the unmixed branches above
            general_rows = [
                row for row, run in enumerate(active)
                if not run.objective.fused
            ]
            plan_grads = np.empty_like(plans)
            plan_grads[fused_rows] = -4.0 * np.matmul(
                sp[fused_rows], d_t[fused_rows]
            )
            spt = np.matmul(
                sp[general_rows], d_t[general_rows].swapaxes(1, 2)
            )
            plan_grads[general_rows] = -2.0 * (
                spt
                + np.matmul(
                    np.matmul(
                        d_s[general_rows].swapaxes(1, 2), plans[general_rows]
                    ),
                    d_t[general_rows],
                )
            )
        eta = eta_schedule(cfg, iteration)
        log_kernels = (
            np.log(np.maximum(plans, 1e-300)) - plan_grads / eta
        )
        projections = sinkhorn_log_kernel_fast_batched(
            log_kernels,
            self.mu,
            self.nu,
            max_iter=cfg.sinkhorn_iter,
            tol=cfg.sinkhorn_tol,
        )
        t2 = time.perf_counter()
        self.timings["pi_update"] += t2 - t1

        t3 = time.perf_counter()
        for row, run in enumerate(active):
            new_plan = projections[row].plan
            if not np.all(np.isfinite(new_plan)):
                raise ConvergenceError("SLOTAlign plan became non-finite")
            new_alpha = new_alphas[row]
            k = run.objective.n_bases
            alpha_delta = float(np.linalg.norm(new_alpha - run.alpha))
            plan_delta = float(np.linalg.norm(new_plan - run.plan))
            value = (
                run.objective.value(new_plan, new_alpha[:k], new_alpha[k:])
                if cfg.track_history
                else None
            )
            run.history.record(value, alpha_delta, plan_delta)
            run.alpha, run.plan = new_alpha, new_plan
            run.iteration += 1
            if alpha_delta < cfg.alpha_tol and plan_delta < cfg.plan_tol:
                run.history.converged = True
        self.timings["objective_eval"] += time.perf_counter() - t3

        # wall-clock attribution: lockstep work is shared, so each live
        # restart is charged an equal share of the iteration
        share = (time.perf_counter() - step_start) / len(active)
        for run in active:
            run.elapsed += share

    def _alpha_gradient_from(
        self,
        run: _BatchedRun,
        alpha: np.ndarray,
        transported_t: np.ndarray,
        transported_s: np.ndarray,
    ) -> np.ndarray:  #: pinned
        """Per-restart α-gradient assembly (Eq. 11 right-hand side).

        Mirrors ``JointObjective.alpha_gradient`` exactly, with the
        transported matrices supplied by the batched contractions.
        """
        objective = run.objective
        k = objective.n_bases
        beta_s, beta_t = alpha[:k], alpha[k:]
        cross_s = (objective.source_stack * transported_t).sum(axis=(1, 2))
        cross_t = (objective.target_stack * transported_s).sum(axis=(1, 2))
        grad_s = np.empty(k)
        grad_t = np.empty(k)
        for q in range(k):
            grad_s[q] = (
                2.0 / objective.n**2 * float(objective.gram_source[q] @ beta_s)
                - 2.0 * float(cross_s[q])
            )
            grad_t[q] = (
                2.0 / objective.m**2 * float(objective.gram_target[q] @ beta_t)
                - 2.0 * float(cross_t[q])
            )
        return np.concatenate([grad_s, grad_t])


class BatchedRestartBackend:
    """Portfolio backend running every restart as one stacked solve."""

    name = "batched-restart"
    kind = "dense"

    def solve(self, problem: PreparedProblem):
        # imported here, not at module top: backends.py imports this
        # module while registering the builtin backends
        from repro.engine.backends import ensure_classical_problem

        cfg = problem.config
        ensure_classical_problem(problem, self.name)
        with Timer() as timer:
            source_bases, target_bases = problem.bases
            k = len(source_bases)
            objective = JointObjective(
                source_bases, target_bases, fused=cfg.fused_contractions
            )
            mu, nu = problem.marginals()
            plan0, informative_init = problem.initial_coupling(mu, nu)
            starts = build_starts(cfg, k, informative_init)
            runs = [
                _BatchedRun(label, objective, beta0, learn, plan0)
                for label, beta0, learn in starts
            ]
            lockstep = _LockstepPortfolio(cfg, mu, nu)
            checkpoints = prune_schedule(cfg) if len(runs) > 1 else []
            for checkpoint, margin in checkpoints:
                lockstep.advance(runs, checkpoint)
                contenders = {
                    run.label: lockstep.current_objective(run)
                    for run in runs
                    if not run.pruned
                }
                leader = min(contenders.values())
                for run in runs:
                    if (
                        not run.pruned
                        and not run.finished
                        and contenders[run.label] > leader + margin
                    ):
                        run.prune()
            lockstep.advance(runs, cfg.max_outer_iter)

            outcomes = [lockstep.outcome(run) for run in runs]
            best = select_best(outcomes)
        phase_timings = {
            "basis_build": problem.basis_seconds,
            "alpha_update": lockstep.timings["alpha_update"],
            "pi_update": lockstep.timings["pi_update"],
            "objective_eval": lockstep.timings["objective_eval"],
            "per_restart": {run.label: run.elapsed for run in runs},
        }
        return portfolio_result(
            self.name, outcomes, best, k, checkpoints, phase_timings,
            runtime=timer.elapsed,
        )


class BatchedDedupBackend(BatchedRestartBackend):
    """Lockstep portfolio with restart-trajectory dedup.

    The same stacked-tensor solve as ``batched-restart``, with the
    :func:`~repro.engine.restarts.dedup_schedule` checkpoints merged
    into the pruning event stream: restarts whose couplings have
    converged onto an earlier restart's (within ``dedup_tol`` relative
    Frobenius distance) are dropped from the stack and their remaining
    iteration budget is split among the survivors, which may then run
    past ``max_outer_iter``.  A merge changes which trajectories exist,
    so this is a separately-registered backend (the registry's
    never-silently-replace rule); when no merge fires it is bit-for-bit
    ``batched-restart`` — and, merge for merge, bit-for-bit the serial
    ``fused-dense-dedup`` portfolio.
    """

    name = "batched-dedup"
    kind = "dense"

    def __init__(
        self,
        dedup_tol: float = 1e-5,
        dedup_interval: int | None = None,
        dedup_tol_start: float = DEDUP_TOL_START,
    ):
        self.dedup_tol = dedup_tol
        self.dedup_interval = dedup_interval
        self.dedup_tol_start = dedup_tol_start

    def solve(self, problem: PreparedProblem):
        from repro.engine.backends import ensure_classical_problem

        cfg = problem.config
        ensure_classical_problem(problem, self.name)
        with Timer() as timer:
            source_bases, target_bases = problem.bases
            k = len(source_bases)
            objective = JointObjective(
                source_bases, target_bases, fused=cfg.fused_contractions
            )
            mu, nu = problem.marginals()
            plan0, informative_init = problem.initial_coupling(mu, nu)
            starts = build_starts(cfg, k, informative_init)
            runs = [
                _BatchedRun(label, objective, beta0, learn, plan0)
                for label, beta0, learn in starts
            ]
            lockstep = _LockstepPortfolio(cfg, mu, nu)
            checkpoints = prune_schedule(cfg) if len(runs) > 1 else []
            dedup_points = (
                dedup_schedule(cfg, self.dedup_interval) if len(runs) > 1 else []
            )
            # dedup fires before pruning at a shared iteration, exactly
            # as in the serial run_portfolio_dedup event stream
            events = sorted(
                [(iteration, 0, None) for iteration in dedup_points]
                + [(iteration, 1, margin) for iteration, margin in checkpoints]
            )
            tolerance_schedule = [
                (
                    iteration,
                    dedup_tolerance(
                        iteration, cfg.max_outer_iter,
                        self.dedup_tol, self.dedup_tol_start,
                    ),
                )
                for iteration in dedup_points
            ]
            tolerance_at = dict(tolerance_schedule)
            merges: list[dict] = []
            for iteration, kind, margin in events:
                lockstep.advance(runs, iteration)
                if kind == 0:
                    merges.extend(
                        _apply_dedup(
                            runs, tolerance_at[iteration], cfg.max_outer_iter
                        )
                    )
                    continue
                contenders = {
                    run.label: lockstep.current_objective(run)
                    for run in runs
                    if not run.pruned
                }
                leader = min(contenders.values())
                for run in runs:
                    if (
                        not run.pruned
                        and not run.finished
                        and contenders[run.label] > leader + margin
                    ):
                        run.prune()
            freed = sum(merge["freed"] for merge in merges)
            survivors = [
                run for run in runs if not run.pruned and not run.finished
            ]
            extension = 0
            if freed and survivors:
                extension = min(freed // len(survivors), cfg.max_outer_iter)
            budget = cfg.max_outer_iter + extension
            lockstep.advance(runs, budget, limit=budget)

            outcomes = [lockstep.outcome(run) for run in runs]
            best = select_best(outcomes)
        phase_timings = {
            "basis_build": problem.basis_seconds,
            "alpha_update": lockstep.timings["alpha_update"],
            "pi_update": lockstep.timings["pi_update"],
            "objective_eval": lockstep.timings["objective_eval"],
            "per_restart": {run.label: run.elapsed for run in runs},
        }
        result = portfolio_result(
            self.name, outcomes, best, k, checkpoints, phase_timings,
            runtime=timer.elapsed,
        )
        result.extras["dedup"] = {
            "tolerance": self.dedup_tol,
            "tolerance_start": self.dedup_tol_start,
            "tolerance_schedule": tolerance_schedule,
            "checkpoints": dedup_points,
            "merges": merges,
            "freed_iterations": freed,
            "extension": extension,
        }
        return result
