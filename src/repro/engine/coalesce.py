"""Batch-coalescing entry point: many small pairs, one stacked solve.

The serving layer receives bursts of *independent* alignment requests
whose problems are frequently tiny and identically shaped (same
``(n, m)``, same config).  Solving them one by one repeats the
``batched-restart`` story at a higher level: every per-iteration
contraction is dispatched once per pair, and on small problems the
BLAS call overhead rivals the GEMM itself.  :func:`solve_coalesced`
stacks the restarts of **all** pairs into one lockstep batch — the
``(B, n, m)`` generalisation of the within-pair ``(R, n, m)`` stack —
so one outer iteration of Algorithm 1 advances every restart of every
pair with single batched matmuls.

Bitwise contract
----------------
Each pair's result is **bit-for-bit** what a direct single-pair engine
run produces, for the same reason the ``batched-restart`` backend is
bitwise-equal to the serial portfolio: every lockstep operation either
acts on a run's own contiguous slice with the exact serial expression,
or is a batched matmul that calls the same per-slice GEMM kernels as
the 2-D code.  A run's iterates therefore never depend on what else is
in the batch; coalescing is pure scheduling.  Portfolio pruning is
applied *within* each pair's restart group (never across pairs), with
the same checkpoints and margins the single-pair scheduler uses.

Coalescibility (:func:`coalescible`) requires an identical config
(shared η schedule, prune schedule and tolerances), identical plan
shape (the stack and the shared uniform marginals), and a dense
problem; pairs may differ in content, features and initial coupling.
"""

from __future__ import annotations

from repro.core.objective import JointObjective
from repro.engine.batched import _BatchedRun, _LockstepPortfolio
from repro.engine.planning import PreparedProblem
from repro.engine.precision import DEFAULT_PRECISION, ensure_precision
from repro.engine.restarts import (
    build_starts,
    portfolio_result,
    prune_schedule,
    select_best,
)
from repro.exceptions import ConfigError
from repro.utils.timer import Timer

COALESCED_BACKEND = "coalesced"
"""Backend label stamped on results produced by a coalesced solve."""


def coalescible(a: PreparedProblem, b: PreparedProblem) -> bool:
    """Whether two prepared problems can share one lockstep batch.

    Requires equal configs (the η/prune schedules and tolerances are
    shared across the batch) and equal plan shapes (one ``(B, n, m)``
    stack, one pair of uniform marginals).  Contents may differ.
    """
    return (
        a.config == b.config
        and a.source.n_nodes == b.source.n_nodes
        and a.target.n_nodes == b.target.n_nodes
    )


def solve_coalesced(problems: list[PreparedProblem], precision: str = DEFAULT_PRECISION):
    """Solve several same-shape problems as one stacked lockstep batch.

    Returns one :class:`~repro.core.result.AlignmentResult` per input
    problem, in order, each bit-for-bit equal to a direct single-pair
    solve of that problem **at the same precision** (see the module
    docstring) — ``float32`` batches step through the mixed-precision
    lockstep and match a single-pair ``batched-f32`` solve bit for
    bit.  Problems solved at different precisions must never share a
    batch (the serving layer keys admission on it).
    """
    if not problems:
        return []
    resolved = ensure_precision(precision)
    if resolved.name != DEFAULT_PRECISION:
        return _solve_coalesced_mixed(problems, resolved)
    cfg = problems[0].config
    for problem in problems[1:]:
        if not coalescible(problems[0], problem):
            raise ConfigError(
                "coalesced solve requires identical configs and plan "
                "shapes across all problems"
            )
    with Timer() as timer:
        groups: list[tuple[int, list[_BatchedRun]]] = []
        mu = nu = None
        for problem in problems:
            source_bases, target_bases = problem.bases
            k = len(source_bases)
            objective = JointObjective(
                source_bases, target_bases, fused=cfg.fused_contractions
            )
            mu, nu = problem.marginals()
            plan0, informative_init = problem.initial_coupling(mu, nu)
            starts = build_starts(cfg, k, informative_init)
            runs = [
                _BatchedRun(label, objective, beta0, learn, plan0)
                for label, beta0, learn in starts
            ]
            groups.append((k, runs))
        all_runs = [run for _, runs in groups for run in runs]
        lockstep = _LockstepPortfolio(cfg, mu, nu)
        # one shared advance schedule; pruning stays within each
        # pair's restart group, exactly as the single-pair scheduler
        # decides it (groups of one never prune, as in the backends)
        schedule = (
            prune_schedule(cfg)
            if any(len(runs) > 1 for _, runs in groups)
            else []
        )
        for checkpoint, margin in schedule:
            lockstep.advance(all_runs, checkpoint)
            for _, runs in groups:
                if len(runs) <= 1:
                    continue
                contenders = {
                    run.label: lockstep.current_objective(run)
                    for run in runs
                    if not run.pruned
                }
                leader = min(contenders.values())
                for run in runs:
                    if (
                        not run.pruned
                        and not run.finished
                        and contenders[run.label] > leader + margin
                    ):
                        run.prune()
        lockstep.advance(all_runs, cfg.max_outer_iter)

    results = []
    for index, (k, runs) in enumerate(groups):
        outcomes = [lockstep.outcome(run) for run in runs]
        best = select_best(outcomes)
        checkpoints = prune_schedule(cfg) if len(runs) > 1 else []
        phase_timings = {
            "basis_build": problems[index].basis_seconds,
            # lockstep phase totals are shared across the batch; the
            # per-restart shares below are this pair's own attribution
            "alpha_update": lockstep.timings["alpha_update"],
            "pi_update": lockstep.timings["pi_update"],
            "objective_eval": lockstep.timings["objective_eval"],
            "per_restart": {run.label: run.elapsed for run in runs},
        }
        result = portfolio_result(
            COALESCED_BACKEND, outcomes, best, k, checkpoints,
            phase_timings, runtime=sum(run.elapsed for run in runs),
        )
        result.extras["coalesced"] = {
            "batch_size": len(problems),
            "batch_index": index,
            "batch_runtime": timer.elapsed,
        }
        results.append(result)
    return results


def _solve_coalesced_mixed(problems: list[PreparedProblem], precision):
    """The float32 coalesced branch: one mixed-precision lockstep.

    Same batch admission, advance schedule and within-pair pruning as
    the float64 branch; stepping goes through
    :class:`~repro.engine.mixed._MixedLockstep`, whose per-slice GEMM
    contract makes each pair's result bit-for-bit a single-pair
    ``batched-f32`` solve of that problem.
    """
    from repro.engine.mixed import MixedRun, _MixedLockstep

    cfg = problems[0].config
    for problem in problems[1:]:
        if not coalescible(problems[0], problem):
            raise ConfigError(
                "coalesced solve requires identical configs and plan "
                "shapes across all problems"
            )
    with Timer() as timer:
        # collect per-problem start recipes first: the mixed runs need
        # the shared lockstep (sized to the whole batch) at construction
        recipes = []
        mu = nu = None
        total = 0
        for problem in problems:
            source_bases, target_bases = problem.bases
            k = len(source_bases)
            objective = JointObjective(
                source_bases, target_bases, fused=cfg.fused_contractions
            )
            mu, nu = problem.marginals()
            plan0, informative_init = problem.initial_coupling(mu, nu)
            starts = build_starts(cfg, k, informative_init)
            recipes.append((k, objective, plan0, starts))
            total += len(starts)
        lockstep = _MixedLockstep(
            cfg, mu, nu, capacity=total, precision=precision
        )
        groups: list[tuple[int, list[MixedRun]]] = []
        for k, objective, plan0, starts in recipes:
            runs = [
                MixedRun(lockstep, objective, cfg, beta0, learn, plan0, label)
                for label, beta0, learn in starts
            ]
            groups.append((k, runs))
        all_runs = [run for _, runs in groups for run in runs]
        schedule = (
            prune_schedule(cfg)
            if any(len(runs) > 1 for _, runs in groups)
            else []
        )
        for checkpoint, margin in schedule:
            lockstep.advance(all_runs, checkpoint)
            for _, runs in groups:
                if len(runs) <= 1:
                    continue
                contenders = {
                    run.label: run.current_objective()
                    for run in runs
                    if not run.pruned
                }
                leader = min(contenders.values())
                for run in runs:
                    if run.active and contenders[run.label] > leader + margin:
                        run.prune()
        lockstep.advance(all_runs, cfg.max_outer_iter)

    results = []
    for index, (k, runs) in enumerate(groups):
        outcomes = [run.outcome() for run in runs]
        best = select_best(outcomes)
        checkpoints = prune_schedule(cfg) if len(runs) > 1 else []
        phase_timings = {
            "basis_build": problems[index].basis_seconds,
            "alpha_update": sum(r.timings["alpha_update"] for r in runs),
            "pi_update": sum(r.timings["pi_update"] for r in runs),
            "objective_eval": sum(r.timings["objective_eval"] for r in runs),
            "per_restart": {run.label: run.elapsed for run in runs},
        }
        result = portfolio_result(
            COALESCED_BACKEND, outcomes, best, k, checkpoints,
            phase_timings, runtime=sum(run.elapsed for run in runs),
        )
        result.extras["precision"] = precision.name
        result.extras["coalesced"] = {
            "batch_size": len(problems),
            "batch_index": index,
            "batch_runtime": timer.elapsed,
        }
        results.append(result)
    return results
