"""Reduced-precision (float32) portfolio stepping over a workspace.

This module implements the solve stage of the float32 precision mode
(:mod:`repro.engine.precision`): the same restart portfolio policy as
the reference backends, with the per-iteration tensor contractions
executed in float32 against a preallocated
:class:`~repro.ot.workspace.Workspace`.

Precision split (what stays float64)
------------------------------------
* the **α iterate**, its simplex projection and the K-dimensional
  gradient assembly (Gram terms) — K-vectors cost nothing and the
  simplex geometry is tolerance-sensitive;
* the **combined matrices** ``D_s``/``D_t``, produced once per weight
  iterate by the pinned float64 :meth:`JointObjective.combined` cache
  and then *cast* into workspace buffers — so float32 runs see a
  rounded image of exactly the reference combination;
* every **decision value**: pruning comparisons, history values and
  the final selection re-evaluate the float64 objective on a float64
  cast of the float32 plan (:meth:`MixedRun.current_objective`).

Everything plan-shaped — the transported products, the plan gradient,
the log kernel and the Sinkhorn projection
(:func:`~repro.ot.sinkhorn.sinkhorn_log_kernel_fast_workspace`) — runs
in float32 through ``out=``-targeted calls into workspace buffers.

Equivalence contract
--------------------
``fused-dense-f32`` advances each run one at a time and
``batched-f32`` advances them in lockstep, but both express every
contraction as *per-slice* GEMMs into stack buffers, so the two
backends are bit-for-bit identical to **each other** (pinned by
``tests/test_precision.py``) while both differ from the float64
reference by rounding.  The lockstep object is safe for concurrent
``advance`` calls over *disjoint* run sets: all mutable scratch lives
in per-thread workspaces leased from the arena, which is how
``threaded-restart`` shares one instance across its pool.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import SLOTAlignConfig
from repro.core.convergence import IterateHistory
from repro.core.objective import JointObjective
from repro.core.result import AlignmentResult
from repro.engine.precision import FLOAT32, SolverPrecision, ensure_precision
from repro.engine.restarts import (
    RunOutcome,
    eta_schedule,
    portfolio_phase_timings,
    portfolio_result,
    run_portfolio,
)
from repro.exceptions import ConvergenceError
from repro.ot.simplex import project_concatenated_simplices
from repro.ot.sinkhorn import _flush_constants, sinkhorn_log_kernel_fast_workspace
from repro.ot.workspace import WorkspaceArena
from repro.utils.timer import Timer


class MixedRun:
    """One restart stepped in reduced precision.

    Interface-compatible with :class:`repro.engine.restarts.RestartRun`
    (``step_until`` / ``current_objective`` / ``prune`` / ``outcome`` /
    ``active``), so the serial portfolio scheduler drives it
    unchanged.  The plan iterate lives in a per-run float32 buffer;
    stepping is delegated to the shared :class:`_MixedLockstep`.
    """

    def __init__(
        self,
        lockstep: "_MixedLockstep",
        objective: JointObjective,
        config: SLOTAlignConfig,
        beta0: np.ndarray,
        learn_weights: bool,
        plan0: np.ndarray,
        label: str,
    ):
        self._lockstep = lockstep
        self.objective = objective
        self.config = config
        self.learn_weights = learn_weights
        self.label = label
        self.k = objective.n_bases
        beta0 = np.asarray(beta0, dtype=np.float64)
        self.alpha = np.concatenate([beta0, beta0])
        self.plan = np.array(plan0, dtype=lockstep.dtype)
        self.history = IterateHistory()
        self.iteration = 0
        self.pruned = False
        self.pruned_at: int | None = None
        self.deduped = False
        self.merged_into: str | None = None
        self.max_iterations = config.max_outer_iter
        self.elapsed = 0.0
        self.timings = {"alpha_update": 0.0, "pi_update": 0.0, "objective_eval": 0.0}

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.history.converged or self.iteration >= self.max_iterations

    @property
    def active(self) -> bool:
        return not self.pruned and not self.finished

    def step_until(self, target_iteration: int) -> None:
        self._lockstep.advance([self], target_iteration)

    def current_objective(self) -> float:
        """Float64 objective at the float32 iterate.

        Decision values (pruning, selection) are always evaluated in
        float64 — the fresh cast also sidesteps the objective's
        identity-keyed product memo, which must never see the mutable
        per-run buffer.
        """
        t0 = time.perf_counter()
        plan64 = self.plan.astype(np.float64)
        value = self.objective.value(plan64, self.alpha[:self.k], self.alpha[self.k:])
        self.timings["objective_eval"] += time.perf_counter() - t0
        return value

    def prune(self) -> None:
        self.pruned = True
        self.pruned_at = self.iteration

    def outcome(self) -> RunOutcome:
        return RunOutcome(
            plan=self.plan.astype(np.float64),
            alpha=self.alpha,
            objective=self.current_objective(),
            history=self.history,
            label=self.label,
            pruned=self.pruned,
            iterations=self.iteration,
            deduped=self.deduped,
            merged_into=self.merged_into,
        )


class _MixedLockstep:
    """Steps stacks of :class:`MixedRun` against leased workspaces.

    One instance per solve.  Holds no per-step mutable state of its
    own: every scratch array comes from the arena's per-thread
    workspace, so concurrent ``advance`` calls over disjoint run sets
    (the threaded strategy) cannot alias buffers.
    """

    def __init__(
        self,
        config: SLOTAlignConfig,
        mu: np.ndarray,
        nu: np.ndarray,
        capacity: int,
        precision: str | SolverPrecision = FLOAT32,
        arena: WorkspaceArena | None = None,
    ):
        self.config = config
        self.precision = ensure_precision(precision)
        self.dtype = self.precision.dtype
        self.mu = np.asarray(mu, dtype=np.float64)
        self.nu = np.asarray(nu, dtype=np.float64)
        self.n = self.mu.shape[0]
        self.m = self.nu.shape[0]
        self.capacity = max(1, int(capacity))
        self.arena = arena if arena is not None else WorkspaceArena()
        self.sinkhorn_tol = self.precision.effective_sinkhorn_tol(
            config.sinkhorn_tol
        )
        _, self.log_tiny = _flush_constants(self.dtype)

    # ------------------------------------------------------------------
    def advance(self, runs, target_iteration: int, limit: int | None = None) -> None:
        """Advance ``runs`` toward ``target_iteration`` in lockstep."""
        steps = 0
        while limit is None or steps < limit:
            active = [
                run
                for run in runs
                if run.active
                and run.iteration < min(target_iteration, run.max_iterations)
            ]
            if not active:
                return
            self._step_all(active)
            steps += 1

    # ------------------------------------------------------------------
    def _step_all(self, active) -> None:  #: pinned
        """One outer iteration for every run in ``active``.

        Every contraction is a per-slice GEMM/ufunc into a workspace
        stack buffer, so a batch step and the equivalent sequence of
        single-run steps issue identical instruction sequences — the
        basis of the ``fused-dense-f32`` ↔ ``batched-f32`` bitwise
        contract (pinned by ``repro lint``; divergent variants register
        a new backend name).
        """
        cfg = self.config
        r = len(active)
        ws = self.arena.lease(self.capacity, self.n, self.m, self.dtype)
        ws.set_marginals(self.mu, self.nu)
        t0 = time.perf_counter()
        plans = ws.plans[:r]
        for i, run in enumerate(active):
            np.copyto(plans[i], run.plan)
        new_alphas = [run.alpha for run in active]
        learn = [i for i, run in enumerate(active) if run.learn_weights]
        n_learn = len(learn)
        # the build_starts order keeps the frozen restarts last, so the
        # learned rows are normally a contiguous prefix and the four
        # transported products batch into stacked GEMMs; per-slice GEMMs
        # into the same buffers are the bitwise-equal fallback
        learn_prefix = learn == list(range(n_learn))
        for _ in range(cfg.alpha_steps if learn else 0):
            for i in learn:
                run = active[i]
                alpha = new_alphas[i]
                d_s, d_t = run.objective.combined(alpha[:run.k], alpha[run.k:])
                np.copyto(ws.d_s[i], d_s, casting="same_kind")
                np.copyto(ws.d_t[i], d_t, casting="same_kind")
            if learn_prefix:
                lp = plans[:n_learn]
                lp_t = lp.swapaxes(1, 2)
                np.matmul(lp, ws.d_t[:n_learn], out=ws.pt[:n_learn])
                np.matmul(ws.pt[:n_learn], lp_t, out=ws.transported_t[:n_learn])
                np.matmul(lp_t, ws.d_s[:n_learn], out=ws.tp[:n_learn])
                np.matmul(ws.tp[:n_learn], lp, out=ws.transported_s[:n_learn])
            else:
                for i in learn:
                    np.matmul(plans[i], ws.d_t[i], out=ws.pt[i])
                    np.matmul(ws.pt[i], plans[i].T, out=ws.transported_t[i])
                    np.matmul(plans[i].T, ws.d_s[i], out=ws.tp[i])
                    np.matmul(ws.tp[i], plans[i], out=ws.transported_s[i])
            for i in learn:
                run = active[i]
                obj = run.objective
                k = run.k
                alpha = new_alphas[i]
                stack_s = ws.cast("source_stack", obj.source_stack)
                stack_t = ws.cast("target_stack", obj.target_stack)
                cross_s = np.einsum(
                    "qij,ij->q",
                    stack_s,
                    ws.transported_t[i],
                    optimize=ws.einsum_path("qij,ij->q", stack_s, ws.transported_t[i]),
                ).astype(np.float64)
                cross_t = np.einsum(
                    "qij,ij->q",
                    stack_t,
                    ws.transported_s[i],
                    optimize=ws.einsum_path("qij,ij->q", stack_t, ws.transported_s[i]),
                ).astype(np.float64)
                grad_s = (
                    2.0 / obj.n**2 * (obj.gram_source @ alpha[:k]) - 2.0 * cross_s
                )
                grad_t = (
                    2.0 / obj.m**2 * (obj.gram_target @ alpha[k:]) - 2.0 * cross_t
                )
                grad = np.concatenate([grad_s, grad_t])
                if cfg.tie_weights:
                    mean = 0.5 * (grad[:k] + grad[k:])
                    grad = np.concatenate([mean, mean])
                new_alphas[i] = project_concatenated_simplices(
                    alpha - cfg.structure_lr * grad, k
                )
        t1 = time.perf_counter()
        for i, run in enumerate(active):
            alpha = new_alphas[i]
            d_s, d_t = run.objective.combined(alpha[:run.k], alpha[run.k:])
            np.copyto(ws.d_s[i], d_s, casting="same_kind")
            np.copyto(ws.d_t[i], d_t, casting="same_kind")
        etas = np.array(
            [eta_schedule(cfg, run.iteration) for run in active], dtype=self.dtype
        ).reshape(r, 1, 1)
        fused_rows = [run.objective.fused for run in active]
        if all(fused_rows):
            # symmetric bases: ∂F/∂π = −4 D_s π D_t, whole stack at once
            np.matmul(ws.d_s[:r], plans, out=ws.sp[:r])
            np.matmul(ws.sp[:r], ws.d_t[:r], out=ws.grad[:r])
            np.multiply(ws.grad[:r], -4.0, out=ws.grad[:r])
        elif not any(fused_rows):
            # general: −2 (D_s π D_tᵀ + D_sᵀ π D_t)
            np.matmul(ws.d_s[:r], plans, out=ws.sp[:r])
            np.matmul(ws.sp[:r], ws.d_t[:r].swapaxes(1, 2), out=ws.grad[:r])
            np.matmul(ws.d_s[:r].swapaxes(1, 2), plans, out=ws.pt[:r])
            np.matmul(ws.pt[:r], ws.d_t[:r], out=ws.sp[:r])
            np.add(ws.grad[:r], ws.sp[:r], out=ws.grad[:r])
            np.multiply(ws.grad[:r], -2.0, out=ws.grad[:r])
        else:
            # mixed coalesced batch: per-slice GEMMs, same per the
            # stacked-matmul contract
            for i, run in enumerate(active):
                np.matmul(ws.d_s[i], plans[i], out=ws.sp[i])
                if run.objective.fused:
                    np.matmul(ws.sp[i], ws.d_t[i], out=ws.grad[i])
                    np.multiply(ws.grad[i], -4.0, out=ws.grad[i])
                else:
                    np.matmul(ws.sp[i], ws.d_t[i].T, out=ws.grad[i])
                    np.matmul(ws.d_s[i].T, plans[i], out=ws.pt[i])
                    np.matmul(ws.pt[i], ws.d_t[i], out=ws.sp[i])
                    np.add(ws.grad[i], ws.sp[i], out=ws.grad[i])
                    np.multiply(ws.grad[i], -2.0, out=ws.grad[i])
        np.divide(ws.grad[:r], etas, out=ws.grad[:r])
        log_kernel = ws.log_kernel[:r]
        np.maximum(plans, self.log_tiny, out=log_kernel)
        np.log(log_kernel, out=log_kernel)
        np.subtract(log_kernel, ws.grad[:r], out=log_kernel)
        sinkhorn_log_kernel_fast_workspace(
            ws, r, max_iter=cfg.sinkhorn_iter, tol=self.sinkhorn_tol
        )
        new_plans = ws.new_plans[:r]
        if not np.all(np.isfinite(new_plans)):
            raise ConvergenceError("SLOTAlign plan became non-finite")
        t2 = time.perf_counter()
        for i, run in enumerate(active):
            alpha_delta = float(np.linalg.norm(new_alphas[i] - run.alpha))
            np.subtract(new_plans[i], plans[i], out=ws.grad[i])
            plan_delta = float(np.linalg.norm(ws.grad[i]))
            value = None
            if cfg.track_history:
                plan64 = new_plans[i].astype(np.float64)
                k = run.k
                value = run.objective.value(
                    plan64, new_alphas[i][:k], new_alphas[i][k:]
                )
            run.history.record(value, alpha_delta, plan_delta)
            run.alpha = new_alphas[i]
            np.copyto(run.plan, new_plans[i])
            run.iteration += 1
            if alpha_delta < cfg.alpha_tol and plan_delta < cfg.plan_tol:
                run.history.converged = True
        t3 = time.perf_counter()
        alpha_share = (t1 - t0) / r
        pi_share = (t2 - t1) / r
        eval_share = (t3 - t2) / r
        for run in active:
            run.timings["alpha_update"] += alpha_share
            run.timings["pi_update"] += pi_share
            run.timings["objective_eval"] += eval_share
            run.elapsed += alpha_share + pi_share + eval_share


def _solve_portfolio_mixed(
    backend_name: str,
    problem,
    precision: str | SolverPrecision,
    arena: WorkspaceArena | None,
    batched: bool,
) -> AlignmentResult:
    """Shared solve body of the two reduced-precision dense backends."""
    from repro.engine.backends import ensure_classical_problem
    from repro.engine.restarts import build_starts, prune_schedule, select_best

    cfg = problem.config
    ensure_classical_problem(problem, backend_name)
    with Timer() as timer:
        source_bases, target_bases = problem.bases
        k = len(source_bases)
        objective = JointObjective(
            source_bases, target_bases, fused=cfg.fused_contractions
        )
        mu, nu = problem.marginals()
        plan0, informative_init = problem.initial_coupling(mu, nu)
        starts = build_starts(cfg, objective.n_bases, informative_init)
        lockstep = _MixedLockstep(
            cfg, mu, nu, capacity=len(starts), precision=precision, arena=arena
        )
        if not batched:
            # serial scheduling: reuse the reference portfolio loop,
            # advancing one run at a time through the lockstep
            def factory(objective, config, beta0, learn, plan0, mu, nu, label):
                return MixedRun(
                    lockstep, objective, config, beta0, learn, plan0, label
                )

            runs, outcomes, best, checkpoints = run_portfolio(
                objective, cfg, plan0, mu, nu, informative_init, run_factory=factory
            )
        else:
            runs = [
                MixedRun(lockstep, objective, cfg, beta0, learn, plan0, label)
                for label, beta0, learn in starts
            ]
            checkpoints = prune_schedule(cfg) if len(runs) > 1 else []
            for checkpoint, margin in checkpoints:
                lockstep.advance(runs, checkpoint)
                contenders = {
                    run.label: run.current_objective()
                    for run in runs
                    if not run.pruned
                }
                leader = min(contenders.values())
                for run in runs:
                    if run.active and contenders[run.label] > leader + margin:
                        run.prune()
            lockstep.advance(runs, cfg.max_outer_iter)
            outcomes = [run.outcome() for run in runs]
            best = select_best(outcomes)
    result = portfolio_result(
        backend_name, outcomes, best, k, checkpoints,
        portfolio_phase_timings(runs, problem.basis_seconds),
        runtime=timer.elapsed,
    )
    result.extras["precision"] = ensure_precision(precision).name
    return result


class FusedDenseF32Backend:
    """Serial restart portfolio stepped in float32 (new name, opt-in).

    Same starts, same checkpoints, same scheduling loop as
    ``fused-dense``; the per-iteration contractions run in float32
    against a preallocated workspace and all decision values are
    re-evaluated in float64.  Registered separately per the
    never-silently-replace rule — results differ from the reference by
    rounding.
    """

    name = "fused-dense-f32"
    kind = "dense"

    def __init__(self, arena: WorkspaceArena | None = None):
        self.arena = arena

    def solve(self, problem):
        return _solve_portfolio_mixed(
            self.name, problem, FLOAT32, self.arena, batched=False
        )


class BatchedF32Backend(FusedDenseF32Backend):
    """Lockstep-batched float32 portfolio, bitwise-equal to
    ``fused-dense-f32`` (both express every contraction as per-slice
    GEMMs — see the module docstring)."""

    name = "batched-f32"
    kind = "dense"

    def solve(self, problem):
        return _solve_portfolio_mixed(
            self.name, problem, FLOAT32, self.arena, batched=True
        )


__all__ = [
    "BatchedF32Backend",
    "FusedDenseF32Backend",
    "MixedRun",
    "_MixedLockstep",
]
