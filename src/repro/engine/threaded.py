"""Threaded shared-memory restart strategy (``threaded-restart``).

The process-pool block executor of :mod:`repro.scale` *loses* on this
workload (serialising graphs across processes costs more than the
solve), but the restart portfolio is embarrassingly parallel at the
run level and NumPy's BLAS calls release the GIL — so a
:class:`~concurrent.futures.ThreadPoolExecutor` over the *same
address space* can overlap the per-restart GEMMs with zero pickling.

Strategy
--------
Between portfolio checkpoints every active run's ``step_until`` is
submitted to the pool; pruning decisions then happen on the main
thread exactly as in the serial scheduler, so the portfolio policy
(starts, checkpoints, margins) is untouched.  Each run's trajectory is
a deterministic function of its own state:

* in **float64** mode the runs are plain
  :class:`~repro.engine.restarts.RestartRun` objects — shared
  :class:`JointObjective` caches only ever serve values that are
  bitwise-deterministic recomputations, so the result is bit-for-bit
  ``fused-dense`` at any worker count;
* in **float32** mode the runs are :class:`~repro.engine.mixed.MixedRun`
  over one shared :class:`~repro.engine.mixed._MixedLockstep`, whose
  scratch comes from per-thread workspaces
  (:class:`~repro.ot.workspace.WorkspaceArena`) — no buffer aliasing
  across threads, and the result is bit-for-bit ``fused-dense-f32``.

BLAS thread awareness: oversubscription (each of W worker threads
spawning a full team of BLAS threads) thrashes caches, so while the
pool is active the per-call BLAS team is limited to
``max(1, cpus // workers)`` via ``threadpoolctl`` *when that package
is importable* — this container does not ship it, so the limit is
best-effort and documented as such (single-threaded OpenBLAS defaults
behave identically either way).  Under ``available_cpus() == 1`` (or
``max_workers=1``) no pool is created at all and the loop is the
serial reference scheduler.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager, nullcontext

from repro.core.objective import JointObjective
from repro.engine.mixed import MixedRun, _MixedLockstep
from repro.engine.precision import DEFAULT_PRECISION, ensure_precision
from repro.engine.restarts import (
    RestartRun,
    build_starts,
    portfolio_phase_timings,
    portfolio_result,
    prune_schedule,
    select_best,
)
from repro.ot.workspace import WorkspaceArena
from repro.utils.timer import Timer


@contextmanager
def blas_thread_limit(limit: int | None):
    """Best-effort cap on BLAS threads while worker threads run.

    Uses :mod:`threadpoolctl` when available; otherwise a no-op (the
    semantics of the solve never depend on the team size, only the
    wall-clock does).
    """
    if limit is None:
        with nullcontext():
            yield
            return
    try:
        from threadpoolctl import threadpool_limits
    except ImportError:
        with nullcontext():
            yield
            return
    with threadpool_limits(limits=limit):
        yield


class ThreadedRestartBackend:
    """Restart portfolio fanned across a thread pool (new name).

    Parameters
    ----------
    max_workers:
        Pool width; default ``min(n_restarts, available_cpus())``.
        Forcing ``max_workers > 1`` on a single-core box is allowed
        (the bitwise contract holds at any width); ``1`` forces the
        serial loop.
    precision:
        ``"float64"`` (default, bitwise ``fused-dense``) or
        ``"float32"`` (bitwise ``fused-dense-f32``).
    """

    name = "threaded-restart"
    kind = "dense"

    def __init__(
        self,
        max_workers: int | None = None,
        precision: str = DEFAULT_PRECISION,
        arena: WorkspaceArena | None = None,
    ):
        self.max_workers = max_workers
        self.precision = ensure_precision(precision)
        self.arena = arena

    # ------------------------------------------------------------------
    def _worker_count(self, n_runs: int) -> int:
        from repro.scale.executor import available_cpus

        if self.max_workers is not None:
            return max(1, min(self.max_workers, n_runs))
        return max(1, min(n_runs, available_cpus()))

    @staticmethod
    def _advance(runs, target: int, pool, blas_limit) -> None:
        live = [run for run in runs if run.active]
        if pool is None or len(live) <= 1:
            for run in live:
                run.step_until(target)
            return
        with blas_thread_limit(blas_limit):
            # consuming the map iterator re-raises worker exceptions
            list(pool.map(lambda run: run.step_until(target), live))

    # ------------------------------------------------------------------
    def solve(self, problem):
        from repro.engine.backends import ensure_classical_problem
        from repro.scale.executor import available_cpus

        cfg = problem.config
        ensure_classical_problem(problem, self.name)
        with Timer() as timer:
            source_bases, target_bases = problem.bases
            k = len(source_bases)
            objective = JointObjective(
                source_bases, target_bases, fused=cfg.fused_contractions
            )
            mu, nu = problem.marginals()
            plan0, informative_init = problem.initial_coupling(mu, nu)
            starts = build_starts(cfg, objective.n_bases, informative_init)
            if self.precision.name == DEFAULT_PRECISION:
                runs = [
                    RestartRun(objective, cfg, beta0, learn, plan0, mu, nu, label)
                    for label, beta0, learn in starts
                ]
            else:
                lockstep = _MixedLockstep(
                    cfg,
                    mu,
                    nu,
                    capacity=1,  # threaded runs step one slice per thread
                    precision=self.precision,
                    arena=self.arena,
                )
                runs = [
                    MixedRun(lockstep, objective, cfg, beta0, learn, plan0, label)
                    for label, beta0, learn in starts
                ]
            workers = self._worker_count(len(runs))
            cpus = available_cpus()
            blas_limit = max(1, cpus // workers) if workers > 1 else None
            pool = (
                ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="restart"
                )
                if workers > 1
                else None
            )
            try:
                checkpoints = prune_schedule(cfg) if len(runs) > 1 else []
                for checkpoint, margin in checkpoints:
                    self._advance(runs, checkpoint, pool, blas_limit)
                    contenders = {
                        run.label: run.current_objective()
                        for run in runs
                        if not run.pruned
                    }
                    leader = min(contenders.values())
                    for run in runs:
                        if run.active and contenders[run.label] > leader + margin:
                            run.prune()
                self._advance(runs, cfg.max_outer_iter, pool, blas_limit)
            finally:
                if pool is not None:
                    pool.shutdown(wait=True)
            outcomes = [run.outcome() for run in runs]
            best = select_best(outcomes)
        result = portfolio_result(
            self.name, outcomes, best, k, checkpoints,
            portfolio_phase_timings(runs, problem.basis_seconds),
            runtime=timer.elapsed,
        )
        result.extras["precision"] = self.precision.name
        result.extras["threading"] = {
            "workers": workers,
            "requested_workers": self.max_workers,
            "cpus": cpus,
            "blas_threads_per_worker": blas_limit,
        }
        return result


__all__ = ["ThreadedRestartBackend", "blas_thread_limit"]
