"""Solver precision model: the opt-in float32 fast path.

Every reference backend (``fused-dense``, ``batched-restart``, the
dedup twins) iterates in float64 and is bitwise-pinned.  The float32
mode trades that determinism contract for speed on the ``pi_update``
hot path, under three rules that keep it honest:

1. **New names, never replacements.**  ``float32`` routes to the
   separately-registered ``fused-dense-f32`` / ``batched-f32``
   backends (and flips ``threaded-restart`` into its reduced-precision
   mode); ``float64`` returns the requested backend untouched, so the
   pinned reference paths cannot be reached through a precision knob.
2. **Decisions stay float64.**  Portfolio pruning and final selection
   compare objective values re-evaluated in float64 from the float32
   iterate (:meth:`repro.engine.mixed.MixedRun.current_objective`), so
   reduced precision never changes *which* restart survives for
   reasons of accumulated rounding in the score itself.
3. **Tolerance floors.**  The float64 defaults (``sinkhorn_tol=1e-9``,
   marginal violations measured in L1) sit far below float32
   resolution — a float32 Sinkhorn loop can never satisfy them and
   would silently burn its full inner budget every projection.  The
   float32 mode therefore floors the inner tolerance at
   :data:`F32_SINKHORN_TOL`; an explicit ``sinkhorn_tol=0`` (no
   convergence checks) is preserved as-is.

When is float32 safe?  The alternating scheme is a fixed-point
iteration, not an accumulation: each outer step re-projects onto the
simplex/polytope, so rounding does not compound across iterations.
Plans at bench scale hold entries of order ``1/n² ≈ 1e-4`` against a
float32 epsilon of ``~1e-7`` — three decimal digits of headroom per
entry — and the decode stage consumes row-relative *order*, not exact
mass.  Expect matching Hit@1/MRR to within ~:data:`HIT1_PARITY_POINTS`
points on converged solves; use float64 whenever bitwise
reproducibility, objective values below ``1e-6`` resolution, or
ill-conditioned (near-degenerate) structure bases are in play.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigError
from repro.ot.sinkhorn import F32_SINKHORN_TOL

#: Documented Hit@1 / (100·MRR) parity budget, in percentage points,
#: between a float32 solve and its float64 reference on the seeded
#: bench pairs.  Reduced precision perturbs a nonconvex trajectory, so
#: individual matches can flip; the gate is that ranking quality stays
#: within this band, not that plans agree entrywise.
HIT1_PARITY_POINTS = 3.0


@dataclass(frozen=True)
class SolverPrecision:
    """One named working precision for the solve stage."""

    name: str
    dtype: np.dtype = field(repr=False)
    #: floor applied to ``config.sinkhorn_tol`` (0 disables checks).
    sinkhorn_tol_floor: float

    def effective_sinkhorn_tol(self, configured: float) -> float:
        if configured <= 0.0:
            return configured
        return max(configured, self.sinkhorn_tol_floor)


FLOAT64 = SolverPrecision("float64", np.dtype(np.float64), 0.0)
FLOAT32 = SolverPrecision("float32", np.dtype(np.float32), F32_SINKHORN_TOL)

PRECISIONS: dict[str, SolverPrecision] = {
    FLOAT64.name: FLOAT64,
    FLOAT32.name: FLOAT32,
}

DEFAULT_PRECISION = FLOAT64.name


def ensure_precision(precision: str | SolverPrecision) -> SolverPrecision:
    """Resolve a precision name (or pass through an instance)."""
    if isinstance(precision, SolverPrecision):
        return precision
    resolved = PRECISIONS.get(precision)
    if resolved is None:
        choices = ", ".join(sorted(PRECISIONS))
        raise ConfigError(
            f"unknown solver precision {precision!r}; choose one of: {choices}"
        )
    return resolved


# float32 routing table: requested backend -> (actual backend, extra
# backend options).  float64 never consults this — see
# backend_for_precision.  ``fused-dense`` routes to *batched*-f32, not
# fused-dense-f32: the two are bitwise-equal (per-slice GEMM contract)
# but only the lockstep schedule amortises the numpy call overhead
# that dominates pi_update at bench scale, so the mode always picks
# the fast schedule.  fused-dense-f32 stays reachable by explicit name
# as the serial-scheduled equivalence anchor.
_F32_ROUTES: dict[str, tuple[str, dict]] = {
    "fused-dense": ("batched-f32", {}),
    "fused-dense-f32": ("fused-dense-f32", {}),
    "batched-restart": ("batched-f32", {}),
    "batched-f32": ("batched-f32", {}),
    "threaded-restart": ("threaded-restart", {"precision": "float32"}),
}


def backend_for_precision(
    backend: str, precision: str | SolverPrecision
) -> tuple[str, dict]:
    """Map ``(backend, precision)`` to the backend that implements it.

    ``float64`` is the identity: the requested backend is returned
    unchanged with no extra options, so the default precision routes to
    the bitwise-pinned reference paths.  ``float32`` routes through
    :data:`_F32_ROUTES`; backends without a reduced-precision variant
    (sparse, partial, the dedup twins) raise :class:`ConfigError`
    naming the ones that have one.
    """
    resolved = ensure_precision(precision)
    if resolved.name == DEFAULT_PRECISION:
        return backend, {}
    route = _F32_ROUTES.get(backend)
    if route is None:
        supported = ", ".join(sorted(set(_F32_ROUTES)))
        raise ConfigError(
            f"backend {backend!r} has no {resolved.name} variant; "
            f"precision-routable backends: {supported}"
        )
    name, options = route
    return name, dict(options)


__all__ = [
    "DEFAULT_PRECISION",
    "F32_SINKHORN_TOL",
    "FLOAT32",
    "FLOAT64",
    "HIT1_PARITY_POINTS",
    "PRECISIONS",
    "SolverPrecision",
    "backend_for_precision",
    "ensure_precision",
]
