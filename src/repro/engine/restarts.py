"""Restart-portfolio machinery shared by the solver backends.

The multi-start portfolio (uniform + vertex restarts, successive-
halving pruning, η annealing) is solver policy, not solver mechanics:
the serial ``fused-dense`` backend and the lockstep ``batched-restart``
backend run the *same* portfolio — same starts, same schedule, same
pruning decisions — and differ only in how the per-iteration tensor
contractions are dispatched.  Everything policy-level therefore lives
here, once.

:class:`RestartRun` is the reference serial implementation of one
restart's stepping state.  Its per-iteration body is a faithful
transcription of the original single-shot loop: as long as a run is
advanced to the full budget, its iterate sequence (and therefore its
final plan) is bit-for-bit what the unscheduled solver produced.
``step_until`` lets the portfolio scheduler advance restarts
checkpoint by checkpoint.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.config import SLOTAlignConfig
from repro.core.convergence import IterateHistory
from repro.core.objective import JointObjective
from repro.core.result import AlignmentResult
from repro.exceptions import ConvergenceError, GraphError
from repro.ot.simplex import project_concatenated_simplices
from repro.ot.sinkhorn import sinkhorn_log_kernel_fast


@dataclass
class RunOutcome:
    """One restart's final iterates.

    ``deduped`` marks a restart dropped by trajectory dedup because its
    coupling had converged (within tolerance) onto ``merged_into``'s —
    the restart is also ``pruned`` so downstream selection skips it.
    """

    plan: np.ndarray
    alpha: np.ndarray
    objective: float
    history: IterateHistory
    label: str
    pruned: bool = False
    iterations: int = 0
    deduped: bool = False
    merged_into: str | None = None


def eta_schedule(config: SLOTAlignConfig, iteration: int) -> float:
    """Annealed KL-proximal coefficient for one outer iteration."""
    if not config.anneal or config.eta_start <= config.sinkhorn_lr:
        return config.sinkhorn_lr
    horizon = max(1, int(config.anneal_fraction * config.max_outer_iter))
    if iteration >= horizon:
        return config.sinkhorn_lr
    decay = (config.sinkhorn_lr / config.eta_start) ** (1.0 / horizon)
    return config.eta_start * decay**iteration


def vertex_views(config: SLOTAlignConfig, k: int) -> list[tuple[str, int]]:
    """(label, basis index) of the single-view restarts to try."""
    index = 0
    vertices = []
    if "edge" in config.include_views:
        vertices.append(("edge", index))
        index += 1
    if "node" in config.include_views and index < k:
        vertices.append(("node", index))
    return vertices


def build_starts(
    config: SLOTAlignConfig, k: int, informative_init: bool
) -> list[tuple[str, np.ndarray, bool]]:
    """The portfolio's ``(label, β₀, learn_weights)`` start list.

    Uniform mixture first; with the portfolio enabled (and no
    informative initial plan) vertex restarts for the two first-order
    views follow — a learned run per vertex plus a frozen node-view
    run, the feature-only fallback when structure is hopeless.
    """
    uniform_beta = np.full(k, 1.0 / k)
    first_label, first_beta = "uniform", uniform_beta
    if config.single_start_view != "uniform" and not config.multi_start:
        # committed single start: begin at the requested view's vertex
        # of the simplex instead of the uniform mixture
        for label, view_index in vertex_views(config, k):
            if label == config.single_start_view:
                vertex = np.zeros(k)
                vertex[view_index] = 1.0
                first_label, first_beta = label, vertex
                break
        else:
            raise GraphError(
                f"single_start_view {config.single_start_view!r} has no "
                "matching basis for this graph pair"
            )
    starts: list[tuple[str, np.ndarray, bool]] = [
        (first_label, first_beta, config.learn_weights)
    ]
    if config.multi_start and not informative_init and k > 1:
        for label, view_index in vertex_views(config, k):
            vertex = np.zeros(k)
            vertex[view_index] = 1.0
            starts.append((label, vertex, config.learn_weights))
            if label == "node":
                starts.append((f"{label}-frozen", vertex, False))
    return starts


def prune_schedule(config: SLOTAlignConfig) -> list[tuple[int, float]]:
    """Successive-halving checkpoints ``(iteration, margin)``.

    Mid-annealing objective values are unusable for ranking: the
    exploration phase deliberately keeps iterates smooth, so a
    restart's value can lag arbitrarily while η is large and the
    ordering routinely inverts as η decays.  With annealing enabled
    the only checkpoint therefore fires ``portfolio_prune_iter``
    iterations after the annealing horizon, with the tight refine
    margin.  Without annealing the ranking is meaningful early, so a
    generous-margin checkpoint fires at ``portfolio_prune_iter`` and a
    tighter one at three times it.
    """
    first = config.portfolio_prune_iter
    if first <= 0 or first >= config.max_outer_iter:
        return []
    if config.anneal and config.eta_start > config.sinkhorn_lr:
        horizon = max(1, int(config.anneal_fraction * config.max_outer_iter))
        checkpoint = horizon + first
        if checkpoint < config.max_outer_iter:
            return [(checkpoint, config.portfolio_refine_margin)]
        return []
    schedule = [(first, config.portfolio_prune_margin)]
    second = 3 * first
    if first < second < config.max_outer_iter:
        schedule.append((second, config.portfolio_refine_margin))
    return schedule


class RestartRun:
    """Stepping state of one restart of the alternating scheme."""

    def __init__(
        self,
        objective: JointObjective,
        config: SLOTAlignConfig,
        beta0: np.ndarray,
        learn_weights: bool,
        plan0: np.ndarray,
        mu: np.ndarray,
        nu: np.ndarray,
        label: str,
    ):
        self.objective = objective
        self.config = config
        self.learn_weights = learn_weights
        self.label = label
        self.mu = mu
        self.nu = nu
        self.k = objective.n_bases
        self.alpha = np.concatenate([beta0, beta0])
        self.plan = plan0.copy()
        self.history = IterateHistory()
        self.iteration = 0
        self.pruned = False
        self.pruned_at: int | None = None
        self.deduped = False
        self.merged_into: str | None = None
        # per-run iteration budget: equals the config cap unless the
        # dedup portfolio reallocates a merged restart's remainder
        self.max_iterations = config.max_outer_iter
        self.elapsed = 0.0
        self.timings = {"alpha_update": 0.0, "pi_update": 0.0, "objective_eval": 0.0}

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return (
            self.history.converged
            or self.iteration >= self.max_iterations
        )

    @property
    def active(self) -> bool:
        return not self.pruned and not self.finished

    def step_until(self, target_iteration: int) -> None:
        """Advance to ``min(target, max_iterations)`` or convergence."""
        target = min(target_iteration, self.max_iterations)
        start = time.perf_counter()
        while self.iteration < target and not self.history.converged:
            self._step_once()
        self.elapsed += time.perf_counter() - start

    def current_objective(self) -> float:
        """Objective at the current iterate (pure read, cache-friendly)."""
        t0 = time.perf_counter()
        value = self.objective.value(self.plan, self.alpha[:self.k], self.alpha[self.k:])
        self.timings["objective_eval"] += time.perf_counter() - t0
        return value

    def prune(self) -> None:
        self.pruned = True
        self.pruned_at = self.iteration

    def outcome(self) -> RunOutcome:
        return RunOutcome(
            plan=self.plan,
            alpha=self.alpha,
            objective=self.current_objective(),
            history=self.history,
            label=self.label,
            pruned=self.pruned,
            iterations=self.iteration,
            deduped=self.deduped,
            merged_into=self.merged_into,
        )

    # ------------------------------------------------------------------
    def _step_once(self) -> None:
        """One outer iteration of Algorithm 1 (Eq. 11 then Eq. 12)."""
        cfg = self.config
        objective = self.objective
        k = self.k
        alpha, plan = self.alpha, self.plan

        t0 = time.perf_counter()
        new_alpha = alpha
        if self.learn_weights:
            for _ in range(cfg.alpha_steps):
                grad = objective.alpha_gradient(
                    plan, new_alpha[:k], new_alpha[k:]
                )
                if cfg.tie_weights:
                    # shared weights: both halves take the averaged
                    # gradient, so beta_s == beta_t is an invariant of
                    # the iteration (the halves start equal)
                    mean = 0.5 * (grad[:k] + grad[k:])
                    grad = np.concatenate([mean, mean])
                new_alpha = project_concatenated_simplices(
                    new_alpha - cfg.structure_lr * grad, k
                )
        t1 = time.perf_counter()
        self.timings["alpha_update"] += t1 - t0

        plan_grad = objective.plan_gradient(plan, new_alpha[:k], new_alpha[k:])
        # KL-proximal step (Eq. 12): minimising
        # <grad, pi> + eta * KL(pi || pi_k) yields the kernel
        # pi_k * exp(-grad / eta), projected onto Pi(mu, nu)
        eta = eta_schedule(cfg, self.iteration)
        log_kernel = (
            np.log(np.maximum(plan, 1e-300)) - plan_grad / eta
        )
        new_plan = self._project_plan(log_kernel, eta)
        if not np.all(np.isfinite(new_plan)):
            raise ConvergenceError("SLOTAlign plan became non-finite")
        t2 = time.perf_counter()
        self.timings["pi_update"] += t2 - t1

        alpha_delta = float(np.linalg.norm(new_alpha - alpha))
        plan_delta = float(np.linalg.norm(new_plan - plan))
        value = (
            objective.value(new_plan, new_alpha[:k], new_alpha[k:])
            if cfg.track_history
            else None
        )
        self.timings["objective_eval"] += time.perf_counter() - t2
        self.history.record(value, alpha_delta, plan_delta)
        self.alpha, self.plan = new_alpha, new_plan
        self.iteration += 1
        if alpha_delta < cfg.alpha_tol and plan_delta < cfg.plan_tol:
            self.history.converged = True

    def _project_plan(self, log_kernel: np.ndarray, eta: float) -> np.ndarray:
        """Project ``exp(log_kernel)`` onto the plan's feasible set.

        The seam the partial solve mode reroutes: the reference run
        projects onto the balanced polytope ``Π(μ, ν)`` exactly as the
        pre-seam solver did; the partial runs add a log-domain prior
        and/or swap in the unbalanced scaling (``η`` — the proximal
        coefficient the kernel was built with — only matters there).
        """
        result = sinkhorn_log_kernel_fast(
            log_kernel,
            self.mu,
            self.nu,
            max_iter=self.config.sinkhorn_iter,
            tol=self.config.sinkhorn_tol,
        )
        return result.plan


def run_portfolio(
    objective: JointObjective,
    config: SLOTAlignConfig,
    plan0: np.ndarray,
    mu: np.ndarray,
    nu: np.ndarray,
    informative_init: bool,
    run_factory=RestartRun,
) -> tuple[list[RestartRun], list[RunOutcome], RunOutcome, list[tuple[int, float]]]:
    """Run the serial restart portfolio over one prepared objective.

    The faithful move of the scheduling loop that lived in the
    ``fused-dense`` backend: restart construction, successive-halving
    checkpoints and the final full-budget advance are unchanged, so
    running this with the default ``run_factory`` is bit-for-bit the
    historical solver.  The partial backends reuse the identical
    policy over their extended/unbalanced run classes.
    """
    starts = build_starts(config, objective.n_bases, informative_init)
    runs = [
        run_factory(objective, config, beta0, learn, plan0, mu, nu, label)
        for label, beta0, learn in starts
    ]
    checkpoints = prune_schedule(config) if len(runs) > 1 else []
    for checkpoint, margin in checkpoints:
        for run in runs:
            if run.active:
                run.step_until(checkpoint)
        contenders = {
            run.label: run.current_objective()
            for run in runs
            if not run.pruned
        }
        leader = min(contenders.values())
        for run in runs:
            if run.active and contenders[run.label] > leader + margin:
                run.prune()
    for run in runs:
        if run.active:
            run.step_until(config.max_outer_iter)
    outcomes = [run.outcome() for run in runs]
    best = select_best(outcomes)
    return runs, outcomes, best, checkpoints


def plan_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Relative Frobenius distance between two coupling iterates."""
    scale = max(
        float(np.linalg.norm(a)), float(np.linalg.norm(b)), 1e-300
    )
    return float(np.linalg.norm(a - b)) / scale


def dedup_schedule(config: SLOTAlignConfig, interval: int | None = None) -> list[int]:
    """Iterations at which the dedup portfolio compares trajectories.

    Every ``interval`` iterations (default: ``portfolio_prune_iter``,
    or 20 when pruning is disabled) up to — but excluding — the outer
    budget: a merge at the budget frees nothing.
    """
    if interval is None:
        interval = (
            config.portfolio_prune_iter
            if config.portfolio_prune_iter > 0
            else 20
        )
    if interval <= 0:
        return []
    return list(range(interval, config.max_outer_iter, interval))


#: Default opening tolerance of the converging dedup schedule.
#: Calibrated on the bench portfolio (n=81, 4 starts, budget 150):
#: the clone cluster (uniform/node/node-frozen) sits at relative
#: Frobenius distance ~1e-2 by the first 20-iteration checkpoint and
#: plateaus near 1e-3, while the genuinely distinct ``edge`` basin
#: stays at ~1.2 — so 0.05 separates clones from basins with an order
#: of magnitude of margin on both sides.
DEDUP_TOL_START = 0.05


def dedup_tolerance(
    iteration: int,
    budget: int,
    floor: float,
    start: float = DEDUP_TOL_START,
) -> float:
    """Converging dedup tolerance at ``iteration`` (ROADMAP item 4).

    The fixed ``1e-5`` tolerance was a dead letter: restart
    trajectories that share a basin plateau around relative Frobenius
    distance ``1e-3`` — close enough to be clones, never close enough
    for ``1e-5`` — so no merge ever fired and the dedup backends paid
    the comparison cost for nothing.  This schedule starts loose and
    tightens as trajectories converge: geometric interpolation from
    ``start`` at iteration 0 down to ``floor`` at the outer
    ``budget``, so early checkpoints merge obvious clones (freeing the
    most budget) while late checkpoints only merge near-identical
    iterates.

    Degenerate cases keep the PR-9 contracts: ``floor <= 0`` returns
    ``floor`` unchanged (dedup off stays off), and ``start <= floor``
    collapses to the constant ``floor`` (the old fixed-tolerance
    behaviour — which is also how an over-wide explicit ``dedup_tol``
    like the forced-merge tests' ``10.0`` keeps its meaning).
    """
    if floor <= 0.0 or start <= floor:
        return floor
    fraction = min(max(iteration / budget, 0.0), 1.0) if budget > 0 else 1.0
    return float(start * (floor / start) ** fraction)


def _apply_dedup(runs, tol: float, budget: int) -> list[dict]:  #: pinned
    """Merge live restarts whose couplings converged within ``tol``.

    Pairwise relative-Frobenius comparison over the non-pruned runs in
    start order; when two plans sit within ``tol`` the **earlier** run
    keeps its trajectory and the later one is marked ``deduped`` (and
    pruned, so selection skips it).  Each merge records the dropped
    run's remaining iteration budget against ``budget`` — the pool the
    caller redistributes to the survivors.

    Bitwise-pinned (``repro lint``): the merge criterion decides which
    trajectories the ``*-dedup`` backends drop, and any change to it
    changes their outputs.
    """
    candidates = [run for run in runs if not run.pruned]
    merges: list[dict] = []
    for i, keeper in enumerate(candidates):
        if keeper.deduped:
            continue
        for other in candidates[i + 1:]:
            if other.deduped:
                continue
            distance = plan_distance(keeper.plan, other.plan)
            if distance <= tol:
                other.deduped = True
                other.merged_into = keeper.label
                other.prune()
                merges.append({
                    "kept": keeper.label,
                    "dropped": other.label,
                    "iteration": other.iteration,
                    "distance": distance,
                    "freed": (
                        0
                        if other.history.converged
                        else max(0, budget - other.iteration)
                    ),
                })
    return merges


def run_portfolio_dedup(
    objective: JointObjective,
    config: SLOTAlignConfig,
    plan0: np.ndarray,
    mu: np.ndarray,
    nu: np.ndarray,
    informative_init: bool,
    run_factory=RestartRun,
    dedup_tol: float = 1e-5,
    dedup_interval: int | None = None,
    dedup_tol_start: float = DEDUP_TOL_START,
) -> tuple[list[RestartRun], list[RunOutcome], RunOutcome, list[tuple[int, float]], dict]:
    """The serial restart portfolio with trajectory dedup (Snippet-3 idiom).

    Identical to :func:`run_portfolio` except that at every
    :func:`dedup_schedule` checkpoint, restarts whose couplings have
    converged onto an earlier restart's (relative Frobenius distance
    ≤ the :func:`dedup_tolerance` schedule decaying from
    ``dedup_tol_start`` to the ``dedup_tol`` floor) are dropped, and
    the iteration budget they would have burned is redistributed:
    every survivor's ``max_iterations`` is extended by
    ``freed // n_survivors`` (capped at one extra full budget), so the
    portfolio spends the same total work exploring *distinct* basins
    instead of stepping clones.

    A merge changes which trajectories exist (and survivors may run
    past ``max_outer_iter``), so results can differ from
    :func:`run_portfolio` — this function therefore backs the
    separately-registered ``fused-dense-dedup`` backend; with no merge
    firing the trajectories are bit-for-bit the classical portfolio's.
    """
    starts = build_starts(config, objective.n_bases, informative_init)
    runs = [
        run_factory(objective, config, beta0, learn, plan0, mu, nu, label)
        for label, beta0, learn in starts
    ]
    checkpoints = prune_schedule(config) if len(runs) > 1 else []
    dedup_points = dedup_schedule(config, dedup_interval) if len(runs) > 1 else []
    # one merged event stream; at a shared iteration dedup fires first
    # (kind 0) so the prune comparison never ranks a known clone
    events = sorted(
        [(iteration, 0, None) for iteration in dedup_points]
        + [(iteration, 1, margin) for iteration, margin in checkpoints]
    )
    tolerance_schedule = [
        (
            iteration,
            dedup_tolerance(
                iteration, config.max_outer_iter, dedup_tol, dedup_tol_start
            ),
        )
        for iteration in dedup_points
    ]
    tolerance_at = dict(tolerance_schedule)
    merges: list[dict] = []
    for iteration, kind, margin in events:
        for run in runs:
            if run.active:
                run.step_until(iteration)
        if kind == 0:
            merges.extend(
                _apply_dedup(runs, tolerance_at[iteration], config.max_outer_iter)
            )
            continue
        contenders = {
            run.label: run.current_objective()
            for run in runs
            if not run.pruned
        }
        leader = min(contenders.values())
        for run in runs:
            if run.active and contenders[run.label] > leader + margin:
                run.prune()
    freed = sum(merge["freed"] for merge in merges)
    survivors = [run for run in runs if run.active]
    extension = 0
    if freed and survivors:
        extension = min(freed // len(survivors), config.max_outer_iter)
        for run in survivors:
            run.max_iterations = config.max_outer_iter + extension
    for run in runs:
        if run.active:
            run.step_until(run.max_iterations)
    outcomes = [run.outcome() for run in runs]
    best = select_best(outcomes)
    dedup_info = {
        "tolerance": dedup_tol,
        "tolerance_start": dedup_tol_start,
        "tolerance_schedule": tolerance_schedule,
        "checkpoints": dedup_points,
        "merges": merges,
        "freed_iterations": freed,
        "extension": extension,
    }
    return runs, outcomes, best, checkpoints, dedup_info


def portfolio_phase_timings(runs: list[RestartRun], basis_seconds: float) -> dict:
    """The per-phase timing dict both portfolio-shaped backends emit."""
    return {
        "basis_build": basis_seconds,
        "alpha_update": sum(r.timings["alpha_update"] for r in runs),
        "pi_update": sum(r.timings["pi_update"] for r in runs),
        "objective_eval": sum(r.timings["objective_eval"] for r in runs),
        "per_restart": {run.label: run.elapsed for run in runs},
    }


def select_best(outcomes: list[RunOutcome]) -> RunOutcome:
    """The unpruned restart with the lowest objective value."""
    survivors = [out for out in outcomes if not out.pruned]
    return min(survivors, key=lambda run: run.objective)


def portfolio_result(
    backend: str,
    outcomes: list[RunOutcome],
    best: RunOutcome,
    k: int,
    checkpoints: list[tuple[int, float]],
    phase_timings: dict,
    runtime: float,
) -> AlignmentResult:
    """Assemble the :class:`AlignmentResult` both dense backends share."""
    return AlignmentResult(
        plan=best.plan,
        runtime=runtime,
        method="SLOTAlign",
        extras={
            "beta_source": best.alpha[:k].copy(),
            "beta_target": best.alpha[k:].copy(),
            "history": best.history,
            "n_bases": k,
            "objective": best.objective,
            "selected_start": best.label,
            "backend": backend,
            "start_objectives": {
                run.label: run.objective for run in outcomes
            },
            "portfolio": {
                "checkpoints": [list(cp) for cp in checkpoints],
                "pruned": {
                    run.label: run.iterations
                    for run in outcomes
                    if run.pruned
                },
                "iterations": {
                    run.label: run.iterations for run in outcomes
                },
            },
            "phase_timings": phase_timings,
        },
    )
