"""Stage 3 of the alignment engine: **decode** — the decoder registry.

The transport plan a solver backend returns is a *posterior* over node
correspondences, not a matching; turning it into one is a stage of its
own, sitting between solve and evaluate:

    plan → solve → **decode** → evaluate

A decoder consumes a plan (dense ``n × m`` array or scipy CSR — the
sparse path never densifies) and returns a :class:`DecodedMatching`:
the discrete matching, a per-match confidence, decode wall-clock, and
per-node shed scores on plans that move less than their full marginal
mass (the partial backends' dummy/shed mass is a *decoder* concern —
any decoder must behave sensibly on a non-square, mass-deficient
plan).

Registered decoders:

* ``row-argmax`` — per-row argmax, the pre-refactor evaluate
  behaviour.  Its candidate ranking **is** the posterior's own
  ranking (``posterior_ranked=True``), so the metric adapter routes
  it through the exact mid-rank computation the evaluate stage always
  used: bitwise-identical to the pre-decode-stage pipeline, and
  pinned by ``repro lint``.
* ``mutual-argmax`` — keep a match only when row- and column-argmax
  agree; the precision-oriented decoder (a strict subset of
  row-argmax matches, never more hits but a cleaner matched set).
* ``hungarian`` — exact maximum-weight one-to-one assignment
  (Eq. 2).  Non-square / mass-shedding plans are augmented with a
  private shed edge per source row: priced at the row's mass deficit
  once its shed fraction crosses :data:`UNMATCHABLE_THRESHOLD`, at
  zero below it — so which rows go unmatched is decided by shed
  mass, never by truncation, while a merely under-converged (but
  balanced) plan decodes as the classical assignment.
* ``mea`` — maximum-expected-accuracy decoding in the spirit of the
  nanopore-RNN ``mea_algorithm``: candidate cells scored by the
  product of both directed match posteriors compete, in decreasing
  expected accuracy, against per-source-row *unmatch* hypotheses
  scored by the row's shed fraction (live only past
  :data:`UNMATCHABLE_THRESHOLD`); the frontier sweep accepts every
  non-conflicting hypothesis.  Sequence alignment's monotone-path
  constraint has no analogue on unordered graphs, so the DP's
  transition structure degenerates to the one-to-one constraint.

Unknown decoder names fail with a :class:`ConfigError` naming the
valid choices (never a bare ``KeyError``), mirroring the solver
backend registry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
import scipy.optimize
import scipy.sparse as sp

from repro.exceptions import ConfigError, ShapeError

DEFAULT_DECODER = "row-argmax"

#: Shed fraction above which a node is treated as unmatchable by the
#: one-to-one decoders (``hungarian`` shed-column pricing, ``mea``
#: unmatch hypotheses).  Matches the default decision threshold of
#: :func:`repro.eval.metrics.unmatchable_detection`: a node that kept
#: less than half the best-served marginal mass has, more likely than
#: not, no counterpart.  Below the threshold shed pricing is zero —
#: marginal-mass jitter on under-converged (but balanced) plans must
#: not unmatch anything.
UNMATCHABLE_THRESHOLD = 0.5

_REGISTRY: dict[str, tuple[type, str]] = {}


def register_decoder(name: str, decoder_cls: type, description: str) -> None:
    """Register a decoder class under ``name`` (re-registering replaces)."""
    _REGISTRY[name] = (decoder_cls, description)


def available_decoders() -> dict[str, str]:
    """``{name: one-line description}`` of every registered decoder."""
    return {name: entry[1] for name, entry in sorted(_REGISTRY.items())}


def _lookup(name: str) -> tuple[type, str]:
    entry = _REGISTRY.get(name)
    if entry is None:
        choices = ", ".join(sorted(_REGISTRY))
        raise ConfigError(
            f"unknown decoder {name!r}; valid decoders: {choices}"
        )
    return entry


def get_decoder(name: str):
    """Instantiate the decoder registered under ``name``.

    Raises :class:`ConfigError` naming the valid choices on unknown
    names, so the CLI/runner/service surface the registry verbatim.
    """
    decoder_cls, _ = _lookup(name)
    return decoder_cls()


def ensure_decoder(name: str) -> str:
    """Validate a decoder name without instantiating it."""
    _lookup(name)
    return name


@dataclass
class DecodedMatching:
    """The decode stage's result: a discrete matching plus diagnostics.

    Attributes
    ----------
    matching:
        ``(n,)`` int64 — matched target column per source row, ``-1``
        where the decoder left the node unmatched.
    confidence:
        ``(n,)`` float64 in [0, 1] — the matched cell's share of its
        row's transported mass (the conditional posterior
        ``π_ij / Σ_j π_ij``); 0 for unmatched rows.
    decoder:
        Registered name of the decoder that produced this.
    decode_seconds:
        Wall-clock of the decode call (plan extraction excluded).
    plan:
        The decoded plan (dense array or CSR) — kept so rank-based
        metrics (Hit@k beyond the matched cell, MRR) can consult the
        posterior's ordering without re-plumbing the result object.
    posterior_ranked:
        True when the decoder's candidate ranking is exactly the
        posterior's own (row-argmax): the metric adapter then uses the
        plan's mid-ranks verbatim — the pre-refactor evaluate path,
        bit for bit.
    source_unmatchable / target_unmatchable:
        Per-node shed fractions in [0, 1]: the share of the node's
        marginal mass the plan did *not* transport, measured against
        the best-served node on its side.  On balanced plans these are
        all ~0; on partial/dummy-reduced plans they are the decoder's
        unmatchable-detection scores.
    """

    matching: np.ndarray
    confidence: np.ndarray
    decoder: str
    decode_seconds: float
    plan: object = field(repr=False, default=None)
    posterior_ranked: bool = False
    source_unmatchable: np.ndarray | None = None
    target_unmatchable: np.ndarray | None = None

    @property
    def n_source(self) -> int:
        return int(self.matching.shape[0])

    @property
    def n_matched(self) -> int:
        return int(np.sum(self.matching >= 0))

    def matched_pairs(self) -> np.ndarray:
        """``(t, 2)`` array of the matched (source, target) pairs."""
        rows = np.nonzero(self.matching >= 0)[0]
        return np.stack([rows, self.matching[rows]], axis=1)


# ----------------------------------------------------------------------
# shared plan accessors (dense or CSR, never densifying)

def _as_plan(plan):
    if sp.issparse(plan):
        csr = sp.csr_array(plan)
        if not csr.has_sorted_indices:
            csr = csr.copy()
            csr.sort_indices()
        return csr.astype(np.float64)
    plan = np.asarray(plan, dtype=np.float64)
    if plan.ndim != 2:
        raise ShapeError(f"plan must be 2-D, got shape {plan.shape}")
    if plan.size == 0:
        raise ShapeError("plan must be non-empty")
    return plan


def _marginal_masses(plan) -> tuple[np.ndarray, np.ndarray]:
    """Row and column mass vectors (sparse sums never densify)."""
    if sp.issparse(plan):
        rows = np.asarray(plan.sum(axis=1)).ravel()
        cols = np.asarray(plan.sum(axis=0)).ravel()
    else:
        rows = plan.sum(axis=1)
        cols = plan.sum(axis=0)
    return rows, cols


def shed_scores(plan) -> tuple[np.ndarray, np.ndarray]:
    """Per-node shed fractions in [0, 1] from marginal mass deficits.

    A balanced plan serves every row the same mass, so all scores are
    ~0.  A partial plan (dummy-sink or unbalanced solve) leaves the
    unmatchable nodes' rows under-served; measured against the
    best-served node on each side, the deficit fraction is a
    representation-agnostic unmatchable score — what the partial
    backends compute from their extended plans, recovered here from
    the plan alone so *every* decoder handles shed mass.
    """
    row_mass, col_mass = _marginal_masses(plan)
    row_ref = float(row_mass.max()) if row_mass.size else 0.0
    col_ref = float(col_mass.max()) if col_mass.size else 0.0
    source = 1.0 - row_mass / row_ref if row_ref > 0.0 else np.ones_like(row_mass)
    target = 1.0 - col_mass / col_ref if col_ref > 0.0 else np.ones_like(col_mass)
    return np.clip(source, 0.0, 1.0), np.clip(target, 0.0, 1.0)


def _shed_prices(plan) -> np.ndarray:
    """Per-source-row shed-edge prices for the one-to-one decoders.

    The raw mass deficit (``ref − mass``, row-mass units) for rows
    whose shed *fraction* reaches :data:`UNMATCHABLE_THRESHOLD`, zero
    for everyone else.  Deficits are whole-row quantities while plan
    cells carry only a slice of a row's mass, so an ungated deficit
    outbids every real cell and unmatches nearly all of an
    under-converged plan; the gate confines that dominance to rows the
    shed evidence actually condemns.  Row marginals are exact on a
    balanced solve (Sinkhorn ends on a row projection) and bimodal on
    a partial one, so the gate fires exactly when shedding is the
    solver's verdict rather than convergence jitter.

    Target columns get no shed edges at all — an unmatched column is
    simply left out of the (row-perfect) rectangular assignment.
    Column marginals of an under-converged plan are skewed
    *continuously* (a starved column is merely unpopular, and often
    holds its row's correct match), so pricing column sheds blocks
    real columns and guts the assignment; an unmatchable column
    already repels the assignment through its near-zero cells, and
    its shed *score* (not price) still reports it in
    :attr:`DecodedMatching.target_unmatchable`.
    """
    row_mass, _ = _marginal_masses(plan)
    frac_src, _ = shed_scores(plan)
    deficit_src = np.maximum(
        (float(row_mass.max()) if row_mass.size else 0.0) - row_mass, 0.0
    )
    return np.where(frac_src >= UNMATCHABLE_THRESHOLD, deficit_src, 0.0)


def _row_argmax(plan) -> np.ndarray:
    """Per-row argmax column; ``-1`` for rows with no stored entry."""
    if sp.issparse(plan):
        # lazy import: metrics imports this module for evaluate_decoded
        from repro.eval.metrics import sparse_topk

        cols, _ = sparse_topk(plan, 1)
        return cols[:, 0]
    return np.argmax(plan, axis=1).astype(np.int64)


def _matched_confidence(plan, matching: np.ndarray) -> np.ndarray:
    """Matched cell's share of its row mass (0 for unmatched rows)."""
    row_mass, _ = _marginal_masses(plan)
    n = matching.shape[0]
    confidence = np.zeros(n)
    rows = np.nonzero(matching >= 0)[0]
    if rows.size == 0:
        return confidence
    scores = _cell_scores(plan, rows, matching[rows])
    with np.errstate(divide="ignore", invalid="ignore"):
        share = np.where(row_mass[rows] > 0.0, scores / row_mass[rows], 0.0)
    confidence[rows] = np.clip(share, 0.0, 1.0)
    return confidence


def _cell_scores(plan, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """``plan[rows[i], cols[i]]`` per pair, dense or CSR (no densify)."""
    if not sp.issparse(plan):
        return plan[rows, cols]
    indptr, indices, data = plan.indptr, plan.indices, plan.data
    out = np.zeros(rows.shape[0])
    for i, (r, c) in enumerate(zip(rows, cols)):
        lo, hi = indptr[r], indptr[r + 1]
        pos = lo + np.searchsorted(indices[lo:hi], c)
        if pos < hi and indices[pos] == c:
            out[i] = data[pos]
    return out


# ----------------------------------------------------------------------
# decoders

class Decoder:
    """Base class: timing, shed scores and result assembly."""

    name = "abstract"
    posterior_ranked = False

    def decode(self, plan) -> DecodedMatching:
        plan = _as_plan(plan)
        t0 = time.perf_counter()
        matching = self._decode(plan)
        decode_seconds = time.perf_counter() - t0
        source_shed, target_shed = shed_scores(plan)
        return DecodedMatching(
            matching=matching,
            confidence=_matched_confidence(plan, matching),
            decoder=self.name,
            decode_seconds=decode_seconds,
            plan=plan,
            posterior_ranked=self.posterior_ranked,
            source_unmatchable=source_shed,
            target_unmatchable=target_shed,
        )

    def _decode(self, plan) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError


class RowArgmaxDecoder(Decoder):
    """Top-1 retrieval per source row — the pre-refactor behaviour."""

    name = "row-argmax"
    posterior_ranked = True

    def _decode(self, plan) -> np.ndarray:  #: pinned
        """Per-row argmax (bitwise contract of the evaluate refactor).

        Pinned (``repro lint``): together with ``posterior_ranked``
        this is what keeps the default decode→evaluate route
        bit-for-bit equal to the pre-decode-stage pipeline.
        """
        return _row_argmax(plan)


class MutualArgmaxDecoder(Decoder):
    """Match only where row- and column-argmax agree."""

    name = "mutual-argmax"

    def _decode(self, plan) -> np.ndarray:  #: pinned
        row_best = _row_argmax(plan)
        if sp.issparse(plan):
            col_best = _row_argmax(sp.csr_array(plan.T))
        else:
            col_best = np.argmax(plan, axis=0).astype(np.int64)
        matching = row_best.copy()
        rows = np.arange(matching.shape[0])
        valid = matching >= 0
        mutual = np.zeros_like(valid)
        mutual[valid] = col_best[matching[valid]] == rows[valid]
        matching[~mutual] = -1
        return matching


class HungarianDecoder(Decoder):
    """Exact maximum-weight assignment with shed-mass padding (Eq. 2).

    The plan is embedded in an ``n × (m + n)`` rectangular assignment
    problem: every source row gets a private *shed column* (see
    :func:`_shed_prices`) and the assignment is perfect on the source
    side — every row takes either a real cell or its own shed edge,
    while target columns may simply stay unmatched.  A row whose shed
    fraction reaches :data:`UNMATCHABLE_THRESHOLD` prices its shed
    edge at the raw mass deficit (best-served mass minus own mass) —
    row-mass units, which outbid any single plan cell, so a
    decisively-shed row always comes out unmatched.  Every other shed
    edge is priced at zero: an under-converged but balanced plan
    decodes as the classical Hungarian matching, never unmatching a
    node a cell of positive mass could serve.  Which rows go
    unmatched is thus decided by shed mass, never by truncation.  CSR
    plans solve the same augmented problem sparsely via SciPy's
    bipartite matching — the private shed edges keep a row-perfect
    matching feasible on any sparsity pattern (min-weight on shifted
    costs: the matching size is fixed at ``n``, so minimising
    ``C − π`` maximises ``π``).
    """

    name = "hungarian"

    def _decode(self, plan) -> np.ndarray:  #: pinned
        n, m = plan.shape
        shed_src = _shed_prices(plan)
        if sp.issparse(plan):
            return self._decode_sparse(plan, shed_src)
        rect = np.zeros((n, m + n))
        rect[:, :m] = plan
        rect[np.arange(n), m + np.arange(n)] = shed_src
        rows, cols = scipy.optimize.linear_sum_assignment(rect, maximize=True)
        matching = np.full(n, -1, dtype=np.int64)
        real = cols < m
        matching[rows[real]] = cols[real]
        return matching

    def _decode_sparse(self, plan, shed_src: np.ndarray) -> np.ndarray:
        from scipy.sparse.csgraph import min_weight_full_bipartite_matching

        n, m = plan.shape
        coo = plan.tocoo()
        # shift so all weights are positive: the matching is perfect
        # on the n source rows, so minimising C − s over its edges is
        # exactly maximising s
        shift = 1.0 + max(
            float(coo.data.max()) if coo.data.size else 0.0,
            float(shed_src.max()) if shed_src.size else 0.0,
        )
        rows = np.concatenate([coo.row, np.arange(n)])
        cols = np.concatenate([coo.col, m + np.arange(n)])
        weights = np.concatenate([shift - coo.data, shift - shed_src])
        rect = sp.csr_matrix((weights, (rows, cols)), shape=(n, m + n))
        row_ind, col_ind = min_weight_full_bipartite_matching(rect)
        matching = np.full(n, -1, dtype=np.int64)
        real = col_ind < m
        matching[row_ind[real]] = col_ind[real]
        return matching


class MEADecoder(Decoder):
    """Maximum-expected-accuracy frontier sweep over match hypotheses.

    Every plan cell is a *match hypothesis* scored by the product of
    the two directed posteriors ``(π_ij / M_r) · (π_ij / M_c)`` (with
    ``M_r`` / ``M_c`` the best-served row/column mass — a node's
    missing mass is exactly its probability of having no
    counterpart), and every decisively-shed source row contributes an
    *unmatch hypothesis* scored by its squared shed fraction.
    Hypotheses are processed in decreasing
    expected accuracy; each one that conflicts with no accepted
    hypothesis extends the frontier, exactly the forward-edge
    accumulation of the nanopore MEA dynamic program with the
    monotone-path transition replaced by the one-to-one constraint
    (unordered graphs have no event/reference axis).  Unlike
    ``hungarian`` this is a single greedy sweep (a ½-approximation of
    the assignment optimum) whose per-hypothesis scores are
    probabilities; a node shed past :data:`UNMATCHABLE_THRESHOLD`
    fields an unmatch hypothesis that can outbid its residual
    entries, while sub-threshold shed never unmatches anyone.
    """

    name = "mea"

    def _decode(self, plan) -> np.ndarray:  #: pinned
        n, m = plan.shape
        row_mass, col_mass = _marginal_masses(plan)
        row_ref = float(row_mass.max()) if row_mass.size else 0.0
        col_ref = float(col_mass.max()) if col_mass.size else 0.0
        matching = np.full(n, -1, dtype=np.int64)
        if row_ref <= 0.0 or col_ref <= 0.0:
            return matching
        if sp.issparse(plan):
            coo = plan.tocoo()
            cell_rows, cell_cols, scores = coo.row, coo.col, coo.data
        else:
            cell_rows, cell_cols = np.nonzero(plan > 0.0)
            scores = plan[cell_rows, cell_cols]
        accuracy = (scores / row_ref) * (scores / col_ref)
        shed_src, _ = shed_scores(plan)
        # source-row unmatch hypotheses are live only past the
        # unmatchable threshold — sub-threshold shed is marginal
        # jitter, and a squared fraction of it must not outbid genuine
        # match cells on an under-converged plan.  Columns field no
        # unmatch hypotheses at all (same rationale as the hungarian
        # shed prices): a column nobody wants is already repelled by
        # its near-zero cells, and goes unmatched implicitly.
        unmatch_src = np.where(
            shed_src >= UNMATCHABLE_THRESHOLD, shed_src**2, 0.0
        )
        # hypothesis list: match cells, then per-row unmatch
        # hypotheses (col index -1 marks "no counterpart")
        hyp_rows = np.concatenate([cell_rows, np.arange(n)])
        hyp_cols = np.concatenate(
            [cell_cols, np.full(n, -1, dtype=np.int64)]
        )
        hyp_score = np.concatenate([accuracy, unmatch_src])
        # decreasing score; ties resolved by (row, col) for determinism
        order = np.lexsort((hyp_cols, hyp_rows, -hyp_score))
        row_free = np.ones(n, dtype=bool)
        col_free = np.ones(m, dtype=bool)
        for idx in order:
            r, c = int(hyp_rows[idx]), int(hyp_cols[idx])
            if r >= 0 and not row_free[r]:
                continue
            if c >= 0 and not col_free[c]:
                continue
            if r >= 0:
                row_free[r] = False
            if c >= 0:
                col_free[c] = False
            if r >= 0 and c >= 0:
                matching[r] = c
        return matching


# ----------------------------------------------------------------------

def decode_plan(result, decoder=DEFAULT_DECODER) -> DecodedMatching:
    """Decode any result shape's plan with a named (or given) decoder.

    ``result`` may be an :class:`~repro.core.result.AlignmentResult`,
    a :class:`~repro.scale.aligner.PartitionedAlignment`, or a raw
    dense/CSR plan; ``decoder`` a registered name or a
    :class:`Decoder` instance.
    """
    # lazy import: evaluate.py imports this module
    from repro.engine.evaluate import extract_plan

    if isinstance(decoder, Decoder):
        return decoder.decode(extract_plan(result))
    return get_decoder(decoder).decode(extract_plan(result))


def _register_builtin_decoders() -> None:
    register_decoder(
        RowArgmaxDecoder.name,
        RowArgmaxDecoder,
        "per-row argmax (top-1 retrieval); candidate ranking is the "
        "posterior's own — bitwise-equal to the pre-decode evaluate path",
    )
    register_decoder(
        MutualArgmaxDecoder.name,
        MutualArgmaxDecoder,
        "row/column argmax agreement; precision-oriented subset of "
        "row-argmax (non-mutual rows stay unmatched)",
    )
    register_decoder(
        HungarianDecoder.name,
        HungarianDecoder,
        "exact maximum-weight one-to-one assignment (Eq. 2) with "
        "per-row shed columns on partial/non-square plans",
    )
    register_decoder(
        MEADecoder.name,
        MEADecoder,
        "maximum-expected-accuracy frontier sweep: directed-posterior "
        "products vs per-node unmatch hypotheses, one-to-one",
    )


_register_builtin_decoders()
