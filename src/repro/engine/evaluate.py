"""Stage 3 of the alignment engine: **evaluate**.

One adapter consumes whatever a solver backend produced — a dense
:class:`~repro.core.result.AlignmentResult`, a CSR-backed
:class:`~repro.scale.aligner.PartitionedAlignment`, or a bare plan
matrix — and returns the paper's metric dict.  The sparse path never
densifies (:mod:`repro.eval.metrics` ranks CSR rows analytically and
is bit-for-bit equal to the dense computation), so callers stop
branching on the plan representation.
"""

from __future__ import annotations

import numpy as np


def extract_plan(result):
    """The plan matrix (dense array or scipy CSR) from any result shape."""
    plan = getattr(result, "plan", result)
    return plan


def evaluate_alignment(
    result,
    ground_truth: np.ndarray,
    ks=(1, 5, 10, 30),
    with_runtime: bool = False,
) -> dict[str, float]:
    """Hit@k for every requested ``k`` plus MRR, dense or sparse.

    Parameters
    ----------
    result:
        An :class:`AlignmentResult`, a :class:`PartitionedAlignment`,
        or a raw plan (dense array / scipy sparse matrix).
    ground_truth:
        ``t × 2`` array of (source, target) anchor pairs.
    ks:
        Hit@k cutoffs to report.
    with_runtime:
        Also report ``time`` (seconds) when the result carries a
        runtime, matching the Table II/III row shape.
    """
    # lazy import: repro.eval's package init pulls in the sweep runner,
    # which itself consumes this adapter
    from repro.eval.metrics import evaluate_plan

    report = evaluate_plan(extract_plan(result), ground_truth, ks=ks)
    if with_runtime:
        runtime = getattr(result, "runtime", None)
        if runtime is not None:
            report["time"] = float(runtime)
    return report
