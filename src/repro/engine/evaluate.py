"""Stage 4 of the alignment engine: **evaluate**.

One adapter consumes whatever the solve (or decode) stage produced — a
dense :class:`~repro.core.result.AlignmentResult`, a CSR-backed
:class:`~repro.scale.aligner.PartitionedAlignment`, a
:class:`~repro.engine.decode.DecodedMatching`, or a bare plan matrix —
and returns the paper's metric dict.  The sparse path never densifies
(:mod:`repro.eval.metrics` ranks CSR rows analytically and is
bit-for-bit equal to the dense computation), so callers stop branching
on the plan representation.

With ``decoder=None`` (the default) the adapter ranks the plan's
posterior directly — the pre-decode-stage behaviour, unchanged.  Named
decoders route through :func:`repro.engine.decode.decode_plan` and the
:func:`repro.eval.metrics.evaluate_decoded` rank convention; the
``row-argmax`` decoder's ranking is the posterior's own, so
``decoder="row-argmax"`` is bitwise-equal to ``decoder=None``.
"""

from __future__ import annotations

import numpy as np


def extract_plan(result):
    """The plan matrix (dense array or scipy CSR) from any result shape."""
    plan = getattr(result, "plan", result)
    return plan


def evaluate_alignment(
    result,
    ground_truth: np.ndarray,
    ks=(1, 5, 10, 30),
    with_runtime: bool = False,
    decoder=None,
) -> dict[str, float]:
    """Hit@k for every requested ``k`` plus MRR, dense or sparse.

    Parameters
    ----------
    result:
        An :class:`AlignmentResult`, a :class:`PartitionedAlignment`,
        a :class:`DecodedMatching`, or a raw plan (dense array / scipy
        sparse matrix).
    ground_truth:
        ``t × 2`` array of (source, target) anchor pairs.
    ks:
        Hit@k cutoffs to report.
    with_runtime:
        Also report ``time`` (seconds) when the result carries a
        runtime, matching the Table II/III row shape.
    decoder:
        ``None`` ranks the plan posterior directly (the pre-decode
        path).  A registered decoder name or
        :class:`~repro.engine.decode.Decoder` instance decodes the
        plan first and scores through the decoded-rank convention.
        When ``result`` is already a :class:`DecodedMatching` it is
        scored as-is and ``decoder`` must be ``None`` (it was chosen
        at decode time).
    """
    # lazy import: repro.eval's package init pulls in the sweep runner,
    # which itself consumes this adapter
    from repro.engine.decode import DecodedMatching, decode_plan
    from repro.eval.metrics import evaluate_decoded, evaluate_plan

    if isinstance(result, DecodedMatching):
        if decoder is not None:
            raise ValueError(
                "result is already decoded; pass decoder=None (the decoder "
                f"was chosen at decode time: {result.decoder!r})"
            )
        report = evaluate_decoded(result, ground_truth, ks=ks)
    elif decoder is None:
        report = evaluate_plan(extract_plan(result), ground_truth, ks=ks)
    else:
        decoded = decode_plan(result, decoder)
        report = evaluate_decoded(decoded, ground_truth, ks=ks)
    if with_runtime:
        runtime = getattr(result, "runtime", None)
        if runtime is not None:
            report["time"] = float(runtime)
    return report
