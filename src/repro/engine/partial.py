"""Partial-alignment solver backends.

The paper's real pairs are only partially overlapping (Douban: 1,118 of
3,906 online users have an offline copy), yet the classical engine
backends solve *balanced* transport — every source node is forced onto
some target node.  This module adds the two standard relaxations as
first-class registry entries (new names; ``fused-dense`` is never
silently replaced):

* ``partial-dummy`` — Figalli-style partial OT by reduction: every
  structure basis gains a zero dummy row/column, the marginals gain a
  slack atom of weight ``1 − partial_mass``, and the balanced portfolio
  runs unchanged on the extended problem.  Zero dummy interactions keep
  the bases symmetric so the fused contractions stay on; a large
  negative log-kernel offset blocks the dummy–dummy cell, which makes
  exactly ``partial_mass`` of each side's real mass transport.  Mass a
  node sheds to the dummy is its *unmatchable score*.  At
  ``partial_mass == 1`` with no anchors the reduction is the identity,
  so the backend delegates to :class:`FusedDenseBackend` and is
  bit-for-bit the reference solver (pinned by
  ``tests/test_partial_overlap.py``).
* ``partial-unbalanced`` — KL-relaxed marginals (Chizat et al. 2018):
  the π-update's balanced Sinkhorn projection is swapped for the
  log-domain generalised scaling
  :func:`repro.ot.unbalanced.sinkhorn_unbalanced_log_kernel` with
  strength ``partial_rho``; marginals are scaled to total mass
  ``partial_mass`` so the soft constraint pulls the plan toward the
  requested overlap.  Mass conservation is soft — a node's shortfall
  against its (scaled) marginal is its unmatchable score.

Anchor seeds (semi-supervised known correspondences carried on
:attr:`PreparedProblem.anchors`) enter both backends the same way: a
``+partial_anchor_weight`` log-domain offset on the anchor cells of
every π-update kernel (and, for the dummy reduction, ``−weight`` on the
anchor rows'/columns' dummy cells so seeded nodes are not declared
unmatchable).  The offset is a prior, re-applied each iteration, not a
hard constraint.
"""

from __future__ import annotations

import numpy as np

from repro.core.objective import JointObjective
from repro.core.result import AlignmentResult
from repro.engine.backends import FusedDenseBackend
from repro.engine.planning import PreparedProblem
from repro.engine.restarts import (
    RestartRun,
    portfolio_phase_timings,
    portfolio_result,
    run_portfolio,
)
from repro.exceptions import ConvergenceError
from repro.ot.sinkhorn import sinkhorn_log_kernel_fast
from repro.ot.unbalanced import sinkhorn_unbalanced_log_kernel
from repro.utils.timer import Timer

_DUMMY_BLOCK_PENALTY = 50.0
"""Margin (nats) below the kernel's worst finite entry for the
dummy–dummy cell.

If the dummies were allowed to pair, the slack atoms would absorb each
other and the extended problem would degenerate back to (nearly)
balanced transport on the real block.  A *fixed* offset is not enough:
the proximal kernel ``log π_k − ∇F/η`` swings by hundreds of nats as η
anneals, so the cell is re-pinned below the kernel's own minimum every
iteration instead.
"""


def _problem_anchors(problem: PreparedProblem) -> np.ndarray | None:
    """The problem's anchor array, or ``None`` when there are none."""
    anchors = problem.anchors
    if anchors is None or anchors.size == 0:
        return None
    return anchors


class _OffsetRun(RestartRun):
    """Reference restart with a log-domain prior on the π-update.

    The balanced projection is unchanged; ``offset`` (same shape as the
    plan) is added to every iteration's proximal kernel before the
    Sinkhorn projection — the anchor prior rides on it.  ``block``
    (an index pair, or ``None``) marks the dummy–dummy cell, which is
    re-pinned ``_DUMMY_BLOCK_PENALTY`` nats below the kernel's minimum
    each iteration — an offset relative to the kernel's own scale,
    because the proximal kernel's dynamic range grows with ``1/η`` and
    would swallow any fixed penalty.
    """

    def __init__(self, *args, offset: np.ndarray, block: tuple[int, int] | None):
        super().__init__(*args)
        self.offset = offset
        self.block = block

    def _project_plan(self, log_kernel: np.ndarray, eta: float) -> np.ndarray:
        kernel = log_kernel + self.offset
        if self.block is not None:
            kernel[self.block] = float(kernel.min()) - _DUMMY_BLOCK_PENALTY
        result = sinkhorn_log_kernel_fast(
            kernel,
            self.mu,
            self.nu,
            max_iter=self.config.sinkhorn_iter,
            tol=self.config.sinkhorn_tol,
        )
        return result.plan


class _UnbalancedRun(RestartRun):
    """Restart whose π-update projects with KL-relaxed marginals.

    ``η`` — the proximal coefficient the log kernel was built with — is
    handed to the unbalanced scaling as its entropic ``epsilon`` (the
    kernel *is* ``exp(log π_k − ∇F/η)``), so the scaling exponent
    ``ρ/(ρ+η)`` anneals together with the proximal schedule.
    """

    def __init__(self, *args, offset: np.ndarray | None):
        super().__init__(*args)
        self.offset = offset

    def _project_plan(self, log_kernel: np.ndarray, eta: float) -> np.ndarray:
        if self.offset is not None:
            log_kernel = log_kernel + self.offset
        # the unbalanced fixed point is NOT shift-invariant in the
        # kernel (a constant shift c rescales the plan's total mass by
        # exp(c(1-x)/(1+x)) for scaling exponent x), and the proximal
        # kernel's absolute scale swings with 1/eta — so pin max = 0:
        # relative costs decide *where* mass sheds, the scaled
        # marginals decide *how much*, and exp() cannot overflow
        result = sinkhorn_unbalanced_log_kernel(
            log_kernel - float(log_kernel.max()),
            self.mu,
            self.nu,
            epsilon=eta,
            rho=self.config.partial_rho,
            max_iter=self.config.sinkhorn_iter,
            tol=self.config.sinkhorn_tol,
        )
        return result.plan


def _extend_bases(bases: list[np.ndarray]) -> list[np.ndarray]:
    """Zero-pad each basis with a dummy row/column.

    The cached arrays are shared read-only, so the extension always
    copies.  Zero dummy interactions preserve symmetry, keeping the
    fused contraction path valid on the extended objective.
    """
    extended = []
    for basis in bases:
        size = basis.shape[0]
        padded = np.zeros((size + 1, size + 1))
        padded[:size, :size] = basis
        extended.append(padded)
    return extended


class PartialDummyBackend:
    """Partial-overlap portfolio via the dummy-mass reduction.

    Extended marginals ``μ_ext = [μ, s] / (1+s)`` with slack
    ``s = 1 − partial_mass`` (same for ν); with the dummy–dummy cell
    blocked the real block carries ``(1−s)/(1+s)`` of the extended
    mass, i.e. exactly ``partial_mass`` of each side's real mass is
    transported.  The returned plan is the real block rescaled to total
    mass ``partial_mass``; per-node shed fractions land in
    ``extras["partial"]``.
    """

    name = "partial-dummy"
    kind = "dense"
    partial = True

    def solve(self, problem: PreparedProblem) -> AlignmentResult:
        cfg = problem.config
        slack = 1.0 - cfg.partial_mass
        anchors = _problem_anchors(problem)
        if slack == 0.0 and anchors is None:
            # the reduction is the identity: no slack atom to append, no
            # prior to apply.  Delegating (rather than re-deriving) makes
            # the overlap=1.0 parity bitwise by construction.
            result = FusedDenseBackend().solve(problem)
            result.extras["backend"] = self.name
            result.extras["partial"] = {
                "mode": "dummy",
                "mass": 1.0,
                "slack": 0.0,
                "n_anchors": 0,
                "delegated": True,
                "matched_mass": 1.0,
                "source_unmatchable": np.zeros(problem.source.n_nodes),
                "target_unmatchable": np.zeros(problem.target.n_nodes),
            }
            return result

        with Timer() as timer:
            source_bases, target_bases = problem.bases
            k = len(source_bases)
            mu, nu = problem.marginals()
            plan0, informative_init = problem.initial_coupling(mu, nu)
            n, m = mu.shape[0], nu.shape[0]
            if slack > 0.0:
                run_source = _extend_bases(source_bases)
                run_target = _extend_bases(target_bases)
                scale = 1.0 / (1.0 + slack)
                mu_run = np.concatenate([mu, [slack]]) * scale
                nu_run = np.concatenate([nu, [slack]]) * scale
                # feasible extended start: the real block keeps plan0's
                # shape at mass/(1+s), each real atom feeds its slack
                # share straight to the opposite dummy
                plan0_run = np.zeros((n + 1, m + 1))
                plan0_run[:n, :m] = plan0 * (cfg.partial_mass * scale)
                plan0_run[:n, m] = mu * (slack * scale)
                plan0_run[n, :m] = nu * (slack * scale)
                offset = np.zeros((n + 1, m + 1))
                block = (n, m)
            else:
                # anchors without slack: nothing to shed, so skip the
                # extension entirely (a zero-mass slack atom would put
                # log(0) into the balanced projection)
                run_source, run_target = source_bases, target_bases
                mu_run, nu_run, plan0_run = mu, nu, plan0
                offset = np.zeros((n, m))
                block = None
            if anchors is not None:
                weight = cfg.partial_anchor_weight
                offset[anchors[:, 0], anchors[:, 1]] += weight
                if slack > 0.0:
                    offset[anchors[:, 0], m] -= weight
                    offset[n, anchors[:, 1]] -= weight
            objective = JointObjective(
                run_source, run_target, fused=cfg.fused_contractions
            )

            def factory(*args):
                return _OffsetRun(*args, offset=offset, block=block)

            runs, outcomes, best, checkpoints = run_portfolio(
                objective, cfg, plan0_run, mu_run, nu_run,
                informative_init, run_factory=factory,
            )
        result = portfolio_result(
            self.name, outcomes, best, k, checkpoints,
            portfolio_phase_timings(runs, problem.basis_seconds),
            runtime=timer.elapsed,
        )
        if slack > 0.0:
            plan_ext = best.plan
            real = plan_ext[:n, :m]
            shed_source = plan_ext[:n, m]
            shed_target = plan_ext[n, :m]
            total = float(real.sum())
            if total <= 0.0:
                raise ConvergenceError("partial-dummy solve shipped no mass")
            # the extended normalisation carries mass/(1+s) in the real
            # block; rescale to the documented total mass exactly
            result.plan = real * (cfg.partial_mass / total)
            source_scores = np.clip(shed_source / mu_run[:n], 0.0, 1.0)
            target_scores = np.clip(shed_target / nu_run[:m], 0.0, 1.0)
            matched_mass = total * (1.0 + slack)
        else:
            source_scores = np.zeros(n)
            target_scores = np.zeros(m)
            matched_mass = float(best.plan.sum())
        result.extras["partial"] = {
            "mode": "dummy",
            "mass": cfg.partial_mass,
            "slack": slack,
            "n_anchors": 0 if anchors is None else int(anchors.shape[0]),
            "delegated": False,
            "matched_mass": matched_mass,
            "source_unmatchable": source_scores,
            "target_unmatchable": target_scores,
        }
        return result


class PartialUnbalancedBackend:
    """Partial-overlap portfolio with KL-relaxed marginals.

    The portfolio, restarts and α-updates are the reference machinery;
    only the π-update's projection differs (see :class:`_UnbalancedRun`).
    Marginals are scaled to total mass ``partial_mass`` so the KL
    penalty pulls the transported mass toward the requested overlap;
    ``partial_rho`` sets how expensive deviating from the (scaled)
    marginals is — ``rho → ∞`` recovers the balanced solve on the
    scaled problem.
    """

    name = "partial-unbalanced"
    kind = "dense"
    partial = True

    def solve(self, problem: PreparedProblem) -> AlignmentResult:
        cfg = problem.config
        anchors = _problem_anchors(problem)
        with Timer() as timer:
            source_bases, target_bases = problem.bases
            k = len(source_bases)
            objective = JointObjective(
                source_bases, target_bases, fused=cfg.fused_contractions
            )
            mu, nu = problem.marginals()
            plan0, informative_init = problem.initial_coupling(mu, nu)
            mass = cfg.partial_mass
            mu_run = mu * mass
            nu_run = nu * mass
            plan0_run = plan0 * mass
            offset = None
            if anchors is not None:
                offset = np.zeros((mu.shape[0], nu.shape[0]))
                offset[anchors[:, 0], anchors[:, 1]] += cfg.partial_anchor_weight

            def factory(*args):
                return _UnbalancedRun(*args, offset=offset)

            runs, outcomes, best, checkpoints = run_portfolio(
                objective, cfg, plan0_run, mu_run, nu_run,
                informative_init, run_factory=factory,
            )
        result = portfolio_result(
            self.name, outcomes, best, k, checkpoints,
            portfolio_phase_timings(runs, problem.basis_seconds),
            runtime=timer.elapsed,
        )
        row_mass = best.plan.sum(axis=1)
        col_mass = best.plan.sum(axis=0)
        # shortfall against the scaled marginal: a fully-served node
        # scores ~0, a node the solver abandoned scores ~1 (unbalanced
        # scalings can overshoot their target, hence the clip)
        source_scores = np.clip(1.0 - row_mass / mu_run, 0.0, 1.0)
        target_scores = np.clip(1.0 - col_mass / nu_run, 0.0, 1.0)
        result.extras["partial"] = {
            "mode": "unbalanced",
            "mass": mass,
            "rho": cfg.partial_rho,
            "n_anchors": 0 if anchors is None else int(anchors.shape[0]),
            "delegated": False,
            "matched_mass": float(best.plan.sum()),
            "source_unmatchable": source_scores,
            "target_unmatchable": target_scores,
        }
        return result
