"""Unified alignment engine: **plan → solve → decode → evaluate**.

Every alignment in the library decomposes into four explicit stages:

1. **plan** (:mod:`repro.engine.planning`) — multi-view base
   construction behind a content-keyed cache, the marginals and the
   initial coupling;
2. **solve** (:mod:`repro.engine.backends`) — a registry of solver
   backends: the reference serial ``fused-dense`` portfolio, the
   bitwise-equal stacked ``batched-restart`` portfolio, and the
   ``sparse`` divide-and-conquer pipeline;
3. **decode** (:mod:`repro.engine.decode`) — a registry of plan
   decoders (``row-argmax`` / ``mutual-argmax`` / ``hungarian`` /
   ``mea``) turning the transport-plan posterior into a discrete
   :class:`DecodedMatching`;
4. **evaluate** (:mod:`repro.engine.evaluate`) — one metric adapter
   for dense and CSR plans and decoded matchings.

``SLOTAlign.fit``, ``DivideAndConquerAligner``'s block solves, the
experiment drivers and the CLI are all thin shims over
:class:`AlignmentEngine`, so batching/caching/backends land once and
reach every workload.
"""

from repro.engine.planning import (
    PlanCache,
    PreparedProblem,
    feature_similarity_plan,
    graph_digest,
    prepare_problem,
    shared_plan_cache,
    view_spec,
)
from repro.engine.backends import (
    DEFAULT_BACKEND,
    available_backends,
    backend_kind,
    dense_backends,
    ensure_classical_problem,
    ensure_dense_backend,
    get_backend,
    partial_backends,
    register_backend,
)
from repro.engine.coalesce import coalescible, solve_coalesced
from repro.engine.decode import (
    DEFAULT_DECODER,
    DecodedMatching,
    available_decoders,
    decode_plan,
    ensure_decoder,
    get_decoder,
    register_decoder,
)
from repro.engine.evaluate import evaluate_alignment, extract_plan
from repro.engine.pipeline import AlignmentEngine, EngineRun, align_pair
from repro.engine.precision import (
    DEFAULT_PRECISION,
    FLOAT32,
    FLOAT64,
    PRECISIONS,
    SolverPrecision,
    backend_for_precision,
    ensure_precision,
)

__all__ = [
    "AlignmentEngine",
    "EngineRun",
    "DEFAULT_BACKEND",
    "DEFAULT_DECODER",
    "DEFAULT_PRECISION",
    "DecodedMatching",
    "FLOAT32",
    "FLOAT64",
    "PRECISIONS",
    "SolverPrecision",
    "backend_for_precision",
    "ensure_precision",
    "coalescible",
    "solve_coalesced",
    "PlanCache",
    "PreparedProblem",
    "align_pair",
    "available_backends",
    "available_decoders",
    "backend_kind",
    "decode_plan",
    "dense_backends",
    "ensure_classical_problem",
    "ensure_decoder",
    "ensure_dense_backend",
    "evaluate_alignment",
    "extract_plan",
    "feature_similarity_plan",
    "get_backend",
    "get_decoder",
    "graph_digest",
    "partial_backends",
    "prepare_problem",
    "register_backend",
    "register_decoder",
    "shared_plan_cache",
    "view_spec",
]
