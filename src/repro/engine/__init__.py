"""Unified alignment engine: **plan → solve → evaluate**.

Every alignment in the library decomposes into three explicit stages:

1. **plan** (:mod:`repro.engine.planning`) — multi-view base
   construction behind a content-keyed cache, the marginals and the
   initial coupling;
2. **solve** (:mod:`repro.engine.backends`) — a registry of solver
   backends: the reference serial ``fused-dense`` portfolio, the
   bitwise-equal stacked ``batched-restart`` portfolio, and the
   ``sparse`` divide-and-conquer pipeline;
3. **evaluate** (:mod:`repro.engine.evaluate`) — one metric adapter
   for dense and CSR plans.

``SLOTAlign.fit``, ``DivideAndConquerAligner``'s block solves, the
experiment drivers and the CLI are all thin shims over
:class:`AlignmentEngine`, so batching/caching/backends land once and
reach every workload.
"""

from repro.engine.planning import (
    PlanCache,
    PreparedProblem,
    feature_similarity_plan,
    graph_digest,
    prepare_problem,
    shared_plan_cache,
    view_spec,
)
from repro.engine.backends import (
    DEFAULT_BACKEND,
    available_backends,
    backend_kind,
    dense_backends,
    ensure_classical_problem,
    ensure_dense_backend,
    get_backend,
    partial_backends,
    register_backend,
)
from repro.engine.coalesce import coalescible, solve_coalesced
from repro.engine.evaluate import evaluate_alignment, extract_plan
from repro.engine.pipeline import AlignmentEngine, EngineRun, align_pair

__all__ = [
    "AlignmentEngine",
    "EngineRun",
    "DEFAULT_BACKEND",
    "coalescible",
    "solve_coalesced",
    "PlanCache",
    "PreparedProblem",
    "align_pair",
    "available_backends",
    "backend_kind",
    "dense_backends",
    "ensure_classical_problem",
    "ensure_dense_backend",
    "evaluate_alignment",
    "extract_plan",
    "feature_similarity_plan",
    "get_backend",
    "graph_digest",
    "partial_backends",
    "prepare_problem",
    "register_backend",
    "shared_plan_cache",
    "view_spec",
]
