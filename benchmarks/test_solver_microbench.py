"""Micro-benchmarks of the OT substrate.

Not a paper artefact per se, but underpins the runtime column of
Fig. 7 / Table II: times the Sinkhorn projections and one GW proximal
sweep at a fixed problem size, and checks the fast kernel-domain
projection agrees with the log-domain reference.
"""

import numpy as np

from repro.ot import (
    proximal_gromov_wasserstein,
    sinkhorn_log,
    sinkhorn_log_kernel_fast,
)


def _problem(n=200, seed=0):
    rng = np.random.default_rng(seed)
    log_kernel = rng.standard_normal((n, n)) * 3.0
    mu = np.full(n, 1.0 / n)
    return log_kernel, mu


def test_bench_sinkhorn_log(benchmark):
    log_kernel, mu = _problem()
    result = benchmark(
        lambda: sinkhorn_log(None, mu, mu, max_iter=50, tol=0.0, log_kernel=log_kernel)
    )
    assert np.all(np.isfinite(result.plan))


def test_bench_sinkhorn_fast(benchmark):
    log_kernel, mu = _problem()
    result = benchmark(
        lambda: sinkhorn_log_kernel_fast(log_kernel, mu, mu, max_iter=50)
    )
    assert np.all(np.isfinite(result.plan))


def test_fast_matches_log_domain(benchmark):
    log_kernel, mu = _problem(n=80, seed=1)
    fast = sinkhorn_log_kernel_fast(log_kernel, mu, mu, max_iter=3000, tol=1e-12)
    reference = sinkhorn_log(
        None, mu, mu, max_iter=3000, tol=1e-12, log_kernel=log_kernel
    )
    np.testing.assert_allclose(fast.plan, reference.plan, atol=1e-8)
    benchmark(lambda: sinkhorn_log_kernel_fast(log_kernel, mu, mu, max_iter=100))


def test_bench_proximal_gw(benchmark):
    rng = np.random.default_rng(2)
    d = rng.random((100, 100))
    d = (d + d.T) / 2
    result = benchmark.pedantic(
        lambda: proximal_gromov_wasserstein(d, d, max_iter=20, inner_iter=30),
        iterations=1,
        rounds=2,
    )
    assert np.all(np.isfinite(result.plan))
