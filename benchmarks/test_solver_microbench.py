"""Micro-benchmarks of the OT substrate and the SLOTAlign solver.

Not a paper artefact per se, but underpins the runtime column of
Fig. 7 / Table II: times the Sinkhorn projections, one GW proximal
sweep and a full ``SLOTAlign.fit`` at a fixed problem size, checks the
fast kernel-domain projection agrees with the log-domain reference,
compares the engine's solver backends (asserting the batched portfolio
is bitwise-equal to the serial one while it races it), and emits
``BENCH_solver.json`` (per-phase solver timings plus per-backend fit
times) at the repo root so the performance trajectory is
machine-readable across PRs — ``benchmarks/compare_bench.py`` fails CI
on regressions against the committed file.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core import SLOTAlign, SLOTAlignConfig
from repro.datasets import make_semi_synthetic_pair
from repro.engine.pipeline import AlignmentEngine
from repro.graphs import stochastic_block_model
from repro.graphs.features import community_bag_of_words
from repro.ot import (
    proximal_gromov_wasserstein,
    sinkhorn_log,
    sinkhorn_log_kernel_fast,
)

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_solver.json"


def _merge_into_bench(new_keys: dict) -> None:
    """Merge keys into ``BENCH_solver.json`` without dropping cohorts.

    Two tests write the artefact (the solver fit and the decode/dedup
    timings); each asserts only its own keys over whatever the other
    already recorded, the ``BENCH_fidelity.json`` discipline.
    """
    payload = {}
    if BENCH_JSON.exists():
        try:
            existing = json.loads(BENCH_JSON.read_text())
            if isinstance(existing, dict):
                payload = existing
        except (json.JSONDecodeError, OSError):
            payload = {}
    payload.update(new_keys)
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _problem(n=200, seed=0):
    rng = np.random.default_rng(seed)
    log_kernel = rng.standard_normal((n, n)) * 3.0
    mu = np.full(n, 1.0 / n)
    return log_kernel, mu


def test_bench_sinkhorn_log(benchmark):
    log_kernel, mu = _problem()
    result = benchmark(
        lambda: sinkhorn_log(None, mu, mu, max_iter=50, tol=0.0, log_kernel=log_kernel)
    )
    assert np.all(np.isfinite(result.plan))


def test_bench_sinkhorn_fast(benchmark):
    log_kernel, mu = _problem()
    result = benchmark(
        lambda: sinkhorn_log_kernel_fast(log_kernel, mu, mu, max_iter=50)
    )
    assert np.all(np.isfinite(result.plan))


def test_fast_matches_log_domain(benchmark):
    log_kernel, mu = _problem(n=80, seed=1)
    fast = sinkhorn_log_kernel_fast(log_kernel, mu, mu, max_iter=3000, tol=1e-12)
    reference = sinkhorn_log(
        None, mu, mu, max_iter=3000, tol=1e-12, log_kernel=log_kernel
    )
    np.testing.assert_allclose(fast.plan, reference.plan, atol=1e-8)
    benchmark(lambda: sinkhorn_log_kernel_fast(log_kernel, mu, mu, max_iter=100))


def test_bench_proximal_gw(benchmark):
    rng = np.random.default_rng(2)
    d = rng.random((100, 100))
    d = (d + d.T) / 2
    result = benchmark.pedantic(
        lambda: proximal_gromov_wasserstein(d, d, max_iter=20, inner_iter=30),
        iterations=1,
        rounds=2,
    )
    assert np.all(np.isfinite(result.plan))


def _machine_reference_seconds() -> float:
    """A fixed deterministic workload timing this machine's BLAS.

    Mirrors the solver's op mix (GEMM + matvec + elementwise exp) at a
    fixed size, min of 3 repeats.  Stored alongside ``fit_seconds`` so
    the CI regression gate can compare *normalised* solver times
    (fit / reference) across machines of different speeds instead of
    gating raw wall-clock from one box against another.
    """
    rng = np.random.default_rng(0)
    a = rng.standard_normal((200, 200))
    v = rng.standard_normal(200)
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        c = a
        for _ in range(20):
            c = a @ c
            c /= np.abs(c).max()
        for _ in range(200):
            v = np.exp(-np.abs(a @ v) / 50.0)
        best = min(best, time.perf_counter() - t0)
    return best


def _solver_problem(seed=0, n_per_block=27):
    """Bench-scale semi-synthetic pair (~Fig. 6/7 conditions)."""
    graph = stochastic_block_model([n_per_block] * 3, 0.3, 0.02, seed=seed)
    feats = community_bag_of_words(
        graph.node_labels, 40, words_per_node=8, seed=seed + 1
    )
    graph = graph.with_features(feats)
    graph.node_labels = None
    return make_semi_synthetic_pair(graph, edge_noise=0.25, seed=seed + 2)


def test_bench_slotalign_fit(benchmark):
    """Full solver at bench scale; emits ``BENCH_solver.json``.

    The JSON records per-phase wall time (basis build, α-update,
    π-update) and per-restart totals of the portfolio scheduler so
    future PRs can track the solver's performance trajectory without
    parsing pytest-benchmark output.
    """
    pair = _solver_problem()
    cfg = SLOTAlignConfig(
        n_bases=2, structure_lr=0.1, sinkhorn_lr=0.01,
        max_outer_iter=150, track_history=False,
    )

    def fit():
        return SLOTAlign(cfg).fit(pair.source, pair.target)

    result = benchmark.pedantic(fit, iterations=1, rounds=2)
    assert np.all(np.isfinite(result.plan))
    assert result.plan.shape == (pair.source.n_nodes, pair.target.n_nodes)

    # solver-backend comparison: the batched portfolio must match the
    # serial loop bit for bit while amortising its restarts into
    # stacked GEMMs; three timed repeats, min taken (single-core box —
    # any background process doubles a lone measurement)
    backend_seconds = {}
    backend_plans = {}
    for backend in ("fused-dense", "batched-restart"):
        best = float("inf")
        for _ in range(3):
            engine = AlignmentEngine(cfg, backend=backend, cache=None)
            t0 = time.perf_counter()
            out = engine.align(pair.source, pair.target)
            best = min(best, time.perf_counter() - t0)
        backend_seconds[backend] = best
        backend_plans[backend] = out.plan
    np.testing.assert_array_equal(
        backend_plans["fused-dense"], backend_plans["batched-restart"],
        err_msg="batched-restart diverged from the serial portfolio",
    )

    timings = result.extras["phase_timings"]
    portfolio = result.extras["portfolio"]
    payload = {
        "problem": {
            "n_source": pair.source.n_nodes,
            "n_target": pair.target.n_nodes,
            "n_bases": result.extras["n_bases"],
            "max_outer_iter": cfg.max_outer_iter,
        },
        "fit_seconds": result.runtime,
        "reference_seconds": _machine_reference_seconds(),
        "backend_fit_seconds": backend_seconds,
        "batched_speedup": (
            backend_seconds["fused-dense"]
            / backend_seconds["batched-restart"]
        ),
        "phases": {
            "basis_build": timings["basis_build"],
            "alpha_update": timings["alpha_update"],
            "pi_update": timings["pi_update"],
            "objective_eval": timings["objective_eval"],
        },
        "per_restart_seconds": timings["per_restart"],
        "portfolio": {
            "selected_start": result.extras["selected_start"],
            "iterations": portfolio["iterations"],
            "pruned": portfolio["pruned"],
            "checkpoints": portfolio["checkpoints"],
        },
    }
    _merge_into_bench(payload)
    assert BENCH_JSON.exists()


def test_bench_decode_and_dedup(benchmark):
    """Decode-stage and dedup-backend timings; extends ``BENCH_solver.json``.

    One solve of the bench problem feeds every registered decoder (the
    stage-3 cost is the entire marginal price of a better matching —
    it must stay orders of magnitude below the solve), and the dedup
    backends are timed against their dedup-off twins, recording merge
    counts and freed iteration budget.
    """
    from repro.engine import available_decoders, get_decoder

    pair = _solver_problem()
    cfg = SLOTAlignConfig(
        n_bases=2, structure_lr=0.1, sinkhorn_lr=0.01,
        max_outer_iter=150, track_history=False,
    )
    engine = AlignmentEngine(cfg, backend="fused-dense", cache=None)
    t0 = time.perf_counter()
    result = benchmark.pedantic(
        lambda: engine.align(pair.source, pair.target),
        iterations=1, rounds=1,
    )
    solve_seconds = time.perf_counter() - t0

    decode_seconds = {}
    for name in available_decoders():
        decoded = get_decoder(name).decode(result.plan)
        decode_seconds[name] = decoded.decode_seconds
        assert decoded.matching.shape == (pair.source.n_nodes,)
        # decoding must be a rounding error next to the solve it reuses
        assert decoded.decode_seconds < max(solve_seconds, 0.05)

    dedup = {}
    for base_name, dedup_name in (
        ("fused-dense", "fused-dense-dedup"),
        ("batched-restart", "batched-dedup"),
    ):
        times = {}
        extras = None
        for backend in (base_name, dedup_name):
            t0 = time.perf_counter()
            out = AlignmentEngine(cfg, backend=backend, cache=None).align(
                pair.source, pair.target
            )
            times[backend] = time.perf_counter() - t0
            if backend == dedup_name:
                extras = out.extras.get("dedup", {})
        dedup[dedup_name] = {
            "fit_seconds": times[dedup_name],
            "base_fit_seconds": times[base_name],
            "merges": len(extras.get("merges", [])),
            "freed_iterations": extras.get("freed_iterations", 0),
            "extension": extras.get("extension", 0),
            "tolerance": extras.get("tolerance"),
        }

    _merge_into_bench(
        {"decode_seconds": decode_seconds, "dedup": dedup}
    )
    assert BENCH_JSON.exists()


def test_bench_precision_and_threading(benchmark, bench_scale):
    """Float32 fast path and threaded restarts; extends ``BENCH_solver.json``.

    The ``precision`` section times the float64 serial reference
    against the backend ``precision="float32"`` routes to
    (``batched-f32``) on the bench problem — min of three repeats each
    side, so the recorded ``pi_update_speedup`` is a within-run ratio
    the CI gate (``compare_bench.check_precision``) can compare
    machine-neutrally — and records Hit@1/MRR parity between the two
    precisions on every decoder-cohort bench pair, with the documented
    tolerance written into the JSON.  The ``threading`` section times
    ``threaded-restart`` and asserts its float64 mode is bitwise the
    serial portfolio (on any core count).
    """
    from repro.datasets import load_graph_dataset
    from repro.engine.precision import HIT1_PARITY_POINTS
    from repro.eval.metrics import evaluate_decoded
    from repro.experiments.decoders import PAIRS, pair_name
    from repro.scale.executor import available_cpus

    pair = _solver_problem()
    cfg = SLOTAlignConfig(
        n_bases=2, structure_lr=0.1, sinkhorn_lr=0.01,
        max_outer_iter=150, track_history=False,
    )

    def timed_align(precision):
        best_fit, best_pi, out = float("inf"), float("inf"), None
        for _ in range(3):
            engine = AlignmentEngine(
                cfg, backend="fused-dense", cache=None, precision=precision
            )
            t0 = time.perf_counter()
            out = engine.align(pair.source, pair.target)
            best_fit = min(best_fit, time.perf_counter() - t0)
            best_pi = min(
                best_pi, out.extras["phase_timings"]["pi_update"]
            )
        return best_fit, best_pi, out

    f64_fit, f64_pi, f64_out = timed_align("float64")
    f32_fit, f32_pi, f32_out = benchmark.pedantic(
        timed_align, args=("float32",), iterations=1, rounds=1
    )
    assert f64_out.extras["backend"] == "fused-dense"
    assert f32_out.extras["backend"] == "batched-f32"
    assert f32_out.extras["precision"] == "float32"
    assert np.all(np.isfinite(f32_out.plan))
    assert f32_out.plan.dtype == np.float64  # outcomes are re-cast

    # Hit@1/MRR parity on the decoder-cohort bench pairs: same solver
    # profile at both precisions, default decode, converged solves
    from dataclasses import replace as _replace

    from repro.core import SEMI_SYNTHETIC_CONFIG

    parity_cfg = _replace(
        SEMI_SYNTHETIC_CONFIG,
        max_outer_iter=60, multi_start=False,
        single_start_view="node", track_history=False,
    )
    parity = {}
    max_hit1_delta = 0.0
    for dataset, edge_noise in PAIRS:
        graph = load_graph_dataset(dataset, scale=bench_scale.dataset_scale)
        bench_pair = make_semi_synthetic_pair(
            graph, edge_noise=edge_noise, seed=bench_scale.seed
        )
        reports = {}
        for precision in ("float64", "float32"):
            engine = AlignmentEngine(
                parity_cfg, backend="fused-dense", cache=None,
                precision=precision,
            )
            result = engine.align(bench_pair.source, bench_pair.target)
            decoded = engine.decode(result)
            reports[precision] = evaluate_decoded(
                decoded, bench_pair.ground_truth, ks=(1, 5, 10)
            )
        hit1_delta = abs(
            reports["float32"]["hits@1"] - reports["float64"]["hits@1"]
        )
        max_hit1_delta = max(max_hit1_delta, hit1_delta)
        assert hit1_delta <= HIT1_PARITY_POINTS, (
            f"{dataset}-{edge_noise}: float32 Hit@1 drifted "
            f"{hit1_delta:.2f} points from float64"
        )
        parity[pair_name(dataset, edge_noise)] = {
            "hits@1": {p: reports[p]["hits@1"] for p in reports},
            "mrr": {p: reports[p]["mrr"] for p in reports},
            "hit1_delta": hit1_delta,
        }

    # threaded-restart: float64 mode must be bitwise the serial
    # portfolio regardless of core count; timing is informational on
    # boxes without real parallelism
    cpus = available_cpus()
    best_threaded = float("inf")
    for _ in range(3):
        engine = AlignmentEngine(
            cfg, backend="threaded-restart", cache=None
        )
        t0 = time.perf_counter()
        threaded_out = engine.align(pair.source, pair.target)
        best_threaded = min(best_threaded, time.perf_counter() - t0)
    bitwise_equal = bool(
        np.array_equal(threaded_out.plan, f64_out.plan)
    )
    assert bitwise_equal, "threaded-restart diverged from fused-dense"

    _merge_into_bench({
        "precision": {
            "hit1_tolerance": HIT1_PARITY_POINTS,
            "float64": {
                "backend": "fused-dense",
                "fit_seconds": f64_fit,
                "pi_update_seconds": f64_pi,
            },
            "float32": {
                "backend": f32_out.extras["backend"],
                "fit_seconds": f32_fit,
                "pi_update_seconds": f32_pi,
            },
            "fit_speedup": f64_fit / f32_fit,
            "pi_update_speedup": f64_pi / f32_pi,
            "parity": parity,
            "max_hit1_delta": max_hit1_delta,
        },
        "threading": {
            "cpus": cpus,
            "workers": threaded_out.extras["threading"]["workers"],
            "fit_seconds": best_threaded,
            "speedup_vs_serial": f64_fit / best_threaded,
            "bitwise_equal_serial": bitwise_equal,
        },
    })
    assert BENCH_JSON.exists()
