"""Lint-gate benchmark: the static-analysis pass must stay cheap.

The CI lint job runs before everything else and carries no pip cache,
so ``repro lint`` earning its keep depends on it staying a
seconds-not-minutes pass over the whole package.  This bench times a
full-tree run of the default rule set plus a pin regeneration into a
scratch file, emits ``BENCH_lint.json`` at the repo root (module
count, finding count — asserted zero, the tree invariant — and
wall-clock), and prints the rule catalogue as the reproduction log.
"""

import json
import time
from pathlib import Path

from repro.analysis import default_rules, iter_modules, run_lint
from repro.analysis.pins import update_pins

from benchmarks.conftest import emit

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_lint.json"

MAX_SECONDS = 30.0
"""Generous ceiling: the full-tree pass takes well under a second on a
laptop; the bound only exists to catch an accidental quadratic rule."""


def test_full_tree_lint_is_fast_and_clean(tmp_path):
    t0 = time.perf_counter()
    modules = iter_modules()
    findings = run_lint(modules=modules)
    lint_seconds = time.perf_counter() - t0

    t1 = time.perf_counter()
    pins = update_pins(pins_path=tmp_path / "pins.json")
    update_seconds = time.perf_counter() - t1

    assert findings == [], "\n".join(f.format() for f in findings)
    assert pins, "no `#: pinned` definitions found"
    assert lint_seconds < MAX_SECONDS

    payload = {
        "modules": len(modules),
        "rules": [rule.rule_id for rule in default_rules()],
        "findings": len(findings),
        "pinned_definitions": len(pins),
        "lint_seconds": round(lint_seconds, 4),
        "update_pins_seconds": round(update_seconds, 4),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    catalogue = "\n".join(
        f"{rule.rule_id:12s} {rule.description}" for rule in default_rules()
    )
    emit(
        "repro lint (full tree)",
        f"{len(modules)} modules, {len(pins)} pinned definitions, "
        f"0 findings in {lint_seconds:.3f}s\n{catalogue}",
    )
