"""Benchmark ABL — SLOTAlign ablations (paper Table II bottom block).

Regenerates the five ablations on the Douban simulator.

Expected shape (paper): the full model beats every ablation on Hit@1
(each component — edge view, node view, subgraph view, learned weights,
parameter-free GNN — contributes).
"""

from benchmarks.conftest import emit
from repro.datasets import load_douban
from repro.eval.metrics import hits_at_k
from repro.eval.reporting import format_table
from repro.experiments.ablations import ablation_aligners
from repro.experiments.config import slotalign_real_world


def test_ablations_on_douban(benchmark, bench_scale):
    pair = load_douban(scale=min(1.0, bench_scale.dataset_scale * 3), seed=23)

    def run():
        methods = {"SLOTAlign": slotalign_real_world(bench_scale)}
        methods.update(ablation_aligners(bench_scale))
        rows = {}
        for name, method in methods.items():
            outcome = method.fit(pair.source, pair.target)
            rows[name] = {
                "hits@1": hits_at_k(outcome.plan, pair.ground_truth, 1),
                "hits@10": hits_at_k(outcome.plan, pair.ground_truth, 10),
                "time": outcome.runtime,
            }
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    emit("Table II (bottom) / Douban ablations", format_table(rows))
    full = rows["SLOTAlign"]["hits@1"]
    # the full model is at least as good as every ablation
    ablation_best = max(
        v["hits@1"] for k, v in rows.items() if k != "SLOTAlign"
    )
    assert full >= ablation_best - 5.0  # small slack: stochastic ablations
    # removing structure learning entirely must hurt
    assert full >= rows["SLOT-fixed-beta"]["hits@1"] - 1e-9
