"""Benchmark FIG3 — motivation study (paper Fig. 3).

Regenerates both panels: WAlign vs GWD vs KNN under structure
perturbation and under feature permutation at 25 % edge noise.

Expected shape (paper): WAlign decays under both noise types and meets
KNN at high ratios; GWD is feature-noise-immune but structure-fragile;
KNN is structure-noise-immune.
"""

from benchmarks.conftest import emit
from repro.eval.reporting import format_sweep
from repro.experiments.fig3_motivation import run_fig3


def test_fig3_motivation(benchmark, bench_scale):
    out = benchmark.pedantic(run_fig3, args=(bench_scale,), iterations=1, rounds=1)
    for panel in ("structure", "feature"):
        emit(
            f"Fig. 3 / {panel} inconsistency (Hit@1 %)",
            format_sweep(out[panel]),
        )
    sweeps = {r.method: r for r in out["structure"]}
    # KNN ignores structure noise entirely
    assert sweeps["KNN"].hits[0] == sweeps["KNN"].hits[-1]
    # GWD collapses under heavy structure noise
    assert sweeps["GWD"].hits[-1] < 0.5 * max(sweeps["GWD"].hits[0], 1e-9)
    feature_sweeps = {r.method: r for r in out["feature"]}
    # GWD ignores feature noise entirely
    assert feature_sweeps["GWD"].hits[0] == feature_sweeps["GWD"].hits[-1]
    # KNN degrades under feature permutation
    assert feature_sweeps["KNN"].hits[-1] < feature_sweeps["KNN"].hits[0]
