"""Benchmark FIG7 — feature-inconsistency robustness (paper Fig. 7).

Regenerates the three feature-transformation sweeps (permutation /
truncation / compression at 25 % edge noise) on the Cora stand-in with
the method panel, plus the runtime comparison of the figure's last
column.

Expected shape (paper): SLOTAlign is *exactly flat* under permutation
(Prop. 4) and stays ahead of GWD under truncation/compression; GWD is
flat everywhere; the cross-compare methods decay.
"""

from benchmarks.conftest import emit
from repro.eval.reporting import format_sweep
from repro.experiments.fig7_feature import run_fig7

METHODS = ("SLOTAlign", "KNN", "WAlign", "GWD")
LEVELS = (0.0, 0.4, 0.7)


def test_fig7_feature_robustness(benchmark, bench_scale):
    out = benchmark.pedantic(
        run_fig7,
        args=(bench_scale,),
        kwargs=dict(datasets=("cora",), methods=METHODS, levels=LEVELS),
        iterations=1,
        rounds=1,
    )
    for transform, sweeps in out["cora"].items():
        emit(f"Fig. 7 / cora / {transform} (Hit@1 %)", format_sweep(sweeps))
    perm = {r.method: r for r in out["cora"]["permutation"]}
    # Proposition 4: SLOTAlign exactly invariant to feature permutation
    assert max(perm["SLOTAlign"].hits) - min(perm["SLOTAlign"].hits) < 1e-9
    # GWD flat under every transform (feature-blind)
    for sweeps in out["cora"].values():
        gwd = {r.method: r for r in sweeps}["GWD"].hits
        assert max(gwd) - min(gwd) < 1e-9
    # runtime column: SLOTAlign is not the slowest method
    runtimes = {
        r.method: sum(r.runtimes) for r in out["cora"]["permutation"]
    }
    assert runtimes["SLOTAlign"] < max(runtimes.values()) or len(runtimes) == 1


def test_fig7_truncation_slotalign_beats_gwd(benchmark, bench_scale):
    out = benchmark.pedantic(
        run_fig7,
        args=(bench_scale,),
        kwargs=dict(
            datasets=("cora",),
            transforms=("truncation",),
            methods=("SLOTAlign", "GWD"),
            levels=(0.4,),
        ),
        iterations=1,
        rounds=1,
    )
    sweeps = {r.method: r for r in out["cora"]["truncation"]}
    emit(
        "Fig. 7 / cora / truncation@0.4 (Hit@1 %)",
        format_sweep(list(sweeps.values())),
    )
    assert sweeps["SLOTAlign"].hits[0] >= sweeps["GWD"].hits[0]
