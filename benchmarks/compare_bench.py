"""Bench-regression gate: compare fresh BENCH_*.json against baselines.

CI copies the *committed* ``BENCH_solver.json`` / ``BENCH_fidelity.json``
aside before the benchmark jobs overwrite them, then runs::

    python benchmarks/compare_bench.py <baseline_dir>

The gate fails (exit 1) when

* the solver microbench slowed down by more than ``--max-slowdown``
  (default 20 %) against the committed ``fit_seconds`` — or any
  individual backend did, both normalised by each side's
  ``reference_seconds`` machine calibration,
* the ``precision`` section is missing, its within-run float32
  ``pi_update`` speedup fell below ``--min-f32-speedup``, a parity
  pair's Hit@1 drifted past the tolerance recorded in the JSON, or
  ``threaded-restart`` (float64) stopped being bitwise the serial
  portfolio,
* the serving bench (``BENCH_serve.json``) lost its invariants (zero
  cache hit rate, no coalescing, a bitwise divergence from the direct
  engine) or its calibrated pairs/sec regressed past the slowdown
  budget, or
* the scalability bench (``BENCH_scale.json``) lost a correctness
  invariant (parallel blocks no longer bitwise the serial loop,
  injected cross-partition links no longer fully recovered) or its
  within-run ``block_speedup`` (serial/parallel on the same box, so no
  machine-reference normalisation needed) fell more than the slowdown
  budget below the committed value — the parallel partition path
  quietly becoming slower than serial must land as a red X, not as a
  silently re-recorded artefact, or
* any SLOTAlign-vs-best-baseline Hit@1 margin in the fresh
  ``BENCH_fidelity.json`` went negative (an accuracy regression, which
  no runner-speed excuse can explain away), or
* the ``partial`` cohort is missing, its overlap=1.0 zero-anchor
  ``partial-dummy`` point drifted from the full-bijective
  ``fused-dense`` reference (the delegation is bitwise), or its
  unanchored Hit@1 curve stopped being monotone non-increasing in
  overlap (within ``--partial-tolerance``), or
* the ``decoders`` cohort is missing, lacks one of the four
  registered decoders on some pair, or no longer has at least two
  pairs where a one-to-one decoder improves Hit@1 or MRR over
  ``row-argmax`` (the decode stage stopped earning its keep).

A missing *baseline* file is reported and skipped (first run on a
branch that introduces the artefact); a missing *fresh* file fails —
it means the benchmark that should have produced it did not run.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def load(path: Path) -> dict | None:
    if not path.exists():
        return None
    return json.loads(path.read_text())


def check_solver(baseline_dir: Path, current_dir: Path, max_slowdown: float):
    """Yield failure messages for the solver microbench comparison."""
    fresh = load(current_dir / "BENCH_solver.json")
    if fresh is None:
        yield "BENCH_solver.json missing from the current run"
        return
    baseline = load(baseline_dir / "BENCH_solver.json")
    if baseline is None:
        print("note: no baseline BENCH_solver.json; skipping solver gate")
        return
    base_fit = baseline.get("fit_seconds")
    fresh_fit = fresh.get("fit_seconds")
    if base_fit is None or fresh_fit is None:
        print("note: fit_seconds absent on one side; skipping solver gate")
        return
    # normalise by the per-run machine reference when both sides carry
    # one: the committed baseline comes from a different box than the
    # CI runner, and raw wall-clock would gate hardware speed, not code
    base_ref = baseline.get("reference_seconds")
    fresh_ref = fresh.get("reference_seconds")
    if base_ref and fresh_ref:
        base_value = base_fit / base_ref
        fresh_value = fresh_fit / fresh_ref
        unit = "x reference workload"
        print(
            f"machine calibration: baseline ref {base_ref:.4f}s, "
            f"fresh ref {fresh_ref:.4f}s"
        )
    else:
        base_value, fresh_value, unit = base_fit, fresh_fit, "s (uncalibrated)"
        print("note: no reference_seconds on one side; comparing raw seconds")
    allowed = base_value * (1.0 + max_slowdown)
    print(
        f"solver fit: baseline {base_value:.3f}{unit}, "
        f"fresh {fresh_value:.3f}{unit} (allowed <= {allowed:.3f})"
    )
    if fresh_value > allowed:
        yield (
            f"solver microbench regressed: {fresh_value:.3f}{unit} vs "
            f"committed {base_value:.3f}{unit} (> {max_slowdown:.0%} slowdown)"
        )
    backends = fresh.get("backend_fit_seconds", {})
    serial = backends.get("fused-dense")
    batched = backends.get("batched-restart")
    if serial is not None and batched is not None:
        ratio = serial / batched if batched else float("inf")
        print(f"batched-restart speedup over fused-dense: {ratio:.2f}x")
        if batched > serial:
            # informational: timing on shared runners is noisy, and the
            # backends are bitwise-equal, so this is not a correctness gate
            print("warning: batched-restart slower than fused-dense this run")
    # per-backend regression gate, normalised by each side's machine
    # reference exactly like the headline fit gate — a backend can
    # regress while the headline (which only times the default path)
    # stays green, and raw per-backend seconds would gate hardware
    base_backends = baseline.get("backend_fit_seconds", {})
    if base_ref and fresh_ref:
        for name in sorted(set(backends) & set(base_backends)):
            base_value = base_backends[name] / base_ref
            fresh_value = backends[name] / fresh_ref
            allowed = base_value * (1.0 + max_slowdown)
            print(
                f"backend {name}: baseline {base_value:.3f}x reference, "
                f"fresh {fresh_value:.3f}x (allowed <= {allowed:.3f})"
            )
            if fresh_value > allowed:
                yield (
                    f"backend {name} regressed: {fresh_value:.3f}x reference "
                    f"vs committed {base_value:.3f}x "
                    f"(> {max_slowdown:.0%} slowdown)"
                )
    elif base_backends:
        print("note: no reference_seconds on one side; per-backend gate skipped")


def check_precision(current_dir: Path, min_speedup: float = 1.3):
    """Yield failure messages for the precision/threading sections.

    Both gates are *within-run* invariants of the fresh
    ``BENCH_solver.json`` — the float64 reference and the float32 solve
    are timed back to back on the same box, so their ratio needs no
    machine-reference normalisation:

    * the ``precision`` section must exist, its ``pi_update_speedup``
      must clear ``min_speedup`` (the acceptance target is 1.5x; the
      gate leaves headroom for shared-runner noise), and every parity
      pair's Hit@1 delta must sit within the tolerance the benchmark
      wrote into the JSON;
    * the ``threading`` section must exist and its float64 mode must
      have been bitwise-equal to the serial portfolio.
    """
    fresh = load(current_dir / "BENCH_solver.json")
    if fresh is None:
        yield "BENCH_solver.json missing from the current run"
        return
    section = fresh.get("precision")
    if not isinstance(section, dict):
        yield (
            "BENCH_solver.json has no precision section "
            "(precision bench did not run)"
        )
        return
    speedup = section.get("pi_update_speedup")
    if speedup is None:
        yield "precision section lacks pi_update_speedup"
    else:
        print(
            f"float32 pi_update speedup: {speedup:.2f}x "
            f"(required >= {min_speedup:.2f}x)"
        )
        if speedup < min_speedup:
            yield (
                f"float32 pi_update speedup {speedup:.2f}x fell below "
                f"{min_speedup:.2f}x — the reduced-precision fast path "
                "stopped paying for itself"
            )
    tolerance = section.get("hit1_tolerance")
    parity = section.get("parity")
    if not isinstance(parity, dict) or not parity or tolerance is None:
        yield "precision section lacks the Hit@1 parity pairs/tolerance"
    else:
        for name, entry in sorted(parity.items()):
            delta = entry.get("hit1_delta")
            if delta is None:
                yield f"precision parity pair {name!r} lacks hit1_delta"
                continue
            print(f"precision parity {name}: Hit@1 delta {delta:.2f}")
            if delta > tolerance:
                yield (
                    f"precision parity broken on {name}: float32 Hit@1 "
                    f"drifted {delta:.2f} points from float64 "
                    f"(tolerance {tolerance})"
                )
    threading = fresh.get("threading")
    if not isinstance(threading, dict):
        yield (
            "BENCH_solver.json has no threading section "
            "(threading bench did not run)"
        )
        return
    print(
        f"threading: {threading.get('workers')} worker(s) on "
        f"{threading.get('cpus')} cpu(s), "
        f"speedup {threading.get('speedup_vs_serial', 0.0):.2f}x"
    )
    if threading.get("bitwise_equal_serial") is not True:
        yield (
            "threaded-restart (float64) diverged bitwise from the serial "
            "portfolio"
        )


def check_serve(baseline_dir: Path, current_dir: Path, max_slowdown: float):
    """Yield failure messages for the serving-bench comparison.

    The fresh file carries its own correctness invariants (cache hits,
    coalescing engaged, bitwise fidelity) — those gate unconditionally.
    Throughput gates only against a committed baseline, normalised by
    each side's ``reference_seconds`` so machine speed cancels out:
    ``pairs_per_second × reference_seconds`` is pairs per reference
    workload, comparable across boxes.
    """
    fresh = load(current_dir / "BENCH_serve.json")
    if fresh is None:
        yield "BENCH_serve.json missing from the current run"
        return
    if fresh.get("cache", {}).get("hit_rate", 0.0) <= 0.0:
        yield "serve bench: plan-cache hit rate is zero (sharing broken)"
    if fresh.get("coalesced_batches", 0) <= 0:
        yield "serve bench: no coalesced batches (coalescing disengaged)"
    if fresh.get("single_pair_bitwise_equal") is not True:
        yield (
            "serve bench: served plan diverged bitwise from the direct "
            "engine run"
        )
    baseline = load(baseline_dir / "BENCH_serve.json")
    if baseline is None:
        print("note: no baseline BENCH_serve.json; skipping serve gate")
        return
    base_pps = baseline.get("pairs_per_second")
    fresh_pps = fresh.get("pairs_per_second")
    if base_pps is None or fresh_pps is None:
        print("note: pairs_per_second absent on one side; skipping serve gate")
        return
    base_ref = baseline.get("reference_seconds")
    fresh_ref = fresh.get("reference_seconds")
    if base_ref and fresh_ref:
        base_value = base_pps * base_ref
        fresh_value = fresh_pps * fresh_ref
        unit = " pairs/reference"
        print(
            f"machine calibration: baseline ref {base_ref:.4f}s, "
            f"fresh ref {fresh_ref:.4f}s"
        )
    else:
        base_value, fresh_value = base_pps, fresh_pps
        unit = " pairs/s (uncalibrated)"
        print("note: no reference_seconds on one side; comparing raw pairs/s")
    allowed = base_value / (1.0 + max_slowdown)
    print(
        f"serve throughput: baseline {base_value:.3f}{unit}, "
        f"fresh {fresh_value:.3f}{unit} (allowed >= {allowed:.3f})"
    )
    if fresh_value < allowed:
        yield (
            f"serve bench regressed: {fresh_value:.3f}{unit} vs committed "
            f"{base_value:.3f}{unit} (> {max_slowdown:.0%} slowdown)"
        )


def check_scale(baseline_dir: Path, current_dir: Path, max_slowdown: float):
    """Yield failure messages for the scalability-bench comparison.

    The fresh file carries its own correctness invariants — the
    process-parallel block solves must stay bitwise-equal to the
    serial loop and the seeded boundary repair must keep recovering
    every injected cross-partition link — and those gate
    unconditionally.  ``block_speedup`` is a within-run ratio (serial
    and parallel timed back to back on the same box), so it gates
    directly against the committed value without machine-reference
    normalisation.  The comparison is skipped with a note when the
    fresh box has fewer cpus than the baseline box: a parallel path
    cannot be expected to hold its speedup with fewer cores.
    """
    fresh = load(current_dir / "BENCH_scale.json")
    if fresh is None:
        yield "BENCH_scale.json missing from the current run"
        return
    four_block = fresh.get("four_block", {})
    if four_block.get("bitwise_equal") is not True:
        yield (
            "scale bench: parallel block solves diverged bitwise from "
            "the serial loop"
        )
    recovery = four_block.get("injected_recovery", {})
    rate = recovery.get("recovery_rate")
    if rate is not None and rate < 1.0:
        yield (
            f"scale bench: boundary repair recovered only "
            f"{recovery.get('recovered_links')}/{recovery.get('lost_links')} "
            f"injected cross-partition links (rate {rate:.2f} < 1.0)"
        )
    baseline = load(baseline_dir / "BENCH_scale.json")
    if baseline is None:
        print("note: no baseline BENCH_scale.json; skipping scale gate")
        return
    base_speedup = baseline.get("four_block", {}).get("block_speedup")
    fresh_speedup = four_block.get("block_speedup")
    if base_speedup is None or fresh_speedup is None:
        print("note: block_speedup absent on one side; skipping scale gate")
        return
    base_cpus = baseline.get("cpu_count")
    fresh_cpus = fresh.get("cpu_count")
    if base_cpus and fresh_cpus and fresh_cpus < base_cpus:
        print(
            f"note: fresh box has {fresh_cpus} cpu(s) vs baseline "
            f"{base_cpus}; skipping block_speedup gate"
        )
        return
    allowed = base_speedup / (1.0 + max_slowdown)
    print(
        f"scale block_speedup: baseline {base_speedup:.2f}x, "
        f"fresh {fresh_speedup:.2f}x (allowed >= {allowed:.2f}x)"
    )
    if fresh_speedup < allowed:
        yield (
            f"scale bench regressed: block_speedup {fresh_speedup:.2f}x vs "
            f"committed {base_speedup:.2f}x (> {max_slowdown:.0%} drop) — "
            "the parallel partition path is losing to serial"
        )


def check_fidelity(current_dir: Path):
    """Yield failure messages for negative accuracy margins."""
    fresh = load(current_dir / "BENCH_fidelity.json")
    if fresh is None:
        yield "BENCH_fidelity.json missing from the current run"
        return
    tables = fresh.get("tables", {})
    if not tables:
        yield "BENCH_fidelity.json contains no tables"
        return
    for name, entry in sorted(tables.items()):
        margin = entry.get("margin")
        if margin is None:
            print(f"fidelity margin {name}: (absent; skipped)")
            continue
        print(f"fidelity margin {name}: {margin:+.2f}")
        if margin < 0.0:
            yield (
                f"fidelity regression: {name} margin {margin:.2f} < 0 "
                f"(SLOTAlign {entry.get('slotalign')} vs "
                f"{entry.get('best_baseline_name')} {entry.get('best_baseline')})"
            )


def check_partial(current_dir: Path, tolerance: float = 10.0):
    """Yield failure messages for the partial-overlap cohort.

    The cohort (written by ``benchmarks/test_partial_bench.py``) must
    exist, its ``partial-dummy`` overlap=1.0 zero-anchor point must
    reproduce the full-bijective ``fused-dense`` Hit@1 *exactly* (the
    delegation is bitwise — any drift means the partial plumbing
    touched the classical path), and the unanchored Hit@1 curve must
    be monotone non-increasing (within ``tolerance``) as overlap
    drops.
    """
    fresh = load(current_dir / "BENCH_fidelity.json")
    if fresh is None:
        yield "BENCH_fidelity.json missing from the current run"
        return
    cohort = fresh.get("partial")
    if not isinstance(cohort, dict) or not cohort.get("points"):
        yield "BENCH_fidelity.json has no partial cohort (partial bench did not run)"
        return
    points = cohort["points"]
    dummy = [p for p in points if p.get("backend") == "partial-dummy"]
    overlaps = sorted({p["overlap"] for p in dummy})
    anchored = any(p.get("anchor_fraction", 0.0) > 0.0 for p in dummy)
    print(
        f"partial cohort: {len(points)} points, overlaps {overlaps}, "
        f"anchored points: {anchored}"
    )
    if len(overlaps) < 3:
        yield f"partial cohort covers {len(overlaps)} overlap fractions (< 3)"
    if not anchored:
        yield "partial cohort has no anchor-seeded points"
    reference = cohort.get("full_bijective_hits1")
    parity = [
        p for p in dummy
        if p["overlap"] == 1.0 and p.get("anchor_fraction", 0.0) == 0.0
    ]
    if reference is None or not parity:
        yield "partial cohort lacks the overlap=1.0 parity point/reference"
    else:
        drift = abs(parity[0]["hits@1"] - reference)
        print(
            f"partial parity: sweep {parity[0]['hits@1']:.4f} vs "
            f"full-bijective {reference:.4f} (drift {drift:.2e})"
        )
        if drift > 1e-9:
            yield (
                f"partial parity broken: overlap=1.0 point {parity[0]['hits@1']}"
                f" != full-bijective fused-dense {reference} (delegation must "
                "be bitwise)"
            )
    unanchored = sorted(
        (p for p in dummy if p.get("anchor_fraction", 0.0) == 0.0),
        key=lambda p: -p["overlap"],
    )
    for higher, lower in zip(unanchored, unanchored[1:]):
        if lower["hits@1"] > higher["hits@1"] + tolerance:
            yield (
                f"partial curve not monotone: overlap {lower['overlap']} "
                f"Hit@1 {lower['hits@1']:.2f} exceeds overlap "
                f"{higher['overlap']} Hit@1 {higher['hits@1']:.2f} "
                f"by more than {tolerance}"
            )


def check_decoders(current_dir: Path, min_improved: int = 2):
    """Yield failure messages for the decoder-comparison cohort.

    The cohort (written by ``benchmarks/test_decoder_bench.py``) must
    exist, carry all four registered decoders on every pair, and keep
    at least ``min_improved`` pairs whose ``improved_over_baseline``
    list is non-empty — the PR-9 acceptance gate that a one-to-one
    decoder actually buys Hit@1/MRR somewhere, at zero solver cost.
    """
    expected = {"hungarian", "mea", "mutual-argmax", "row-argmax"}
    fresh = load(current_dir / "BENCH_fidelity.json")
    if fresh is None:
        yield "BENCH_fidelity.json missing from the current run"
        return
    cohort = fresh.get("decoders")
    if not isinstance(cohort, dict) or not cohort.get("pairs"):
        yield (
            "BENCH_fidelity.json has no decoders cohort "
            "(decoder bench did not run)"
        )
        return
    pairs = cohort["pairs"]
    improved = []
    for name, entry in sorted(pairs.items()):
        present = set(entry.get("decoders", {}))
        if present != expected:
            yield (
                f"decoder cohort pair {name!r} carries {sorted(present)} "
                f"(expected {sorted(expected)})"
            )
        winners = entry.get("improved_over_baseline", [])
        print(f"decoder cohort {name}: improved_over_baseline={winners}")
        if winners:
            improved.append(name)
    print(
        f"decoder cohort: {len(improved)}/{len(pairs)} pairs improved "
        f"over {cohort.get('baseline_decoder', 'row-argmax')}"
    )
    if len(improved) < min_improved:
        yield (
            f"decoder cohort: only {len(improved)} pairs improve on the "
            f"baseline decoder (need {min_improved}) — the one-to-one "
            "decoders stopped beating row-argmax"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "baseline_dir", type=Path,
        help="directory holding the committed BENCH_*.json copies",
    )
    parser.add_argument(
        "--current-dir", type=Path, default=REPO_ROOT,
        help="directory holding the freshly generated BENCH_*.json",
    )
    parser.add_argument(
        "--max-slowdown", type=float, default=0.20,
        help="allowed fractional fit_seconds slowdown (default 0.20)",
    )
    parser.add_argument(
        "--partial-tolerance", type=float, default=10.0,
        help="Hit@1 points of slack for the partial-curve monotonicity "
        "gate (default 10.0, matching test_partial_bench.SHAPE_TOLERANCE)",
    )
    parser.add_argument(
        "--min-f32-speedup", type=float, default=1.3,
        help="required within-run float32 pi_update speedup over the "
        "float64 serial reference (default 1.3; acceptance target 1.5)",
    )
    args = parser.parse_args(argv)
    failures = [
        *check_solver(args.baseline_dir, args.current_dir, args.max_slowdown),
        *check_precision(args.current_dir, min_speedup=args.min_f32_speedup),
        *check_serve(args.baseline_dir, args.current_dir, args.max_slowdown),
        *check_scale(args.baseline_dir, args.current_dir, args.max_slowdown),
        *check_fidelity(args.current_dir),
        *check_partial(args.current_dir, tolerance=args.partial_tolerance),
        *check_decoders(args.current_dir),
    ]
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("bench regression gate: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
