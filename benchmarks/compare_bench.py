"""Bench-regression gate: compare fresh BENCH_*.json against baselines.

CI copies the *committed* ``BENCH_solver.json`` / ``BENCH_fidelity.json``
aside before the benchmark jobs overwrite them, then runs::

    python benchmarks/compare_bench.py <baseline_dir>

The gate fails (exit 1) when

* the solver microbench slowed down by more than ``--max-slowdown``
  (default 20 %) against the committed ``fit_seconds``,
* the serving bench (``BENCH_serve.json``) lost its invariants (zero
  cache hit rate, no coalescing, a bitwise divergence from the direct
  engine) or its calibrated pairs/sec regressed past the slowdown
  budget, or
* any SLOTAlign-vs-best-baseline Hit@1 margin in the fresh
  ``BENCH_fidelity.json`` went negative (an accuracy regression, which
  no runner-speed excuse can explain away).

A missing *baseline* file is reported and skipped (first run on a
branch that introduces the artefact); a missing *fresh* file fails —
it means the benchmark that should have produced it did not run.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def load(path: Path) -> dict | None:
    if not path.exists():
        return None
    return json.loads(path.read_text())


def check_solver(baseline_dir: Path, current_dir: Path, max_slowdown: float):
    """Yield failure messages for the solver microbench comparison."""
    fresh = load(current_dir / "BENCH_solver.json")
    if fresh is None:
        yield "BENCH_solver.json missing from the current run"
        return
    baseline = load(baseline_dir / "BENCH_solver.json")
    if baseline is None:
        print("note: no baseline BENCH_solver.json; skipping solver gate")
        return
    base_fit = baseline.get("fit_seconds")
    fresh_fit = fresh.get("fit_seconds")
    if base_fit is None or fresh_fit is None:
        print("note: fit_seconds absent on one side; skipping solver gate")
        return
    # normalise by the per-run machine reference when both sides carry
    # one: the committed baseline comes from a different box than the
    # CI runner, and raw wall-clock would gate hardware speed, not code
    base_ref = baseline.get("reference_seconds")
    fresh_ref = fresh.get("reference_seconds")
    if base_ref and fresh_ref:
        base_value = base_fit / base_ref
        fresh_value = fresh_fit / fresh_ref
        unit = "x reference workload"
        print(
            f"machine calibration: baseline ref {base_ref:.4f}s, "
            f"fresh ref {fresh_ref:.4f}s"
        )
    else:
        base_value, fresh_value, unit = base_fit, fresh_fit, "s (uncalibrated)"
        print("note: no reference_seconds on one side; comparing raw seconds")
    allowed = base_value * (1.0 + max_slowdown)
    print(
        f"solver fit: baseline {base_value:.3f}{unit}, "
        f"fresh {fresh_value:.3f}{unit} (allowed <= {allowed:.3f})"
    )
    if fresh_value > allowed:
        yield (
            f"solver microbench regressed: {fresh_value:.3f}{unit} vs "
            f"committed {base_value:.3f}{unit} (> {max_slowdown:.0%} slowdown)"
        )
    backends = fresh.get("backend_fit_seconds", {})
    serial = backends.get("fused-dense")
    batched = backends.get("batched-restart")
    if serial is not None and batched is not None:
        ratio = serial / batched if batched else float("inf")
        print(f"batched-restart speedup over fused-dense: {ratio:.2f}x")
        if batched > serial:
            # informational: timing on shared runners is noisy, and the
            # backends are bitwise-equal, so this is not a correctness gate
            print("warning: batched-restart slower than fused-dense this run")


def check_serve(baseline_dir: Path, current_dir: Path, max_slowdown: float):
    """Yield failure messages for the serving-bench comparison.

    The fresh file carries its own correctness invariants (cache hits,
    coalescing engaged, bitwise fidelity) — those gate unconditionally.
    Throughput gates only against a committed baseline, normalised by
    each side's ``reference_seconds`` so machine speed cancels out:
    ``pairs_per_second × reference_seconds`` is pairs per reference
    workload, comparable across boxes.
    """
    fresh = load(current_dir / "BENCH_serve.json")
    if fresh is None:
        yield "BENCH_serve.json missing from the current run"
        return
    if fresh.get("cache", {}).get("hit_rate", 0.0) <= 0.0:
        yield "serve bench: plan-cache hit rate is zero (sharing broken)"
    if fresh.get("coalesced_batches", 0) <= 0:
        yield "serve bench: no coalesced batches (coalescing disengaged)"
    if fresh.get("single_pair_bitwise_equal") is not True:
        yield (
            "serve bench: served plan diverged bitwise from the direct "
            "engine run"
        )
    baseline = load(baseline_dir / "BENCH_serve.json")
    if baseline is None:
        print("note: no baseline BENCH_serve.json; skipping serve gate")
        return
    base_pps = baseline.get("pairs_per_second")
    fresh_pps = fresh.get("pairs_per_second")
    if base_pps is None or fresh_pps is None:
        print("note: pairs_per_second absent on one side; skipping serve gate")
        return
    base_ref = baseline.get("reference_seconds")
    fresh_ref = fresh.get("reference_seconds")
    if base_ref and fresh_ref:
        base_value = base_pps * base_ref
        fresh_value = fresh_pps * fresh_ref
        unit = " pairs/reference"
        print(
            f"machine calibration: baseline ref {base_ref:.4f}s, "
            f"fresh ref {fresh_ref:.4f}s"
        )
    else:
        base_value, fresh_value = base_pps, fresh_pps
        unit = " pairs/s (uncalibrated)"
        print("note: no reference_seconds on one side; comparing raw pairs/s")
    allowed = base_value / (1.0 + max_slowdown)
    print(
        f"serve throughput: baseline {base_value:.3f}{unit}, "
        f"fresh {fresh_value:.3f}{unit} (allowed >= {allowed:.3f})"
    )
    if fresh_value < allowed:
        yield (
            f"serve bench regressed: {fresh_value:.3f}{unit} vs committed "
            f"{base_value:.3f}{unit} (> {max_slowdown:.0%} slowdown)"
        )


def check_fidelity(current_dir: Path):
    """Yield failure messages for negative accuracy margins."""
    fresh = load(current_dir / "BENCH_fidelity.json")
    if fresh is None:
        yield "BENCH_fidelity.json missing from the current run"
        return
    tables = fresh.get("tables", {})
    if not tables:
        yield "BENCH_fidelity.json contains no tables"
        return
    for name, entry in sorted(tables.items()):
        margin = entry.get("margin")
        if margin is None:
            print(f"fidelity margin {name}: (absent; skipped)")
            continue
        print(f"fidelity margin {name}: {margin:+.2f}")
        if margin < 0.0:
            yield (
                f"fidelity regression: {name} margin {margin:.2f} < 0 "
                f"(SLOTAlign {entry.get('slotalign')} vs "
                f"{entry.get('best_baseline_name')} {entry.get('best_baseline')})"
            )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "baseline_dir", type=Path,
        help="directory holding the committed BENCH_*.json copies",
    )
    parser.add_argument(
        "--current-dir", type=Path, default=REPO_ROOT,
        help="directory holding the freshly generated BENCH_*.json",
    )
    parser.add_argument(
        "--max-slowdown", type=float, default=0.20,
        help="allowed fractional fit_seconds slowdown (default 0.20)",
    )
    args = parser.parse_args(argv)
    failures = [
        *check_solver(args.baseline_dir, args.current_dir, args.max_slowdown),
        *check_serve(args.baseline_dir, args.current_dir, args.max_slowdown),
        *check_fidelity(args.current_dir),
    ]
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("bench regression gate: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
