"""Benchmark TAB2 — real-world alignment (paper Table II).

Regenerates Hit@{1,5,10,30} + runtime for the method panel on the
Douban Online-Offline and ACM-DBLP pair simulators, and records the
SLOTAlign-vs-best-baseline Hit@1 margins in ``BENCH_fidelity.json``.

Expected shape (paper): SLOTAlign leads Hit@1 on both pairs; KNN is
weak on Douban (coarse location features) and strong on ACM-DBLP
(venue counts); GWD is weak on Douban.

Recovered in PR 4 (seed-era red): the degenerate-β fixes (tied
weights, centred kernels, cosine hops), the Sec. V-C similarity init
extended to the real-world pairs, and the scale-aware K (edge + node
views only at stand-in scale) put SLOTAlign above the whole panel —
including FusedGW's persistent linear feature anchor, the strongest
non-paper baseline on these stand-ins.
"""

from benchmarks.conftest import emit
from repro.eval.fidelity import format_fidelity, record_fidelity
from repro.eval.reporting import format_table
from repro.experiments.table2_realworld import run_table2

METHODS = ("SLOTAlign", "KNN", "REGAL", "GCNAlign", "WAlign", "GWD", "FusedGW")


def test_table2_realworld(benchmark, bench_scale):
    out = benchmark.pedantic(
        run_table2,
        args=(bench_scale,),
        kwargs=dict(methods=METHODS, with_ablations=False),
        iterations=1,
        rounds=1,
    )
    for dataset, rows in out.items():
        emit(f"Table II / {dataset}", format_table(rows))
        record_fidelity(
            f"table2_{dataset}", rows, fixed=True,
            dataset_scale=bench_scale.dataset_scale,
        )
    emit("Fidelity margins", format_fidelity())
    for dataset, rows in out.items():
        best_hit1 = max(row["hits@1"] for row in rows.values())
        # SLOTAlign leads (or ties) Hit@1 on both pairs
        assert rows["SLOTAlign"]["hits@1"] >= best_hit1 - 1e-9
    # dataset-specific shapes
    assert out["douban"]["KNN"]["hits@1"] < out["acm-dblp"]["KNN"]["hits@1"]
    assert out["douban"]["SLOTAlign"]["hits@1"] > out["douban"]["GWD"]["hits@1"]
