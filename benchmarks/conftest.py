"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper artefact at a reduced
``dataset_scale`` (the same code path as the full-scale
``python -m repro.experiments <exp>`` runner, sized to finish in
minutes on a laptop).  After timing, every benchmark prints the
paper-style table/series so the run doubles as the reproduction log
consumed by EXPERIMENTS.md.
"""

import pytest

from repro.experiments import ExperimentScale


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    """Reduced-fidelity scale used by every benchmark.

    0.03 keeps graphs at ~80-600 nodes so the full suite (every paper
    table and figure) finishes in roughly ten minutes on a laptop;
    raise it (and use ``python -m repro.experiments <exp> --scale``)
    for higher-fidelity reproductions.
    """
    return ExperimentScale(dataset_scale=0.03, fast=True, seed=0)


def emit(title: str, body: str) -> None:
    """Print a reproduction artefact below the benchmark timings."""
    print(f"\n===== {title} =====")
    print(body)
