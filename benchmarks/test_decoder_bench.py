"""Benchmark DECODERS — decode quality at zero solver cost (PR 9).

Regenerates the decoder-comparison cohort: one under-converged solve
per bench pair (``sinkhorn_iter`` cut to the cohort's
``SINKHORN_BUDGET``), every registered decoder consuming the same
plan, recorded as the ``decoders`` cohort of ``BENCH_fidelity.json``
(gated by ``compare_bench.py check_decoders``).

Expected shape:

* all four registered decoders report on every pair;
* on at least ``MIN_IMPROVED_PAIRS`` pairs a one-to-one decoder
  (``hungarian`` / ``mea``) improves Hit@1 or MRR over ``row-argmax``
  — the argmax collisions of an unbalanced plan are resolvable;
* ``mutual-argmax`` never beats ``row-argmax`` on Hit@1 (its matches
  are a strict subset), and ``row-argmax`` matches every row — both
  structural invariants of the decoder contracts;
* decoding is orders of magnitude cheaper than the solve it reuses.
"""

from benchmarks.conftest import emit
from repro.engine import available_decoders
from repro.eval.fidelity import record_decoders
from repro.experiments.decoders import (
    MIN_IMPROVED_PAIRS,
    format_decoders,
    run_decoder_comparison,
)


def test_decoder_comparison(benchmark, bench_scale):
    cohort = benchmark.pedantic(
        run_decoder_comparison,
        args=(bench_scale,),
        iterations=1,
        rounds=1,
    )
    emit("Decoder comparison", format_decoders(cohort))
    recorded = record_decoders(cohort, dataset_scale=bench_scale.dataset_scale)

    decoders = set(available_decoders())
    assert decoders == {"hungarian", "mea", "mutual-argmax", "row-argmax"}
    for name, reports in cohort.items():
        assert set(reports) == decoders, f"{name} missing decoders"
        base = reports["row-argmax"]
        # row-argmax matches every source row; mutual-argmax is a
        # strict subset of it, so it can never win on Hit@1
        assert base["n_matched"] == max(r["n_matched"] for r in reports.values())
        assert reports["mutual-argmax"]["hits@1"] <= base["hits@1"] + 1e-12

    improved = [
        name
        for name, entry in recorded["pairs"].items()
        if entry["improved_over_baseline"]
    ]
    assert len(improved) >= MIN_IMPROVED_PAIRS, (
        f"only {improved} improved on row-argmax "
        f"(need {MIN_IMPROVED_PAIRS} pairs)"
    )
