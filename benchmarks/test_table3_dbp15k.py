"""Benchmark TAB3 — DBP15K KG alignment (paper Table III).

Regenerates Hit@{1,10} on the three bilingual subsets for SLOTAlign
(feature-similarity π init + relation-aware bases, Sec. IV/V-C)
against the KG baselines, and records the SLOTAlign-vs-best-baseline
Hit@1 margins in ``BENCH_fidelity.json``.

Expected shape (paper): SLOTAlign best on every subset; accuracy orders
with cross-lingual feature agreement (FR-EN > JA-EN > ZH-EN).
"""

from benchmarks.conftest import emit
from repro.eval.fidelity import record_fidelity
from repro.eval.reporting import format_table
from repro.experiments.table3_dbp15k import run_table3

METHODS = ("SLOTAlign", "GCNAlign", "LIME", "MultiKE", "EVA", "SelfKG")


def test_table3_dbp15k(benchmark, bench_scale):
    out = benchmark.pedantic(
        run_table3,
        args=(bench_scale,),
        kwargs=dict(subsets=("zh_en", "fr_en"), methods=METHODS),
        iterations=1,
        rounds=1,
    )
    for subset, rows in out.items():
        emit(f"Table III / DBP15K {subset}", format_table(rows))
        record_fidelity(
            f"table3_{subset}", rows, fixed=True,
            dataset_scale=bench_scale.dataset_scale,
        )
    for subset, rows in out.items():
        best = max(row["hits@1"] for row in rows.values())
        assert rows["SLOTAlign"]["hits@1"] >= best - 1e-9
    # cross-lingual agreement ordering: FR-EN easier than ZH-EN
    assert (
        out["fr_en"]["SLOTAlign"]["hits@1"]
        >= out["zh_en"]["SLOTAlign"]["hits@1"] - 5.0
    )


def test_table3_ja_en_subset(benchmark, bench_scale):
    out = benchmark.pedantic(
        run_table3,
        args=(bench_scale,),
        kwargs=dict(subsets=("ja_en",), methods=("SLOTAlign", "MultiKE")),
        iterations=1,
        rounds=1,
    )
    rows = out["ja_en"]
    emit("Table III / DBP15K ja_en", format_table(rows))
    # distinct key from the full-panel "table3_ja_en" the fidelity
    # runner writes: this test's margin is against MultiKE alone, and
    # one artefact key must never mix two panel definitions
    record_fidelity(
        "table3_ja_en_subset", rows, fixed=True,
        dataset_scale=bench_scale.dataset_scale,
    )
    assert rows["SLOTAlign"]["hits@1"] >= rows["MultiKE"]["hits@1"] - 1e-9
