"""Benchmark FIG8 — hyperparameter sensitivity (paper Fig. 8).

Regenerates the Hit@1 curves for τ, η and K on the Cora pair.

Expected shape (paper): flat curves — SLOTAlign is robust to all three
hyperparameters and the defaults are competitive everywhere.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.experiments.fig8_sensitivity import run_fig8


def test_fig8_sensitivity(benchmark, bench_scale):
    out = benchmark.pedantic(
        run_fig8,
        args=(bench_scale,),
        kwargs=dict(datasets=("cora",), parameters=("tau", "eta", "k")),
        iterations=1,
        rounds=1,
    )
    for parameter, curves in out.items():
        lines = [
            f"{parameter}={value:g}: hit@1={hit:.1f}"
            for value, hit in curves["cora"]
        ]
        emit(f"Fig. 8 / sensitivity to {parameter} (cora)", "\n".join(lines))
    for parameter, curves in out.items():
        hits = np.array([hit for _, hit in curves["cora"]])
        # robustness: the worst setting stays within 40 points of the
        # best (the paper's curves vary by < ~10 on real data; a small
        # stand-in graph is noisier)
        assert hits.max() - hits.min() <= 40.0
        assert hits.max() > 50.0
