"""Ablation benches for implementation design choices (DESIGN.md §6).

Not paper artefacts — these justify the reproduction's own engineering
decisions: basis normalisation, η annealing, multi-start, and matching
extraction strategy.
"""

from benchmarks.conftest import emit
from repro.core import SLOTAlign, SLOTAlignConfig
from repro.datasets import load_cora, make_semi_synthetic_pair, truncate_feature_columns
from repro.eval.metrics import alignment_accuracy, hits_at_k
from repro.eval.reporting import format_table


def _pair(bench_scale, edge_noise=0.25):
    graph = truncate_feature_columns(
        load_cora(scale=bench_scale.dataset_scale), 100
    )
    return make_semi_synthetic_pair(graph, edge_noise=edge_noise, seed=3)


def _cfg(**overrides):
    base = dict(
        n_bases=2, structure_lr=0.1, max_outer_iter=120, track_history=False
    )
    base.update(overrides)
    return SLOTAlignConfig(**base)


def test_solver_device_ablations(benchmark, bench_scale):
    """Annealing and multi-start each contribute under structure noise."""
    pair = _pair(bench_scale)

    def run():
        variants = {
            "full": _cfg(),
            "no-anneal": _cfg(anneal=False),
            "no-multistart": _cfg(multi_start=False),
            "bare-Alg1": _cfg(anneal=False, multi_start=False),
        }
        rows = {}
        for name, cfg in variants.items():
            result = SLOTAlign(cfg).fit(pair.source, pair.target)
            rows[name] = {
                "hits@1": hits_at_k(result.plan, pair.ground_truth, 1),
                "time": result.runtime,
            }
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    emit("Design ablation / solver devices (cora @25% edge noise)", format_table(rows))
    assert rows["full"]["hits@1"] >= rows["bare-Alg1"]["hits@1"] - 1e-9


def test_basis_normalisation_ablation(benchmark, bench_scale):
    """Frobenius basis normalisation prevents the sparse edge view from
    dominating the early energy term."""
    pair = _pair(bench_scale)

    def run():
        rows = {}
        for name, normalize in (("normalised", True), ("raw-bases", False)):
            cfg = _cfg(normalize_bases=normalize)
            result = SLOTAlign(cfg).fit(pair.source, pair.target)
            rows[name] = {
                "hits@1": hits_at_k(result.plan, pair.ground_truth, 1)
            }
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    emit("Design ablation / basis normalisation", format_table(rows))
    assert rows["normalised"]["hits@1"] >= rows["raw-bases"]["hits@1"] - 10.0


def test_matching_extraction_ablation(benchmark, bench_scale):
    """Hungarian (exact Eq. 2) vs greedy vs row-argmax extraction."""
    pair = _pair(bench_scale, edge_noise=0.1)
    result = SLOTAlign(_cfg()).fit(pair.source, pair.target)

    def run():
        rows = {}
        for strategy in ("argmax", "greedy", "hungarian"):
            matching = result.matching(strategy)
            rows[strategy] = {
                "accuracy": alignment_accuracy(matching, pair.ground_truth)
            }
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    emit("Design ablation / matching extraction", format_table(rows))
    # one-to-one strategies never lose to argmax by much on a
    # near-permutation plan
    assert rows["hungarian"]["accuracy"] >= rows["argmax"]["accuracy"] - 10.0
