"""Benchmark FIG6 — structure-inconsistency robustness (paper Fig. 6).

Regenerates the Hit@1-vs-edge-perturbation series for the method panel
on the Cora and PPI stand-ins (the remaining two datasets run through
``python -m repro.experiments fig6``; same code path).

Expected shape (paper): SLOTAlign degrades slowest and leads at
moderate noise; GWD collapses; KNN is flat.
"""

from benchmarks.conftest import emit
from repro.eval.reporting import format_sweep
from repro.experiments.fig6_structure import run_fig6

METHODS = ("SLOTAlign", "KNN", "REGAL", "GCNAlign", "WAlign", "GWD", "FusedGW")
LEVELS = (0.0, 0.4)


def test_fig6_structure_robustness(benchmark, bench_scale):
    out = benchmark.pedantic(
        run_fig6,
        args=(bench_scale,),
        kwargs=dict(datasets=("cora", "ppi"), methods=METHODS, levels=LEVELS),
        iterations=1,
        rounds=1,
    )
    for dataset, sweeps in out.items():
        emit(f"Fig. 6 / {dataset} (Hit@1 % vs edge perturbation)", format_sweep(sweeps))
    for dataset, sweeps in out.items():
        by_method = {r.method: r for r in sweeps}
        slot = by_method["SLOTAlign"].hits
        gwd = by_method["GWD"].hits
        # SLOTAlign strong on the clean pair and always >= GWD under noise
        assert slot[0] > 80.0
        assert all(s >= g - 1e-9 for s, g in zip(slot[1:], gwd[1:]))
        # SLOTAlign retains signal at heavy noise where GWD collapses
        assert slot[-1] > gwd[-1]
