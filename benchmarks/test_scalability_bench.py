"""Scalability benchmark: serial vs parallel, whole vs partitioned.

Emits ``BENCH_scale.json`` at the repo root so the performance
trajectory of the ``repro.scale`` subsystem is machine-readable across
PRs, alongside ``BENCH_solver.json``:

* runtime-vs-n curve (whole-graph vs partitioned serial vs partitioned
  parallel) at the fast profile;
* the 4-block comparison: serial/parallel wall-clock and speedup, the
  whole-graph vs partitioned Hit@1 gap, and the cross-part link
  recovery of the boundary-repair pass.

The parallel numbers are honest for the machine they ran on: a process
pool cannot beat the serial loop on a single-core box (it only adds
pickling), so the speedup assertion is gated on the visible CPU count
— the bitwise-equality assertion runs everywhere.
"""

import json
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.core import SLOTAlignConfig
from repro.scale import (
    available_cpus,
    ground_truth_target_parts,
    inject_misassignment,
    run_blocks,
)
from repro.scale import hit1_mask as gt_hit1_mask
from repro.datasets import make_semi_synthetic_pair
from repro.eval import hits_at_k
from repro.experiments import ExperimentScale, run_scalability
from repro.graphs import partition_assignment, stochastic_block_model
from repro.graphs.features import community_bag_of_words
from repro.scale import DivideAndConquerAligner

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_scale.json"

BENCH_CFG = SLOTAlignConfig(
    n_bases=2, structure_lr=0.1, max_outer_iter=60, sinkhorn_iter=40,
    track_history=False,
)


def bench_pair(seed=1, n_blocks=4, block=45):
    graph = stochastic_block_model([block] * n_blocks, 0.3, 0.005, seed=seed)
    feats = community_bag_of_words(
        graph.node_labels, 80, words_per_node=12, seed=seed + 1
    )
    graph = graph.with_features(feats)
    return make_semi_synthetic_pair(graph, edge_noise=0.02, seed=seed + 2)


def _time_fit(aligner, pair, repeats=2):
    """Min-of-k wall clock (single-core box: min filters scheduler noise)."""
    best = None
    out = None
    for _ in range(repeats):
        start = time.perf_counter()
        out = aligner.fit(pair.source, pair.target)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return out, best


def test_bench_partitioned_scaling(benchmark):
    """4-block problem: executor comparison + quality gap + recovery."""
    pair = bench_pair()
    gt = pair.ground_truth
    cpu_count = available_cpus()

    serial_out, serial_seconds = _time_fit(
        DivideAndConquerAligner(BENCH_CFG, n_parts=4, executor="serial"),
        pair,
    )
    parallel_out, parallel_seconds = _time_fit(
        DivideAndConquerAligner(
            BENCH_CFG, n_parts=4, executor="process", max_workers=4
        ),
        pair,
    )
    # the executor is pure scheduling: bitwise-equal results
    diff = serial_out.plan - parallel_out.plan
    assert diff.nnz == 0 or np.max(np.abs(diff.data)) == 0.0

    norepair_out, _ = _time_fit(
        DivideAndConquerAligner(
            BENCH_CFG, n_parts=4, executor="serial", boundary_repair=False
        ),
        pair, repeats=1,
    )

    from repro.core import SLOTAlign

    start = time.perf_counter()
    whole = SLOTAlign(BENCH_CFG).fit(pair.source, pair.target)
    whole_seconds = time.perf_counter() - start

    # sparse Hit@k must equal dense Hit@k exactly
    sparse_hit1 = hits_at_k(serial_out.plan, gt, 1)
    dense_hit1 = hits_at_k(serial_out.plan.toarray(), gt, 1)
    assert sparse_hit1 == dense_hit1

    # cross-part link recovery (organic: whatever the assignment lost)
    src_assign = partition_assignment(
        [s for s, _ in serial_out.partitions], pair.source.n_nodes
    )
    tgt_assign = partition_assignment(
        [t for _, t in serial_out.partitions], pair.target.n_nodes
    )
    cross = src_assign[gt[:, 0]] != tgt_assign[gt[:, 1]]

    def hit1_mask(plan):
        return gt_hit1_mask(plan, gt)

    lost = cross & ~hit1_mask(norepair_out.plan)
    recovered = lost & hit1_mask(serial_out.plan)

    # controlled recovery: ground-truth-correct target parts with 12
    # nodes deliberately misassigned — the failure mode boundary
    # repair exists for, measured without the confound of organic
    # assignment noise (the exact protocol tests/test_scale_boundary.py
    # pins, via the shared repro.scale.diagnostics helpers)
    source_parts = [s for s, _ in serial_out.partitions]
    clean_parts = ground_truth_target_parts(source_parts, gt)
    injected_parts = inject_misassignment(clean_parts, n_move=12, seed=0)
    inj = {}
    for repair in (False, True):
        inj[repair] = DivideAndConquerAligner(
            BENCH_CFG, n_parts=4, boundary_repair=repair
        ).fit(
            pair.source, pair.target,
            source_parts=source_parts, target_parts=injected_parts,
        )
    inj_assign = partition_assignment(injected_parts, pair.target.n_nodes)
    inj_cross = src_assign[gt[:, 0]] != inj_assign[gt[:, 1]]
    inj_lost = inj_cross & ~hit1_mask(inj[False].plan)
    inj_recovered = inj_lost & hit1_mask(inj[True].plan)
    assert inj_recovered.sum() * 2 >= inj_lost.sum(), (
        f"boundary repair recovered {inj_recovered.sum()}/{inj_lost.sum()} "
        "injected cross-part links (need at least half)"
    )

    speedup = serial_seconds / parallel_seconds

    # executor-only speedup at a heavier per-block load: the gated
    # assertion below measures the parallelisable component (the block
    # solves), not the end-to-end pipeline whose partition/assign/
    # stitch/repair phases are serial in both arms and whose tiny
    # blocks would make the end-to-end ratio noisy on shared runners
    heavy_cfg = replace(BENCH_CFG, max_outer_iter=150)
    heavy_blocks = [
        (pair.source.subgraph(s), pair.target.subgraph(t))
        for s, t in serial_out.partitions
    ]

    def time_blocks(executor):
        best = None
        for _ in range(2):
            start = time.perf_counter()
            _, used = run_blocks(
                heavy_cfg, heavy_blocks, executor=executor, max_workers=4
            )
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        return best, used

    blocks_serial_seconds, _ = time_blocks("serial")
    blocks_parallel_seconds, parallel_backend = time_blocks("process")
    block_speedup = blocks_serial_seconds / blocks_parallel_seconds

    payload = {
        "problem": {
            "n_source": pair.source.n_nodes,
            "n_target": pair.target.n_nodes,
            "n_parts": 4,
            "max_outer_iter": BENCH_CFG.max_outer_iter,
        },
        "cpu_count": cpu_count,
        "four_block": {
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": speedup,
            "block_serial_seconds": blocks_serial_seconds,
            "block_parallel_seconds": blocks_parallel_seconds,
            "block_speedup": block_speedup,
            "parallel_backend_used": parallel_backend,
            "bitwise_equal": True,
            "whole_seconds": whole_seconds,
            "whole_hit1": hits_at_k(whole.plan, gt, 1),
            "partitioned_hit1": hits_at_k(norepair_out.plan, gt, 1),
            "repaired_hit1": sparse_hit1,
            "source_cut_fraction": serial_out.extras["source_cut_fraction"],
            "cross_part_links": int(cross.sum()),
            "lost_links": int(lost.sum()),
            "recovered_links": int(recovered.sum()),
            "injected_recovery": {
                "moved_nodes": 12,
                "lost_links": int(inj_lost.sum()),
                "recovered_links": int(inj_recovered.sum()),
                "recovery_rate": float(
                    inj_recovered.sum() / max(int(inj_lost.sum()), 1)
                ),
            },
            "repair": {
                key: value
                for key, value in serial_out.extras["repair"].items()
                if key != "patched_pairs"
            },
        },
    }

    curve = run_scalability(
        ExperimentScale(dataset_scale=0.03, fast=True, seed=0),
        sizes=(120, 240),
    )
    payload["curve"] = curve["curve"]
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # a process pool beats the serial loop only when there are cores to
    # spread the blocks over; on fewer cores the JSON records the
    # honest (sub-1x) number instead of asserting the impossible.  The
    # pool must actually have started (no sandbox fallback) for the
    # ratio to mean anything.
    if cpu_count >= 4 and parallel_backend == "process":
        assert block_speedup > 1.5, (
            f"expected >1.5x block-solve speedup on {cpu_count} cores, "
            f"got {block_speedup:.2f}x"
        )

    benchmark.pedantic(
        lambda: DivideAndConquerAligner(
            BENCH_CFG, n_parts=4, executor="serial"
        ).fit(pair.source, pair.target),
        iterations=1,
        rounds=1,
    )
    assert BENCH_JSON.exists()
