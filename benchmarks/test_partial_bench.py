"""Benchmark PARTIAL — the partial-overlap robustness sweep (PR 8).

Regenerates the overlap × anchor-fraction grid on the Cora stand-in
for both partial backends and records the ``partial`` cohort in
``BENCH_fidelity.json`` (gated by ``compare_bench.py check_partial``).

Expected shape:

* the ``partial-dummy`` overlap=1.0, zero-anchor point delegates to
  the reference ``fused-dense`` portfolio, so its Hit@1 equals the
  full-bijective reference **exactly** (bitwise parity, not
  approximately);
* Hit@1 decays monotonically (within tolerance) as overlap drops —
  losing counterparts can only hurt;
* anchor seeds never hurt: at every overlap level the anchored point
  is at least the unanchored one minus tolerance.
"""

from benchmarks.conftest import emit
from repro.eval.fidelity import record_partial
from repro.experiments.partial_overlap import format_partial, run_partial_overlap

#: Hit@1 points of slack for the monotonicity/anchor shape assertions —
#: sweep points are single seeds at stand-in scale, so small inversions
#: are sampling noise, not regressions (the gate uses the same slack)
SHAPE_TOLERANCE = 10.0


def test_partial_overlap_sweep(benchmark, bench_scale):
    out = benchmark.pedantic(
        run_partial_overlap,
        args=(bench_scale,),
        iterations=1,
        rounds=1,
    )
    emit("Partial overlap sweep", format_partial(out))
    record_partial(
        out["points"],
        dataset_scale=out["dataset_scale"],
        full_bijective_hits1=out["full_bijective_hits1"],
    )
    dummy = [p for p in out["points"] if p["backend"] == "partial-dummy"]
    assert len(dummy) >= 6  # >= 3 overlaps x (with, without) anchors

    # parity: the delegated mass-1.0 point IS the fused-dense run
    parity = [
        p for p in dummy
        if p["overlap"] == 1.0 and p["anchor_fraction"] == 0.0
    ]
    assert len(parity) == 1
    assert parity[0]["hits@1"] == out["full_bijective_hits1"]

    # monotone decay of the unanchored curve as overlap drops
    unanchored = sorted(
        (p for p in dummy if p["anchor_fraction"] == 0.0),
        key=lambda p: -p["overlap"],
    )
    for higher, lower in zip(unanchored, unanchored[1:]):
        assert lower["hits@1"] <= higher["hits@1"] + SHAPE_TOLERANCE

    # anchors never hurt (within tolerance), per overlap level
    by_overlap = {p["overlap"]: p for p in unanchored}
    for point in dummy:
        if point["anchor_fraction"] > 0.0:
            base = by_overlap[point["overlap"]]
            assert point["hits@1"] >= base["hits@1"] - SHAPE_TOLERANCE

    # the detection signal exists wherever nodes were actually dropped
    for point in dummy:
        if point["overlap"] < 1.0:
            assert point["detection"]["n_unmatchable"] > 0
