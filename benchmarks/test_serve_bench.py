"""Serving benchmark: synthetic traffic through the alignment service.

Drives :func:`repro.experiments.run_serve_traffic` — a burst of
requests cycling over a few distinct pairs through the
:class:`~repro.serve.AlignmentService` worker pool — and emits
``BENCH_serve.json`` at the repo root so the serving layer's
performance trajectory (pairs/sec, cache hit rate, p50/p99 latency,
coalescing counters) is machine-readable across PRs, alongside
``BENCH_solver.json`` and ``BENCH_scale.json``.

``benchmarks/compare_bench.py`` gates on the fresh file: the cache hit
rate must be positive, coalescing must actually have engaged, the
single-pair bitwise check against a direct engine run must hold, and
the calibrated pairs/sec must not regress against the committed
baseline (machine-normalised via ``reference_seconds``, exactly like
the solver gate).
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.experiments import run_serve_traffic
from repro.serve import JobState

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_serve.json"

TRAFFIC = dict(
    dataset="cora",
    scale=0.05,
    seed=0,
    n_jobs=24,
    n_distinct=4,
    workers=2,
    max_batch=8,
    iters=25,
)


def _machine_reference_seconds() -> float:
    """The solver microbench's fixed BLAS workload, for calibration.

    Same op mix and sizes as ``test_solver_microbench.py`` so the two
    benches normalise against an identical reference and the CI gate
    compares (pairs/sec × reference) rather than raw wall-clock from
    two different machines.
    """
    rng = np.random.default_rng(0)
    a = rng.standard_normal((200, 200))
    v = rng.standard_normal(200)
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        c = a
        for _ in range(20):
            c = a @ c
            c /= np.abs(c).max()
        for _ in range(200):
            v = np.exp(-np.abs(a @ v) / 50.0)
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_serve_traffic(benchmark):
    """Serve a synthetic burst; emits ``BENCH_serve.json``."""
    report = benchmark.pedantic(
        lambda: run_serve_traffic(**TRAFFIC), iterations=1, rounds=1
    )

    # the service-level invariants the PR's acceptance criteria name:
    # every job completes, repeated pairs hit the shared plan cache,
    # the backlog coalesces into stacked solves, and serving is pure
    # scheduling (bit-for-bit the direct engine's plan)
    assert report["completed"] == TRAFFIC["n_jobs"]
    assert report["failed"] == 0 and report["rejected"] == 0
    assert report["cache"]["hit_rate"] > 0.0
    assert report["coalesced_batches"] > 0
    assert report["coalesced_pairs"] > report["coalesced_batches"]
    assert report["single_pair_bitwise_equal"] is True
    assert report["latency_ms"]["p50"] > 0.0
    assert report["latency_ms"]["p99"] >= report["latency_ms"]["p50"]

    payload = dict(report)
    payload["reference_seconds"] = _machine_reference_seconds()
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    assert BENCH_JSON.exists()


def test_serve_handles_rejection_under_pressure():
    """Admission control sheds load gracefully at a tiny queue bound."""
    from repro.experiments.serve_traffic import serve_config, traffic_pairs
    from repro.serve import AdmissionPolicy, AlignmentService, wait_all

    pairs = traffic_pairs("cora", n_distinct=2, scale=0.03, seed=0)
    service = AlignmentService(
        serve_config(iters=10),
        policy=AdmissionPolicy(max_queue_depth=3),
        workers=1,
    )
    jobs = [
        service.submit(pairs[i % 2].source, pairs[i % 2].target)
        for i in range(6)
    ]
    rejected = [job for job in jobs if job.state is JobState.REJECTED]
    admitted = [job for job in jobs if job.state is not JobState.REJECTED]
    assert len(rejected) == 3  # the queue bound held
    assert all("queue full" in job.error for job in rejected)
    with service:
        assert wait_all(admitted, timeout=120)
    assert all(job.state is JobState.DONE for job in admitted)
