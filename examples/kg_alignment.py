"""Scenario: cross-lingual knowledge-graph entity alignment.

Mirrors the paper's DBP15K experiment (Table III): two KGs describing
the same entities in different languages, with name-embedding features
that are informative but not coordinate-aligned across languages.
SLOTAlign uses the feature-similarity initialisation of Sec. V-C.

Run:  python examples/kg_alignment.py
"""

from repro import SLOTAlign, SLOTAlignConfig, load_dbp15k
from repro.baselines import MultiKEAligner, SelfKGAligner
from repro.eval import evaluate_plan, format_table


def main() -> None:
    rows_by_subset = {}
    for subset in ("zh_en", "fr_en"):
        pair = load_dbp15k(subset, scale=0.02, seed=2)
        agreement = pair.metadata["feature_agreement"]
        print(
            f"{subset}: {pair.source.n_nodes} + {pair.target.n_nodes} entities, "
            f"{pair.n_anchors} anchors, cross-lingual feature agreement {agreement}"
        )
        methods = {
            "SLOTAlign": SLOTAlign(
                SLOTAlignConfig(
                    n_bases=4,
                    structure_lr=1.0,
                    max_outer_iter=150,
                    use_feature_similarity_init=True,
                )
            ),
            "MultiKE": MultiKEAligner(),
            "SelfKG": SelfKGAligner(n_epochs=25, seed=2),
        }
        rows = {}
        for name, method in methods.items():
            result = method.fit(pair.source, pair.target)
            rows[name] = evaluate_plan(result.plan, pair.ground_truth, ks=(1, 10))
        rows_by_subset[subset] = rows

    for subset, rows in rows_by_subset.items():
        print()
        print(format_table(rows, title=f"DBP15K-style {subset} (Hit@k %)"))
    print(
        "\nExpected shape: every method improves with cross-lingual feature "
        "agreement (fr_en > zh_en); SLOTAlign leads on both subsets."
    )


if __name__ == "__main__":
    main()
