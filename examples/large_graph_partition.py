"""Scenario: scaling SLOTAlign with the divide-and-conquer subsystem.

The paper (Sec. IV-D) notes that dense GW is quadratic in the node
counts and points to LIME-style graph partitioning as the route to very
large graphs.  This example aligns a community-structured pair three
ways — whole-graph, partitioned without repair, and the full pipeline
(k-way partition → pooled block solves → anchor-based boundary repair)
— and compares quality vs wall-clock.

Everything downstream of the partitioned aligner stays sparse: the
metrics consume the CSR plan directly and the discrete matching comes
from the sparse top-k accessor, so the same code path scales to plans
that must never be densified.

Run:  python examples/large_graph_partition.py
"""

from repro.core import SLOTAlign, SLOTAlignConfig
from repro.datasets import make_semi_synthetic_pair
from repro.eval import evaluate_plan, hits_at_k
from repro.graphs import stochastic_block_model
from repro.graphs.features import community_bag_of_words
from repro.scale import DivideAndConquerAligner


def main() -> None:
    # a 6-community graph large enough that partitioning pays off
    graph = stochastic_block_model([45] * 6, 0.3, 0.005, seed=0)
    feats = community_bag_of_words(graph.node_labels, 120, words_per_node=12, seed=1)
    graph = graph.with_features(feats)
    pair = make_semi_synthetic_pair(graph, edge_noise=0.05, seed=2)
    print(f"pair: {pair.source.n_nodes} nodes, {pair.source.n_edges} edges")

    config = SLOTAlignConfig(
        n_bases=2, structure_lr=0.1, max_outer_iter=100, track_history=False
    )

    direct = SLOTAlign(config).fit(pair.source, pair.target)
    direct_hit = hits_at_k(direct.plan, pair.ground_truth, 1)
    print(f"\ndirect SLOTAlign:          hit@1={direct_hit:5.1f}  time={direct.runtime:.1f}s")

    def partitioned(repair: bool):
        return DivideAndConquerAligner(
            config, n_parts=6, executor="auto", boundary_repair=repair
        ).fit(pair.source, pair.target)

    plain = partitioned(repair=False)
    # sparse end to end: hits_at_k consumes the CSR plan directly
    plain_hit = hits_at_k(plain.plan, pair.ground_truth, 1)
    print(
        f"partitioned, no repair:    hit@1={plain_hit:5.1f}  "
        f"time={plain.runtime:.1f}s  ({plain.n_parts} parts, "
        f"{plain.extras['source_cut_fraction']:.0%} of edges cut)"
    )

    repaired = partitioned(repair=True)
    repaired_hit = hits_at_k(repaired.plan, pair.ground_truth, 1)
    stats = repaired.extras["repair"]
    print(
        f"partitioned + repair:      hit@1={repaired_hit:5.1f}  "
        f"time={repaired.runtime:.1f}s  ({stats['n_anchors']} anchors, "
        f"{stats['n_patched']} boundary patches)"
    )

    # the discrete matching and the full report also never densify
    matching = repaired.matching()
    correct = (matching[pair.ground_truth[:, 0]] == pair.ground_truth[:, 1]).mean()
    print(f"\nsparse argmax matching accuracy: {correct:.1%}")
    report = evaluate_plan(repaired.plan, pair.ground_truth, ks=(1, 5, 10))
    # hits@k are percentages; MRR lives in [0, 1] and needs more digits
    print(
        "sparse evaluation:",
        {
            k: round(v, 3 if k == "mrr" else 1)
            for k, v in report.items()
        },
    )
    print(
        "\nExpected shape: partitioning trades a few Hit@1 points for a "
        "large wall-clock reduction; boundary repair claws back part of "
        "the cross-part losses LIME simply writes off."
    )


if __name__ == "__main__":
    main()
