"""Scenario: scaling SLOTAlign with divide-and-conquer partitioning.

The paper (Sec. IV-D) notes that dense GW is quadratic in the node
counts and points to LIME-style graph partitioning as the route to very
large graphs.  This example aligns a community-structured pair both
directly and through the partitioned pipeline and compares quality vs
wall-clock.

Run:  python examples/large_graph_partition.py
"""

from repro.core import DivideAndConquerAligner, SLOTAlign, SLOTAlignConfig
from repro.datasets import make_semi_synthetic_pair
from repro.eval import hits_at_k
from repro.graphs import stochastic_block_model
from repro.graphs.features import community_bag_of_words


def main() -> None:
    # a 6-community graph large enough that partitioning pays off
    graph = stochastic_block_model([45] * 6, 0.3, 0.005, seed=0)
    feats = community_bag_of_words(graph.node_labels, 120, words_per_node=12, seed=1)
    graph = graph.with_features(feats)
    pair = make_semi_synthetic_pair(graph, edge_noise=0.05, seed=2)
    print(f"pair: {pair.source.n_nodes} nodes, {pair.source.n_edges} edges")

    config = SLOTAlignConfig(
        n_bases=2, structure_lr=0.1, max_outer_iter=100, track_history=False
    )

    direct = SLOTAlign(config).fit(pair.source, pair.target)
    direct_hit = hits_at_k(direct.plan, pair.ground_truth, 1)
    print(f"\ndirect SLOTAlign:        hit@1={direct_hit:5.1f}  time={direct.runtime:.1f}s")

    partitioned = DivideAndConquerAligner(config, max_block_size=100).fit(
        pair.source, pair.target
    )
    part_hit = hits_at_k(partitioned.dense_plan(), pair.ground_truth, 1)
    print(
        f"partitioned ({partitioned.extras['n_parts']} parts):   "
        f"hit@1={part_hit:5.1f}  time={partitioned.runtime:.1f}s"
    )
    print(
        "\nExpected shape: partitioning trades a few Hit@1 points (cross-"
        "part links are lost) for a large wall-clock reduction, exactly "
        "the LIME trade-off the paper cites."
    )


if __name__ == "__main__":
    main()
