"""Scenario: linking user accounts across two social platforms.

Mirrors the paper's Douban Online-Offline application (Fig. 1): the
same user base observed through two different interaction semantics,
with the online platform containing thousands of extra users.  Compares
SLOTAlign against the feature-only (KNN) and structure-only (GWD)
baselines to show why the joint approach wins on noisy real pairs.

Run:  python examples/social_network_alignment.py
"""

from repro import SLOTAlign, SLOTAlignConfig, load_douban
from repro.baselines import GWDAligner, KNNAligner
from repro.eval import evaluate_plan, format_table


def main() -> None:
    pair = load_douban(scale=0.2, seed=1)
    print(
        f"offline graph: {pair.source.n_nodes} users, "
        f"{pair.source.n_edges} co-occurrence edges"
    )
    print(
        f"online graph:  {pair.target.n_nodes} users, "
        f"{pair.target.n_edges} interaction edges"
    )
    print(f"ground-truth anchors: {pair.n_anchors}\n")

    methods = {
        "SLOTAlign": SLOTAlign(
            SLOTAlignConfig(n_bases=4, structure_lr=1.0, max_outer_iter=200)
        ),
        "KNN (features only)": KNNAligner(),
        "GWD (structure only)": GWDAligner(max_iter=100),
    }
    rows = {}
    for name, method in methods.items():
        result = method.fit(pair.source, pair.target)
        rows[name] = evaluate_plan(result.plan, pair.ground_truth, ks=(1, 5, 10, 30))
        rows[name]["time"] = result.runtime
    print(format_table(rows, title="Douban-style account linking (Hit@k %)"))
    print(
        "\nExpected shape: location features alone are coarse (KNN weak), "
        "structures differ across platforms (GWD weak); SLOTAlign combines "
        "both signals and leads Hit@1."
    )


if __name__ == "__main__":
    main()
