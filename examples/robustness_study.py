"""Scenario: stress-testing aligners under controlled inconsistency.

Reproduces the heart of the paper's robustness argument (Figures 3 and
7) on a small stand-in: sweep structure noise and feature permutation
and watch (a) SLOTAlign's exact invariance to feature permutation
(Proposition 4) and (b) the collapse of cross-compare methods.

Run:  python examples/robustness_study.py
"""

from repro import load_cora
from repro.baselines import KNNAligner, GWDAligner, WAlignAligner
from repro.datasets import truncate_feature_columns
from repro.eval import format_sweep, run_feature_sweep, run_structure_sweep
from repro.experiments import ExperimentScale, slotalign_semi_synthetic


def main() -> None:
    scale = ExperimentScale(dataset_scale=0.06, fast=True, seed=0)
    graph = truncate_feature_columns(load_cora(scale=scale.dataset_scale), 100)
    aligners = {
        "SLOTAlign": slotalign_semi_synthetic(scale),
        "WAlign": WAlignAligner(n_epochs=25, seed=0),
        "GWD": GWDAligner(max_iter=60),
        "KNN": KNNAligner(),
    }

    structure = run_structure_sweep(
        graph, aligners, levels=(0.0, 0.2, 0.4), seed=0
    )
    print(format_sweep(structure, title="Hit@1 vs structure perturbation"))

    feature = run_feature_sweep(
        graph,
        aligners,
        levels=(0.0, 0.3, 0.6),
        transform="permutation",
        edge_noise=0.25,
        seed=0,
    )
    print()
    print(format_sweep(feature, title="Hit@1 vs feature permutation (25% edge noise)"))
    print(
        "\nExpected shape: the SLOTAlign column is constant across the "
        "feature-permutation sweep (Proposition 4); WAlign/KNN decay; GWD "
        "is flat but low."
    )


if __name__ == "__main__":
    main()
