"""Quickstart: align two noisy copies of a citation network.

Demonstrates the core public API:
1. load a dataset stand-in,
2. build a semi-synthetic alignment pair with structure noise,
3. run SLOTAlign,
4. evaluate Hit@k and inspect the learned structure weights.

Run:  python examples/quickstart.py
"""

from repro import (
    SLOTAlign,
    SLOTAlignConfig,
    evaluate_plan,
    load_cora,
    make_semi_synthetic_pair,
)
from repro.datasets import truncate_feature_columns


def main() -> None:
    # A Cora-like citation network (scale shrinks it for a fast demo);
    # the robustness protocol keeps only the first 100 feature columns.
    graph = truncate_feature_columns(load_cora(scale=0.07), 100)
    print(f"source graph: {graph}")

    # Target = permuted copy with 20 % of edges moved — the paper's
    # structure-inconsistency simulator.
    pair = make_semi_synthetic_pair(graph, edge_noise=0.2, seed=0)

    config = SLOTAlignConfig(
        n_bases=2,          # K: edge-view + node-view (paper's semi-synthetic K)
        structure_lr=0.1,   # tau
        sinkhorn_lr=0.01,   # eta
        max_outer_iter=200,
    )
    result = SLOTAlign(config).fit(pair.source, pair.target)

    print(f"\naligned in {result.runtime:.2f}s")
    print(f"learned source view weights beta_s = {result.extras['beta_source'].round(3)}")
    print(f"learned target view weights beta_t = {result.extras['beta_target'].round(3)}")

    metrics = evaluate_plan(result.plan, pair.ground_truth, ks=(1, 5, 10))
    print("\nalignment quality:")
    for key, value in metrics.items():
        print(f"  {key:8s} {value:6.2f}")

    matching = result.matching("hungarian")
    correct = (matching[pair.ground_truth[:, 0]] == pair.ground_truth[:, 1]).mean()
    print(f"\nhungarian one-to-one accuracy: {100 * correct:.1f}%")


if __name__ == "__main__":
    main()
