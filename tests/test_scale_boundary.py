"""Boundary-repair tests: anchors, agreement scoring, link recovery.

The headline contract: on a seeded benchmark pair where target nodes
are misassigned across the partition (the failure mode that loses
cross-part correspondences), the repair pass must recover **at least
half** of the ground-truth links the no-repair baseline loses.
"""

import numpy as np
import scipy.sparse as sp

from repro.core import SLOTAlignConfig
from repro.datasets import make_semi_synthetic_pair
from repro.graphs import partition_assignment, stochastic_block_model
from repro.graphs.features import community_bag_of_words
from repro.scale import (
    DivideAndConquerAligner,
    anchor_agreement,
    collect_anchors,
    ground_truth_target_parts,
    hit1_mask,
    inject_misassignment,
)

FAST_CFG = SLOTAlignConfig(
    n_bases=2, structure_lr=0.1, max_outer_iter=60, sinkhorn_iter=40,
    track_history=False,
)


def benchmark_pair(seed=1, n_blocks=4, block=20):
    graph = stochastic_block_model([block] * n_blocks, 0.35, 0.01, seed=seed)
    feats = community_bag_of_words(
        graph.node_labels, 60, words_per_node=10, seed=seed + 1
    )
    graph = graph.with_features(feats)
    return make_semi_synthetic_pair(graph, seed=seed + 2)


def misassigned_partition(pair, n_parts=4, n_move=6, seed=0):
    """Ground-truth-correct target parts with ``n_move`` nodes moved to
    the next part — the controlled version of the organic assignment
    errors that create cross-part links (shared protocol:
    ``repro.scale.diagnostics``)."""
    aligner = DivideAndConquerAligner(FAST_CFG, n_parts=n_parts)
    source_parts = aligner._partition_source(pair.source)
    target_parts = ground_truth_target_parts(source_parts, pair.ground_truth)
    return source_parts, inject_misassignment(target_parts, n_move, seed=seed)


class TestLinkRecovery:
    def test_recovers_at_least_half_of_lost_cross_part_links(self):
        pair = benchmark_pair(seed=1)
        gt = pair.ground_truth
        source_parts, target_parts = misassigned_partition(pair)
        outputs = {}
        for repair in (False, True):
            aligner = DivideAndConquerAligner(
                FAST_CFG, n_parts=4, boundary_repair=repair
            )
            outputs[repair] = aligner.fit(
                pair.source,
                pair.target,
                source_parts=source_parts,
                target_parts=target_parts,
            )
        src_assign = partition_assignment(source_parts, pair.source.n_nodes)
        tgt_assign = partition_assignment(target_parts, pair.target.n_nodes)
        cross = src_assign[gt[:, 0]] != tgt_assign[gt[:, 1]]
        assert cross.sum() >= 4  # the injection created cross-part links

        lost = cross & ~hit1_mask(outputs[False].plan, gt)
        assert lost.sum() >= 4  # ...and the blocks cannot see them
        recovered = lost & hit1_mask(outputs[True].plan, gt)
        assert recovered.sum() * 2 >= lost.sum(), (
            f"repair recovered {recovered.sum()}/{lost.sum()} "
            "lost cross-part links (need at least half)"
        )
        stats = outputs[True].extras["repair"]
        assert stats["n_patched"] >= recovered.sum()
        assert stats["n_anchors"] > 0

    def test_repair_preserves_row_mass(self):
        pair = benchmark_pair(seed=1)
        source_parts, target_parts = misassigned_partition(pair)
        fit = lambda repair: DivideAndConquerAligner(
            FAST_CFG, n_parts=4, boundary_repair=repair
        ).fit(
            pair.source,
            pair.target,
            source_parts=source_parts,
            target_parts=target_parts,
        )
        before = fit(False).plan
        after = fit(True).plan
        np.testing.assert_allclose(
            np.asarray(before.sum(axis=1)).ravel(),
            np.asarray(after.sum(axis=1)).ravel(),
            rtol=1e-12,
        )

    def test_single_part_is_a_noop(self):
        pair = benchmark_pair(seed=2, n_blocks=2, block=12)
        out = DivideAndConquerAligner(
            FAST_CFG, max_block_size=500, boundary_repair=True
        ).fit(pair.source, pair.target)
        assert out.extras["n_parts"] == 1
        assert "repair" not in out.extras  # nothing to repair


class TestAnchors:
    def test_mutual_argmax_pairs(self):
        plan = sp.csr_array(
            np.array(
                [
                    [0.9, 0.1, 0.0],
                    [0.8, 0.2, 0.0],  # row argmax col 0, but col 0 prefers row 0
                    [0.0, 0.0, 0.7],
                ]
            )
        )
        anchors = collect_anchors(plan)
        assert {tuple(a) for a in anchors.tolist()} == {(0, 0), (2, 2)}

    def test_empty_plan_yields_no_anchors(self):
        anchors = collect_anchors(sp.csr_array((4, 5)))
        assert anchors.shape == (0, 2)

    def test_agreement_counts_neighbouring_anchors(self):
        # path graphs 0-1-2 on both sides, anchor (0, 0):
        # agreement[1, 1] = 1 (anchor adjacent to both), corners 0
        from repro.graphs import AttributedGraph

        src = AttributedGraph.from_edges(3, [(0, 1), (1, 2)])
        tgt = AttributedGraph.from_edges(3, [(0, 1), (1, 2)])
        agreement = anchor_agreement(src, tgt, np.array([[0, 0]]))
        dense = agreement.toarray()
        assert dense[1, 1] == 1.0
        assert dense[0, 0] == 0.0
        assert dense[2, 2] == 0.0
