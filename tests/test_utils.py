"""Tests for repro.utils (random, timer, validation)."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.utils import (
    Timer,
    as_float_array,
    check_probability_vector,
    check_random_state,
    check_same_shape,
    check_square,
    spawn_seeds,
)


class TestCheckRandomState:
    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = check_random_state(42).random(5)
        b = check_random_state(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert check_random_state(gen) is gen

    def test_rejects_bad_types(self):
        with pytest.raises(TypeError):
            check_random_state("seed")

    def test_numpy_integer_accepted(self):
        gen = check_random_state(np.int64(7))
        assert isinstance(gen, np.random.Generator)


class TestSpawnSeeds:
    def test_count(self):
        assert len(spawn_seeds(0, 5)) == 5

    def test_deterministic(self):
        assert spawn_seeds(3, 4) == spawn_seeds(3, 4)

    def test_distinct_across_seeds(self):
        assert spawn_seeds(1, 3) != spawn_seeds(2, 3)

    def test_zero(self):
        assert spawn_seeds(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


class TestTimer:
    def test_context_manager(self):
        with Timer() as t:
            sum(range(100))
        assert t.elapsed >= 0.0

    def test_start_stop(self):
        t = Timer()
        t.start()
        elapsed = t.stop()
        assert elapsed >= 0.0
        assert t.elapsed == elapsed

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()


class TestValidation:
    def test_as_float_array_converts(self):
        out = as_float_array([1, 2, 3])
        assert out.dtype == np.float64

    def test_as_float_array_rejects_nan(self):
        with pytest.raises(ValueError):
            as_float_array([1.0, np.nan])

    def test_check_square_accepts(self):
        check_square(np.eye(3))

    def test_check_square_rejects_rect(self):
        with pytest.raises(ShapeError):
            check_square(np.ones((2, 3)))

    def test_check_square_rejects_1d(self):
        with pytest.raises(ShapeError):
            check_square(np.ones(4))

    def test_check_same_shape(self):
        check_same_shape(np.ones((2, 2)), np.zeros((2, 2)))
        with pytest.raises(ShapeError):
            check_same_shape(np.ones((2, 2)), np.zeros((3, 2)))

    def test_probability_vector_valid(self):
        out = check_probability_vector([0.25, 0.75])
        assert out.sum() == pytest.approx(1.0)

    def test_probability_vector_wrong_sum(self):
        with pytest.raises(ValueError):
            check_probability_vector([0.5, 0.2])

    def test_probability_vector_negative(self):
        with pytest.raises(ValueError):
            check_probability_vector([1.5, -0.5])

    def test_probability_vector_wrong_size(self):
        with pytest.raises(ShapeError):
            check_probability_vector([0.5, 0.5], size=3)

    def test_probability_vector_2d_rejected(self):
        with pytest.raises(ShapeError):
            check_probability_vector(np.ones((2, 2)) / 4)
