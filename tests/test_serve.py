"""Tests for the alignment service (repro.serve).

Covers the queue primitives (FIFO + selective extraction), admission
control (graceful rejection with reasons), job ordering under a single
worker, batch coalescing (engaged *and* bitwise-identical to direct
engine runs), per-job failure isolation, and the stats/cache-sharing
surface.
"""

import threading

import numpy as np
import pytest

from repro.core import SLOTAlignConfig
from repro.datasets import make_semi_synthetic_pair
from repro.engine import AlignmentEngine, PlanCache
from repro.graphs import stochastic_block_model
from repro.graphs.features import community_bag_of_words
from repro.serve import (
    AdmissionPolicy,
    AlignmentService,
    Job,
    JobQueue,
    JobState,
    QueueClosed,
    wait_all,
)

FAST = SLOTAlignConfig(
    n_bases=2, structure_lr=0.1, max_outer_iter=25, sinkhorn_iter=20,
    track_history=False,
)


def bench_pair(seed=0, n_per_block=12):
    graph = stochastic_block_model([n_per_block] * 3, 0.4, 0.02, seed=seed)
    feats = community_bag_of_words(
        graph.node_labels, 30, words_per_node=6, seed=seed + 1
    )
    graph = graph.with_features(feats)
    graph.node_labels = None
    return make_semi_synthetic_pair(graph, edge_noise=0.1, seed=seed + 2)


def direct_plan(pair, config=FAST):
    return AlignmentEngine(config, cache=None).align(
        pair.source, pair.target
    ).plan


def make_job(seed=0, **kwargs):
    pair = bench_pair(seed=seed)
    return Job(
        source=pair.source, target=pair.target, config=FAST, **kwargs
    )


class TestJobQueue:
    def test_fifo_order(self):
        queue = JobQueue()
        jobs = [make_job(seed=s) for s in range(3)]
        for job in jobs:
            queue.put(job)
        assert [queue.get() for _ in jobs] == jobs

    def test_take_matching_preserves_remainder_order(self):
        queue = JobQueue()
        jobs = [make_job(seed=s, tag=f"j{s}") for s in range(6)]
        for job in jobs:
            queue.put(job)
        taken = queue.take_matching(
            lambda job: job.tag in ("j1", "j3", "j4"), limit=2
        )
        assert [job.tag for job in taken] == ["j1", "j3"]
        remaining = [queue.get(timeout=0.1) for _ in range(4)]
        assert [job.tag for job in remaining] == ["j0", "j2", "j4", "j5"]

    def test_close_drains_then_signals_shutdown(self):
        queue = JobQueue()
        job = make_job()
        queue.put(job)
        queue.close()
        assert queue.get() is job
        assert queue.get() is None
        with pytest.raises(QueueClosed):
            queue.put(make_job())

    def test_close_wakes_blocked_getter(self):
        queue = JobQueue()
        seen = []
        thread = threading.Thread(target=lambda: seen.append(queue.get()))
        thread.start()
        queue.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert seen == [None]


class TestAdmissionPolicy:
    def test_rejects_over_queue_depth(self):
        policy = AdmissionPolicy(max_queue_depth=2)
        reason = policy.review(10, 10, FAST, queue_depth=2)
        assert reason is not None and "queue full" in reason
        assert policy.review(10, 10, FAST, queue_depth=1) is None

    def test_rejects_over_iteration_budget(self):
        policy = AdmissionPolicy(max_outer_iter=FAST.max_outer_iter - 1)
        reason = policy.review(10, 10, FAST, queue_depth=0)
        assert reason is not None and "iteration budget" in reason

    def test_rejects_oversized_plans(self):
        policy = AdmissionPolicy(max_plan_bytes=100 * 100 * 8)
        assert policy.review(100, 100, FAST, queue_depth=0) is None
        reason = policy.review(101, 100, FAST, queue_depth=0)
        assert reason is not None and "plan too large" in reason

    def test_none_disables_every_bound(self):
        policy = AdmissionPolicy(
            max_queue_depth=None, max_outer_iter=None, max_plan_bytes=None
        )
        assert policy.review(10_000, 10_000, FAST, queue_depth=10**6) is None


class TestServiceLifecycle:
    def test_single_job_bitwise_equal_to_direct_engine(self):
        pair = bench_pair(seed=0)
        with AlignmentService(FAST, cache=PlanCache()) as service:
            job = service.submit(pair.source, pair.target)
            assert job.wait(timeout=60)
        assert job.state is JobState.DONE
        assert job.batch_size == 1
        np.testing.assert_array_equal(
            job.result.result.plan, direct_plan(pair)
        )

    def test_fifo_completion_order_single_worker(self):
        pairs = [bench_pair(seed=s) for s in range(4)]
        service = AlignmentService(
            FAST, cache=PlanCache(), workers=1, coalesce=False
        )
        jobs = [service.submit(p.source, p.target) for p in pairs]
        with service:
            assert wait_all(jobs, timeout=120)
        assert all(job.state is JobState.DONE for job in jobs)
        finished = [job.finished_at for job in jobs]
        assert finished == sorted(finished)
        assert all(job.batch_size == 1 for job in jobs)
        assert service.stats()["solo_pairs"] == len(jobs)

    def test_evaluates_when_ground_truth_present(self):
        pair = bench_pair(seed=1)
        with AlignmentService(FAST, cache=PlanCache()) as service:
            job = service.submit(
                pair.source, pair.target, ground_truth=pair.ground_truth
            )
            assert job.wait(timeout=60)
        assert job.state is JobState.DONE
        assert 0.0 <= job.result.metrics["hits@1"] <= 100.0
        assert set(job.result.stage_seconds) == {"plan", "solve", "evaluate"}

    def test_stop_drains_queued_jobs(self):
        pairs = [bench_pair(seed=s) for s in range(3)]
        service = AlignmentService(FAST, cache=PlanCache())
        jobs = [service.submit(p.source, p.target) for p in pairs]
        service.start()
        service.stop()  # graceful: drains the queue before joining
        assert all(job.done for job in jobs)
        assert all(job.state is JobState.DONE for job in jobs)


class TestCoalescing:
    def test_batch_engaged_and_bitwise_equal(self):
        """Jobs queued together coalesce into one stacked solve whose
        per-pair plans are bit-for-bit the direct engine's."""
        pairs = [bench_pair(seed=s) for s in range(4)]
        service = AlignmentService(
            FAST, cache=PlanCache(), workers=1, max_batch=8
        )
        # submit *before* start so the worker sees the full backlog
        jobs = [service.submit(p.source, p.target) for p in pairs]
        with service:
            assert wait_all(jobs, timeout=120)
        for pair, job in zip(pairs, jobs):
            assert job.state is JobState.DONE
            assert job.batch_size == len(pairs)
            result = job.result.result
            assert result.extras["backend"] == "coalesced"
            np.testing.assert_array_equal(result.plan, direct_plan(pair))
        stats = service.stats()
        assert stats["coalesced_batches"] == 1
        assert stats["coalesced_pairs"] == len(pairs)

    def test_incompatible_jobs_are_not_coalesced(self):
        same = [bench_pair(seed=s) for s in range(2)]
        small_graph = stochastic_block_model([8] * 3, 0.4, 0.02, seed=7)
        small_graph = small_graph.with_features(
            community_bag_of_words(
                small_graph.node_labels, 30, words_per_node=6, seed=8
            )
        )
        small_graph.node_labels = None
        small = make_semi_synthetic_pair(small_graph, edge_noise=0.1, seed=9)
        service = AlignmentService(
            FAST, cache=PlanCache(), workers=1, max_batch=8
        )
        jobs = [service.submit(p.source, p.target) for p in same]
        odd = service.submit(small.source, small.target)
        with service:
            assert wait_all(jobs + [odd], timeout=120)
        assert jobs[0].batch_size == 2
        assert jobs[1].batch_size == 2
        assert odd.batch_size == 1  # different shape: solved solo

    def test_max_batch_caps_coalescing(self):
        pairs = [bench_pair(seed=s) for s in range(3)]
        service = AlignmentService(
            FAST, cache=PlanCache(), workers=1, max_batch=2
        )
        jobs = [service.submit(p.source, p.target) for p in pairs]
        with service:
            assert wait_all(jobs, timeout=120)
        assert sorted(job.batch_size for job in jobs) == [1, 2, 2]

    def test_plan_failure_is_isolated_from_the_batch(self):
        pairs = [bench_pair(seed=s) for s in range(3)]
        bad_init = np.full((5, 5), 1.0 / 25)  # wrong shape for the pair
        service = AlignmentService(
            FAST, cache=PlanCache(), workers=1, max_batch=8
        )
        good = [service.submit(p.source, p.target) for p in pairs[:2]]
        bad = service.submit(
            pairs[2].source, pairs[2].target, init_plan=bad_init
        )
        with service:
            assert wait_all(good + [bad], timeout=120)
        assert bad.state is JobState.FAILED
        assert "plan failed" in bad.error
        for pair, job in zip(pairs, good):
            assert job.state is JobState.DONE
            np.testing.assert_array_equal(
                job.result.result.plan, direct_plan(pair)
            )


class TestAdmissionInService:
    def test_oversized_job_rejected_gracefully(self):
        pair = bench_pair(seed=0)
        n, m = pair.source.n_nodes, pair.target.n_nodes
        service = AlignmentService(
            FAST,
            cache=PlanCache(),
            policy=AdmissionPolicy(max_plan_bytes=n * m * 8 - 1),
        )
        job = service.submit(pair.source, pair.target)
        assert job.done  # terminal immediately, no queueing
        assert job.state is JobState.REJECTED
        assert "plan too large" in job.error
        assert service.stats()["rejected"] == 1
        assert len(service._queue) == 0

    def test_queue_depth_rejection_and_recovery(self):
        pairs = [bench_pair(seed=s) for s in range(3)]
        service = AlignmentService(
            FAST, cache=PlanCache(), policy=AdmissionPolicy(max_queue_depth=2)
        )
        admitted = [service.submit(p.source, p.target) for p in pairs[:2]]
        overflow = service.submit(pairs[2].source, pairs[2].target)
        assert overflow.state is JobState.REJECTED
        assert "queue full" in overflow.error
        with service:
            assert wait_all(admitted, timeout=120)
        assert all(job.state is JobState.DONE for job in admitted)
        # once the queue drained, the same request is admitted again
        with AlignmentService(
            FAST, cache=PlanCache(), policy=AdmissionPolicy(max_queue_depth=2)
        ) as fresh:
            retry = fresh.submit(pairs[2].source, pairs[2].target)
            assert retry.wait(timeout=60)
        assert retry.state is JobState.DONE

    def test_iteration_budget_rejection(self):
        pair = bench_pair(seed=0)
        service = AlignmentService(
            FAST,
            cache=PlanCache(),
            policy=AdmissionPolicy(max_outer_iter=FAST.max_outer_iter - 1),
        )
        job = service.submit(pair.source, pair.target)
        assert job.state is JobState.REJECTED
        assert "iteration budget" in job.error


class TestCacheSharing:
    def test_repeat_traffic_hits_the_shared_cache(self):
        pair = bench_pair(seed=0)
        cache = PlanCache()
        with AlignmentService(FAST, cache=cache, workers=2) as service:
            jobs = [
                service.submit(pair.source, pair.target) for _ in range(4)
            ]
            assert wait_all(jobs, timeout=120)
        assert all(job.state is JobState.DONE for job in jobs)
        info = cache.info()
        assert info["builds"] == 2  # one per graph of the pair
        assert info["hits"] > 0

    def test_stats_surface(self):
        pair = bench_pair(seed=0)
        with AlignmentService(FAST, cache=PlanCache()) as service:
            job = service.submit(pair.source, pair.target)
            assert job.wait(timeout=60)
            stats = service.stats()
        assert stats["submitted"] == 1
        assert stats["completed"] == 1
        assert stats["failed"] == 0
        assert stats["latency_seconds"]["count"] == 1
        assert stats["latency_seconds"]["p50"] > 0
        assert stats["latency_seconds"]["p99"] >= stats["latency_seconds"]["p50"]
        assert stats["cache"]["builds"] == 2
