"""Tier-1 paper-ordering invariants on small deterministic fixtures.

The benchmark suite asserts the full Table II/III and Fig. 7/8 claims
at bench scale but takes minutes; these tests pin the same *orderings*
on the smallest fixtures that still express them, so an accuracy
regression in the joint structure learning stack surfaces in seconds:

* FR-EN tracks ZH-EN (cross-lingual agreement ordering, Table III);
* Douban's location features are weak while ACM-DBLP's venue counts
  are strong (KNN ordering, Table II);
* under feature truncation, structure-weight learning keeps SLOTAlign
  at least at feature-blind GWD's level (Fig. 7, the degenerate
  β-update fix);
* the degenerate-view guards themselves (tied weights stay tied,
  centring kills constant kernels, cosine hops have unit diagonal).
"""

import numpy as np
import pytest

from repro.baselines import GWDAligner, KNNAligner
from repro.core import SLOTAlign, SLOTAlignConfig
from repro.core.views import (
    build_relation_bases,
    build_structure_bases,
    center_kernel,
)
from repro.datasets import (
    load_acm_dblp,
    load_cora,
    load_dbp15k,
    load_douban,
    make_semi_synthetic_pair,
)
from repro.datasets.pairs import truncate_feature_columns
from repro.datasets.kg import random_knowledge_graph, rank_relations
from repro.eval import hits_at_k
from repro.experiments.config import ExperimentScale, method_seed
from repro.experiments.table3_dbp15k import table3_slotalign


def tiny_scale(**overrides) -> ExperimentScale:
    params = dict(dataset_scale=0.015, fast=True, seed=0)
    params.update(overrides)
    return ExperimentScale(**params)


class TestTable3Ordering:
    @pytest.fixture(scope="class")
    def subset_hit1(self):
        scale = tiny_scale()

        def run(subset):
            pair = load_dbp15k(subset, scale=scale.dataset_scale, seed=31)
            aligner = table3_slotalign(scale, pair)
            aligner.aligner.config.max_outer_iter = 40
            out = aligner.fit(pair.source, pair.target)
            return hits_at_k(out.plan, pair.ground_truth, 1)

        return {subset: run(subset) for subset in ("zh_en", "fr_en")}

    def test_fr_en_tracks_zh_en(self, subset_hit1):
        """Cross-lingual agreement ordering: FR-EN ≥ ZH-EN − 5."""
        assert subset_hit1["fr_en"] >= subset_hit1["zh_en"] - 5.0

    def test_kg_protocol_is_accurate_at_tiny_scale(self, subset_hit1):
        """The recovered KG protocol aligns most entities even tiny."""
        assert min(subset_hit1.values()) > 50.0


class TestTable2KNNOrdering:
    def test_douban_knn_below_acmdblp_knn(self):
        """Coarse location one-hots vs informative venue counts."""
        douban = load_douban(scale=0.09, seed=23)
        acmdblp = load_acm_dblp(scale=0.03, seed=29)
        knn = KNNAligner()
        hit_douban = hits_at_k(
            knn.fit(douban.source, douban.target).plan, douban.ground_truth, 1
        )
        hit_acmdblp = hits_at_k(
            knn.fit(acmdblp.source, acmdblp.target).plan,
            acmdblp.ground_truth,
            1,
        )
        assert hit_douban < hit_acmdblp


class TestTruncationOrdering:
    def test_slotalign_not_below_gwd_under_truncation(self):
        """Fig. 7 truncation: the committed node-view start must shed a
        truncated-empty feature view instead of riding it below pure
        GWD (the degenerate β-update fix: tied weights + centring)."""
        cora = truncate_feature_columns(load_cora(scale=0.03), 100)
        pair = make_semi_synthetic_pair(
            cora,
            edge_noise=0.25,
            feature_transform="truncation",
            feature_noise=0.4,
            seed=0,
        )
        slot_cfg = SLOTAlignConfig(
            n_bases=2,
            structure_lr=0.1,
            sinkhorn_lr=0.01,
            max_outer_iter=60,
            sinkhorn_iter=30,
            multi_start=False,
            single_start_view="node",
            track_history=False,
            tie_weights=True,
            center_kernels=True,
        )
        slot = SLOTAlign(slot_cfg).fit(pair.source, pair.target)
        gwd = GWDAligner(max_iter=60).fit(pair.source, pair.target)
        slot_hit = hits_at_k(slot.plan, pair.ground_truth, 1)
        gwd_hit = hits_at_k(gwd.plan, pair.ground_truth, 1)
        assert slot_hit >= gwd_hit


class TestDegenerateViewGuards:
    def test_tied_weights_stay_tied(self):
        rng = np.random.default_rng(0)
        from repro.graphs import erdos_renyi_graph

        gs = erdos_renyi_graph(20, 0.3, seed=1).with_features(rng.random((20, 6)))
        gt = erdos_renyi_graph(20, 0.3, seed=2).with_features(rng.random((20, 6)))
        cfg = SLOTAlignConfig(
            n_bases=3,
            tie_weights=True,
            max_outer_iter=25,
            sinkhorn_iter=30,
            track_history=False,
        )
        out = SLOTAlign(cfg).fit(gs, gt)
        np.testing.assert_array_equal(
            out.extras["beta_source"], out.extras["beta_target"]
        )

    def test_center_kernel_kills_constant_component(self):
        n = 8
        constant = np.full((n, n), 3.7)
        np.testing.assert_allclose(center_kernel(constant), 0.0, atol=1e-12)
        rng = np.random.default_rng(3)
        kernel = rng.random((n, n))
        kernel = kernel + kernel.T
        centred = center_kernel(kernel)
        np.testing.assert_allclose(centred.sum(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(centred.sum(axis=1), 0.0, atol=1e-9)

    def test_center_kernel_is_permutation_equivariant(self):
        rng = np.random.default_rng(4)
        kernel = rng.random((9, 9))
        kernel = kernel + kernel.T
        perm = rng.permutation(9)
        direct = center_kernel(kernel[np.ix_(perm, perm)])
        indirect = center_kernel(kernel)[np.ix_(perm, perm)]
        np.testing.assert_allclose(direct, indirect, atol=1e-12)

    def test_renormalized_hops_are_cosine_kernels(self):
        """With per-hop renormalisation every subgraph view is a cosine
        kernel: unit diagonal before the Frobenius scaling."""
        rng = np.random.default_rng(5)
        from repro.graphs import erdos_renyi_graph

        g = erdos_renyi_graph(15, 0.3, seed=6).with_features(rng.random((15, 5)))
        bases = build_structure_bases(
            g, 4, normalize=False, renormalize_hops=True, hop_mix=0.5
        )
        for hop_basis in bases[2:]:
            np.testing.assert_allclose(np.diag(hop_basis), 1.0, atol=1e-9)

    def test_degenerate_view_does_not_capture_weights(self):
        """Information-free constant features build a constant node
        kernel.  Uncentred, that kernel's GW cross term is maximal
        under any coupling, so the β-update rides it and the plan stays
        uninformative; centring removes the constant component and the
        solver aligns on structure — the degenerate β-update
        regression."""
        from repro.graphs.generators import powerlaw_cluster_graph

        graph = powerlaw_cluster_graph(40, 3, 0.3, seed=7).with_features(
            np.ones((40, 5))
        )
        pair = make_semi_synthetic_pair(graph, edge_noise=0.02, seed=9)
        common = dict(
            n_bases=2,
            tie_weights=True,
            max_outer_iter=60,
            sinkhorn_iter=40,
            multi_start=False,
            track_history=False,
        )
        degenerate = SLOTAlign(
            SLOTAlignConfig(center_kernels=False, **common)
        ).fit(pair.source, pair.target)
        fixed = SLOTAlign(
            SLOTAlignConfig(center_kernels=True, **common)
        ).fit(pair.source, pair.target)
        hit_degenerate = hits_at_k(degenerate.plan, pair.ground_truth, 1)
        hit_fixed = hits_at_k(fixed.plan, pair.ground_truth, 1)
        # the uncentred constant kernel captures the weights wholesale
        assert degenerate.extras["beta_source"][1] > 0.9
        # centred, the constant view is inert and structure dominates
        assert hit_fixed > 60.0
        assert hit_fixed > hit_degenerate + 30.0


class TestRelationBases:
    def test_relation_bases_rank_by_frequency(self):
        kg = random_knowledge_graph(25, 4, 120, seed=10)
        bases = build_relation_bases(kg, 2, normalize=False)
        counts = np.bincount(kg.triples[:, 1], minlength=4)
        order = np.lexsort((np.arange(4), -counts))
        expected = kg.relation_adjacency(int(order[0])).toarray()
        np.testing.assert_array_equal(bases[0], expected)

    def test_relation_bases_pad_with_inert_kernel(self):
        """Missing relations pad with the centred identity, never with
        the zero matrix (a zero basis is an energy sink for the
        β-update)."""
        kg = random_knowledge_graph(10, 2, 30, seed=11)
        bases = build_relation_bases(kg, 4, normalize=False)
        assert len(bases) == 4
        inert = np.eye(10) - np.full((10, 10), 0.1)
        np.testing.assert_allclose(bases[-1], inert, atol=1e-12)
        assert np.linalg.norm(bases[-1]) > 0

    def test_shared_ranking_is_combined_counts(self):
        """Pair callers rank relation ids on the combined counts of
        both KGs — per-side rankings can disagree (each side is its
        own sample), which would make the two relation views compare
        different relation types."""
        kg1 = random_knowledge_graph(20, 4, 60, seed=12)
        kg2 = random_knowledge_graph(20, 4, 60, seed=13)
        shared = rank_relations((kg1, kg2), 4)
        counts = np.bincount(kg1.triples[:, 1], minlength=4) + np.bincount(
            kg2.triples[:, 1], minlength=4
        )
        expected = [
            int(r)
            for r in np.lexsort((np.arange(4), -counts))
            if counts[r] > 0
        ][:4]
        assert shared == expected
        # explicit ids make both sides build the same relation's view
        bases1 = build_relation_bases(kg1, 1, relation_ids=shared)
        bases2 = build_relation_bases(kg2, 1, relation_ids=shared)
        assert len(bases1) == len(bases2) == 1

    def test_dbp15k_relations_align_across_languages(self):
        """Shared ontology prototypes: a shared entity pair present in
        both KGs carries the same relation type."""
        pair = load_dbp15k("fr_en", scale=0.015, seed=31)
        kg_s = pair.metadata["kg_source"]
        kg_t = pair.metadata["kg_target"]
        n_shared = pair.metadata["n_shared"]

        def shared_pair_relations(kg):
            rels = {}
            for h, r, t in kg.triples:
                if h < n_shared and t < n_shared:
                    rels[(min(h, t), max(h, t))] = r
            return rels

        rel_s = shared_pair_relations(kg_s)
        rel_t = shared_pair_relations(kg_t)
        common = set(rel_s) & set(rel_t)
        assert len(common) >= 10
        agree = sum(rel_s[pair_key] == rel_t[pair_key] for pair_key in common)
        assert agree / len(common) > 0.9


class TestMethodSeeds:
    def test_stable_and_distinct(self):
        assert method_seed(0, "GCNAlign") == method_seed(0, "GCNAlign")
        assert method_seed(0, "GCNAlign") != method_seed(0, "WAlign")
        assert method_seed(0, "GCNAlign") != method_seed(1, "GCNAlign")
