"""Golden regression fixtures: stitched plan + solver trajectory.

The invariant tests pin *properties*; these pin *values*: a seeded
60-node pair's stitched partition plan and the solver's iterate
trajectory are compared against committed known-good artefacts under
``tests/goldens/``.  A solver refactor that claims bitwise/tolerance
faithfulness (like PR 1's fused objective or this PR's executor) now
diffs against the actual plans it must preserve, not only against
invariants.

After an **intentional** numerical change, regenerate with::

    PYTHONPATH=src python -m pytest tests/test_goldens.py --update-goldens

and commit the refreshed ``.npz`` files with the change explaining them.
"""

from pathlib import Path

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import SLOTAlign, SLOTAlignConfig
from repro.datasets import make_semi_synthetic_pair
from repro.graphs import stochastic_block_model
from repro.graphs.features import community_bag_of_words
from repro.scale import DivideAndConquerAligner

GOLDEN_DIR = Path(__file__).resolve().parent / "goldens"

# a fixed tolerance rather than bitwise: the goldens must survive a
# BLAS/vendor change, which perturbs accumulation order at the ulp
# level; anything beyond this band is a real behaviour change
ATOL = 1e-9

GOLDEN_CFG = SLOTAlignConfig(
    n_bases=2, structure_lr=0.1, max_outer_iter=60, sinkhorn_iter=40,
    track_history=True,
)


def golden_pair():
    """The seeded 60-node pair every golden is generated from."""
    graph = stochastic_block_model([15] * 4, 0.5, 0.01, seed=1)
    feats = community_bag_of_words(
        graph.node_labels, 80, words_per_node=20, seed=2
    )
    graph = graph.with_features(feats)
    return make_semi_synthetic_pair(graph, seed=3)


def _save_plan(path: Path, plan: sp.csr_array) -> None:
    coo = plan.tocoo()
    np.savez_compressed(
        path, row=coo.row, col=coo.col, data=coo.data,
        shape=np.asarray(plan.shape),
    )


def _load_plan(path: Path) -> sp.csr_array:
    blob = np.load(path)
    return sp.csr_array(
        sp.coo_array(
            (blob["data"], (blob["row"], blob["col"])),
            shape=tuple(blob["shape"]),
        )
    )


class TestStitchedPlanGolden:
    PATH = GOLDEN_DIR / "stitched_plan_60.npz"

    def test_stitched_plan_matches_golden(self, update_goldens):
        pair = golden_pair()
        out = DivideAndConquerAligner(GOLDEN_CFG, n_parts=4).fit(
            pair.source, pair.target
        )
        if update_goldens:
            GOLDEN_DIR.mkdir(exist_ok=True)
            _save_plan(self.PATH, out.plan)
            pytest.skip("golden regenerated")
        assert self.PATH.exists(), (
            "missing golden fixture; run with --update-goldens"
        )
        golden = _load_plan(self.PATH)
        assert out.plan.shape == golden.shape
        diff = out.plan - golden
        max_diff = 0.0 if diff.nnz == 0 else float(np.max(np.abs(diff.data)))
        assert max_diff <= ATOL, (
            f"stitched plan drifted from golden by {max_diff:.3e}; if the "
            "change is intentional, regenerate with --update-goldens"
        )


class TestTrajectoryGolden:
    PATH = GOLDEN_DIR / "solver_trajectory_60.npz"

    def test_trajectory_matches_golden(self, update_goldens):
        pair = golden_pair()
        solver = SLOTAlign(GOLDEN_CFG)
        # exercise the block-level reuse hook: bases built once,
        # injected into the fit
        bases = solver.prepare_bases(pair.source, pair.target)
        result = solver.fit(pair.source, pair.target, bases=bases)
        history = result.extras["history"]
        current = {
            "objective_values": np.asarray(history.objective_values),
            "alpha_deltas": np.asarray(history.alpha_deltas),
            "plan_deltas": np.asarray(history.plan_deltas),
        }
        if update_goldens:
            GOLDEN_DIR.mkdir(exist_ok=True)
            np.savez_compressed(self.PATH, **current)
            pytest.skip("golden regenerated")
        assert self.PATH.exists(), (
            "missing golden fixture; run with --update-goldens"
        )
        golden = np.load(self.PATH)
        for key, series in current.items():
            np.testing.assert_allclose(
                series, golden[key], atol=ATOL, rtol=0,
                err_msg=f"solver trajectory ({key}) drifted from golden; "
                "regenerate with --update-goldens if intentional",
            )

    def test_reused_bases_change_nothing(self):
        """The reuse hook is transparent: fit with injected bases equals
        fit that builds its own, bit for bit."""
        pair = golden_pair()
        solver = SLOTAlign(GOLDEN_CFG)
        bases = solver.prepare_bases(pair.source, pair.target)
        with_hook = solver.fit(pair.source, pair.target, bases=bases)
        without = SLOTAlign(GOLDEN_CFG).fit(pair.source, pair.target)
        np.testing.assert_array_equal(with_hook.plan, without.plan)
