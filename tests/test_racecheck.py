"""Tests for the runtime race/lock-order detector (repro.analysis.racecheck).

The detector's own semantics first (inversion cycles, guarded-object
access, the Condition protocol, module instrumentation scoping), then
the concurrency contracts it exists to enforce: the PlanCache
single-flight discipline and the JobQueue FIFO/take_matching surface
run under instrumented locks with **zero** findings, and so does a
full AlignmentService burst.
"""

import threading
import time
import types

import pytest

import repro.engine.planning as planning_mod
import repro.serve.jobs as jobs_mod
import repro.serve.service as service_mod
from repro.analysis.racecheck import (
    InstrumentedLock,
    LockOrderFinding,
    RaceCheckError,
    RaceRegistry,
    UnguardedAccessFinding,
)
from repro.core import SLOTAlignConfig
from repro.datasets import make_semi_synthetic_pair
from repro.graphs import stochastic_block_model
from repro.graphs.features import community_bag_of_words

FAST = SLOTAlignConfig(
    n_bases=2, structure_lr=0.1, max_outer_iter=10, sinkhorn_iter=15,
    track_history=False,
)


def bench_pair(seed=0, n_per_block=10):
    graph = stochastic_block_model([n_per_block] * 3, 0.4, 0.02, seed=seed)
    feats = community_bag_of_words(
        graph.node_labels, 24, words_per_node=5, seed=seed + 1
    )
    graph = graph.with_features(feats)
    graph.node_labels = None
    return make_semi_synthetic_pair(graph, edge_noise=0.1, seed=seed + 2)


class Box:
    """Plain mutable object for guard() tests (SimpleNamespace forbids
    the ``__class__`` swap the monitor relies on)."""

    def __init__(self):
        self.value = 0
        self.free = 0


def run_thread(fn):
    thread = threading.Thread(target=fn)
    thread.start()
    thread.join(timeout=30)
    assert not thread.is_alive()


class TestLockOrder:
    def test_inversion_detected_without_deadlocking(self):
        """The fixture's deliberate A->B / B->A inversion is reported
        from the *orders observed* — the threads run sequentially, so
        no actual deadlock is needed (or risked)."""
        registry = RaceRegistry()
        a = registry.lock("A")
        b = registry.lock("B")

        def first():
            with a:
                with b:
                    pass

        def second():
            with b:
                with a:
                    pass

        run_thread(first)
        run_thread(second)
        inversions = [
            f for f in registry.findings() if isinstance(f, LockOrderFinding)
        ]
        assert len(inversions) == 1
        assert "lock-order inversion" in inversions[0].format()
        assert {"A", "B"} == set(inversions[0].cycle)
        with pytest.raises(RaceCheckError, match="inversion"):
            registry.assert_clean()

    def test_consistent_order_is_clean(self):
        registry = RaceRegistry()
        a = registry.lock("A")
        b = registry.lock("B")
        for _ in range(3):
            def ordered():
                with a:
                    with b:
                        pass
            run_thread(ordered)
        registry.assert_clean()

    def test_three_lock_cycle_detected(self):
        registry = RaceRegistry()
        locks = {name: registry.lock(name) for name in "ABC"}
        for outer, inner in (("A", "B"), ("B", "C"), ("C", "A")):
            def chain(outer=outer, inner=inner):
                with locks[outer]:
                    with locks[inner]:
                        pass
            run_thread(chain)
        inversions = [
            f for f in registry.findings() if isinstance(f, LockOrderFinding)
        ]
        assert len(inversions) == 1
        assert set(inversions[0].cycle) == {"A", "B", "C"}

    def test_nested_same_lock_pairs_do_not_self_edge(self):
        registry = RaceRegistry()
        a = registry.lock("A")
        b = registry.lock("B")

        def nested():
            with a:
                with b:
                    pass
                with b:
                    pass

        run_thread(nested)
        registry.assert_clean()


class TestGuardedObjects:
    def make(self):
        registry = RaceRegistry()
        lock = registry.lock("L")
        obj = Box()
        registry.guard(obj, ("value",), lock, label="obj")
        return registry, lock, obj

    def test_unguarded_read_and_write_recorded_once_each(self):
        registry, lock, obj = self.make()
        obj.value
        obj.value
        obj.value = 3
        findings = registry.findings()
        assert all(isinstance(f, UnguardedAccessFinding) for f in findings)
        assert {(f.attr, f.operation) for f in findings} == {
            ("value", "read"), ("value", "write"),
        }
        assert "obj.value" in findings[0].format()

    def test_guarded_access_is_clean(self):
        registry, lock, obj = self.make()
        with lock:
            obj.value = 5
            assert obj.value == 5
        obj.free = 1  # unmonitored attribute needs no lock
        registry.assert_clean()

    def test_lock_ownership_is_per_thread(self):
        """Holding the lock on one thread does not license another
        thread's access."""
        registry, lock, obj = self.make()
        with lock:
            run_thread(lambda: obj.value)
        findings = registry.findings()
        assert [(f.attr, f.operation) for f in findings] == [("value", "read")]

    def test_guard_requires_instrumented_lock(self):
        registry = RaceRegistry()
        with pytest.raises(TypeError, match="InstrumentedLock"):
            registry.guard(Box(), ("value",), threading.Lock())


class TestConditionProtocol:
    def test_wait_notify_roundtrip_is_clean(self):
        registry = RaceRegistry()
        cond = registry.condition(name="cv")
        ready = []

        def waiter():
            with cond:
                while not ready:
                    assert cond.wait(timeout=5)
            ready.append("woke")

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.02)
        with cond:
            ready.append("go")
            cond.notify_all()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert ready == ["go", "woke"]
        registry.assert_clean()

    def test_condition_rejects_uninstrumented_locks(self):
        registry = RaceRegistry()
        with pytest.raises(TypeError, match="InstrumentedLock"):
            registry.condition(threading.Lock())

    def test_wait_releases_the_guard(self):
        """During cond.wait the lock is not owned: a guarded access
        made then (from the waiting thread's perspective, by another
        thread holding the lock) stays clean."""
        registry = RaceRegistry()
        lock = registry.lock("L")
        cond = registry.condition(lock)
        obj = Box()
        registry.guard(obj, ("value",), lock, label="obj")
        woke = threading.Event()

        def waiter():
            with cond:
                cond.wait(timeout=5)
                obj.value += 1  # re-acquired: owned again
            woke.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.02)
        with cond:
            obj.value = 10  # waiter parked in wait(): we own the lock
            cond.notify_all()
        assert woke.wait(timeout=30)
        thread.join(timeout=30)
        registry.assert_clean()
        assert obj.value == 11


class TestInstrumentation:
    def test_swap_and_restore(self):
        registry = RaceRegistry()
        original = jobs_mod.threading
        with registry.instrument(jobs_mod):
            assert jobs_mod.threading is not original
            queue = jobs_mod.JobQueue()
            assert isinstance(queue._lock, InstrumentedLock)
            # passthrough attributes resolve to the real module
            assert jobs_mod.threading.Event is threading.Event
        assert jobs_mod.threading is original
        assert not isinstance(jobs_mod.JobQueue()._lock, InstrumentedLock)

    def test_restore_on_exception(self):
        registry = RaceRegistry()
        original = jobs_mod.threading
        with pytest.raises(RuntimeError, match="boom"):
            with registry.instrument(jobs_mod):
                raise RuntimeError("boom")
        assert jobs_mod.threading is original

    def test_module_without_threading_global_is_rejected(self):
        registry = RaceRegistry()
        bare = types.SimpleNamespace(__name__="bare")
        with pytest.raises(AttributeError, match="bare"):
            with registry.instrument(bare):
                pass  # pragma: no cover


class TestPlanCacheUnderRacecheck:
    def test_single_flight_stress_has_zero_findings(self):
        """Satellite contract: a miss burst over shared keys from many
        threads — single-flight builds, LRU bookkeeping, eviction —
        acquires locks consistently and touches guarded state only
        under the cache lock."""
        pairs = [bench_pair(seed=s) for s in range(3)]
        graphs = [p.source for p in pairs] + [p.target for p in pairs]
        registry = RaceRegistry()
        with registry.instrument(planning_mod):
            cache = planning_mod.PlanCache()
            registry.guard(
                cache,
                ("_entries", "_bytes", "_in_flight", "hits", "misses", "builds"),
                cache._lock,
                label="PlanCache",
            )
            barrier = threading.Barrier(6)
            errors = []

            def worker():
                try:
                    barrier.wait(timeout=30)
                    for _ in range(5):
                        for graph in graphs:
                            bases = cache.bases_for(graph, FAST)
                            assert len(bases) == FAST.n_bases
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=worker) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
                assert not thread.is_alive()
            assert not errors
            info = cache.info()
        assert info["builds"] == len(graphs)  # single-flight: one per key
        registry.assert_clean()


class TestJobQueueUnderRacecheck:
    def test_take_matching_stress_has_zero_findings(self):
        """Producers put tagged items while consumers race get()
        against selective take_matching() until the queue closes; the
        queue's Condition discipline must stay inversion-free and every
        guarded touch must hold the lock."""
        registry = RaceRegistry()
        with registry.instrument(jobs_mod):
            queue = jobs_mod.JobQueue()
            registry.guard(
                queue, ("_items", "_closed"), queue._lock, label="JobQueue"
            )
            total = 120
            taken: list = []
            taken_lock = threading.Lock()

            def producer(offset):
                for index in range(offset, total, 3):
                    queue.put(types.SimpleNamespace(tag=index % 4))

            def matcher():
                while True:
                    grabbed = queue.take_matching(
                        lambda item: item.tag in (1, 3), limit=4
                    )
                    with taken_lock:
                        taken.extend(grabbed)
                    if queue.closed and not grabbed and len(queue) == 0:
                        return
                    time.sleep(0.001)

            def getter():
                while True:
                    item = queue.get(timeout=0.2)
                    if item is None:
                        if queue.closed:
                            return
                        continue
                    with taken_lock:
                        taken.append(item)

            producers = [
                threading.Thread(target=producer, args=(off,)) for off in range(3)
            ]
            consumers = [
                threading.Thread(target=matcher),
                threading.Thread(target=matcher),
                threading.Thread(target=getter),
            ]
            for thread in producers + consumers:
                thread.start()
            for thread in producers:
                thread.join(timeout=60)
                assert not thread.is_alive()
            # wait for the consumers to drain everything, then close
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                with taken_lock:
                    if len(taken) == total:
                        break
                time.sleep(0.005)
            queue.close()
            for thread in consumers:
                thread.join(timeout=60)
                assert not thread.is_alive()
        assert len(taken) == total
        assert len(queue) == 0
        registry.assert_clean()


class TestServiceUnderRacecheck:
    def test_service_burst_has_zero_findings(self):
        """The full serving path — submit, worker pool, coalescing,
        shared plan cache, stats, stop — under instrumented locks in
        every participating module."""
        pairs = [bench_pair(seed=s) for s in range(3)]
        registry = RaceRegistry()
        with registry.instrument(service_mod, jobs_mod, planning_mod):
            cache = planning_mod.PlanCache()
            registry.guard(
                cache,
                ("_entries", "_bytes", "_in_flight", "hits", "misses", "builds"),
                cache._lock,
                label="PlanCache",
            )
            service = service_mod.AlignmentService(
                FAST, cache=cache, workers=2, max_batch=4
            )
            with service:
                jobs = [
                    service.submit(pair.source, pair.target)
                    for pair in pairs for _ in range(2)
                ]
                for job in jobs:
                    assert job.wait(timeout=120)
            stats = service.stats()
        assert stats["completed"] == len(jobs)
        assert all(job.state is jobs_mod.JobState.DONE for job in jobs)
        registry.assert_clean()
