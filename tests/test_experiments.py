"""Smoke/integration tests for the experiment harness (tiny scales)."""

import pytest

from repro.experiments import (
    ExperimentScale,
    ablation_aligners,
    default_aligners,
    run_experiment,
    run_fig3,
    run_fig6,
    run_fig7,
    run_fig8,
    run_table2,
    run_table3,
)

TINY = ExperimentScale(dataset_scale=0.02, fast=True, seed=0)


def shrink(scale: ExperimentScale) -> ExperimentScale:
    return scale


class TestConfigHelpers:
    def test_default_aligners_complete(self):
        methods = default_aligners(TINY)
        assert set(methods) == {
            "SLOTAlign",
            "KNN",
            "REGAL",
            "GCNAlign",
            "GATAlign",
            "WAlign",
            "GWD",
            "FusedGW",
        }

    def test_include_filter(self):
        methods = default_aligners(TINY, include=("KNN", "GWD"))
        assert set(methods) == {"KNN", "GWD"}

    def test_ablation_set(self):
        ablations = ablation_aligners(TINY)
        assert set(ablations) == {
            "SLOT-w/o-edge",
            "SLOT-w/o-node",
            "SLOT-w/o-subgraph",
            "SLOT-fixed-beta",
            "SLOT-param-GNN",
        }


class TestFig3:
    def test_structure_and_feature_panels(self):
        out = run_fig3(TINY)
        assert set(out) == {"structure", "feature"}
        for panel in out.values():
            assert {r.method for r in panel} == {"WAlign", "GWD", "KNN"}


class TestFig6:
    def test_single_dataset_subset(self):
        out = run_fig6(
            TINY, datasets=("cora",), methods=("KNN", "GWD"), levels=(0.0, 0.4)
        )
        assert set(out) == {"cora"}
        sweep = {r.method: r for r in out["cora"]}
        assert sweep["KNN"].hits[0] == sweep["KNN"].hits[1]


class TestFig7:
    def test_transform_subset(self):
        out = run_fig7(
            TINY,
            datasets=("cora",),
            transforms=("permutation",),
            methods=("KNN",),
            levels=(0.0, 0.6),
        )
        sweep = out["cora"]["permutation"][0]
        assert sweep.method == "KNN"
        assert len(sweep.hits) == 2


class TestTable2:
    def test_rows_and_metrics(self):
        out = run_table2(
            TINY, datasets=("douban",), methods=("KNN", "GWD"), with_ablations=False
        )
        table = out["douban"]
        assert set(table) == {"KNN", "GWD"}
        for row in table.values():
            assert {"hits@1", "hits@5", "hits@10", "hits@30", "time"} <= set(row)


class TestTable3:
    def test_subset_and_methods(self):
        out = run_table3(TINY, subsets=("fr_en",), methods=("MultiKE", "LIME"))
        table = out["fr_en"]
        assert set(table) == {"MultiKE", "LIME"}
        for row in table.values():
            assert "hits@1" in row and "hits@10" in row


class TestFig8:
    def test_sensitivity_grid(self):
        out = run_fig8(TINY, datasets=("cora",), parameters=("k",))
        curve = out["k"]["cora"]
        assert [v for v, _ in curve] == [3, 4, 5, 6, 7]


class TestRunner:
    def test_renders_fig6_report(self):
        # run through the textual runner at reduced scope via direct calls
        out = run_fig6(TINY, datasets=("cora",), methods=("KNN",), levels=(0.0,))
        assert out["cora"][0].method == "KNN"

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            run_experiment("fig99", TINY)
