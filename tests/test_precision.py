"""Property tests for the opt-in float32 solve mode (PR 10).

Three contracts keep reduced precision honest:

* **routing** — ``precision="float64"`` is the identity (requests
  reach the bitwise-pinned reference backends untouched), while
  ``"float32"`` routes to the separately-registered ``*-f32``
  backends, erroring with the choice-naming message on backends that
  have no reduced-precision variant;
* **equivalence** — the float32 serial, batched, threaded and
  coalesced schedules are all bitwise-identical to each other (the
  per-slice GEMM/Sinkhorn contracts), so scheduling never compounds
  the precision change;
* **parity** — float32 tracks the float64 reference within the
  documented Hit@1/MRR band on seeded pairs, and the final plan is
  always returned re-cast to float64 with float64 objective values.
"""

import numpy as np
import pytest

from repro.core import SLOTAlignConfig
from repro.datasets import make_semi_synthetic_pair
from repro.engine import (
    AlignmentEngine,
    DEFAULT_PRECISION,
    backend_for_precision,
    ensure_precision,
    solve_coalesced,
)
from repro.engine.precision import (
    FLOAT32,
    FLOAT64,
    HIT1_PARITY_POINTS,
    SolverPrecision,
)
from repro.exceptions import ConfigError
from repro.graphs import stochastic_block_model
from repro.graphs.features import community_bag_of_words
from repro.ot.sinkhorn import F32_SINKHORN_TOL

FAST = SLOTAlignConfig(
    n_bases=2, structure_lr=0.1, max_outer_iter=30, sinkhorn_iter=20,
    track_history=False,
)


def bench_pair(seed=0, n_per_block=11):
    graph = stochastic_block_model([n_per_block] * 3, 0.35, 0.02, seed=seed)
    feats = community_bag_of_words(
        graph.node_labels, 30, words_per_node=6, seed=seed + 1
    )
    graph = graph.with_features(feats)
    graph.node_labels = None
    return make_semi_synthetic_pair(graph, edge_noise=0.2, seed=seed + 2)


def solve(pair, config=FAST, **engine_kwargs):
    engine = AlignmentEngine(config, cache=None, **engine_kwargs)
    return engine.align(pair.source, pair.target)


class TestPrecisionModel:
    def test_ensure_precision_resolves_names_and_instances(self):
        assert ensure_precision("float64") is FLOAT64
        assert ensure_precision("float32") is FLOAT32
        assert ensure_precision(FLOAT32) is FLOAT32
        assert DEFAULT_PRECISION == "float64"

    def test_unknown_precision_names_the_choices(self):
        with pytest.raises(ConfigError, match="float32.*float64"):
            ensure_precision("float16")

    def test_float64_applies_no_tolerance_floor(self):
        assert FLOAT64.effective_sinkhorn_tol(1e-9) == 1e-9
        assert FLOAT64.effective_sinkhorn_tol(0.0) == 0.0

    def test_float32_floors_the_sinkhorn_tolerance(self):
        assert FLOAT32.effective_sinkhorn_tol(1e-9) == F32_SINKHORN_TOL
        # an explicit "no convergence checks" is preserved as-is
        assert FLOAT32.effective_sinkhorn_tol(0.0) == 0.0
        # tolerances already above the floor pass through
        assert FLOAT32.effective_sinkhorn_tol(1e-3) == 1e-3

    def test_precision_dtype_is_not_part_of_the_repr(self):
        assert "dtype" not in repr(SolverPrecision("x", np.dtype("f4"), 0.0))

    def test_float64_routing_is_the_identity(self):
        for backend in ("fused-dense", "batched-restart", "sparse",
                        "fused-dense-dedup", "threaded-restart"):
            assert backend_for_precision(backend, "float64") == (backend, {})

    @pytest.mark.parametrize(
        "requested,expected",
        [
            ("fused-dense", ("batched-f32", {})),
            ("batched-restart", ("batched-f32", {})),
            ("batched-f32", ("batched-f32", {})),
            ("fused-dense-f32", ("fused-dense-f32", {})),
            ("threaded-restart", ("threaded-restart", {"precision": "float32"})),
        ],
    )
    def test_float32_routing_table(self, requested, expected):
        assert backend_for_precision(requested, "float32") == expected

    def test_float32_route_for_unrouted_backend_names_the_routable(self):
        with pytest.raises(ConfigError, match="batched-f32"):
            backend_for_precision("sparse", "float32")
        with pytest.raises(ConfigError):
            backend_for_precision("fused-dense-dedup", "float32")


class TestEngineRouting:
    def test_default_engine_precision_is_bitwise_the_reference(self):
        """``--precision float64`` must route to the pinned reference
        backends completely unchanged."""
        pair = bench_pair(seed=0)
        reference = solve(pair)
        routed = solve(pair, precision="float64")
        np.testing.assert_array_equal(reference.plan, routed.plan)
        assert routed.extras["backend"] == "fused-dense"
        assert "precision" not in routed.extras

    def test_float32_routes_to_the_fast_batched_backend(self):
        pair = bench_pair(seed=0)
        result = solve(pair, precision="float32")
        assert result.extras["backend"] == "batched-f32"
        assert result.extras["precision"] == "float32"
        assert result.plan.dtype == np.float64  # outcomes are re-cast
        assert np.all(np.isfinite(result.plan))

    def test_unknown_precision_fails_at_engine_construction(self):
        with pytest.raises(ConfigError):
            AlignmentEngine(FAST, precision="float16")

    def test_unrouted_backend_with_float32_fails_at_solve(self):
        pair = bench_pair(seed=0)
        engine = AlignmentEngine(
            FAST, backend="fused-dense-dedup", cache=None,
            precision="float32",
        )
        with pytest.raises(ConfigError, match="no float32 variant"):
            engine.align(pair.source, pair.target)

    def test_explicit_backend_options_win_over_route_extras(self):
        """threaded-restart under float32 gets its precision from the
        route; an explicit option must not be silently overridden."""
        pair = bench_pair(seed=1)
        result = solve(
            pair, backend="threaded-restart", precision="float32",
        )
        assert result.extras["precision"] == "float32"
        assert result.extras["backend"] == "threaded-restart"


class TestFloat32Equivalence:
    """All float32 schedules produce the same bits."""

    def test_serial_and_batched_f32_are_bitwise_equal(self):
        pair = bench_pair(seed=0)
        serial = solve(pair, backend="fused-dense-f32")
        batched = solve(pair, backend="batched-f32")
        np.testing.assert_array_equal(serial.plan, batched.plan)
        assert serial.extras["objective"] == batched.extras["objective"]
        assert (
            serial.extras["selected_start"] == batched.extras["selected_start"]
        )

    def test_threaded_f32_is_bitwise_the_serial_f32(self):
        pair = bench_pair(seed=0)
        serial = solve(pair, backend="fused-dense-f32")
        threaded = solve(
            pair, backend="threaded-restart",
            backend_options={"precision": "float32", "max_workers": 2},
        )
        np.testing.assert_array_equal(serial.plan, threaded.plan)

    def test_coalesced_f32_matches_single_pair_solves(self):
        """Heterogeneous float32 batches keep the per-slice bitwise
        contract: each pair's plan is what its solo solve produces."""
        pairs = [bench_pair(seed=s, n_per_block=9) for s in range(3)]
        engine = AlignmentEngine(FAST, cache=None)
        problems = [engine.plan(p.source, p.target) for p in pairs]
        results = solve_coalesced(problems, precision="float32")
        for pair, result in zip(pairs, results):
            solo = solve(pair, backend="batched-f32")
            np.testing.assert_array_equal(result.plan, solo.plan)
            assert result.extras["precision"] == "float32"
            assert result.extras["backend"] == "coalesced"

    def test_coalesced_default_precision_unchanged(self):
        pair = bench_pair(seed=4)
        engine = AlignmentEngine(FAST, cache=None)
        [result] = solve_coalesced([engine.plan(pair.source, pair.target)])
        reference = solve(pair)
        np.testing.assert_array_equal(result.plan, reference.plan)
        assert "precision" not in result.extras


class TestFloat32Parity:
    """Satellite: f32 within the documented band of f64 on seeded pairs."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_hit1_and_mrr_parity(self, seed):
        pair = bench_pair(seed=seed)
        engine64 = AlignmentEngine(FAST, cache=None)
        engine32 = AlignmentEngine(FAST, cache=None, precision="float32")
        report64 = engine64.evaluate(
            engine64.align(pair.source, pair.target),
            pair.ground_truth, ks=(1, 5),
        )
        report32 = engine32.evaluate(
            engine32.align(pair.source, pair.target),
            pair.ground_truth, ks=(1, 5),
        )
        assert abs(report32["hits@1"] - report64["hits@1"]) <= (
            HIT1_PARITY_POINTS
        )
        assert abs(report32["mrr"] - report64["mrr"]) * 100.0 <= (
            HIT1_PARITY_POINTS
        )

    def test_plans_agree_to_float32_resolution(self):
        pair = bench_pair(seed=0)
        plan64 = solve(pair).plan
        plan32 = solve(pair, precision="float32").plan
        relative = np.abs(plan32 - plan64).sum() / np.abs(plan64).sum()
        assert relative < 1e-4

    def test_float32_objective_is_evaluated_in_float64(self):
        """Selection decisions use float64 objective values recomputed
        from the float32 iterate — exact equality with the objective
        of the returned (re-cast) plan."""
        pair = bench_pair(seed=0)
        result = solve(pair, precision="float32")
        assert isinstance(result.extras["objective"], float)
        for value in result.extras["start_objectives"].values():
            assert isinstance(value, float)
