"""Sparse evaluation path: exact dense parity and the no-densify guard.

Two contracts:

1. ``hits_at_k`` / ``mean_reciprocal_rank`` / ``evaluate_plan`` on a
   CSR plan equal the dense computation **exactly** (the mid-rank
   counts are integers on both paths — not approximately, bit for bit);
2. nothing in the sparse evaluation pipeline densifies: with
   ``toarray`` monkeypatched to raise, metrics, top-k and the
   partitioned aligner's accessors all still work, and
   ``PartitionedAlignment.dense_plan`` refuses plans above the guard
   threshold.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.eval import (
    evaluate_plan,
    hits_at_k,
    mean_reciprocal_rank,
    sparse_topk,
)
from repro.exceptions import GraphError, ShapeError
from repro.scale import DENSE_GUARD_ENTRIES, PartitionedAlignment


def random_sparse_case(seed, with_negatives=False, with_empty_row=False):
    rng = np.random.default_rng(seed)
    n, m = int(rng.integers(3, 40)), int(rng.integers(3, 40))
    dense = rng.random((n, m))
    dense[rng.random((n, m)) < 0.7] = 0.0
    if with_negatives:
        dense[rng.integers(0, n), rng.integers(0, m)] = -0.5
    if with_empty_row:
        dense[rng.integers(0, n), :] = 0.0
    t = int(rng.integers(1, min(n, m)))
    gt = np.column_stack(
        [rng.permutation(n)[:t], rng.integers(0, m, size=t)]
    )
    return dense, sp.csr_array(dense), gt


class TestSparseDenseParity:
    @pytest.mark.parametrize("seed", range(12))
    def test_hits_and_mrr_exactly_equal(self, seed):
        dense, csr, gt = random_sparse_case(
            seed, with_negatives=seed % 3 == 0, with_empty_row=seed % 4 == 0
        )
        for k in (1, 2, 5, 100):
            assert hits_at_k(dense, gt, k) == hits_at_k(csr, gt, k)
        assert mean_reciprocal_rank(dense, gt) == mean_reciprocal_rank(csr, gt)

    def test_evaluate_plan_parity(self):
        dense, csr, gt = random_sparse_case(99)
        assert evaluate_plan(dense, gt) == evaluate_plan(csr, gt)

    def test_other_sparse_formats_accepted(self):
        dense, csr, gt = random_sparse_case(7)
        for converted in (csr.tocoo(), csr.tocsc(), sp.lil_array(csr)):
            assert hits_at_k(converted, gt, 1) == hits_at_k(dense, gt, 1)

    def test_sparse_validation_errors(self):
        csr = sp.csr_array(np.eye(4))
        with pytest.raises(ShapeError):
            hits_at_k(csr, np.array([[0, 9]]), 1)  # column out of range
        with pytest.raises(ValueError):
            hits_at_k(csr, np.array([[0, 0]]), 0)  # bad k


class TestSparseTopk:
    def test_matches_dense_ranking(self):
        dense, csr, _ = random_sparse_case(3)
        cols, scores = sparse_topk(csr, 3)
        for i in range(dense.shape[0]):
            nonzero = np.flatnonzero(dense[i])
            expected = sorted(nonzero, key=lambda j: (-dense[i, j], j))[:3]
            got = [c for c in cols[i] if c != -1]
            assert got == list(expected)
            np.testing.assert_array_equal(
                scores[i, : len(got)], dense[i, got]
            )

    def test_short_rows_padded(self):
        csr = sp.csr_array(np.array([[0.0, 0.5], [0.0, 0.0]]))
        cols, scores = sparse_topk(csr, 3)
        assert cols[0].tolist() == [1, -1, -1]
        assert cols[1].tolist() == [-1, -1, -1]
        assert scores[1].tolist() == [0.0, 0.0, 0.0]

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            sparse_topk(sp.csr_array((2, 2)), 0)


class TestNoDensification:
    """Above the guard threshold nothing may call ``toarray``."""

    def big_alignment(self):
        # 2100 x 2100 > DENSE_GUARD_ENTRIES, but only a diagonal stored
        n = 2100
        assert n * n > DENSE_GUARD_ENTRIES
        plan = sp.csr_array(
            (np.full(n, 0.9), (np.arange(n), np.arange(n))), shape=(n, n)
        )
        return PartitionedAlignment(
            plan=plan, partitions=[(np.arange(n), np.arange(n))],
            block_results=[],
        )

    def test_metrics_never_densify(self, monkeypatch):
        out = self.big_alignment()
        gt = np.column_stack([np.arange(0, 2000, 7), np.arange(0, 2000, 7)])

        def boom(self, *a, **k):  # pragma: no cover - must not trigger
            raise AssertionError("sparse evaluation path called toarray()")

        monkeypatch.setattr(sp.csr_array, "toarray", boom)
        monkeypatch.setattr(sp.coo_array, "toarray", boom)
        assert hits_at_k(out.plan, gt, 1) == 100.0
        assert mean_reciprocal_rank(out.plan, gt) == 1.0
        cols, _ = out.top_k(5)
        assert np.array_equal(cols[:, 0], np.arange(2100))
        assert np.array_equal(out.matching(), np.arange(2100))
        report = evaluate_plan(out.plan, gt, ks=(1, 5))
        assert report["hits@1"] == 100.0

    def test_dense_plan_guard(self):
        out = self.big_alignment()
        with pytest.raises(GraphError):
            out.dense_plan()
        forced = out.dense_plan(force=True)
        assert forced.shape == (2100, 2100)

    def test_small_plans_still_densify(self):
        n = 10
        plan = sp.csr_array(np.eye(n))
        out = PartitionedAlignment(
            plan=plan, partitions=[(np.arange(n), np.arange(n))],
            block_results=[],
        )
        np.testing.assert_array_equal(out.dense_plan(), np.eye(n))
