"""Tests for evaluation metrics (repro.eval.metrics)."""

import numpy as np
import pytest

from repro.eval import (
    alignment_accuracy,
    evaluate_plan,
    hits_at_k,
    mean_reciprocal_rank,
    unmatchable_detection,
)
from repro.exceptions import ShapeError


def identity_gt(n):
    return np.column_stack([np.arange(n), np.arange(n)])


class TestHitsAtK:
    def test_perfect_plan(self):
        plan = np.eye(5)
        assert hits_at_k(plan, identity_gt(5), 1) == 100.0

    def test_worst_plan(self):
        plan = 1.0 - np.eye(5)
        assert hits_at_k(plan, identity_gt(5), 1) == 0.0

    def test_k_widens_hits(self):
        rng = np.random.default_rng(0)
        plan = rng.random((20, 20))
        gt = identity_gt(20)
        assert hits_at_k(plan, gt, 10) >= hits_at_k(plan, gt, 1)

    def test_all_ties_scored_at_mid_rank(self):
        """A constant plan must NOT score 100 (optimistic tie-breaking
        was a real bug: zero-feature rows made KNN look perfect)."""
        plan = np.ones((10, 10))
        assert hits_at_k(plan, identity_gt(10), 1) == 0.0
        assert hits_at_k(plan, identity_gt(10), 10) == pytest.approx(100.0)

    def test_partial_ground_truth(self):
        plan = np.eye(6)
        gt = np.array([[0, 0], [1, 2]])
        assert hits_at_k(plan, gt, 1) == 50.0

    def test_percentage_scale(self):
        plan = np.eye(4)
        assert 0.0 <= hits_at_k(plan, identity_gt(4), 1) <= 100.0

    def test_k_validation(self):
        with pytest.raises(ValueError):
            hits_at_k(np.eye(3), identity_gt(3), 0)

    def test_empty_ground_truth(self):
        assert hits_at_k(np.eye(3), np.empty((0, 2), dtype=int), 1) == 0.0

    def test_out_of_range_gt(self):
        with pytest.raises(ShapeError):
            hits_at_k(np.eye(3), np.array([[0, 7]]), 1)

    def test_rectangular_plan(self):
        plan = np.zeros((3, 6))
        plan[0, 4] = plan[1, 2] = plan[2, 5] = 1.0
        gt = np.array([[0, 4], [1, 2], [2, 0]])
        assert hits_at_k(plan, gt, 1) == pytest.approx(200 / 3)


class TestMRR:
    def test_perfect(self):
        assert mean_reciprocal_rank(np.eye(4), identity_gt(4)) == pytest.approx(1.0)

    def test_second_place(self):
        plan = np.array([[0.5, 1.0], [0.1, 0.9]])
        gt = np.array([[0, 0]])
        assert mean_reciprocal_rank(plan, gt) == pytest.approx(0.5)

    def test_bounded(self):
        rng = np.random.default_rng(1)
        plan = rng.random((8, 8))
        mrr = mean_reciprocal_rank(plan, identity_gt(8))
        assert 0.0 < mrr <= 1.0


class TestAccuracy:
    def test_matching_accuracy(self):
        matching = np.array([1, 0, 2])
        gt = np.array([[0, 1], [1, 0], [2, 2]])
        assert alignment_accuracy(matching, gt) == 100.0

    def test_partial(self):
        matching = np.array([1, 1, 2])
        gt = np.array([[0, 1], [1, 0], [2, 2]])
        assert alignment_accuracy(matching, gt) == pytest.approx(200 / 3)

    def test_gt_beyond_matching(self):
        with pytest.raises(ShapeError):
            alignment_accuracy(np.array([0]), np.array([[5, 0]]))


class TestEvaluatePlan:
    def test_keys(self):
        report = evaluate_plan(np.eye(5), identity_gt(5), ks=(1, 5))
        assert set(report) == {"hits@1", "hits@5", "mrr"}

    def test_consistent_with_components(self):
        rng = np.random.default_rng(2)
        plan = rng.random((10, 10))
        gt = identity_gt(10)
        report = evaluate_plan(plan, gt, ks=(3,))
        assert report["hits@3"] == hits_at_k(plan, gt, 3)
        assert report["mrr"] == mean_reciprocal_rank(plan, gt)


class TestPartialGroundTruth:
    """Scoring under non-square plans with partially-matchable GT.

    The partial workload evaluates over the matchable nodes only — GT
    rows exist solely for nodes with a surviving counterpart — but an
    unmatchable *column* still participates in every row's ranking: a
    matchable node whose mass lands on a dropped counterpart's column
    scores a miss, it is never silently skipped.
    """

    def test_non_square_plan_partial_gt(self):
        plan = np.zeros((3, 4))
        plan[0, 0] = 1.0  # correct
        plan[1, 1] = 1.0  # correct
        plan[2, 2] = 1.0  # node 2 has no GT row: must not be scored
        gt = np.array([[0, 0], [1, 1]])
        assert hits_at_k(plan, gt, 1) == 100.0
        assert mean_reciprocal_rank(plan, gt) == 1.0

    def test_mass_on_unmatchable_column_is_a_miss(self):
        """Node 0's true target is column 0, but its top candidate is
        column 3 — a column with no GT entry (a dropped counterpart).
        The wrong match must count against Hit@1 through the rank."""
        plan = np.zeros((2, 4))
        plan[0, 3] = 0.9  # impostor column wins the row
        plan[0, 0] = 0.1
        plan[1, 1] = 1.0
        gt = np.array([[0, 0], [1, 1]])
        assert hits_at_k(plan, gt, 1) == 50.0
        assert hits_at_k(plan, gt, 2) == 100.0
        assert mean_reciprocal_rank(plan, gt) == pytest.approx(0.75)

    def test_empty_partial_gt_scores_zero(self):
        report = evaluate_plan(np.random.default_rng(0).random((3, 5)),
                               np.empty((0, 2)), ks=(1,))
        assert report == {"hits@1": 0.0, "mrr": 0.0}


class TestUnmatchableDetection:
    def test_perfect_separation(self):
        scores = np.array([0.9, 0.8, 0.1, 0.0])
        matchable = np.array([False, False, True, True])
        report = unmatchable_detection(scores, matchable)
        assert report["precision"] == 1.0
        assert report["recall"] == 1.0
        assert report["f1"] == 1.0
        assert report["average_precision"] == 1.0
        assert report["n_unmatchable"] == 2
        assert report["n_flagged"] == 2

    def test_partial_overlap_of_flags(self):
        scores = np.array([0.9, 0.2, 0.7, 0.1])
        matchable = np.array([False, False, True, True])
        report = unmatchable_detection(scores, matchable, threshold=0.5)
        # flagged: nodes 0 and 2; positives: nodes 0 and 1
        assert report["precision"] == pytest.approx(0.5)
        assert report["recall"] == pytest.approx(0.5)
        assert report["f1"] == pytest.approx(0.5)
        # ranking 0.9, 0.7, 0.2, 0.1 → positives at ranks 1 and 3
        assert report["average_precision"] == pytest.approx(
            (1.0 / 1 + 2.0 / 3) / 2
        )

    def test_vacuous_full_overlap(self):
        """No unmatchable nodes: recall/AP are vacuously 1, precision
        is 1 exactly when nothing is flagged."""
        matchable = np.ones(4, dtype=bool)
        clean = unmatchable_detection(np.zeros(4), matchable)
        assert clean["recall"] == 1.0
        assert clean["precision"] == 1.0
        assert clean["average_precision"] == 1.0
        assert clean["n_unmatchable"] == 0
        noisy = unmatchable_detection(np.array([0.9, 0.0, 0.0, 0.0]), matchable)
        assert noisy["precision"] == 0.0
        assert noisy["n_flagged"] == 1

    def test_threshold_moves_the_operating_point(self):
        scores = np.array([0.6, 0.4, 0.1])
        matchable = np.array([False, False, True])
        strict = unmatchable_detection(scores, matchable, threshold=0.5)
        loose = unmatchable_detection(scores, matchable, threshold=0.3)
        assert strict["recall"] == pytest.approx(0.5)
        assert loose["recall"] == 1.0

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            unmatchable_detection(np.zeros((2, 2)), np.ones(4, dtype=bool))
        with pytest.raises(ShapeError):
            unmatchable_detection(np.zeros(3), np.ones(4, dtype=bool))
