"""Tests for repro.graphs.normalization and gnn.propagation (Eq. 5)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.graphs import (
    AttributedGraph,
    add_self_loops,
    degree_matrix,
    erdos_renyi_graph,
    row_normalize,
    symmetric_normalize,
)
from repro.gnn import normalized_adjacency_power, propagation_stack, sgc_propagate


def small_graph():
    return AttributedGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])


class TestSymmetricNormalize:
    def test_matches_formula(self):
        g = small_graph()
        a = g.dense_adjacency()
        a_loops = a + np.eye(4)
        deg = a_loops.sum(axis=1)
        expected = a_loops / np.sqrt(np.outer(deg, deg))
        got = symmetric_normalize(g.adjacency).toarray()
        np.testing.assert_allclose(got, expected, atol=1e-12)

    def test_symmetric_output(self):
        g = erdos_renyi_graph(30, 0.2, seed=0)
        norm = symmetric_normalize(g.adjacency).toarray()
        np.testing.assert_allclose(norm, norm.T, atol=1e-12)

    def test_isolated_node_safe(self):
        g = AttributedGraph.from_edges(3, [(0, 1)])
        norm = symmetric_normalize(g.adjacency).toarray()
        assert np.all(np.isfinite(norm))
        # self-loop keeps the isolated node's row nonzero
        assert norm[2, 2] == pytest.approx(1.0)

    def test_without_loops_isolated_zero_row(self):
        g = AttributedGraph.from_edges(3, [(0, 1)])
        norm = symmetric_normalize(g.adjacency, add_loops=False).toarray()
        assert np.all(norm[2] == 0)

    def test_dense_input(self):
        g = small_graph()
        from_dense = symmetric_normalize(g.dense_adjacency()).toarray()
        from_sparse = symmetric_normalize(g.adjacency).toarray()
        np.testing.assert_allclose(from_dense, from_sparse)

    def test_rectangular_rejected(self):
        with pytest.raises(GraphError):
            symmetric_normalize(np.ones((2, 3)))

    def test_spectral_radius_at_most_one(self):
        g = erdos_renyi_graph(40, 0.2, seed=1)
        norm = symmetric_normalize(g.adjacency).toarray()
        eigs = np.linalg.eigvalsh(norm)
        assert eigs.max() <= 1.0 + 1e-10


class TestHelpers:
    def test_add_self_loops(self):
        g = small_graph()
        with_loops = add_self_loops(g.adjacency)
        np.testing.assert_allclose(with_loops.diagonal(), 1.0)

    def test_degree_matrix(self):
        g = small_graph()
        np.testing.assert_array_equal(degree_matrix(g.adjacency), [1, 2, 2, 1])

    def test_row_normalize_unit_rows(self):
        mat = np.random.default_rng(0).standard_normal((5, 3))
        out = row_normalize(mat)
        np.testing.assert_allclose(np.linalg.norm(out, axis=1), 1.0)

    def test_row_normalize_zero_row(self):
        mat = np.zeros((2, 3))
        mat[0] = [1.0, 0, 0]
        out = row_normalize(mat)
        np.testing.assert_array_equal(out[1], 0.0)


class TestSGCPropagation:
    def test_zero_hops_identity(self):
        g = small_graph()
        feats = np.random.default_rng(0).standard_normal((4, 3))
        np.testing.assert_array_equal(sgc_propagate(g.adjacency, feats, 0), feats)

    def test_matches_matrix_power(self):
        g = erdos_renyi_graph(20, 0.3, seed=0)
        feats = np.random.default_rng(1).standard_normal((20, 4))
        for k in (1, 2, 3):
            direct = sgc_propagate(g.adjacency, feats, k)
            via_power = normalized_adjacency_power(g.adjacency, k).toarray() @ feats
            np.testing.assert_allclose(direct, via_power, atol=1e-10)

    def test_propagation_stack_consistent(self):
        g = erdos_renyi_graph(15, 0.3, seed=2).with_features(
            np.random.default_rng(3).standard_normal((15, 5))
        )
        stack = propagation_stack(g, 3)
        assert len(stack) == 4
        for k, z in enumerate(stack):
            np.testing.assert_allclose(
                z, sgc_propagate(g.adjacency, g.features, k), atol=1e-10
            )

    def test_negative_hops_rejected(self):
        g = small_graph()
        with pytest.raises(GraphError):
            sgc_propagate(g.adjacency, np.ones((4, 2)), -1)

    def test_featureless_stack_rejected(self):
        with pytest.raises(GraphError):
            propagation_stack(small_graph(), 2)
