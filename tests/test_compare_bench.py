"""Unit tests for the bench-regression gate (``benchmarks/compare_bench.py``).

The gate is what stands between a noisy re-recorded artefact and a
silently regressed baseline, so its checks get pinned here: the
``check_scale`` gate added after a loaded-machine re-record documented
the parallel partition path as slower than serial (block_speedup
1.04 -> 0.75) without any CI step noticing.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
_SPEC = importlib.util.spec_from_file_location(
    "compare_bench", REPO_ROOT / "benchmarks" / "compare_bench.py"
)
compare_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_bench)


def _scale_payload(
    *,
    block_speedup: float = 1.04,
    bitwise_equal: bool = True,
    recovery_rate: float = 1.0,
    cpu_count: int = 1,
) -> dict:
    return {
        "cpu_count": cpu_count,
        "four_block": {
            "bitwise_equal": bitwise_equal,
            "block_speedup": block_speedup,
            "injected_recovery": {
                "lost_links": 12,
                "recovered_links": int(round(12 * recovery_rate)),
                "recovery_rate": recovery_rate,
            },
        },
    }


def _write(directory: Path, payload: dict) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "BENCH_scale.json").write_text(json.dumps(payload))
    return directory


def _failures(baseline_dir: Path, current_dir: Path, max_slowdown: float = 0.20):
    return list(
        compare_bench.check_scale(baseline_dir, current_dir, max_slowdown)
    )


class TestCheckScale:
    def test_missing_fresh_file_fails(self, tmp_path):
        baseline = _write(tmp_path / "base", _scale_payload())
        failures = _failures(baseline, tmp_path / "empty")
        assert failures and "missing" in failures[0]

    def test_missing_baseline_is_skipped(self, tmp_path):
        fresh = _write(tmp_path / "fresh", _scale_payload())
        assert _failures(tmp_path / "nobase", fresh) == []

    def test_clean_run_passes(self, tmp_path):
        baseline = _write(tmp_path / "base", _scale_payload(block_speedup=1.04))
        fresh = _write(tmp_path / "fresh", _scale_payload(block_speedup=0.94))
        assert _failures(baseline, fresh) == []

    def test_bitwise_divergence_fails_unconditionally(self, tmp_path):
        fresh = _write(
            tmp_path / "fresh", _scale_payload(bitwise_equal=False)
        )
        failures = _failures(tmp_path / "nobase", fresh)
        assert any("bitwise" in f for f in failures)

    def test_partial_recovery_fails_unconditionally(self, tmp_path):
        fresh = _write(
            tmp_path / "fresh", _scale_payload(recovery_rate=0.5)
        )
        failures = _failures(tmp_path / "nobase", fresh)
        assert any("recovered only" in f for f in failures)

    def test_block_speedup_regression_fails(self, tmp_path):
        # the loaded-machine re-record this gate exists to catch:
        # 1.04 -> 0.75 is a 28% drop, past the 20% budget
        baseline = _write(tmp_path / "base", _scale_payload(block_speedup=1.04))
        fresh = _write(tmp_path / "fresh", _scale_payload(block_speedup=0.75))
        failures = _failures(baseline, fresh)
        assert len(failures) == 1
        assert "block_speedup 0.75x" in failures[0]

    def test_within_budget_drop_passes(self, tmp_path):
        baseline = _write(tmp_path / "base", _scale_payload(block_speedup=1.04))
        fresh = _write(tmp_path / "fresh", _scale_payload(block_speedup=0.90))
        assert _failures(baseline, fresh) == []

    def test_fewer_cpus_skips_speedup_gate(self, tmp_path):
        baseline = _write(
            tmp_path / "base", _scale_payload(block_speedup=2.5, cpu_count=4)
        )
        fresh = _write(
            tmp_path / "fresh", _scale_payload(block_speedup=0.9, cpu_count=1)
        )
        assert _failures(baseline, fresh) == []

    def test_more_cpus_still_gates(self, tmp_path):
        baseline = _write(
            tmp_path / "base", _scale_payload(block_speedup=1.04, cpu_count=1)
        )
        fresh = _write(
            tmp_path / "fresh", _scale_payload(block_speedup=0.5, cpu_count=4)
        )
        assert len(_failures(baseline, fresh)) == 1

    def test_absent_speedup_field_is_skipped(self, tmp_path):
        base_payload = _scale_payload()
        del base_payload["four_block"]["block_speedup"]
        baseline = _write(tmp_path / "base", base_payload)
        fresh = _write(tmp_path / "fresh", _scale_payload(block_speedup=0.1))
        assert _failures(baseline, fresh) == []


class TestGateWiring:
    def test_check_scale_wired_into_main(self, tmp_path, capsys):
        """main() must actually call check_scale — a regression that
        lands only when the committed artefacts trip it."""
        for name in (
            "BENCH_solver.json",
            "BENCH_serve.json",
            "BENCH_fidelity.json",
        ):
            src = REPO_ROOT / name
            if not src.exists():
                pytest.skip(f"{name} not present in the tree")
        baseline = tmp_path / "base"
        baseline.mkdir()
        for name in (
            "BENCH_solver.json",
            "BENCH_serve.json",
            "BENCH_fidelity.json",
        ):
            (baseline / name).write_text((REPO_ROOT / name).read_text())
        _write(baseline, _scale_payload(block_speedup=1.04))
        current = tmp_path / "current"
        current.mkdir()
        for name in (
            "BENCH_solver.json",
            "BENCH_serve.json",
            "BENCH_fidelity.json",
        ):
            (current / name).write_text((REPO_ROOT / name).read_text())
        _write(current, _scale_payload(block_speedup=0.75))
        rc = compare_bench.main(
            [str(baseline), "--current-dir", str(current)]
        )
        assert rc == 1
        captured = capsys.readouterr()
        assert "block_speedup" in captured.err
