"""Tests for the threaded shared-memory restart strategy (PR 10).

The load-bearing property is that threading is *pure scheduling*: at
any worker count the float64 mode is bit-for-bit ``fused-dense`` and
the float32 mode is bit-for-bit ``fused-dense-f32`` — each restart's
trajectory is a deterministic function of its own state, and per-thread
workspaces (the :class:`~repro.ot.workspace.WorkspaceArena`) keep
float32 scratch unshared.  The >1 speedup claim is only assertable on
real multi-core hardware, so that test gates on ``available_cpus()``.
"""

import time

import numpy as np
import pytest

from repro.core import SLOTAlignConfig
from repro.datasets import make_semi_synthetic_pair
from repro.engine import AlignmentEngine
from repro.engine.threaded import ThreadedRestartBackend, blas_thread_limit
from repro.graphs import stochastic_block_model
from repro.graphs.features import community_bag_of_words
from repro.ot.workspace import WorkspaceArena
from repro.scale.executor import available_cpus

FAST = SLOTAlignConfig(
    n_bases=2, structure_lr=0.1, max_outer_iter=30, sinkhorn_iter=20,
    track_history=False,
)


def bench_pair(seed=0, n_per_block=11):
    graph = stochastic_block_model([n_per_block] * 3, 0.35, 0.02, seed=seed)
    feats = community_bag_of_words(
        graph.node_labels, 30, words_per_node=6, seed=seed + 1
    )
    graph = graph.with_features(feats)
    graph.node_labels = None
    return make_semi_synthetic_pair(graph, edge_noise=0.2, seed=seed + 2)


def solve(pair, config=FAST, **engine_kwargs):
    engine = AlignmentEngine(config, cache=None, **engine_kwargs)
    return engine.align(pair.source, pair.target)


class TestBitwiseContract:
    @pytest.mark.parametrize("max_workers", [None, 1, 2, 4])
    def test_float64_is_bitwise_fused_dense_at_any_width(self, max_workers):
        pair = bench_pair(seed=0)
        reference = solve(pair)
        threaded = solve(
            pair, backend="threaded-restart",
            backend_options={"max_workers": max_workers},
        )
        np.testing.assert_array_equal(reference.plan, threaded.plan)
        assert threaded.extras["objective"] == reference.extras["objective"]
        assert (
            threaded.extras["selected_start"]
            == reference.extras["selected_start"]
        )

    def test_float32_is_bitwise_the_serial_f32_at_forced_width(self):
        pair = bench_pair(seed=1)
        serial = solve(pair, backend="fused-dense-f32")
        threaded = solve(
            pair, backend="threaded-restart",
            backend_options={"max_workers": 3, "precision": "float32"},
        )
        np.testing.assert_array_equal(serial.plan, threaded.plan)

    def test_pruning_decisions_match_the_serial_portfolio(self):
        from dataclasses import replace

        pair = bench_pair(seed=2)
        cfg = replace(FAST, portfolio_prune_iter=10)
        reference = solve(pair, config=cfg)
        threaded = solve(
            pair, config=cfg, backend="threaded-restart",
            backend_options={"max_workers": 2},
        )
        np.testing.assert_array_equal(reference.plan, threaded.plan)
        assert (
            threaded.extras["portfolio"]["pruned"]
            == reference.extras["portfolio"]["pruned"]
        )


class TestThreadingSurface:
    def test_extras_report_the_pool_shape(self):
        pair = bench_pair(seed=0)
        result = solve(
            pair, backend="threaded-restart",
            backend_options={"max_workers": 2},
        )
        info = result.extras["threading"]
        assert set(info) == {
            "workers", "requested_workers", "cpus", "blas_threads_per_worker",
        }
        assert info["requested_workers"] == 2
        assert info["workers"] == 2
        assert info["cpus"] == available_cpus()
        assert result.extras["precision"] == "float64"

    def test_default_width_is_capped_by_cpus_and_restarts(self):
        backend = ThreadedRestartBackend()
        assert backend._worker_count(8) == min(8, available_cpus())
        assert backend._worker_count(1) == 1
        assert ThreadedRestartBackend(max_workers=16)._worker_count(4) == 4

    def test_single_worker_runs_without_a_pool(self):
        pair = bench_pair(seed=0)
        result = solve(
            pair, backend="threaded-restart",
            backend_options={"max_workers": 1},
        )
        assert result.extras["threading"]["workers"] == 1
        assert result.extras["threading"]["blas_threads_per_worker"] is None

    def test_blas_thread_limit_is_a_noop_without_threadpoolctl(self):
        # the container does not ship threadpoolctl; the context must
        # still be enterable with and without a limit
        with blas_thread_limit(None):
            pass
        with blas_thread_limit(2):
            pass

    def test_shared_arena_is_reusable_across_solves(self):
        arena = WorkspaceArena()
        pair = bench_pair(seed=0)
        backend_options = {
            "max_workers": 2, "precision": "float32", "arena": arena,
        }
        first = solve(pair, backend="threaded-restart",
                      backend_options=backend_options)
        second = solve(pair, backend="threaded-restart",
                       backend_options=backend_options)
        np.testing.assert_array_equal(first.plan, second.plan)
        assert len(arena.workspaces()) >= 1


@pytest.mark.skipif(
    available_cpus() < 4,
    reason="speedup is only a hardware fact on >= 4 real cores",
)
class TestSpeedup:
    def test_threaded_portfolio_beats_the_serial_loop(self):
        """Acceptance gate: >= 1.5x on a 4-restart portfolio when the
        hardware actually has cores to fan out over."""
        pair = bench_pair(seed=0, n_per_block=20)
        cfg = SLOTAlignConfig(
            n_bases=2, structure_lr=0.1, max_outer_iter=80,
            sinkhorn_iter=30, track_history=False,
        )

        def timed(**engine_kwargs):
            best = float("inf")
            for _ in range(3):
                engine = AlignmentEngine(cfg, cache=None, **engine_kwargs)
                t0 = time.perf_counter()
                out = engine.align(pair.source, pair.target)
                best = min(best, time.perf_counter() - t0)
            return best, out

        serial_seconds, serial_out = timed()
        threaded_seconds, threaded_out = timed(
            backend="threaded-restart",
            backend_options={"max_workers": 4},
        )
        np.testing.assert_array_equal(serial_out.plan, threaded_out.plan)
        assert serial_seconds / threaded_seconds >= 1.5
