"""Failure-injection tests: degenerate inputs must fail loudly or
degrade gracefully, never return silent garbage."""

import numpy as np
import pytest

from repro.baselines import KNNAligner
from repro.core import SLOTAlign, SLOTAlignConfig
from repro.exceptions import ConvergenceError, GraphError, ReproError
from repro.graphs import AttributedGraph, erdos_renyi_graph, permute_graph
from repro.ot import proximal_gromov_wasserstein, sinkhorn_log_kernel_fast

FAST = SLOTAlignConfig(
    n_bases=2, max_outer_iter=30, sinkhorn_iter=30, track_history=False
)


class TestDegenerateGraphs:
    def test_edgeless_graph_aligns_without_crash(self):
        rng = np.random.default_rng(0)
        g = AttributedGraph.from_edges(10, [], features=rng.random((10, 4)))
        h, _ = permute_graph(g, seed=1)
        result = SLOTAlign(FAST).fit(g, h)
        assert np.all(np.isfinite(result.plan))

    def test_single_node_graph(self):
        g = AttributedGraph.from_edges(1, [], features=np.ones((1, 3)))
        result = SLOTAlign(FAST).fit(g, g)
        assert result.plan.shape == (1, 1)
        assert result.plan[0, 0] == pytest.approx(1.0)

    def test_zero_feature_matrix(self):
        g = erdos_renyi_graph(12, 0.3, seed=2).with_features(np.zeros((12, 5)))
        h, _ = permute_graph(g, seed=3)
        result = SLOTAlign(FAST).fit(g, h)
        assert np.all(np.isfinite(result.plan))

    def test_featureless_needs_edge_only_views(self):
        g = erdos_renyi_graph(10, 0.3, seed=4)
        with pytest.raises(GraphError):
            SLOTAlign(FAST).fit(g, g)
        cfg = SLOTAlignConfig(
            n_bases=1, include_views=("edge",), max_outer_iter=20,
            track_history=False,
        )
        result = SLOTAlign(cfg).fit(g, g)
        assert result.plan.shape == (10, 10)

    def test_disconnected_components(self):
        edges = [(0, 1), (1, 2), (5, 6), (6, 7)]  # nodes 3,4 isolated
        rng = np.random.default_rng(5)
        g = AttributedGraph.from_edges(8, edges, features=rng.random((8, 4)))
        h, _ = permute_graph(g, seed=6)
        result = SLOTAlign(FAST).fit(g, h)
        assert np.all(np.isfinite(result.plan))

    def test_wildly_different_sizes(self):
        rng = np.random.default_rng(7)
        small = erdos_renyi_graph(5, 0.5, seed=7).with_features(rng.random((5, 4)))
        large = erdos_renyi_graph(60, 0.1, seed=8).with_features(rng.random((60, 4)))
        result = SLOTAlign(FAST).fit(small, large)
        assert result.plan.shape == (5, 60)


class TestNumericalPoison:
    def test_nan_features_rejected_at_construction(self):
        feats = np.ones((5, 2))
        feats[0, 0] = np.nan
        with pytest.raises(GraphError):
            erdos_renyi_graph(5, 0.5, seed=9).with_features(feats)

    def test_nan_log_kernel_rejected(self):
        mu = np.full(3, 1 / 3)
        with pytest.raises(ConvergenceError):
            sinkhorn_log_kernel_fast(np.full((3, 3), np.nan), mu, mu)

    def test_huge_feature_values_stay_finite(self):
        rng = np.random.default_rng(10)
        g = erdos_renyi_graph(10, 0.4, seed=10).with_features(
            rng.random((10, 3)) * 1e8
        )
        h, _ = permute_graph(g, seed=11)
        result = SLOTAlign(FAST).fit(g, h)
        assert np.all(np.isfinite(result.plan))

    def test_gw_with_zero_cost_matrices(self):
        zero = np.zeros((6, 6))
        result = proximal_gromov_wasserstein(zero, zero, max_iter=10)
        # uniform coupling is optimal and must be returned intact
        np.testing.assert_allclose(result.plan, 1.0 / 36, atol=1e-9)


class TestErrorHierarchy:
    def test_all_library_errors_catchable_as_reproerror(self):
        g = erdos_renyi_graph(5, 0.5, seed=12)
        with pytest.raises(ReproError):
            KNNAligner().fit(g, g)  # GraphError is a ReproError
        with pytest.raises(ReproError):
            g.subgraph([99])
