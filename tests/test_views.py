"""Tests for multi-view structure bases (repro.core.views, Eq. 6)."""

import numpy as np
import pytest

from repro.core import build_structure_bases, combine_bases, normalize_basis
from repro.exceptions import GraphError
from repro.gnn import sgc_propagate
from repro.graphs import erdos_renyi_graph, row_normalize


def featured_graph(seed=0, n=20, d=10):
    g = erdos_renyi_graph(n, 0.3, seed=seed)
    rng = np.random.default_rng(seed + 50)
    return g.with_features(rng.random((n, d)))


class TestBuildBases:
    def test_count_matches_k(self):
        g = featured_graph()
        for k in (1, 2, 3, 5):
            assert len(build_structure_bases(g, k)) == k

    def test_first_basis_is_adjacency(self):
        g = featured_graph(seed=1)
        bases = build_structure_bases(g, 3, normalize=False)
        np.testing.assert_array_equal(bases[0], g.dense_adjacency())

    def test_second_basis_is_cosine_gram(self):
        g = featured_graph(seed=2)
        bases = build_structure_bases(g, 2, normalize=False)
        feats = row_normalize(g.features)
        np.testing.assert_allclose(bases[1], feats @ feats.T, atol=1e-12)

    def test_subgraph_views_follow_eq6(self):
        g = featured_graph(seed=3)
        bases = build_structure_bases(g, 4, normalize=False)
        feats = row_normalize(g.features)
        for hop in (1, 2):
            z = sgc_propagate(g.adjacency, feats, hop)
            np.testing.assert_allclose(bases[1 + hop], z @ z.T, atol=1e-10)

    def test_all_bases_symmetric(self):
        g = featured_graph(seed=4)
        for basis in build_structure_bases(g, 4):
            np.testing.assert_allclose(basis, basis.T, atol=1e-10)

    def test_view_ablation_edge_only(self):
        g = featured_graph(seed=5)
        bases = build_structure_bases(g, 1, include_views=("edge",), normalize=False)
        np.testing.assert_array_equal(bases[0], g.dense_adjacency())

    def test_view_ablation_without_node(self):
        g = featured_graph(seed=6)
        bases = build_structure_bases(
            g, 3, include_views=("edge", "subgraph"), normalize=False
        )
        feats = row_normalize(g.features)
        z1 = sgc_propagate(g.adjacency, feats, 1)
        np.testing.assert_allclose(bases[1], z1 @ z1.T, atol=1e-10)

    def test_featureless_graph_requires_edge_only(self):
        g = erdos_renyi_graph(10, 0.3, seed=7)
        bases = build_structure_bases(g, 1, include_views=("edge",))
        assert len(bases) == 1
        with pytest.raises(GraphError):
            build_structure_bases(g, 2)

    def test_unknown_view(self):
        with pytest.raises(GraphError):
            build_structure_bases(featured_graph(), 2, include_views=("edge", "motif"))

    def test_invalid_k(self):
        with pytest.raises(GraphError):
            build_structure_bases(featured_graph(), 0)


class TestNormalizeBasis:
    def test_frobenius_scale(self):
        rng = np.random.default_rng(8)
        basis = rng.random((6, 6))
        out = normalize_basis(basis)
        assert np.linalg.norm(out) == pytest.approx(6.0)

    def test_zero_matrix_untouched(self):
        out = normalize_basis(np.zeros((4, 4)))
        np.testing.assert_array_equal(out, 0.0)

    def test_scale_invariant(self):
        rng = np.random.default_rng(9)
        basis = rng.random((5, 5))
        np.testing.assert_allclose(
            normalize_basis(basis), normalize_basis(10.0 * basis), atol=1e-12
        )


class TestCombineBases:
    def test_convex_combination(self):
        a, b = np.eye(3), np.ones((3, 3))
        out = combine_bases([a, b], np.array([0.25, 0.75]))
        np.testing.assert_allclose(out, 0.25 * a + 0.75 * b)

    def test_vertex_recovers_basis(self):
        a, b = np.eye(3), np.ones((3, 3))
        out = combine_bases([a, b], np.array([1.0, 0.0]))
        np.testing.assert_array_equal(out, a)

    def test_weight_count_mismatch(self):
        with pytest.raises(GraphError):
            combine_bases([np.eye(2)], np.array([0.5, 0.5]))
