"""Tests for the autodiff engine (repro.autodiff)."""

import numpy as np
import pytest

from repro.autodiff import Adam, Linear, SGD, Sequential, Tensor, concatenate
from repro.autodiff.functional import (
    info_nce_loss,
    l2_normalize,
    log_softmax,
    margin_ranking_loss,
    mse_loss,
    softmax,
)


def numeric_grad(fn, x, eps=1e-6):
    """Central finite differences of a scalar function of an ndarray."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        plus = x.copy()
        plus[idx] += eps
        minus = x.copy()
        minus[idx] -= eps
        grad[idx] = (fn(plus) - fn(minus)) / (2 * eps)
        it.iternext()
    return grad


def check_gradient(build_loss, shape, seed=0, atol=1e-5):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(shape)
    t = Tensor(x, requires_grad=True)
    loss = build_loss(t)
    loss.backward()
    numeric = numeric_grad(lambda arr: build_loss(Tensor(arr)).item(), x)
    np.testing.assert_allclose(t.grad, numeric, atol=atol)


class TestElementwiseGradients:
    def test_add_mul(self):
        check_gradient(lambda t: ((t * 3.0) + 1.0).sum(), (3, 4))

    def test_sub_div(self):
        check_gradient(lambda t: ((t - 2.0) / 4.0).sum(), (2, 5))

    def test_pow(self):
        check_gradient(lambda t: (t**3).sum(), (4,), seed=1)

    def test_exp_log(self):
        check_gradient(lambda t: (t.exp() + (t * t + 1.0).log()).sum(), (3, 3), seed=2)

    def test_relu(self):
        check_gradient(lambda t: (t.relu() * t.relu()).sum(), (5, 2), seed=3)

    def test_sigmoid_tanh(self):
        check_gradient(lambda t: (t.sigmoid() * t.tanh()).sum(), (4, 3), seed=4)

    def test_abs(self):
        # keep away from the kink at 0
        rng = np.random.default_rng(5)
        x = rng.standard_normal((3, 3)) + np.sign(rng.standard_normal((3, 3))) * 0.5
        t = Tensor(x, requires_grad=True)
        t.abs().sum().backward()
        np.testing.assert_allclose(t.grad, np.sign(x))

    def test_maximum(self):
        check_gradient(
            lambda t: t.maximum(Tensor(np.zeros((3, 3)))).sum(), (3, 3), seed=6
        )


class TestMatmulAndShape:
    def test_matmul_gradients_both_sides(self):
        rng = np.random.default_rng(7)
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((4, 2)), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 2)) @ b.data.T)
        np.testing.assert_allclose(b.grad, a.data.T @ np.ones((3, 2)))

    def test_transpose(self):
        check_gradient(lambda t: (t.T @ t).sum(), (3, 4), seed=8)

    def test_reshape(self):
        check_gradient(lambda t: (t.reshape(6) * np.arange(6)).sum(), (2, 3), seed=9)

    def test_getitem_accumulates(self):
        x = Tensor(np.arange(5.0), requires_grad=True)
        idx = np.array([0, 0, 3])
        x[idx].sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0, 0, 1.0, 0])

    def test_broadcasting_bias(self):
        rng = np.random.default_rng(10)
        w = Tensor(rng.standard_normal((4, 3)))
        b = Tensor(rng.standard_normal(3), requires_grad=True)
        (w + b).sum().backward()
        np.testing.assert_allclose(b.grad, np.full(3, 4.0))

    def test_concatenate(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = concatenate([a, b], axis=0)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, 2.0)
        np.testing.assert_allclose(b.grad, 2.0)

    def test_mean_axis(self):
        check_gradient(lambda t: t.mean(axis=1).sum(), (3, 5), seed=11)


class TestEngine:
    def test_diamond_graph_grad_accumulation(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0
        z = y + y  # y used twice
        z.backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_detach_cuts_gradient(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x.detach() * x).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(3))

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_no_grad_when_not_required(self):
        x = Tensor(np.ones(3))
        y = (x * 2).sum()
        assert y._backward is None


class TestFunctional:
    def test_softmax_rows_sum_to_one(self):
        out = softmax(Tensor(np.random.default_rng(12).standard_normal((4, 5))))
        np.testing.assert_allclose(out.data.sum(axis=1), 1.0)

    def test_log_softmax_consistent(self):
        x = Tensor(np.random.default_rng(13).standard_normal((3, 4)))
        np.testing.assert_allclose(
            log_softmax(x).data, np.log(softmax(x).data), atol=1e-10
        )

    def test_log_softmax_gradient(self):
        check_gradient(lambda t: log_softmax(t, axis=1).sum(), (3, 4), seed=14)

    def test_l2_normalize(self):
        out = l2_normalize(Tensor(np.random.default_rng(15).standard_normal((4, 6))))
        np.testing.assert_allclose(np.linalg.norm(out.data, axis=1), 1.0, atol=1e-9)

    def test_mse_loss(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = mse_loss(pred, np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_margin_ranking_loss_zero_when_separated(self):
        pos = Tensor(np.array([5.0, 5.0]))
        neg = Tensor(np.array([0.0, 0.0]))
        assert margin_ranking_loss(pos, neg, margin=1.0).item() == 0.0

    def test_margin_ranking_loss_positive_when_violated(self):
        pos = Tensor(np.array([0.0]))
        neg = Tensor(np.array([0.5]))
        assert margin_ranking_loss(pos, neg, margin=1.0).item() == pytest.approx(1.5)

    def test_info_nce_prefers_matched_pairs(self):
        rng = np.random.default_rng(16)
        anchor = rng.standard_normal((6, 4))
        aligned = info_nce_loss(Tensor(anchor), Tensor(anchor.copy()))
        shuffled = info_nce_loss(Tensor(anchor), Tensor(anchor[::-1].copy()))
        assert aligned.item() < shuffled.item()

    def test_info_nce_invalid_temperature(self):
        with pytest.raises(ValueError):
            info_nce_loss(Tensor(np.ones((2, 2))), Tensor(np.ones((2, 2))), 0.0)


class TestModulesAndOptim:
    def test_linear_learns_regression(self):
        rng = np.random.default_rng(17)
        x = rng.standard_normal((50, 3))
        true_w = np.array([[1.0], [-2.0], [0.5]])
        y = x @ true_w
        model = Linear(3, 1, seed=0)
        optim = Adam(model.parameters(), lr=0.05)
        for _ in range(300):
            pred = model(Tensor(x))
            loss = mse_loss(pred, y)
            model.zero_grad()
            loss.backward()
            optim.step()
        np.testing.assert_allclose(model.weight.data, true_w, atol=0.05)

    def test_sgd_descends(self):
        x = Tensor(np.array([10.0]), requires_grad=True)
        optim = SGD([x], lr=0.1)
        for _ in range(100):
            loss = (x * x).sum()
            optim.zero_grad()
            loss.backward()
            optim.step()
        assert abs(x.data[0]) < 0.1

    def test_sequential_parameters_collected(self):
        model = Sequential(Linear(4, 8, seed=0), Linear(8, 2, seed=1))
        assert len(model.parameters()) == 4  # two weights + two biases

    def test_optimizer_rejects_empty(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_adam_rejects_bad_lr(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with pytest.raises(ValueError):
            Adam([x], lr=-1.0)

    def test_momentum_bounds(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([x], momentum=1.5)
